"""Legacy setup shim: `python setup.py develop` works offline
(the modern `pip install -e .` path needs the `wheel` package)."""
from setuptools import setup

setup()
