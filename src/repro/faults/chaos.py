"""Chaos harness: seeded fault storms over the offloaded stack.

Drives a deterministic multi-rank workload (ring point-to-point plus
periodic allreduces, all eager-sized) through the offload engine while
a :class:`~repro.faults.plan.FaultPlan` drops, delays, duplicates,
stalls, errors, and crashes underneath it — then verifies the
robustness contract:

* **no hang** — every rank terminates within the run budget; every
  faulted operation resolves with a success or a *typed* exception
  (:class:`~repro.core.request_pool.OffloadError` family or
  :class:`~repro.mpisim.exceptions.MPIError` family) within its
  deadline;
* **no lost completion** — the telemetry balance law
  ``enqueued == drained == completions + control + in_flight`` holds
  on every engine's final snapshot;
* **no silent failure** — anything outside the typed families is
  reported as an unexpected error and fails the run.

Entry points: :func:`run_chaos` (library) and ``python -m repro chaos``
(CLI; exits nonzero when the contract is violated).
"""

from __future__ import annotations

import threading
from typing import Any

import numpy as np

from repro.core.interpose import offloaded
from repro.core.recovery import RecoveryPolicy, RetryPolicy
from repro.core.request_pool import OffloadError
from repro.faults.plan import FaultAction, FaultPlan, FaultRule
from repro.mpisim.exceptions import MPIError, WorldError
from repro.mpisim.world import World
from repro.obs.report import check_balance, merge

#: Fault profiles selectable from the CLI.
PROFILES = (
    "messages",
    "stragglers",
    "transient",
    "crash",
    "shard-crash",
    "mixed",
    "rank-crash-survive",
)


def default_plan(
    nranks: int, seed: int = 0, profile: str = "mixed"
) -> FaultPlan:
    """A bounded fault storm for ``nranks`` ranks.

    Every rule is windowed (``count``) so the storm is finite and the
    run converges; message rules target EAGER traffic only (control
    envelopes are never dropped, so rendezvous cannot be stranded
    outside the deadline machinery's reach).
    """
    if profile not in PROFILES:
        raise ValueError(f"unknown chaos profile {profile!r}")
    if profile == "rank-crash-survive":
        return crash_survive_plan(nranks, seed=seed)
    plan = FaultPlan(seed=seed)
    if profile in ("messages", "mixed"):
        plan.add(
            FaultRule(
                FaultAction.DROP, kind="eager", probability=0.05, count=6
            )
        )
        plan.add(
            FaultRule(
                FaultAction.DELAY,
                kind="eager",
                probability=0.05,
                delay=0.02,
                count=6,
            )
        )
        plan.add(
            FaultRule(
                FaultAction.DUPLICATE,
                kind="eager",
                probability=0.05,
                count=4,
            )
        )
    if profile in ("stragglers", "mixed"):
        plan.add(
            FaultRule(
                FaultAction.SLOW_RANK,
                rank=nranks - 1,
                probability=0.02,
                duration=0.01,
                count=8,
            )
        )
        plan.add(
            FaultRule(
                FaultAction.STALL,
                rank=0,
                after=20,
                duration=0.05,
                count=2,
            )
        )
    if profile in ("transient", "mixed"):
        plan.add(
            FaultRule(
                FaultAction.COMMAND_ERROR,
                probability=0.08,
                count=10,
            )
        )
    if profile in ("crash", "mixed"):
        plan.add(
            FaultRule(
                FaultAction.ENGINE_CRASH,
                rank=min(1, nranks - 1),
                after=25,
                count=1,
            )
        )
    if profile == "shard-crash":
        # One engine-thread crash under load against a *sharded* pool
        # (run_chaos widens pool_size for this profile): exactly one
        # shard dies mid-storm, its pending work fails typed, sibling
        # shards keep completing, and the pool-merged balance law must
        # still hold — plus light eager delay noise so stealing and
        # routing stay busy while the crash lands.
        plan.add(
            FaultRule(
                FaultAction.ENGINE_CRASH,
                rank=min(1, nranks - 1),
                after=25,
                count=1,
            )
        )
        plan.add(
            FaultRule(
                FaultAction.DELAY,
                kind="eager",
                probability=0.05,
                delay=0.01,
                count=8,
            )
        )
    return plan


def crash_survive_plan(
    nranks: int, seed: int = 0, ncrashes: int | None = None
) -> FaultPlan:
    """Seeded fail-stop deaths for the ``rank-crash-survive`` profile.

    RANK_CRASH rules **only**: the ULFM recovery plane's agreement
    traffic is eager-kind, so message DROP rules could stall the
    recovery protocol itself — this profile injects pure fail-stop
    deaths and leaves delivery intact, which is exactly the ULFM fault
    model.  ``after`` windows are kept small so every death lands
    while the workload's epochs are still issuing commands.
    """
    import random

    rng = random.Random(f"crash-survive:{seed}")
    if ncrashes is None:
        ncrashes = max(1, min(nranks - 2, nranks // 2))
    victims = rng.sample(range(nranks), ncrashes)
    plan = FaultPlan(seed=seed)
    for i, victim in enumerate(victims):
        plan.add(
            FaultRule(
                FaultAction.RANK_CRASH,
                rank=victim,
                after=rng.randint(3, 8),
                count=1,
                rule_id=f"ft-crash-{i}",
            )
        )
    return plan


def run_crash_survive(
    nranks: int = 4,
    seed: int = 0,
    run_timeout: float = 120.0,
    plan: FaultPlan | None = None,
) -> dict:
    """The ``rank-crash-survive`` chaos profile: finish, don't fail fast.

    Drives the paper's two end-to-end workloads (the Fig. 14 CNN
    trainer and the Fig. 9 QCD solver loop, in resilient epoch form)
    through :func:`repro.ft.resilient.run_resilient` over the offload
    engine while a seeded plan crashes ranks.  The contract is
    stronger than the other profiles' no-hang/typed-failure check:

    * the run **completes** — survivors shrink around the dead and
      finish every epoch (``restarts >= 1`` proves recovery ran);
    * the survivors' results are **bitwise identical** to a fault-free
      single-rank reference run of the same workload.
    """
    from repro.ft.resilient import run_resilient
    from repro.ft.workloads import CNNEpochApp, QCDEpochApp
    from repro.mpisim.constants import ThreadLevel

    ft: dict[str, dict] = {}
    unexpected: dict[str, str] = {}
    fault_stats: dict[str, int] = {}
    total_restarts = 0
    for App in (CNNEpochApp, QCDEpochApp):
        app = App(seed=seed)
        reference = run_resilient(
            App(seed=seed),
            World(1, thread_level=ThreadLevel.MULTIPLE),
            run_timeout=run_timeout,
        )
        world = World(nranks, thread_level=ThreadLevel.MULTIPLE)
        wplan = plan or crash_survive_plan(nranks, seed=seed)
        world.install_faults(wplan)
        report = run_resilient(
            app, world, offload=True, run_timeout=run_timeout
        )
        bitwise = (
            report.result is not None
            and report.result == reference.result
        )
        ft[app.name] = {
            "ok": report.ok and bitwise and report.restarts >= 1,
            "bitwise": bitwise,
            "restarts": report.restarts,
            "dead": report.dead,
            "survivors": sorted(report.results),
            "checkpoint_bytes": report.checkpoint_bytes,
            **report.counters,
        }
        for rank, msg in report.unexpected.items():
            unexpected[f"{app.name}:r{rank}"] = msg
        for k, v in wplan.stats().items():
            fault_stats[k] = fault_stats.get(k, 0) + v
        total_restarts += report.restarts
        # fresh plan per workload: count windows are consumed
        plan = None
    ok = all(d["ok"] for d in ft.values()) and not unexpected
    return {
        "ok": ok,
        "nranks": nranks,
        "rounds": sum(
            App(seed=seed).epochs for App in (CNNEpochApp, QCDEpochApp)
        ),
        "seed": seed,
        "profile": "rank-crash-survive",
        "pool_size": 1,
        "pool": {},
        "ops": sum(d["restarts"] + 1 for d in ft.values()),
        "completed_ok": sum(1 for d in ft.values() if d["ok"]),
        "typed_failures": {},
        "wait_timeouts": 0,
        "hangs": [],
        "unexpected_errors": unexpected,
        "degraded_exits": [],
        "faults": fault_stats,
        "recovered": {"restarts": total_restarts},
        "balance": {"ok": True},
        "balance_violations": [],
        "ft": ft,
    }


def _attempt(report: dict, fn) -> None:
    """Run one operation; success or *typed* failure both count."""
    report["ops"] += 1
    try:
        fn()
        report["ok"] += 1
    except (OffloadError, MPIError) as exc:
        name = type(exc).__name__
        report["failed"][name] = report["failed"].get(name, 0) + 1
    except TimeoutError:
        # Caller-side wait timeout: the engine's own deadline should
        # have fired first, so this is a contract violation.
        report["wait_timeouts"] += 1


def _rank_program(
    comm,
    rounds: int,
    payload_bytes: int,
    op_timeout: float,
    reports: list,
    lock: threading.Lock,
    batch_size: int | None = None,
    coalesce: bool = True,
    pool_size: int = 1,
    router: str | None = None,
    steal_threshold: int | None = None,
) -> None:
    rank, size = comm.rank, comm.size
    report: dict[str, Any] = {
        "rank": rank,
        "ops": 0,
        "ok": 0,
        "failed": {},
        "wait_timeouts": 0,
        "degraded_exit": False,
        "dead_shards": 0,
        "snapshot": None,
    }
    n = max(1, payload_bytes)
    sbuf = np.full(n, rank % 251, dtype=np.uint8)
    rbuf = np.empty(n, dtype=np.uint8)
    acc = np.ones(8, dtype=np.int64)
    recovery = RecoveryPolicy(
        retry=RetryPolicy(
            max_retries=3, base_backoff=1e-4, max_backoff=5e-3
        ),
        watchdog_timeout=max(2.0, 2 * op_timeout),
        degrade=True,
        poll_interval=2e-3,
    )
    # The caller-side wait budget sits well above the engine deadline,
    # so the engine's typed OffloadTimeout always fires first.
    wait_budget = 4 * op_timeout + 1.0
    # Batched drain + eager coalescing run by default: the chaos
    # contract (no hang, no lost completion, typed errors, balance law)
    # must hold with the hot-loop optimizations on, not just off.
    with offloaded(
        comm,
        telemetry=True,
        recovery=recovery,
        op_timeout=op_timeout,
        batch_size=batch_size,
        coalesce_eager=coalesce,
        pool_size=pool_size if pool_size > 1 else None,
        router=router,
        steal_threshold=steal_threshold,
    ) as oc:
        # ``holder`` is the bare engine or the EnginePool; ``dead`` is
        # only non-None once *no* shard can serve (a pool with one dead
        # shard keeps running: its streams are remapped to survivors).
        holder = oc.engine
        for rnd in range(rounds):
            if holder.dead is not None:
                # Engine died (injected crash / watchdog): exercise the
                # degraded inline path with hazard-free operations —
                # a probe and an eager fire-and-forget send — then
                # leave the loop.
                _attempt(report, lambda: oc.iprobe(rank, tag=999))
                _attempt(
                    report,
                    lambda: oc.isend(
                        sbuf, (rank + 1) % size, tag=10_000 + rnd
                    ).wait(wait_budget),
                )
                report["degraded_exit"] = True
                break
            dst = (rank + 1) % size
            src = (rank - 1) % size
            rreq = oc.irecv(rbuf, src, tag=rnd)
            sreq = oc.isend(sbuf, dst, tag=rnd)
            _attempt(report, lambda: sreq.wait(wait_budget))
            _attempt(report, lambda: rreq.wait(wait_budget))
            if rnd % 5 == 4:
                _attempt(report, lambda: oc.allreduce(acc))
        try:
            oc.flush()
        except (OffloadError, MPIError):
            pass
        engines = getattr(holder, "engines", [holder])
        report["dead_shards"] = sum(
            1 for e in engines if e.dead is not None
        )
        # Pool-merged snapshot: per-shard balance intentionally breaks
        # under stealing (victim counts the enqueue, thief the drain);
        # the pool is the balanced unit of accounting.
        report["snapshot"] = holder.telemetry_snapshot()
        stats = holder.stats()
        report["stats"] = {
            k: stats.get(k, 0)
            for k in (
                "retries",
                "deadline_expirations",
                "watchdog_trips",
                "degraded_mode_commands",
                "steals",
                "shard_scale_events",
                "router_misroutes",
            )
        }
    with lock:
        reports.append(report)


def run_serve_chaos(
    rounds: int = 40,
    seed: int = 0,
    profile: str = "mixed",
    op_timeout: float = 1.0,
    run_timeout: float = 120.0,
    pool_size: int = 1,
    plan: FaultPlan | None = None,
) -> dict:
    """Chaos with the serving front-end as the workload.

    Runs the seeded loadgen (closed loop, tenant mix, sharded pool)
    on a single rank while the profile's fault plan drops, delays,
    errors, and crashes underneath it.  The contract is the ring
    workload's — no hang, typed failures only, balance law intact —
    plus the serving tier's own: **zero lost completions** (every
    admitted request reaches completed/failed/rejected) and exactly
    one continuation fire per offloaded command.
    """
    from repro.serve.loadgen import LoadgenConfig, run_loadgen

    if profile == "rank-crash-survive":
        raise ValueError(
            "rank-crash-survive drives the resilient epoch workloads; "
            "the serve workload has no multi-rank membership to shrink"
        )
    config = LoadgenConfig(
        seed=seed,
        requests=max(1, rounds) * 5,
        concurrency=32,
        pool_size=max(2, pool_size),
        op_timeout=op_timeout,
        run_timeout=run_timeout,
    )
    if plan is None:
        plan = default_plan(1, seed=seed, profile=profile)
    hangs: list[int] = []
    unexpected: dict[int, str] = {}
    report = None
    try:
        report = run_loadgen(config, faults=plan, recovery=True)
    except WorldError as we:
        for rank, exc in we.failures.items():
            if isinstance(exc, TimeoutError):
                hangs.append(rank)
            else:
                unexpected[rank] = f"{type(exc).__name__}: {exc}"
    serve: dict[str, Any] = {}
    typed_failures: dict[str, int] = {}
    balance_ok, balance_detail = True, {}
    ops = completed = 0
    if report is not None:
        ops = report.issued
        completed = report.completed
        typed_failures = dict(report.failed)
        balance_ok, balance_detail = (
            report.balance_ok,
            report.balance_detail,
        )
        serve = {
            "rejected": report.rejected,
            "lost": report.lost,
            "continuation_fires": report.continuation_fires,
            "continuation_drops": report.continuation_drops,
            "slo": report.slo.render(),
            "per_tenant": report.per_tenant,
        }
    ok = (
        report is not None
        and not hangs
        and not unexpected
        and balance_ok
        and report.lost == 0
    )
    return {
        "ok": ok,
        "nranks": 1,
        "rounds": rounds,
        "seed": seed,
        "profile": profile,
        "pool_size": config.pool_size,
        "pool": {},
        "ops": ops,
        "completed_ok": completed,
        "typed_failures": typed_failures,
        "wait_timeouts": 0,
        "hangs": sorted(hangs),
        "unexpected_errors": unexpected,
        "degraded_exits": [],
        "faults": plan.stats(),
        "recovered": {},
        "balance": {"ok": balance_ok, **balance_detail},
        "balance_violations": [],
        "serve": serve,
    }


def run_chaos(
    nranks: int = 4,
    rounds: int = 40,
    seed: int = 0,
    payload_bytes: int = 2048,
    op_timeout: float = 1.0,
    profile: str = "mixed",
    run_timeout: float = 120.0,
    plan: FaultPlan | None = None,
    batch_size: int | None = None,
    coalesce: bool = True,
    pool_size: int = 1,
    router: str | None = None,
    steal_threshold: int | None = None,
    zero_copy: bool = False,
    workload: str = "ring",
) -> dict:
    """One seeded chaos run; returns a structured verdict report.

    ``report["ok"]`` is True iff no rank hung, every failure was typed,
    and the telemetry balance law held on every engine.  Engines run
    with batched drain and (by default) eager coalescing enabled;
    ``batch_size`` overrides the engine default, ``coalesce=False``
    turns coalescing off.

    ``pool_size > 1`` runs each rank on a sharded, work-stealing
    :class:`~repro.core.engine_pool.EnginePool`; the ``shard-crash``
    profile defaults to a 4-shard pool (one shard dies under load, the
    pool must survive with the merged balance law intact).

    ``zero_copy=True`` runs the storm over the zero-copy data plane
    (DESIGN.md §14) — eager sends borrow user buffers and complete at
    match time, so DROP/DUPLICATE rules exercise the fault hooks'
    send-request completion and deep-copy paths.
    """
    if workload == "serve":
        # The serving front-end as the thing the faults break: the
        # loadgen's concurrent awaiters replace the ring storm.
        return run_serve_chaos(
            rounds=rounds,
            seed=seed,
            profile=profile,
            op_timeout=op_timeout,
            run_timeout=run_timeout,
            pool_size=pool_size,
            plan=plan,
        )
    if workload != "ring":
        raise ValueError(f"unknown chaos workload {workload!r}")
    if profile == "rank-crash-survive":
        # Entirely different contract (complete + bitwise-correct
        # instead of fail-typed); delegated to the resilient driver.
        return run_crash_survive(
            nranks=nranks, seed=seed, run_timeout=run_timeout, plan=plan
        )
    if profile == "shard-crash" and pool_size == 1:
        pool_size = 4
    if plan is None:
        plan = default_plan(nranks, seed=seed, profile=profile)
    if pool_size > 1:
        # Several offload threads per rank enter MPI concurrently.
        from repro.mpisim.constants import ThreadLevel

        world = World(
            nranks,
            thread_level=ThreadLevel.MULTIPLE,
            zero_copy=zero_copy,
        )
    else:
        world = World(nranks, zero_copy=zero_copy)
    world.install_faults(plan)
    reports: list[dict] = []
    lock = threading.Lock()
    hangs: list[int] = []
    unexpected: dict[int, str] = {}
    # Typed families the contract allows; FaultInjectionError appears in
    # WorldError via the dead-rank bookkeeping even when the rank
    # program itself degraded gracefully (crash profiles).
    from repro.faults.plan import FaultInjectionError

    expected_kinds = (OffloadError, MPIError, FaultInjectionError)
    try:
        world.run(
            _rank_program,
            rounds,
            payload_bytes,
            op_timeout,
            reports,
            lock,
            batch_size,
            coalesce,
            pool_size,
            router,
            steal_threshold,
            timeout=run_timeout,
        )
    except WorldError as we:
        for rank, exc in we.failures.items():
            if isinstance(exc, TimeoutError):
                hangs.append(rank)
            elif not isinstance(exc, expected_kinds):
                unexpected[rank] = f"{type(exc).__name__}: {exc}"
    snapshots = [r["snapshot"] for r in reports if r.get("snapshot")]
    merged = merge(snapshots)
    balance_ok, balance_detail = (
        check_balance(merged) if snapshots else (True, {})
    )
    per_engine_violations = []
    for r in reports:
        snap = r.get("snapshot")
        if not snap:
            continue
        ok, detail = check_balance(snap)
        if not ok:
            per_engine_violations.append({"rank": r["rank"], **detail})
    failed: dict[str, int] = {}
    for r in reports:
        for name, cnt in r["failed"].items():
            failed[name] = failed.get(name, 0) + cnt
    wait_timeouts = sum(r["wait_timeouts"] for r in reports)
    recovered = {
        k: sum(r.get("stats", {}).get(k, 0) for r in reports)
        for k in (
            "retries",
            "deadline_expirations",
            "watchdog_trips",
            "degraded_mode_commands",
        )
    }
    pool_detail = {
        k: sum(r.get("stats", {}).get(k, 0) for r in reports)
        for k in ("steals", "shard_scale_events", "router_misroutes")
    }
    pool_detail["dead_shards"] = sum(
        r.get("dead_shards", 0) for r in reports
    )
    ok = (
        not hangs
        and not unexpected
        and balance_ok
        and not per_engine_violations
        and wait_timeouts == 0
        and len(reports) >= nranks - len(hangs)
    )
    return {
        "ok": ok,
        "nranks": nranks,
        "rounds": rounds,
        "seed": seed,
        "profile": profile,
        "pool_size": pool_size,
        "pool": pool_detail,
        "ops": sum(r["ops"] for r in reports),
        "completed_ok": sum(r["ok"] for r in reports),
        "typed_failures": failed,
        "wait_timeouts": wait_timeouts,
        "hangs": sorted(hangs),
        "unexpected_errors": unexpected,
        "degraded_exits": [
            r["rank"] for r in reports if r["degraded_exit"]
        ],
        "faults": plan.stats(),
        "recovered": recovered,
        "balance": {"ok": balance_ok, **balance_detail},
        "balance_violations": per_engine_violations,
    }


def render_report(report: dict) -> str:
    """Human-readable chaos verdict block."""
    lines = [
        f"chaos: seed={report['seed']} profile={report['profile']} "
        f"ranks={report['nranks']} rounds={report['rounds']}",
        f"  ops={report['ops']} ok={report['completed_ok']} "
        f"typed_failures={report['typed_failures'] or '{}'}",
        f"  faults_injected={report['faults'].get('faults_injected', 0)} "
        f"({ {k: v for k, v in report['faults'].items() if k.startswith('fault_')} })",
        f"  recovered={report['recovered']}",
        f"  pool_size={report.get('pool_size', 1)} "
        f"pool={report.get('pool', {})}",
        f"  degraded_exits={report['degraded_exits']}",
        "  balance: "
        + " ".join(
            f"{k}={v}" for k, v in report["balance"].items() if k != "ok"
        )
        + (" OK" if report["balance"]["ok"] else " IMBALANCED"),
    ]
    if report["hangs"]:
        lines.append(f"  HANGS: ranks {report['hangs']}")
    if report["wait_timeouts"]:
        lines.append(f"  WAIT TIMEOUTS: {report['wait_timeouts']}")
    if report["unexpected_errors"]:
        lines.append(f"  UNEXPECTED: {report['unexpected_errors']}")
    if report["balance_violations"]:
        lines.append(f"  VIOLATIONS: {report['balance_violations']}")
    serve = report.get("serve")
    if serve:
        lines.append(
            f"  serve: rejected={serve['rejected']} "
            f"lost={serve['lost']} "
            f"fires={serve['continuation_fires']} "
            f"drops={serve['continuation_drops']}"
        )
        lines.append(f"  {serve['slo']}")
    for name, d in report.get("ft", {}).items():
        lines.append(
            f"  ft[{name}]: restarts={d['restarts']} dead={d['dead']} "
            f"survivors={d['survivors']} "
            f"revokes={d.get('comm_revokes', 0)} "
            f"agree_rounds={d.get('agree_rounds', 0)} "
            f"shrinks={d.get('shrink_epochs', 0)} "
            f"ckpt_bytes={d.get('checkpoint_bytes', 0)} "
            + ("bitwise-OK" if d["bitwise"] else "BITWISE-MISMATCH")
        )
    lines.append(
        "  verdict: " + ("PASS" if report["ok"] else "FAIL")
    )
    return "\n".join(lines)
