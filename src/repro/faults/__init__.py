"""Deterministic fault injection for the offload stack.

Public surface is the plan layer (:mod:`repro.faults.plan`); the chaos
harness lives in :mod:`repro.faults.chaos` and is imported lazily by
its consumers (it depends on :mod:`repro.core`, which imports this
package — a top-level import here would cycle).
"""

from repro.faults.plan import (
    COMMAND_ACTIONS,
    FaultAction,
    FaultInjectionError,
    FaultPlan,
    FaultRule,
    InjectedCrash,
    MESSAGE_ACTIONS,
    PROGRESS_ACTIONS,
    TransientFaultError,
)

__all__ = [
    "FaultAction",
    "FaultInjectionError",
    "FaultPlan",
    "FaultRule",
    "InjectedCrash",
    "TransientFaultError",
    "MESSAGE_ACTIONS",
    "PROGRESS_ACTIONS",
    "COMMAND_ACTIONS",
]
