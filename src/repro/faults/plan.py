"""Deterministic, seeded fault injection for the offload stack.

The offload design concentrates every MPI call of a rank in one
communication thread, which makes that thread — and the simulated
transport underneath it — a single point of failure.  This module makes
those failures *injectable* so the recovery machinery
(:mod:`repro.core.recovery`) can be exercised deterministically:

* a :class:`FaultRule` describes one fault (what, where, when, how
  often);
* a :class:`FaultPlan` holds an ordered list of rules plus a seeded
  RNG, and exposes the three hook points the substrate calls:

  - :meth:`FaultPlan.on_deliver` — message faults (drop / delay /
    duplicate), called by :meth:`repro.mpisim.world.World._deliver`;
  - :meth:`FaultPlan.on_progress` — rank stragglers and
    progress-engine stalls, called by
    :meth:`repro.mpisim.progress.ProgressEngine.progress` (under the
    library lock, so a stall wedges the rank exactly like a stuck
    progress engine would);
  - :meth:`FaultPlan.on_command` — transient command errors, offload
    engine crashes, and whole-rank crashes, called by the offload
    engine before dispatching each command.

Zero-overhead discipline (mirrors telemetry): when no plan is
installed, every hook site is a single ``is None`` check; no plan code
runs.

Determinism: rule eligibility is counted per rule (``after`` / ``count``
windows) and probabilistic decisions come from one seeded
``random.Random``, both under the plan lock.  Given the same seed,
rules, and per-scope event order, the same events are faulted.  (Event
*interleaving* across threads is still scheduler-dependent — scope
rules tightly when a test needs an exact outcome.)
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from enum import Enum
from random import Random
from typing import TYPE_CHECKING, Callable

from repro.mpisim.envelope import BufferRef, Envelope, EnvelopeKind
from repro.mpisim.status import EMPTY_STATUS
from repro.obs.counters import Counters

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.commands import Command
    from repro.core.engine import OffloadEngine
    from repro.mpisim.progress import ProgressEngine
    from repro.mpisim.world import World


class FaultInjectionError(Exception):
    """Base class for injected failures."""


class TransientFaultError(FaultInjectionError):
    """An injected, retryable command failure (COMMAND_ERROR rules).

    The default :class:`~repro.core.recovery.RetryPolicy` retries
    exactly this type: the fault is raised *before* the command is
    dispatched, so re-driving the command is always safe.
    """


class InjectedCrash(FaultInjectionError):
    """Injected offload-thread death (ENGINE_CRASH / RANK_CRASH rules).

    Raised inside the engine loop; the engine's crash handling marks
    itself dead and fails everything pending with
    :class:`~repro.core.request_pool.OffloadEngineDied`.
    """


class FaultAction(Enum):
    """Every fault the plan can inject, grouped by hook scope."""

    # -- message scope (World._deliver) --------------------------------
    DROP = "drop"
    DELAY = "delay"
    DUPLICATE = "duplicate"
    # -- progress scope (ProgressEngine.progress) ----------------------
    SLOW_RANK = "slow_rank"
    STALL = "stall"
    # -- command scope (OffloadEngine, pre-dispatch) -------------------
    COMMAND_ERROR = "command_error"
    ENGINE_CRASH = "engine_crash"
    RANK_CRASH = "rank_crash"


#: Actions evaluated at message delivery time.
MESSAGE_ACTIONS = frozenset(
    {FaultAction.DROP, FaultAction.DELAY, FaultAction.DUPLICATE}
)
#: Actions evaluated when a rank pumps progress.
PROGRESS_ACTIONS = frozenset({FaultAction.SLOW_RANK, FaultAction.STALL})
#: Actions evaluated when the offload engine is about to dispatch.
COMMAND_ACTIONS = frozenset(
    {
        FaultAction.COMMAND_ERROR,
        FaultAction.ENGINE_CRASH,
        FaultAction.RANK_CRASH,
    }
)

#: Granularity of injected sleeps; stalled threads re-check for engine
#: death at this period so an aborted engine is never wedged for longer
#: than one slice past its stall budget.
_SLEEP_SLICE = 5e-3


@dataclass
class FaultRule:
    """One scoped fault.

    Parameters
    ----------
    action:
        A :class:`FaultAction` (or its string value).
    rank:
        Rank the fault manifests on (message rules: the *destination*
        rank; ``None`` matches every rank).
    peer:
        Message rules: the source rank; command rules: the command's
        peer (dest/source/root).  ``None`` matches any.
    kind:
        Message rules: envelope kind name (``"eager"``, ``"rts"``,
        ``"cts"``, ``"rma"``); command rules: command kind name
        (``"isend"``, ``"allreduce"``, ...).  ``None`` matches any.
    tag:
        Message/command tag filter (``None`` matches any).
    after:
        Skip this many eligible events before injecting anything —
        "crash at command index N" is ``after=N``.
    count:
        Maximum number of injections (``None`` = unlimited).
    probability:
        Chance an eligible event is faulted, drawn from the plan's
        seeded RNG.
    delay:
        DELAY rules: seconds the message is held back.
    duration:
        SLOW_RANK / STALL rules: seconds slept per injection.
    error:
        COMMAND_ERROR rules: message for the raised
        :class:`TransientFaultError` (or a zero-arg exception factory).
    rule_id:
        Stable identifier stamped onto injected exceptions (and, for
        RANK_CRASH rules, carried into the substrate's
        :class:`~repro.mpisim.exceptions.RankDeadError` messages), so a
        failure observed deep in a chaos run names the rule that caused
        it.  Auto-assigned as ``"r<index>:<action>"`` when the rule is
        added to a plan without one.
    """

    action: FaultAction
    rank: int | None = None
    peer: int | None = None
    kind: str | None = None
    tag: int | None = None
    after: int = 0
    count: int | None = 1
    probability: float = 1.0
    delay: float = 0.0
    duration: float = 0.0
    error: str | Callable[[], BaseException] | None = None
    rule_id: str | None = None
    # -- per-rule state (managed by the plan, under its lock) ----------
    seen: int = field(default=0, repr=False)
    hits: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if not isinstance(self.action, FaultAction):
            self.action = FaultAction(self.action)
        if self.kind is not None:
            self.kind = self.kind.lower()

    # NOTE: callers hold the plan lock for seen/hits accounting.
    def _matches_scope(
        self,
        rank: int,
        peer: int | None,
        kind: str,
        tag: int | None,
    ) -> bool:
        if self.rank is not None and rank != self.rank:
            return False
        if self.peer is not None and peer != self.peer:
            return False
        if self.kind is not None and kind != self.kind:
            return False
        if self.tag is not None and tag != self.tag:
            return False
        return True

    def _fire(self, rng: Random) -> bool:
        """Eligible event observed: does the fault fire? (lock held)"""
        if self.count is not None and self.hits >= self.count:
            return False
        self.seen += 1
        if self.seen <= self.after:
            return False
        if self.probability < 1.0 and rng.random() >= self.probability:
            return False
        self.hits += 1
        return True

    def make_error(self) -> BaseException:
        if callable(self.error):
            exc = self.error()
        else:
            msg = self.error or f"injected fault ({self.action.value})"
            exc = TransientFaultError(msg)
        if getattr(exc, "rule_id", None) is None:
            exc.rule_id = self.rule_id
        return exc


class FaultPlan:
    """An ordered set of :class:`FaultRule`\\ s with a seeded RNG.

    Install on a world with :meth:`World.install_faults
    <repro.mpisim.world.World.install_faults>` (or pass ``faults=`` to
    :class:`~repro.core.engine.OffloadEngine` /
    :func:`~repro.core.interpose.offloaded` for engine-only scope).

    For each event, the *first* matching rule that fires wins; later
    rules are not consulted for that event.  Injection counts are kept
    both per rule (``rule.hits``) and in :attr:`counters` (an
    :class:`repro.obs.counters.Counters`: ``faults_injected`` plus one
    ``fault_<action>`` counter per action).
    """

    def __init__(
        self, rules: "list[FaultRule] | tuple[FaultRule, ...]" = (), seed: int = 0
    ) -> None:
        self.rules: list[FaultRule] = list(rules)
        for i, rule in enumerate(self.rules):
            if rule.rule_id is None:
                rule.rule_id = f"r{i}:{rule.action.value}"
        self.seed = seed
        self._rng = Random(seed)
        self._lock = threading.Lock()
        self.counters = Counters()
        #: delayed messages: (release_time, dst, envelope)
        self._delayed: list[tuple[float, int, Envelope]] = []
        self._world: "World | None" = None

    # ------------------------------------------------------------ setup

    def add(self, rule: FaultRule) -> "FaultPlan":
        if rule.rule_id is None:
            rule.rule_id = f"r{len(self.rules)}:{rule.action.value}"
        self.rules.append(rule)
        return self

    def bind(self, world: "World") -> None:
        """Called by :meth:`World.install_faults`."""
        self._world = world

    # ------------------------------------------------------------ stats

    def stats(self) -> dict[str, int]:
        """Merged injection counters (``faults_injected`` et al.)."""
        return self.counters.snapshot()

    @property
    def faults_injected(self) -> int:
        return self.counters.get("faults_injected")

    def _count(self, action: FaultAction, engine: "OffloadEngine | None" = None) -> None:
        self.counters.inc("faults_injected")
        self.counters.inc(f"fault_{action.value}")
        if engine is not None and engine.telemetry is not None:
            engine.telemetry.counters.inc("faults_injected")

    # ------------------------------------------------------ hook: deliver

    def on_deliver(
        self, dst: int, env: Envelope
    ) -> list[tuple[int, Envelope]]:
        """Message-scope faults; returns the deliveries to perform now.

        ``[]`` means dropped (or held back for later release via
        :meth:`on_progress`); two entries mean the message was
        duplicated (EAGER only — control envelopes carry request
        references whose duplication would double-complete them).
        """
        kind = env.kind.value
        with self._lock:
            for rule in self.rules:
                if rule.action not in MESSAGE_ACTIONS:
                    continue
                if rule.action is FaultAction.DUPLICATE and (
                    env.kind is not EnvelopeKind.EAGER
                ):
                    continue
                if not rule._matches_scope(dst, env.src, kind, env.tag):
                    continue
                if not rule._fire(self._rng):
                    continue
                self._count(rule.action)
                if rule.action is FaultAction.DROP:
                    # Eager data is lost in transit *after* leaving the
                    # sender: complete any zero-copy send request so the
                    # sender does not wait forever on a match that can
                    # never happen (classic eager sends completed at
                    # post time; this preserves that semantics).
                    self._complete_eager_sends(env)
                    return []
                if rule.action is FaultAction.DELAY:
                    release = time.perf_counter() + rule.delay
                    self._delayed.append((release, dst, env))
                    return []
                # DUPLICATE: the duplicate must own its bytes.  A
                # zero-copy EAGER envelope carries a *borrowed* view of
                # the sender's live user buffer plus the sender's
                # pending request — sharing the envelope would alias
                # the user buffer (late match reads post-reuse data)
                # and double-complete the request.  Owned payloads can
                # still share (the receiver copies out on each match).
                return [(dst, env), (dst, self._duplicate(env))]
        return [(dst, env)]

    @staticmethod
    def _complete_eager_sends(env: Envelope) -> None:
        """Complete pending zero-copy eager send requests on ``env``."""
        if env.kind is EnvelopeKind.EAGER:
            if env.send_req is not None and not env.send_req.done:
                env.send_req._complete(EMPTY_STATUS)
        elif env.kind is EnvelopeKind.COALESCED and env.parts:
            for part in env.parts:
                if part.send_req is not None and not part.send_req.done:
                    part.send_req._complete(EMPTY_STATUS)

    def _duplicate(self, env: Envelope) -> Envelope:
        """A safe second delivery of an EAGER envelope.

        Borrowed :class:`BufferRef` payloads are deep-copied (one
        materialization, counted in ``duplicate_deep_copies``) and the
        send-request reference is stripped: the original envelope alone
        completes the sender.
        """
        payload = env.payload
        if isinstance(payload, BufferRef) and not payload.owned:
            payload = payload.materialize()
            self.counters.inc("duplicate_deep_copies")
        if payload is env.payload and env.send_req is None:
            # Owned payload, no request reference: sharing the envelope
            # object is safe (pre-zero-copy behavior, unchanged).
            return env
        return Envelope(
            kind=env.kind,
            src=env.src,
            dst=env.dst,
            context_id=env.context_id,
            tag=env.tag,
            nbytes=env.nbytes,
            payload=payload,
        )

    # ----------------------------------------------------- hook: progress

    def on_progress(self, engine: "ProgressEngine") -> list[Envelope]:
        """Progress-scope faults for ``engine.rank``.

        Applies straggler/stall sleeps (called under the library lock,
        so a stall wedges the rank) and returns any delayed messages
        destined to this rank whose release time has passed.
        """
        rank = engine.rank
        matured: list[Envelope] = []
        sleep_for = 0.0
        action: FaultAction | None = None
        with self._lock:
            if self._delayed:
                now = time.perf_counter()
                keep: list[tuple[float, int, Envelope]] = []
                for item in self._delayed:
                    release, dst, env = item
                    if dst == rank and release <= now:
                        matured.append(env)
                    else:
                        keep.append(item)
                self._delayed = keep
            for rule in self.rules:
                if rule.action not in PROGRESS_ACTIONS:
                    continue
                if not rule._matches_scope(rank, None, "", None):
                    continue
                if not rule._fire(self._rng):
                    continue
                self._count(rule.action)
                sleep_for = rule.duration
                action = rule.action
                break
        if sleep_for > 0.0:
            self._interruptible_sleep(sleep_for, None)
        if action is not None and engine.trace is not None:
            engine.trace.append(f"fault:{action.value}", rank=rank)
        return matured

    # ------------------------------------------------------ hook: command

    def on_command(
        self, engine: "OffloadEngine", cmd: "Command"
    ) -> BaseException | None:
        """Command-scope faults, called by the engine pre-dispatch.

        Returns a transient error to fail (or retry) the command with,
        raises :class:`InjectedCrash` to kill the engine thread, or
        returns ``None`` to let the command through.
        """
        rank = engine.comm.engine.rank
        kind = cmd.kind.name.lower()
        with self._lock:
            for rule in self.rules:
                if rule.action not in COMMAND_ACTIONS:
                    continue
                if not rule._matches_scope(rank, cmd.peer, kind, cmd.tag):
                    continue
                if not rule._fire(self._rng):
                    continue
                self._count(rule.action, engine)
                action = rule.action
                break
            else:
                return None
        if action is FaultAction.COMMAND_ERROR:
            return rule.make_error()
        if action is FaultAction.RANK_CRASH and self._world is not None:
            death = InjectedCrash(f"rank {rank} crashed (injected)")
            death.rule_id = rule.rule_id
            self._world.mark_rank_dead(rank, death)
        crash = InjectedCrash(
            f"offload thread of rank {rank} crashed at command "
            f"#{engine.commands_processed} ({kind}) [injected]"
        )
        crash.rule_id = rule.rule_id
        raise crash

    # ------------------------------------------------------------ helpers

    @staticmethod
    def _interruptible_sleep(
        duration: float, engine: "OffloadEngine | None"
    ) -> None:
        """Sleep in slices, bailing early if ``engine`` was killed."""
        deadline = time.perf_counter() + duration
        while True:
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                return
            if engine is not None and engine.dead is not None:
                return
            time.sleep(min(_SLEEP_SLICE, remaining))

    def pending_delayed(self) -> int:
        """Number of messages currently held back by DELAY rules."""
        with self._lock:
            return len(self._delayed)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FaultPlan(seed={self.seed}, rules={len(self.rules)}, "
            f"injected={self.faults_injected})"
        )
