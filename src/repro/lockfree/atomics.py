"""Atomic primitives emulated on CPython.

Real lock-free code is built from hardware compare-and-swap (CAS) and
fetch-and-add.  CPython exposes neither, so these classes make each
*individual* operation atomic with a private ``threading.Lock`` while
preserving the semantics the algorithms above them rely on:

* a CAS either observes the expected value and installs the new one, or
  fails and returns the value actually observed;
* no cell lock is ever held across a call into user code or another
  cell, so composite operations retain their lock-free structure
  (progress of one thread never depends on a suspended peer holding a
  lock across steps — only on winning a CAS race);
* every failed CAS is counted, giving the ablation benchmarks a direct
  window on contention.

Every operation is additionally a **DST yield point**
(:mod:`repro.dst.hooks`): when a deterministic-simulation scheduler is
installed, the interleaving of loads/stores/CAS attempts across its
virtual threads becomes an explicit, seeded scheduler choice.  With no
scheduler installed — the normal case — each hook is one module
attribute read plus an ``is None`` check.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Generic, TypeVar

from repro.dst import hooks as _dst

T = TypeVar("T")

_cell_ids = itertools.count()


class AtomicCell(Generic[T]):
    """A single word supporting load/store/CAS/swap.

    Values are compared by identity-or-equality (``is`` first, then
    ``==``) which matches how pointer-width CAS behaves for both tagged
    tuples and object references.
    """

    __slots__ = ("_lock", "_value", "cas_failures", "_id")

    def __init__(self, value: T) -> None:
        self._lock = threading.Lock()
        self._value: T = value
        self.cas_failures = 0
        self._id = next(_cell_ids)

    def load(self) -> T:
        if _dst._scheduler is not None:
            _dst.yield_point("cell.load")
        # CPython attribute reads are atomic under the GIL; take the
        # lock anyway so the class stays correct on free-threaded builds.
        with self._lock:
            return self._value

    def store(self, value: T) -> None:
        if _dst._scheduler is not None:
            _dst.yield_point("cell.store")
        with self._lock:
            self._value = value

    def swap(self, value: T) -> T:
        if _dst._scheduler is not None:
            _dst.yield_point("cell.swap")
        with self._lock:
            old = self._value
            self._value = value
            return old

    def compare_and_swap(self, expected: T, new: T) -> tuple[bool, T]:
        """Atomically install ``new`` if the cell holds ``expected``.

        Returns ``(True, expected)`` on success or ``(False, observed)``
        on failure, mirroring C11 ``atomic_compare_exchange``.
        """
        if _dst._scheduler is not None:
            _dst.yield_point("cell.cas")
        with self._lock:
            cur = self._value
            if cur is expected or cur == expected:
                self._value = new
                return True, cur
            self.cas_failures += 1
            return False, cur

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"AtomicCell#{self._id}({self._value!r})"


class AtomicCounter:
    """Monotonic counter with fetch-and-add and CAS."""

    __slots__ = ("_lock", "_value", "cas_failures")

    def __init__(self, value: int = 0) -> None:
        self._lock = threading.Lock()
        self._value = value
        self.cas_failures = 0

    def load(self) -> int:
        if _dst._scheduler is not None:
            _dst.yield_point("counter.load")
        with self._lock:
            return self._value

    def fetch_add(self, delta: int = 1) -> int:
        """Add ``delta`` and return the *previous* value."""
        if _dst._scheduler is not None:
            _dst.yield_point("counter.fetch_add")
        with self._lock:
            old = self._value
            self._value = old + delta
            return old

    def compare_and_swap(self, expected: int, new: int) -> tuple[bool, int]:
        if _dst._scheduler is not None:
            _dst.yield_point("counter.cas")
        with self._lock:
            cur = self._value
            if cur == expected:
                self._value = new
                return True, cur
            self.cas_failures += 1
            return False, cur

    def store(self, value: int) -> None:
        if _dst._scheduler is not None:
            _dst.yield_point("counter.store")
        with self._lock:
            self._value = value


class AtomicFlag:
    """A set-once *done* flag with busy-wait support.

    Models the per-command completion flag of Section 3.1: the offload
    thread sets it, the application thread spins on it.  ``wait()``
    spins but yields the GIL periodically (via an Event fallback) so
    single-core test runs cannot livelock.
    """

    __slots__ = ("_event", "payload")

    def __init__(self) -> None:
        self._event = threading.Event()
        self.payload: Any = None

    def is_set(self) -> bool:
        return self._event.is_set()

    def set(self, payload: Any = None) -> None:
        self.payload = payload
        self._event.set()

    def wait(self, timeout: float | None = None) -> bool:
        """Spin briefly, then block; returns True once the flag is set."""
        # Under DST the wait becomes a cooperative block on the
        # scheduler (a real Event.wait would wedge every virtual
        # thread); foreign threads fall through to the normal path.
        if _dst._scheduler is not None and _dst.flag_wait(self._event.is_set):
            return True
        # A short pure spin picks up fast completions with minimum
        # latency (the common case for offloaded calls) ...
        for _ in range(1000):
            if self._event.is_set():
                return True
        # ... then fall back to a real wait so we do not starve the
        # offload thread of the GIL.
        return self._event.wait(timeout)

    def clear(self) -> None:
        self.payload = None
        self._event.clear()
