"""Single-producer / single-consumer ring buffer.

Used on the ``MPI_THREAD_FUNNELED`` / ``SERIALIZED`` fast path (paper
Section 3.1, Figure 1): with exactly one application thread talking to
the offload thread, no CAS at all is required — a classic Lamport ring
with head/tail indices suffices, which is why the paper's offload
enqueue costs only ~140 ns.
"""

from __future__ import annotations

from typing import Any, Generic, TypeVar

from repro.dst import hooks as _dst

T = TypeVar("T")


class SPSCRing(Generic[T]):
    """Wait-free bounded ring for one producer and one consumer.

    Head is written only by the consumer, tail only by the producer;
    both are plain ints (GIL-atomic).  The ring holds at most
    ``capacity - 1`` items so full/empty are distinguishable without a
    counter shared between the two sides.
    """

    __slots__ = ("_buf", "_capacity", "_head", "_tail")

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 2 or capacity & (capacity - 1):
            raise ValueError("capacity must be a power of two >= 2")
        self._capacity = capacity
        self._buf: list[Any] = [None] * capacity
        self._head = 0  # next slot to read  (consumer-owned)
        self._tail = 0  # next slot to write (producer-owned)

    @property
    def capacity(self) -> int:
        """Usable capacity (one slot is sacrificed to disambiguate full)."""
        return self._capacity - 1

    def try_enqueue(self, value: T) -> bool:
        if _dst._scheduler is not None:
            _dst.yield_point("ring.enqueue.read_head")
        tail = self._tail
        nxt = (tail + 1) & (self._capacity - 1)
        if nxt == self._head:
            return False  # full
        self._buf[tail] = value
        if _dst._scheduler is not None:
            _dst.yield_point("ring.enqueue.publish")
        self._tail = nxt  # publish
        return True

    def try_dequeue(self) -> tuple[bool, T | None]:
        if _dst._scheduler is not None:
            _dst.yield_point("ring.dequeue.read_tail")
        head = self._head
        if head == self._tail:
            return False, None  # empty
        value = self._buf[head]
        self._buf[head] = None
        if _dst._scheduler is not None:
            _dst.yield_point("ring.dequeue.publish")
        self._head = (head + 1) & (self._capacity - 1)
        return True, value

    def __len__(self) -> int:
        return (self._tail - self._head) & (self._capacity - 1)

    def empty(self) -> bool:
        return self._head == self._tail
