"""Bounded multi-producer queue (Vyukov algorithm).

This is the offload engine's command queue (paper Section 3.1/3.3):
application threads — possibly many of them, under
``MPI_THREAD_MULTIPLE`` — enqueue serialized MPI commands; the single
offload thread dequeues them.

The implementation is Dmitry Vyukov's bounded MPMC queue specialized
for one consumer: a circular array of cells, each carrying a sequence
number.  A producer claims a slot by CAS on the enqueue ticket, writes
its payload, then publishes by advancing the cell's sequence.  The
consumer reads cells in ticket order, waiting only on the *publication*
of the specific cell it needs.  ABA is impossible because sequence
numbers increase monotonically (by ``capacity`` per wrap).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Generic, TypeVar

from repro.dst import hooks as _dst
from repro.lockfree.atomics import AtomicCell, AtomicCounter

T = TypeVar("T")

#: Placeholder published by a producer that won its enqueue CAS but then
#: observed the queue closed: the ring cell must still be published (the
#: consumer reads cells in strict ticket order), but the value must not
#: be delivered.  Tombstones never touch enqueue/dequeue counts.
_TOMBSTONE = object()


class QueueFull(Exception):
    """Raised by :meth:`MPSCQueue.enqueue` when the ring has no free slot."""


class QueueClosed(Exception):
    """Raised when enqueueing to a closed queue."""


class _Cell:
    __slots__ = ("seq", "value")

    def __init__(self, seq: int) -> None:
        self.seq = seq  # published via GIL-atomic attribute store
        self.value: Any = None


class MPSCQueue(Generic[T]):
    """Lock-free bounded queue, many producers / one consumer.

    ``capacity`` must be a power of two (mask indexing, as in the C
    original).  ``enqueue`` never blocks: on a full ring it raises
    :class:`QueueFull` so callers can implement backpressure — the
    offload library retries with progress, mirroring how a real
    implementation would flow-control a flooding application thread.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity <= 0 or capacity & (capacity - 1):
            raise ValueError("capacity must be a positive power of two")
        self._mask = capacity - 1
        self._cells = [_Cell(i) for i in range(capacity)]
        self._enqueue_pos = AtomicCounter(0)
        self._dequeue_pos = 0  # single consumer: plain int
        self._closed = False
        self.enqueue_count = AtomicCounter(0)
        self.dequeue_count = 0
        #: telemetry hook: when True, successful enqueues update the
        #: occupancy high-water mark (off by default — zero overhead)
        self.track_occupancy = False
        self.occupancy_hwm = 0
        #: DST-only regression hook: when True, a producer that wins its
        #: enqueue CAS skips the post-CAS ``closed`` re-check — the exact
        #: close/enqueue race fixed in the lifecycle-hardening PR.  Only
        #: ever set by the regression corpus (repro.dst.targets), never
        #: by production code.
        self._unsafe_skip_close_recheck = False
        # --- work-stealing extension (engine-pool PR) ---------------
        # Off by default: a plain MPSCQueue keeps the single-consumer
        # fast path with zero extra synchronization.  enable_steal()
        # arms the consumer-side claim so sibling engines may remove
        # batches from the ring front (see steal_drain for the
        # protocol and its ordering argument).
        self._steal = False
        #: consumer claim: which thread currently owns the dequeue side
        #: (the ring owner draining, a thief stealing, or the closer's
        #: final drain).  Only consulted when stealing is enabled.
        self._claim: AtomicCell[int | None] = AtomicCell(None)
        #: owner-written: True while the owner engine is dispatching a
        #: batch it drained from this ring; thieves must not steal then
        #: or the stolen batch could be issued before the older one.
        self.dispatch_busy = False
        #: thief-written (always under the claim): number of stolen
        #: batches not yet fully issued by their thief (0 or 1 — at
        #: most one outstanding stolen batch per ring).
        self.steal_pending = 0
        #: queue-side steal telemetry
        self.steals = 0
        self.steal_batch_hwm = 0
        #: DST-only regression hooks for the stealing protocol.
        #: ``skip_claim``: the thief bypasses the consumer claim (and
        #: the closed check), racing the owner's dequeue cursor — the
        #: structural duplicate/loss race.  ``skip_busy_check``: the
        #: thief honors the claim but ignores dispatch_busy /
        #: steal_pending, so a stolen batch can be issued while an
        #: older batch is still mid-dispatch — the ordering race.
        self._unsafe_steal_skip_claim = False
        self._unsafe_steal_skip_busy_check = False

    @property
    def capacity(self) -> int:
        return self._mask + 1

    @property
    def cas_failures(self) -> int:
        """Total failed enqueue CAS attempts (a contention metric)."""
        return self._enqueue_pos.cas_failures

    def close(self) -> None:
        """Reject future enqueues; already-queued items remain drainable.

        Closing is half of a two-step teardown protocol: the consumer
        calls ``close()`` and then :meth:`drain_closed`, which collects
        every item whose enqueue ticket was claimed before the drain
        began.  A producer that wins its enqueue CAS concurrently with
        the close re-checks ``closed`` *after* the CAS and publishes a
        tombstone instead of its value, raising :class:`QueueClosed` —
        so every submitted item is either drained exactly once or
        rejected with a typed error, never silently dropped.
        """
        if _dst._scheduler is not None:
            _dst.yield_point("queue.close")
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def enqueue(self, value: T) -> None:
        """Insert ``value``; raises :class:`QueueFull` / :class:`QueueClosed`.

        Lock-free: the loop below only repeats when another producer won
        the CAS race for the same ticket.
        """
        if _dst._scheduler is not None:
            _dst.yield_point("queue.enqueue.closed_check")
        if self._closed:
            raise QueueClosed("command queue is closed")
        while True:
            pos = self._enqueue_pos.load()
            cell = self._cells[pos & self._mask]
            dif = cell.seq - pos
            if dif == 0:
                ok, _ = self._enqueue_pos.compare_and_swap(pos, pos + 1)
                if ok:
                    # This is the close/enqueue race window: the ticket
                    # is claimed but nothing is published yet, so a
                    # concurrent close()+drain_closed() can run here.
                    if _dst._scheduler is not None:
                        _dst.yield_point("queue.enqueue.post_cas")
                    if self._closed and not self._unsafe_skip_close_recheck:
                        # Lost the race against close(): the consumer's
                        # final drain may already have run, so this cell
                        # might never be read again.  Publish a
                        # tombstone (the ring must stay well-formed) and
                        # reject, rather than lose the item.
                        cell.value = _TOMBSTONE
                        cell.seq = pos + 1
                        raise QueueClosed(
                            "command queue closed during enqueue"
                        )
                    cell.value = value
                    if _dst._scheduler is not None:
                        _dst.yield_point("queue.enqueue.publish")
                    cell.seq = pos + 1  # publish
                    self.enqueue_count.fetch_add(1)
                    if self.track_occupancy:
                        # best-effort (racy reads are fine for a hwm)
                        occ = len(self)
                        if occ < 1:
                            # We *just* published, so true occupancy was
                            # >= 1 at that instant; a racing drain can
                            # hide it from the sampled read.
                            occ = 1
                        if occ > self.occupancy_hwm:
                            self.occupancy_hwm = occ
                    return
            elif dif < 0:
                raise QueueFull(
                    f"command queue full (capacity={self.capacity})"
                )
            # dif > 0: another producer advanced the ticket; retry.

    def try_dequeue(self) -> tuple[bool, T | None]:
        """Single-consumer dequeue; returns ``(False, None)`` when empty."""
        while True:
            if _dst._scheduler is not None:
                _dst.yield_point("queue.dequeue")
            pos = self._dequeue_pos
            cell = self._cells[pos & self._mask]
            if cell.seq - (pos + 1) != 0:
                return False, None
            value = cell.value
            cell.value = None  # drop the reference promptly
            cell.seq = pos + self._mask + 1  # recycle the slot
            self._dequeue_pos = pos + 1
            if value is _TOMBSTONE:
                # A producer rejected by a concurrent close() published
                # this placeholder; it was never counted as an enqueue.
                continue
            self.dequeue_count += 1
            return True, value

    def drain(self, limit: int | None = None) -> list[T]:
        """Dequeue up to ``limit`` items (all available when ``None``).

        With stealing enabled this is the *owner's* batch removal: it
        runs under the consumer claim, refuses to hand out a batch
        while a stolen one is still in issue (``steal_pending``), and
        marks the ring ``dispatch_busy`` until the owner acknowledges
        issue completion via :meth:`consume_done`.  Together those two
        flags guarantee at most one batch from this ring is in issue
        at any time, in ring order — the pool's ordering invariant.
        """
        if not self._steal:
            return self._drain_some(limit)
        self._acquire_claim()
        try:
            if self.steal_pending:
                # A thief holds the ring's oldest batch; issuing a
                # newer one now would reorder the stream.
                return []
            out = self._drain_some(limit)
            if out:
                self.dispatch_busy = True
            return out
        finally:
            self._release_claim()

    def _drain_some(self, limit: int | None) -> list[T]:
        out: list[T] = []
        while limit is None or len(out) < limit:
            ok, value = self.try_dequeue()
            if not ok:
                break
            out.append(value)  # type: ignore[arg-type]
        return out

    # -- work-stealing protocol ------------------------------------

    def enable_steal(self) -> None:
        """Arm the consumer-side claim so siblings may steal batches."""
        self._steal = True

    def consume_done(self) -> None:
        """Owner: the batch last returned by :meth:`drain` is fully
        issued.  Unconditional clear — cheap enough to call after every
        batch, even when nothing was drained."""
        self.dispatch_busy = False

    def steal_done(self) -> None:
        """Thief: the stolen batch is fully issued (or terminally
        failed); the owner may hand out batches again."""
        if _dst._scheduler is not None:
            _dst.yield_point("queue.steal.done")
        self.steal_pending = max(0, self.steal_pending - 1)

    def steal_drain(
        self,
        limit: int | None = None,
        stop: Callable[[T], bool] | None = None,
    ) -> list[T]:
        """Thief-side batch removal from the ring front.

        Returns ``[]`` unless the steal is *safe*: stealing is enabled,
        the queue is not closed (a closing owner runs its own final
        drain), the consumer claim is free (single try — thieves never
        spin against the owner), the owner is not mid-dispatch
        (``dispatch_busy``) and no other stolen batch is outstanding
        (``steal_pending``).  Items matching ``stop`` — the pool passes
        a predicate for control commands (SHUTDOWN/FLUSH), which must
        execute on their own engine — end the batch *before* the
        matching item.  A non-empty steal sets ``steal_pending``; the
        thief must call :meth:`steal_done` when the batch is terminal.
        """
        if not self._steal:
            return []
        if self._unsafe_steal_skip_claim:
            # DST regression hook: race the owner's dequeue cursor
            # directly (no claim, no closed check).
            return self._steal_scan(limit, stop)
        if self._closed:
            return []
        if not self._try_claim():
            return []
        try:
            if not self._unsafe_steal_skip_busy_check and (
                self.dispatch_busy or self.steal_pending
            ):
                return []
            if self._closed:
                # Re-check under the claim: close()+drain_closed() may
                # have raced in before we acquired it.
                return []
            return self._steal_scan(limit, stop)
        finally:
            self._release_claim()

    def _steal_scan(
        self,
        limit: int | None,
        stop: Callable[[T], bool] | None,
    ) -> list[T]:
        """Remove published items from the ring front (claim held,
        except under the DST skip-claim hook)."""
        out: list[T] = []
        while limit is None or len(out) < limit:
            if _dst._scheduler is not None:
                _dst.yield_point("queue.steal.scan")
            pos = self._dequeue_pos
            cell = self._cells[pos & self._mask]
            if cell.seq - (pos + 1) != 0:
                break  # next cell unpublished: end of stealable prefix
            value = cell.value
            if (
                value is not _TOMBSTONE
                and stop is not None
                and stop(value)
            ):
                break
            if _dst._scheduler is not None:
                _dst.yield_point("queue.steal.commit")
            cell.value = None
            cell.seq = pos + self._mask + 1  # recycle the slot
            self._dequeue_pos = pos + 1
            if value is _TOMBSTONE:
                continue
            self.dequeue_count += 1
            out.append(value)  # type: ignore[arg-type]
        if out:
            self.steal_pending += 1
            self.steals += 1
            if len(out) > self.steal_batch_hwm:
                self.steal_batch_hwm = len(out)
        return out

    def _try_claim(self) -> bool:
        """One CAS attempt on the consumer claim (thief path)."""
        ok, _ = self._claim.compare_and_swap(None, threading.get_ident())
        return ok

    def _acquire_claim(self) -> None:
        """Spin until the consumer claim is ours (owner/closer path).

        Claim holders only run short bounded sections (a batch removal
        or the final drain), so the spin is brief; under DST the wait
        parks on the claim's release instead of branching the schedule
        tree on every failed CAS.
        """
        while True:
            ok, _ = self._claim.compare_and_swap(
                None, threading.get_ident()
            )
            if ok:
                return
            if _dst.is_virtual_thread():
                claim = self._claim
                _dst.wait_until(lambda: claim._value is None)
            else:
                time.sleep(0)

    def _release_claim(self) -> None:
        self._claim.store(None)

    def drain_closed(self, spin_timeout: float = 1.0) -> list[T]:
        """Final drain after :meth:`close`: every committed item.

        Snapshots the enqueue ticket *after* the close, so it covers
        every producer that won its CAS before this call.  A producer
        inside the few-instruction window between winning the CAS and
        publishing its cell is waited out (bounded by ``spin_timeout``
        as a wedged-producer backstop); tombstones from producers that
        observed the close are skipped by ``try_dequeue``.

        With stealing enabled the final drain runs under the consumer
        claim, so it cannot race a thief's scan over the same cells.
        A still-outstanding stolen batch (``steal_pending``) is *not*
        waited for: those items already left the ring and are the
        thief's responsibility to complete or terminally fail.
        """
        assert self._closed, "drain_closed() requires close() first"
        if not self._steal:
            return self._drain_closed_inner(spin_timeout)
        self._acquire_claim()
        try:
            return self._drain_closed_inner(spin_timeout)
        finally:
            self._release_claim()

    def _drain_closed_inner(self, spin_timeout: float) -> list[T]:
        if _dst._scheduler is not None:
            _dst.yield_point("queue.drain.snapshot")
        end = self._enqueue_pos.load()
        out: list[T] = []
        deadline: float | None = None
        while self._dequeue_pos < end:
            ok, value = self.try_dequeue()
            if ok:
                out.append(value)  # type: ignore[arg-type]
                deadline = None
                continue
            if self._dequeue_pos >= end:
                break
            # Claimed but not yet published: publication is imminent.
            if _dst.is_virtual_thread():
                # Under DST the wall clock is meaningless (a parked
                # producer can sit unpublished for arbitrarily many
                # scheduler steps); block on the cell's publication
                # instead of spinning — a blocked thread is not a
                # schedule branch point, so exhaustive exploration
                # stays finite.  Every claimed ticket publishes a
                # value or a tombstone, so this cannot deadlock.
                pos = self._dequeue_pos
                cell = self._cells[pos & self._mask]
                want = pos + 1
                _dst.wait_until(lambda: cell.seq == want)
                continue
            now = time.perf_counter()
            if deadline is None:
                deadline = now + spin_timeout
            elif now > deadline:  # pragma: no cover - wedged producer
                break
            time.sleep(0)
        return out

    def __len__(self) -> int:
        """Approximate occupancy (exact when producers are quiescent).

        The dequeue side is read *first*: between the two reads the
        single consumer can only drain further, so reading it second
        would transiently under-report (the flappy-``occupancy_hwm``
        bug).  Read this way the result is an over-estimate during
        races, clamped to the ring's structural bounds.
        """
        dequeued = self.dequeue_count
        n = self.enqueue_count.load() - dequeued
        return max(0, min(n, self.capacity))

    def empty(self) -> bool:
        return len(self) == 0
