"""Lock-free data structures used by the MPI offload engine.

The paper (Section 3.3) converts the offload thread's command queue and
the pool of ``MPI_Request`` objects into lock-free structures using
atomic operations, so many application threads can issue MPI calls
concurrently without mutual exclusion in the MPI library.

CPython has no public compare-and-swap, so :mod:`repro.lockfree.atomics`
provides CAS cells whose individual operations are made atomic with a
per-cell lock.  The *algorithms* built on top (Vyukov bounded queue,
tagged Treiber free list) are the genuine lock-free algorithms: no
thread ever holds a lock across another structure operation, every
operation is a bounded sequence of atomic steps, and contention shows
up as CAS retries (which the cells count), exactly as it would on real
hardware.
"""

from repro.lockfree.atomics import AtomicCell, AtomicCounter, AtomicFlag
from repro.lockfree.mpsc_queue import MPSCQueue, QueueClosed, QueueFull
from repro.lockfree.spsc_ring import SPSCRing
from repro.lockfree.freelist import FreeList, FreeListExhausted

__all__ = [
    "AtomicCell",
    "AtomicCounter",
    "AtomicFlag",
    "MPSCQueue",
    "QueueClosed",
    "QueueFull",
    "SPSCRing",
    "FreeList",
    "FreeListExhausted",
]
