"""Array-based lock-free free list for request slots.

Paper Section 3.1: nonblocking offloaded calls must return an
``MPI_Request`` handle *before* the offload thread has issued the real
MPI call, so the library pre-allocates an array of request objects and
"maintains this pool as an array-based singly linked list in order to
minimize allocation and free time".

This is exactly that structure: slot ``i``'s ``next`` pointer lives in
an integer array; the list head is a tagged ``(index, version)`` pair
in an :class:`~repro.lockfree.atomics.AtomicCell` (a Treiber stack with
a version tag to defeat ABA).  ``alloc`` pops a slot index, ``free``
pushes one back; both are O(1) and CAS-retry only under contention.
"""

from __future__ import annotations

from typing import Generic, TypeVar

from repro.lockfree.atomics import AtomicCell

T = TypeVar("T")

_NIL = -1


class FreeListExhausted(Exception):
    """Raised by :meth:`FreeList.alloc` when all slots are in use."""


class FreeList(Generic[T]):
    """Fixed pool of ``capacity`` slots with lock-free alloc/free.

    ``slots[i]`` holds the user payload for slot ``i`` (e.g. the backing
    request record); the pool never allocates after construction.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._capacity = capacity
        # next-pointers of the singly linked list through the array
        self._next = list(range(1, capacity)) + [_NIL]
        # tagged head: (slot index, version)
        self._head: AtomicCell[tuple[int, int]] = AtomicCell((0, 0))
        self.slots: list[T | None] = [None] * capacity
        self._allocated = 0  # approximate, for introspection only

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def allocated(self) -> int:
        """Approximate number of live slots (exact when quiescent)."""
        return self._allocated

    def alloc(self) -> int:
        """Pop a free slot index; raises :class:`FreeListExhausted`."""
        while True:
            head = self._head.load()
            idx, version = head
            if idx == _NIL:
                raise FreeListExhausted(
                    f"request pool exhausted (capacity={self._capacity})"
                )
            nxt = self._next[idx]
            ok, _ = self._head.compare_and_swap(head, (nxt, version + 1))
            if ok:
                self._allocated += 1
                return idx

    def free(self, idx: int) -> None:
        """Push slot ``idx`` back onto the free list."""
        if not 0 <= idx < self._capacity:
            raise IndexError(f"slot index {idx} out of range")
        self.slots[idx] = None
        while True:
            head = self._head.load()
            cur, version = head
            self._next[idx] = cur
            ok, _ = self._head.compare_and_swap(head, (idx, version + 1))
            if ok:
                self._allocated -= 1
                return

    def free_count(self) -> int:
        """Walk the free list and count slots (diagnostic; not atomic)."""
        n = 0
        idx = self._head.load()[0]
        seen = set()
        while idx != _NIL:
            if idx in seen:  # pragma: no cover - corruption detector
                raise RuntimeError("cycle detected in free list")
            seen.add(idx)
            n += 1
            idx = self._next[idx]
        return n
