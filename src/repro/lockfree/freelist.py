"""Array-based lock-free free list for request slots.

Paper Section 3.1: nonblocking offloaded calls must return an
``MPI_Request`` handle *before* the offload thread has issued the real
MPI call, so the library pre-allocates an array of request objects and
"maintains this pool as an array-based singly linked list in order to
minimize allocation and free time".

This is exactly that structure: slot ``i``'s ``next`` pointer lives in
an integer array; the list head is a tagged ``(index, version)`` pair
in an :class:`~repro.lockfree.atomics.AtomicCell` (a Treiber stack with
a version tag to defeat ABA).  ``alloc`` pops a slot index, ``free``
pushes one back; both are O(1) and CAS-retry only under contention.

Ownership of every slot is additionally tracked in a live set, so a
double ``free`` raises a typed :class:`DoubleFree` at the offending
call site instead of silently corrupting the list into a cycle (which
only the :meth:`FreeList.free_count` diagnostic would catch, much
later).  The live set doubles as the ownership ledger for callers that
park free slots in per-thread caches (see
:class:`repro.core.request_pool.OffloadRequestPool`): a cached slot is
*not* live, even though it is not on the shared list either.
"""

from __future__ import annotations

from typing import Generic, TypeVar

from repro.dst import hooks as _dst
from repro.lockfree.atomics import AtomicCell

T = TypeVar("T")

_NIL = -1


class FreeListExhausted(Exception):
    """Raised by :meth:`FreeList.alloc` when all slots are in use."""


class DoubleFree(Exception):
    """A slot index was freed while not allocated (double free)."""


class FreeList(Generic[T]):
    """Fixed pool of ``capacity`` slots with lock-free alloc/free.

    ``slots[i]`` holds the user payload for slot ``i`` (e.g. the backing
    request record); the pool never allocates after construction.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._capacity = capacity
        # next-pointers of the singly linked list through the array
        self._next = list(range(1, capacity)) + [_NIL]
        # tagged head: (slot index, version)
        self._head: AtomicCell[tuple[int, int]] = AtomicCell((0, 0))
        self.slots: list[T | None] = [None] * capacity
        # Indices currently handed out (set.add/remove/len are single
        # C-level calls, so this is safe from many threads and `len`
        # replaces the old racy +=1/-=1 approximate counter).
        self._live: set[int] = set()
        #: DST-only regression hook: when True, :meth:`mark_free` skips
        #: the live-set ownership check — the double-free bug the ledger
        #: was added to catch.  Only ever set by the regression corpus
        #: (repro.dst.targets), never by production code.
        self._unsafe_skip_live_check = False

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def allocated(self) -> int:
        """Number of live slots (exact when quiescent)."""
        return len(self._live)

    def alloc(self) -> int:
        """Pop a free slot index; raises :class:`FreeListExhausted`."""
        while True:
            head = self._head.load()
            idx, version = head
            if idx == _NIL:
                raise FreeListExhausted(
                    f"request pool exhausted (capacity={self._capacity})"
                )
            if _dst._scheduler is not None:
                # The ABA window: between reading head and the CAS,
                # other threads may pop and re-push this very slot.
                _dst.yield_point("freelist.alloc.read_next")
            nxt = self._next[idx]
            ok, _ = self._head.compare_and_swap(head, (nxt, version + 1))
            if ok:
                if _dst._scheduler is not None:
                    _dst.yield_point("freelist.alloc.mark_live")
                self._live.add(idx)
                return idx

    def alloc_batch(self, n: int) -> list[int]:
        """Pop up to ``n`` slots with a *single* CAS.

        The version tag guarantees the walked ``_next`` chain is only
        committed if no other alloc/free intervened, so grabbing a whole
        chunk costs one successful CAS instead of ``n`` — this is what
        the request pool's per-thread caches refill through.  Returns at
        least one index; raises :class:`FreeListExhausted` when empty.
        """
        if n <= 1:
            return [self.alloc()]
        while True:
            head = self._head.load()
            idx, version = head
            if idx == _NIL:
                raise FreeListExhausted(
                    f"request pool exhausted (capacity={self._capacity})"
                )
            chain: list[int] = []
            cur = idx
            while cur != _NIL and len(chain) < n:
                if _dst._scheduler is not None:
                    # Mid-walk window: concurrent alloc/free can rewrite
                    # the chain under us; only the version-tagged CAS
                    # below makes the walk safe to commit.
                    _dst.yield_point("freelist.alloc_batch.walk")
                chain.append(cur)
                cur = self._next[cur]
            ok, _ = self._head.compare_and_swap(head, (cur, version + 1))
            if ok:
                if _dst._scheduler is not None:
                    _dst.yield_point("freelist.alloc_batch.mark_live")
                for i in chain:
                    self._live.add(i)
                return chain

    def mark_live(self, idx: int) -> None:
        """Account a cached (off-list, non-live) slot as handed out.

        Used by callers that keep private stashes of free slots: a
        cache hit bypasses the shared list, so ownership is flipped
        here instead of in :meth:`alloc`.
        """
        self._live.add(idx)

    def mark_free(self, idx: int) -> None:
        """Release ownership of ``idx`` without pushing it on the list.

        This is where double frees are caught: exactly one of two
        racing frees finds the index live (``set.remove`` is atomic),
        the other raises :class:`DoubleFree`.  The caller either parks
        the slot in a private cache or follows up with :meth:`push`.
        """
        if not 0 <= idx < self._capacity:
            raise IndexError(f"slot index {idx} out of range")
        if _dst._scheduler is not None:
            _dst.yield_point("freelist.mark_free")
        if self._unsafe_skip_live_check:
            self._live.discard(idx)
            return
        try:
            self._live.remove(idx)
        except KeyError:
            raise DoubleFree(
                f"slot {idx} freed while not allocated (double free)"
            ) from None

    def push(self, idx: int) -> None:
        """Return an *owned-free* slot (see :meth:`mark_free`) to the
        shared list."""
        self.slots[idx] = None
        while True:
            head = self._head.load()
            cur, version = head
            if _dst._scheduler is not None:
                _dst.yield_point("freelist.push.link")
            self._next[idx] = cur
            ok, _ = self._head.compare_and_swap(head, (idx, version + 1))
            if ok:
                return

    def free(self, idx: int) -> None:
        """Push slot ``idx`` back onto the free list.

        Raises :class:`DoubleFree` if ``idx`` is not currently
        allocated.
        """
        self.mark_free(idx)
        self.push(idx)

    def free_count(self) -> int:
        """Walk the free list and count slots (diagnostic; not atomic)."""
        n = 0
        idx = self._head.load()[0]
        seen = set()
        while idx != _NIL:
            if idx in seen:  # pragma: no cover - corruption detector
                raise RuntimeError("cycle detected in free list")
            seen.add(idx)
            n += 1
            idx = self._next[idx]
        return n
