"""A minimal generator-based discrete-event simulation kernel.

Deliberately small (a strict subset of SimPy's ideas) so its semantics
are fully testable here:

* :class:`SimEvent` — one-shot event; processes waiting on it resume
  with its value.
* :class:`Process` — wraps a generator; ``yield event`` suspends until
  the event fires, ``yield float`` sleeps that many virtual seconds.
  A process is itself an event (fires on return, with the return
  value), so processes compose with ``yield from`` *and* ``yield``.
* :class:`Resource` — FIFO counted resource (models NIC links and the
  MPI library lock).
* :class:`Store` — FIFO item queue with blocking get (models pending
  protocol-action queues and command queues).

Determinism: events scheduled for the same instant fire in schedule
order (a monotone sequence number breaks ties), so repeated runs are
bit-identical.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable

SimGen = Generator["SimEvent | float", Any, Any]


class SimEvent:
    """One-shot event with a value and waiter callbacks."""

    __slots__ = ("sim", "fired", "value", "_callbacks")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.fired = False
        self.value: Any = None
        self._callbacks: list[Callable[["SimEvent"], None]] = []

    def succeed(self, value: Any = None) -> "SimEvent":
        """Fire the event now; waiters resume at the current instant."""
        if self.fired:
            raise RuntimeError("event already fired")
        self.fired = True
        self.value = value
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            self.sim._schedule_now(lambda cb=cb: cb(self))
        return self

    def add_callback(self, cb: Callable[["SimEvent"], None]) -> None:
        if self.fired:
            self.sim._schedule_now(lambda: cb(self))
        else:
            self._callbacks.append(cb)


def any_of(sim: "Simulator", events: Iterable[SimEvent]) -> SimEvent:
    """Event firing when the first of ``events`` fires (with that event)."""
    out = SimEvent(sim)

    def on_fire(evt: SimEvent) -> None:
        if not out.fired:
            out.succeed(evt)

    fired_already = [e for e in events if e.fired]
    if fired_already:
        out.succeed(fired_already[0])
        return out
    for e in events:
        e.add_callback(on_fire)
    return out


def all_of(sim: "Simulator", events: list[SimEvent]) -> SimEvent:
    """Event firing when every one of ``events`` has fired."""
    out = SimEvent(sim)
    remaining = [len(events)]
    if not events:
        out.succeed([])
        return out

    def on_fire(_evt: SimEvent) -> None:
        remaining[0] -= 1
        if remaining[0] == 0:
            out.succeed([e.value for e in events])

    for e in events:
        e.add_callback(on_fire)
    return out


class Process(SimEvent):
    """A running generator; fires (as an event) when the generator
    returns, carrying the return value."""

    __slots__ = ("_gen", "name")

    def __init__(self, sim: "Simulator", gen: SimGen, name: str = "") -> None:
        super().__init__(sim)
        self._gen = gen
        self.name = name
        sim._schedule_now(lambda: self._step(None))

    def _step(self, send_value: Any) -> None:
        try:
            target = self._gen.send(send_value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        if isinstance(target, SimEvent):
            target.add_callback(lambda evt: self._step(evt.value))
        elif isinstance(target, (int, float)):
            if target < 0:
                raise ValueError(
                    f"process {self.name!r} yielded negative delay {target}"
                )
            self.sim.schedule(float(target), lambda: self._step(None))
        else:
            raise TypeError(
                f"process {self.name!r} yielded {type(target).__name__}; "
                "expected SimEvent or delay"
            )


class Simulator:
    """The event loop: a time-ordered heap of callbacks."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self.events_processed = 0

    # -- scheduling -----------------------------------------------------

    def schedule(self, delay: float, fn: Callable[[], None]) -> None:
        if delay < 0:
            raise ValueError("negative delay")
        heapq.heappush(self._heap, (self.now + delay, self._seq, fn))
        self._seq += 1

    def _schedule_now(self, fn: Callable[[], None]) -> None:
        self.schedule(0.0, fn)

    # -- construction helpers ---------------------------------------------

    def event(self) -> SimEvent:
        return SimEvent(self)

    def timeout(self, delay: float, value: Any = None) -> SimEvent:
        evt = SimEvent(self)
        self.schedule(delay, lambda: evt.succeed(value))
        return evt

    def process(self, gen: SimGen, name: str = "") -> Process:
        return Process(self, gen, name=name)

    def any_of(self, events: Iterable[SimEvent]) -> SimEvent:
        return any_of(self, events)

    def all_of(self, events: list[SimEvent]) -> SimEvent:
        return all_of(self, events)

    # -- running --------------------------------------------------------------

    def run(
        self,
        until: SimEvent | float | None = None,
        max_events: int = 50_000_000,
    ) -> Any:
        """Run until ``until`` fires (event), the clock passes ``until``
        (number), or the heap drains.  Returns the event's value when
        given an event."""
        if isinstance(until, (int, float)):
            deadline: float | None = float(until)
            until_event: SimEvent | None = None
        else:
            deadline = None
            until_event = until
        while self._heap:
            if until_event is not None and until_event.fired:
                return until_event.value
            t, _seq, fn = self._heap[0]
            if deadline is not None and t > deadline:
                self.now = deadline
                return None
            heapq.heappop(self._heap)
            self.now = t
            self.events_processed += 1
            if self.events_processed > max_events:
                raise RuntimeError(
                    f"simulation exceeded {max_events} events (livelock?)"
                )
            fn()
        if until_event is not None:
            if not until_event.fired:
                raise RuntimeError(
                    "simulation ran out of events before 'until' fired "
                    "(deadlock in the model)"
                )
            return until_event.value
        if deadline is not None:
            self.now = deadline
        return None


class Resource:
    """FIFO counted resource (capacity slots).

    ``request`` returns an event firing when a slot is granted;
    ``release`` frees one.  Used for NIC serialization and the
    ``MPI_THREAD_MULTIPLE`` library lock — queueing delay under
    contention emerges naturally.
    """

    __slots__ = ("sim", "capacity", "_in_use", "_waiters", "waits")

    def __init__(self, sim: Simulator, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiters: list[SimEvent] = []
        self.waits = 0  # grants that had to queue (contention metric)

    def request(self) -> SimEvent:
        evt = SimEvent(self.sim)
        if self._in_use < self.capacity:
            self._in_use += 1
            evt.succeed()
        else:
            self.waits += 1
            self._waiters.append(evt)
        return evt

    def release(self) -> None:
        if self._in_use <= 0:
            raise RuntimeError("release without request")
        if self._waiters:
            evt = self._waiters.pop(0)
            evt.succeed()
        else:
            self._in_use -= 1

    def held(self) -> int:
        return self._in_use

    def acquire(self) -> SimGen:
        """``yield from``-able request."""
        yield self.request()

    def use(self, duration: float) -> SimGen:
        """Hold the resource for ``duration`` virtual seconds."""
        yield self.request()
        try:
            yield duration
        finally:
            self.release()


class Store:
    """FIFO item queue with blocking ``get``."""

    __slots__ = ("sim", "_items", "_getters")

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._items: list[Any] = []
        self._getters: list[SimEvent] = []

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.pop(0).succeed(item)
        else:
            self._items.append(item)

    def get(self) -> SimEvent:
        evt = SimEvent(self.sim)
        if self._items:
            evt.succeed(self._items.pop(0))
        else:
            self._getters.append(evt)
        return evt

    def try_get(self) -> tuple[bool, Any]:
        if self._items:
            return True, self._items.pop(0)
        return False, None

    def __len__(self) -> int:
        return len(self._items)
