"""The simulated MPI: protocols, matching, progress, locks, NIC.

One :class:`SimRankMPI` per rank.  Application threads are DES
processes that call the generator methods (``yield from mpi.isend``
etc.).  The model's load-bearing rules, identical for every approach:

* an **eager** send pays the software cost *and the internal memory
  copy* up front, then completes locally; the copy cost grows with the
  message until the 128 KB threshold — Figure 4's rising curve;
* a **rendezvous** send posts only a control message (cheap).  The RTS
  must be processed by the *receiver's* progress, the returning CTS by
  the *sender's* progress, and only then does the data move.  No
  progress during compute ⇒ the transfer lands in ``wait`` — Figure 2's
  collapse to 1 % overlap for 2 MB baseline messages;
* protocol events are queued per rank as **actions** and are serviced
  either by a continuous progress context (comm-self thread, offload
  thread, specialized core) or by application threads while they sit
  inside blocking MPI calls (baseline), or by explicit probe pumps
  (iprobe);
* under ``MPI_THREAD_MULTIPLE`` every application call holds the
  **library lock** and pays a fixed reentrancy tax — Figure 6's
  latency blow-up with thread count;
* offloaded calls cost the application thread one queue enqueue; the
  offload thread pays the real call cost when it services the command
  action — Figure 4's flat 140 ns line.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.simtime.engine import Resource, SimEvent, Simulator, Store
from repro.simtime.machine import MachineConfig
from repro.simtime.progress_modes import Approach


@dataclass
class SimRequest:
    """Handle for one simulated nonblocking operation."""

    kind: str
    nbytes: int
    event: SimEvent
    posted_at: float
    issued_at: float | None = None
    completed_at: float | None = None

    @property
    def done(self) -> bool:
        return self.event.fired


@dataclass
class _Arrival:
    """An eager payload or RTS sitting in the unexpected queue."""

    kind: str  # "eager" | "rts"
    src: int
    tag: int
    nbytes: int
    send_req: SimRequest | None = None


@dataclass
class _PostedRecv:
    src: int
    tag: int
    req: SimRequest


@dataclass
class _CollState:
    """Cluster-wide state for one collective operation instance."""

    participants: int
    arrived: int = 0
    start_events: list[tuple["SimRankMPI", SimRequest, int, float]] = field(
        default_factory=list
    )


class SimCluster:
    """All ranks plus shared collective bookkeeping."""

    def __init__(
        self,
        sim: Simulator,
        machine: MachineConfig,
        approach: Approach,
        nranks: int,
        thread_multiple: bool = False,
        ranks_per_node: int = 1,
        trace: bool = False,
    ) -> None:
        if nranks < 1:
            raise ValueError("nranks must be >= 1")
        #: when True, every rank records (start, duration, label) for
        #: each progress-engine service — a virtual-time activity
        #: timeline for debugging and for the trace-based tests.
        self.trace = trace
        self.sim = sim
        self.machine = machine
        self.approach = approach
        self.nranks = nranks
        #: the application requested MPI_THREAD_MULTIPLE (several app
        #: threads call MPI); offloaded calls never need it.
        self.thread_multiple = thread_multiple
        #: ranks sharing one NIC (one rank per socket, dual-socket
        #: nodes) — they split the adapter's bandwidth when both
        #: communicate, as in the paper's application runs.
        self.ranks_per_node = max(1, ranks_per_node)
        self.link_bandwidth = machine.net_bandwidth / self.ranks_per_node
        self.ranks = [SimRankMPI(self, r) for r in range(nranks)]
        self._collectives: dict[Any, _CollState] = {}

    @property
    def effective_tm(self) -> bool:
        """Do application calls pay the THREAD_MULTIPLE tax?"""
        if self.approach.offloaded_calls:
            return False
        return self.thread_multiple or self.approach.requires_thread_multiple

    def _collective_arrive(
        self,
        key: Any,
        rank_mpi: "SimRankMPI",
        req: SimRequest,
        stages: int,
        stage_wire: float,
    ) -> None:
        state = self._collectives.get(key)
        if state is None:
            state = _CollState(participants=self.nranks)
            self._collectives[key] = state
        state.arrived += 1
        state.start_events.append((rank_mpi, req, stages, stage_wire))
        if state.arrived == state.participants:
            del self._collectives[key]
            for rm, r, st, wire in state.start_events:
                self.sim.process(rm._collective_chain(r, st, wire))


class SimRankMPI:
    """Simulated MPI library instance for one rank."""

    def __init__(self, cluster: SimCluster, rank: int) -> None:
        self.cluster = cluster
        self.sim = cluster.sim
        self.machine = cluster.machine
        self.approach = cluster.approach
        self.rank = rank
        #: pending protocol actions: (cpu_cost, fn, label)
        self.actions: Store = Store(self.sim)
        #: (start_time, duration, label) of serviced actions (trace mode)
        self.trace: list[tuple[float, float, str]] = []
        self._action_wake = self.sim.event()
        self.posted: list[_PostedRecv] = []
        self.unexpected: list[_Arrival] = []
        self.nic = Resource(self.sim, 1)
        self.lib_lock = Resource(self.sim, 1)
        self._coll_seq = 0
        # -- metrics -------------------------------------------------------
        self.actions_serviced = 0
        self.progress_busy_time = 0.0
        if self.approach.continuous_progress:
            self.sim.process(
                self._progress_loop(), name=f"progress-{rank}"
            )

    # ----------------------------------------------------------- action queue

    def _push_action(
        self, cost: float, fn: Callable[[], None], label: str = "service"
    ) -> None:
        self.actions.put((cost, fn, label))
        if not self._action_wake.fired:
            self._action_wake.succeed()

    def _fresh_wake(self) -> SimEvent:
        if self._action_wake.fired:
            self._action_wake = self.sim.event()
        return self._action_wake

    def _progress_loop(self):
        """The dedicated progress context (offload / comm-self /
        core-spec).  Services every action, paying the approach's
        per-event cost on top of the raw CPU cost.

        The comm-self thread sits *inside MPI*, so it services events
        while holding the library lock — application threads' calls
        queue behind long services, which is §2.2's observation that
        "the master thread typically sees more time spent in MPI
        calls" under comm-self.  The offload thread needs no lock.
        """
        needs_lock = self.approach.requires_thread_multiple
        while True:
            item = yield self.actions.get()
            cost, fn, label = item
            service = self.approach.service_cost(self.machine, cost)
            t0 = self.sim.now
            if needs_lock:
                yield self.lib_lock.request()
            yield service
            if needs_lock:
                self.lib_lock.release()
            self.progress_busy_time += self.sim.now - t0
            self.actions_serviced += 1
            if self.cluster.trace:
                self.trace.append((t0, self.sim.now - t0, label))
            fn()

    def _pump_inline(self):
        """Service one pending action from an application thread
        sitting inside an MPI call (baseline/iprobe progress).
        Returns True if an action was serviced."""
        ok, item = self.actions.try_get()
        if not ok:
            return False
        cost, fn, label = item
        t0 = self.sim.now
        yield cost
        self.actions_serviced += 1
        if self.cluster.trace:
            self.trace.append((t0, self.sim.now - t0, label))
        fn()
        return True

    # ------------------------------------------------------------- call entry

    def _app_call(self, base_cost: float):
        """Pay what the application thread owes for one MPI call."""
        if self.approach.offloaded_calls:
            yield self.machine.offload_enqueue
            return
        if self.cluster.effective_tm:
            yield self.lib_lock.request()
            yield base_cost + self.machine.tm_call_overhead
            self.lib_lock.release()
        else:
            yield base_cost

    def _issue(self, raw_cost: float, fn: Callable[[], None]) -> None:
        """Run the *library-side* work of a call: immediately for direct
        approaches (the app thread just paid for it), as a command
        action for offload (the offload thread pays)."""
        if self.approach.offloaded_calls:
            self._push_action(raw_cost, fn, label="command-dispatch")
        else:
            fn()

    # ----------------------------------------------------------------- sends

    def isend(self, dst: int, nbytes: int, tag: int):
        """Nonblocking send; returns a :class:`SimRequest`.

        ``yield from`` this from an app-thread process.
        """
        req = SimRequest("isend", nbytes, self.sim.event(), self.sim.now)
        eager = nbytes <= self.machine.eager_threshold
        if eager:
            base = (
                self.machine.sw_call_base
                + nbytes / self.machine.memcpy_bandwidth
            )
        else:
            base = self.machine.rndv_post_cost
        yield from self._app_call(base)

        if eager:

            def launch() -> None:
                req.issued_at = self.sim.now
                req.event.succeed()  # buffered: locally complete
                self.sim.process(self._eager_wire(dst, nbytes, tag))

        else:

            def launch() -> None:
                req.issued_at = self.sim.now
                self.sim.process(self._rts_wire(dst, nbytes, tag, req))

        self._issue(base, launch)
        return req

    def _eager_wire(self, dst: int, nbytes: int, tag: int):
        bw = self.approach.eager_bandwidth(self.machine, nbytes)
        bw *= self.cluster.link_bandwidth / self.machine.net_bandwidth
        yield self.nic.request()
        yield nbytes / bw
        self.nic.release()
        yield self.machine.net_latency
        peer = self.cluster.ranks[dst]
        # Matching an eager arrival includes copying the payload out of
        # the library's internal buffer into the user buffer.
        arrival_cost = (
            self.machine.action_cost + nbytes / self.machine.memcpy_bandwidth
        )
        peer._push_action(
            arrival_cost,
            lambda: peer._on_eager_arrival(self.rank, tag, nbytes),
            label="eager-arrival",
        )

    def _rts_wire(self, dst: int, nbytes: int, tag: int, req: SimRequest):
        yield self.machine.net_latency
        peer = self.cluster.ranks[dst]
        peer._push_action(
            self.machine.action_cost,
            lambda: peer._on_rts_arrival(self.rank, tag, nbytes, req),
            label="rts-arrival",
        )

    # ---------------------------------------------------------------- receives

    def irecv(self, src: int, nbytes: int, tag: int):
        """Nonblocking receive; returns a :class:`SimRequest`."""
        req = SimRequest("irecv", nbytes, self.sim.event(), self.sim.now)
        base = self.machine.sw_call_base
        yield from self._app_call(base)

        def launch() -> None:
            req.issued_at = self.sim.now
            self._do_post_recv(src, tag, req)

        self._issue(base, launch)
        return req

    def _do_post_recv(self, src: int, tag: int, req: SimRequest) -> None:
        for i, arr in enumerate(self.unexpected):
            if arr.src == src and arr.tag == tag:
                del self.unexpected[i]
                if arr.kind == "eager":
                    self._complete(req)
                else:  # rts waiting: grant clear-to-send
                    assert arr.send_req is not None
                    self.sim.process(
                        self._cts_wire(arr.src, arr.nbytes, req, arr.send_req)
                    )
                return
        self.posted.append(_PostedRecv(src, tag, req))

    # ------------------------------------------------------- protocol handlers

    def _match_posted(self, src: int, tag: int) -> _PostedRecv | None:
        for i, pr in enumerate(self.posted):
            if pr.src == src and pr.tag == tag:
                del self.posted[i]
                return pr
        return None

    def _on_eager_arrival(self, src: int, tag: int, nbytes: int) -> None:
        pr = self._match_posted(src, tag)
        if pr is None:
            self.unexpected.append(_Arrival("eager", src, tag, nbytes))
        else:
            self._complete(pr.req)

    def _on_rts_arrival(
        self, src: int, tag: int, nbytes: int, send_req: SimRequest
    ) -> None:
        pr = self._match_posted(src, tag)
        if pr is None:
            self.unexpected.append(
                _Arrival("rts", src, tag, nbytes, send_req)
            )
        else:
            self.sim.process(self._cts_wire(src, nbytes, pr.req, send_req))

    def _cts_wire(
        self,
        sender_rank: int,
        nbytes: int,
        recv_req: SimRequest,
        send_req: SimRequest,
    ):
        """Receiver grants clear-to-send; the *sender's* progress must
        process it before any data moves (the crux of the paper)."""
        yield self.machine.net_latency
        sender = self.cluster.ranks[sender_rank]

        def start_transfer() -> None:
            sender.sim.process(
                sender._rndv_transfer(nbytes, recv_req, send_req)
            )

        sender._push_action(
            self.machine.action_cost, start_transfer, label="cts-transfer"
        )

    def _rndv_transfer(
        self, nbytes: int, recv_req: SimRequest, send_req: SimRequest
    ):
        yield self.nic.request()
        yield nbytes / self.cluster.link_bandwidth
        self.nic.release()
        self._complete(send_req)
        yield self.machine.net_latency
        self._complete(recv_req)

    def _complete(self, req: SimRequest) -> None:
        if not req.event.fired:
            req.completed_at = self.sim.now
            req.event.succeed()

    # ---------------------------------------------------------------- waiting

    def wait(self, req: SimRequest):
        """Blocking wait; who makes progress here depends on approach."""
        yield from self.wait_all([req])

    def wait_all(self, reqs: list[SimRequest]):
        if self.approach.offloaded_calls:
            # §3.2: just a done-flag check; negligible app cost.
            yield self.machine.offload_enqueue
            for req in reqs:
                if not req.event.fired:
                    yield req.event
            return
        yield from self._app_call(self.machine.sw_call_base)
        if self.approach.continuous_progress:
            # comm-self / core-spec: the progress thread services
            # actions; this thread only parks.
            for req in reqs:
                if not req.event.fired:
                    yield req.event
            return
        # baseline / iprobe: this thread IS the progress engine now.
        while True:
            if all(r.event.fired for r in reqs):
                return
            serviced = yield from self._pump_inline()
            if serviced:
                continue
            pending = [r.event for r in reqs if not r.event.fired]
            yield self.sim.any_of(pending + [self._fresh_wake()])

    def iprobe_pump(self):
        """The *iprobe* approach's PROGRESS hook: one probe call that
        services everything currently pending.  The master thread pays
        for all of it — the approach's hidden load imbalance."""
        yield from self._app_call(self.machine.sw_call_base)
        while True:
            serviced = yield from self._pump_inline()
            if not serviced:
                return

    # --------------------------------------------------------------- one-sided

    def rma_put(self, dst: int, nbytes: int):
        """Simulated one-sided put (§7 extension).

        Origin pays its call cost; the record crosses the wire; the
        *target's* progress must apply it (action with a copy cost);
        an ack returns and the *origin's* progress completes the
        request.  Both progress dependencies mirror
        :mod:`repro.mpisim.rma`.
        """
        req = SimRequest("rma_put", nbytes, self.sim.event(), self.sim.now)
        base = self.machine.sw_call_base
        yield from self._app_call(base)

        def launch() -> None:
            req.issued_at = self.sim.now
            self.sim.process(self._rma_put_wire(dst, nbytes, req))

        self._issue(base, launch)
        return req

    def _rma_put_wire(self, dst: int, nbytes: int, req: SimRequest):
        yield self.nic.request()
        yield nbytes / self.cluster.link_bandwidth
        self.nic.release()
        yield self.machine.net_latency
        target = self.cluster.ranks[dst]
        apply_cost = (
            self.machine.action_cost + nbytes / self.machine.memcpy_bandwidth
        )

        def applied() -> None:
            target.sim.process(target._rma_ack_wire(self.rank, req))

        target._push_action(apply_cost, applied, label="rma-apply")

    def _rma_ack_wire(self, origin: int, req: SimRequest):
        yield self.machine.net_latency
        origin_mpi = self.cluster.ranks[origin]
        origin_mpi._push_action(
            self.machine.action_cost,
            lambda: origin_mpi._complete(req),
            label="rma-ack",
        )

    # -------------------------------------------------------------- collectives

    def next_coll_key(self, op: str) -> Any:
        key = (op, self._coll_seq)
        self._coll_seq += 1
        return key

    def icollective(
        self,
        op: str,
        nbytes: int,
        stages: int,
        stage_wire: float,
        build_cost: float | None = None,
        stage_cpu: float = 0.0,
    ):
        """Generic nonblocking collective.

        After all ranks have posted, each rank's instance advances
        through ``stages`` rounds.  Each round first needs a progress
        action at this rank (software cost ``stage_cpu`` — packing,
        local reduction, copy), *then* spends ``stage_wire`` on the
        wire.  Gating the round's start on progress is what makes a
        schedule stall entirely inside ``MPI_Wait`` when nothing pumps
        the engine during compute — the Figure 3 baseline behaviour.
        """
        req = SimRequest(op, nbytes, self.sim.event(), self.sim.now)
        base = (
            build_cost
            if build_cost is not None
            else self.machine.sw_call_base
        )
        yield from self._app_call(base)
        key = self.next_coll_key(op)

        def launch() -> None:
            req.issued_at = self.sim.now
            self.cluster._collective_arrive(
                key, self, req, stages, (stage_wire, stage_cpu)
            )

        self._issue(base, launch)
        return req

    def _collective_chain(self, req: SimRequest, stages: int, wire_cpu):
        stage_wire, stage_cpu = wire_cpu
        for _ in range(max(1, stages)):
            done = self.sim.event()
            self._push_action(
                self.machine.action_cost + stage_cpu,
                done.succeed,
                label="collective-stage",
            )
            yield done
            yield stage_wire
        self._complete(req)

    # -- convenience wrappers used by the workload drivers ----------------

    def iallreduce(self, nbytes: int, bw_factor: float = 1.0):
        stages = max(1, math.ceil(math.log2(self.cluster.nranks)))
        wire = self.machine.net_latency + nbytes / (
            self.cluster.link_bandwidth * bw_factor
        )
        # per round: local reduction over the vector
        cpu = nbytes / self.machine.memcpy_bandwidth
        return self.icollective("allreduce", nbytes, stages, wire, stage_cpu=cpu)

    def ibcast(self, nbytes: int):
        stages = max(1, math.ceil(math.log2(self.cluster.nranks)))
        wire = self.machine.net_latency + nbytes / self.cluster.link_bandwidth
        cpu = nbytes / self.machine.memcpy_bandwidth
        return self.icollective("bcast", nbytes, stages, wire, stage_cpu=cpu)

    def ibarrier(self):
        stages = max(1, math.ceil(math.log2(self.cluster.nranks)))
        return self.icollective(
            "barrier", 0, stages, self.machine.net_latency, build_cost=self.machine.sw_call_base
        )

    def igather(self, nbytes: int):
        p = self.cluster.nranks
        wire = self.machine.net_latency + (p - 1) * nbytes / self.cluster.link_bandwidth
        cpu = (p - 1) * nbytes / self.machine.memcpy_bandwidth
        return self.icollective("gather", nbytes, 1, wire, stage_cpu=cpu)

    def ialltoall(
        self,
        nbytes_per_pair: int,
        bw_factor: float = 1.0,
        build_cost: float | None = None,
    ):
        """All-to-all as ``p - 1`` pairwise stages.

        ``bw_factor`` models bisection-bandwidth derating at scale
        (all-to-all bandwidth does not scale with node count — paper
        §5.2's observation for FFT at 128+ nodes).
        """
        p = self.cluster.nranks
        bw_factor *= self.machine.alltoall_efficiency
        per_pair = (
            self.machine.net_latency
            + nbytes_per_pair / (self.cluster.link_bandwidth * bw_factor)
        )
        # Cap the schedule length for very large rank counts (the real
        # pairwise exchange has p-1 rounds, but simulating thousands of
        # rounds per collective adds nothing to the timing model).
        stages = min(max(1, p - 1), 32)
        wire = per_pair * (p - 1) / stages
        cpu = nbytes_per_pair * (p - 1) / stages / self.machine.memcpy_bandwidth
        return self.icollective(
            "alltoall",
            nbytes_per_pair * (p - 1),
            stages,
            wire,
            build_cost=build_cost,
            stage_cpu=cpu,
        )
