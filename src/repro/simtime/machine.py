"""Machine models calibrated to the paper's three platforms.

Constants marked *paper* are stated outright in the text (Sections 4.1,
4.2, 4.5); the rest are standard figures for the hardware generation
(FDR InfiniBand, Cray Aries, Haswell/IvyBridge Xeon, KNC Xeon Phi) and
are only used to set scales — the reproduced *shapes* come from the
mechanisms, not from tuning.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.units import KIB, MIB


@dataclass(frozen=True)
class MachineConfig:
    """Per-rank hardware + MPI software cost model.

    One MPI rank per socket, as in all the paper's experiments.
    """

    name: str
    #: hardware threads available to one rank's OpenMP team
    cores_per_rank: int
    #: sustained per-core compute rate for stencil-like kernels (flop/s)
    flops_per_core: float
    #: one-way wire latency between ranks (s)
    net_latency: float
    #: per-rank NIC bandwidth (B/s)
    net_bandwidth: float
    #: intra-node memcpy bandwidth, for eager-protocol copies (B/s)
    memcpy_bandwidth: float
    #: eager->rendezvous protocol switch (B); paper §4.1: 128 KB
    eager_threshold: int
    #: fixed software cost of entering/leaving any MPI call (s)
    sw_call_base: float
    #: software cost of posting a rendezvous control message (s)
    rndv_post_cost: float
    #: progress-engine cost to process one protocol event (match an
    #: arrival, answer an RTS, start a transfer) (s)
    action_cost: float
    #: added per-call cost under MPI_THREAD_MULTIPLE; paper §4.2: ~2.5 us
    tm_call_overhead: float
    #: extra per-event service time when the comm-self thread contends
    #: for the library lock (calibrates the ~11 us added one-way
    #: latency of §4.5)
    commself_service_extra: float
    #: comm-self bandwidth derating for mid-size eager messages
    #: (paper §4.5: ~50 % between 4 KB and 256 KB)
    commself_bw_factor: float
    commself_bw_range: tuple[int, int]
    #: app-side cost of enqueueing a command (paper §4.2: ~140 ns Xeon)
    offload_enqueue: float
    #: offload-thread dispatch overhead per command beyond the MPI call
    #: itself (contributes the +0.3 us / +1.7 us latency of §4.5)
    offload_dispatch: float
    #: last-level cache per rank (B) — drives QCD's super-linear scaling
    cache_bytes: int
    #: compute speedup when the working set fits in cache
    cache_speedup: float
    #: whether the platform offers core specialization (Edison, Fig 9b)
    corespec_available: bool = False
    #: whether MPI_THREAD_MULTIPLE is available (not on the paper's Phi)
    thread_multiple_available: bool = True
    #: global all-to-all efficiency relative to the point-to-point NIC
    #: bandwidth (KNC's PCIe-hop MPI made this especially poor)
    alltoall_efficiency: float = 1.0


#: Endeavor Xeon: dual-socket E5-2697 v3 (14 cores/socket), FDR IB.
ENDEAVOR_XEON = MachineConfig(
    name="endeavor-xeon",
    cores_per_rank=14,
    flops_per_core=40.0e9,  # single-precision peak-ish (AVX2 FMA)
    net_latency=1.6e-6,
    net_bandwidth=6.0e9,
    memcpy_bandwidth=16.0e9,
    eager_threshold=128 * KIB,  # paper
    sw_call_base=0.25e-6,
    rndv_post_cost=0.5e-6,
    action_cost=0.2e-6,
    tm_call_overhead=2.5e-6,  # paper
    commself_service_extra=8.5e-6,
    commself_bw_factor=0.5,  # paper
    commself_bw_range=(4 * KIB, 256 * KIB),  # paper
    offload_enqueue=140e-9,  # paper
    offload_dispatch=160e-9,
    cache_bytes=35 * MIB,
    cache_speedup=1.8,
)

#: Endeavor Xeon Phi: 61-core KNC coprocessor; slow single thread.
ENDEAVOR_PHI = MachineConfig(
    name="endeavor-phi",
    cores_per_rank=60,
    flops_per_core=15.0e9,  # KNC single-precision, weak per core
    net_latency=3.5e-6,
    net_bandwidth=5.5e9,
    memcpy_bandwidth=5.0e9,
    eager_threshold=128 * KIB,
    sw_call_base=1.5e-6,  # ~6x Xeon: weak in-order single thread
    rndv_post_cost=3.0e-6,
    action_cost=1.2e-6,
    tm_call_overhead=15e-6,
    commself_service_extra=50e-6,
    commself_bw_factor=0.5,
    commself_bw_range=(4 * KIB, 256 * KIB),
    offload_enqueue=0.9e-6,
    offload_dispatch=0.8e-6,  # paper §4.5: offload adds ~1.7 us on Phi
    cache_bytes=30 * MIB,
    cache_speedup=1.6,
    thread_multiple_available=False,  # paper §5.2
    alltoall_efficiency=0.25,
)

#: NERSC Edison: Cray XC30, E5-2695 v2 (12 cores/socket), Aries.
EDISON = MachineConfig(
    name="edison",
    cores_per_rank=12,
    flops_per_core=35.0e9,  # IvyBridge AVX single precision
    net_latency=1.4e-6,
    net_bandwidth=8.0e9,
    memcpy_bandwidth=14.0e9,
    eager_threshold=128 * KIB,
    sw_call_base=0.3e-6,
    rndv_post_cost=0.55e-6,
    action_cost=0.22e-6,
    tm_call_overhead=3.0e-6,
    commself_service_extra=9.0e-6,
    commself_bw_factor=0.5,
    commself_bw_range=(4 * KIB, 256 * KIB),
    offload_enqueue=150e-9,
    offload_dispatch=170e-9,
    cache_bytes=30 * MIB,
    cache_speedup=1.8,
    corespec_available=True,
)

MACHINES: dict[str, MachineConfig] = {
    m.name: m for m in (ENDEAVOR_XEON, ENDEAVOR_PHI, EDISON)
}
