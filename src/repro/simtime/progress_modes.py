"""The five approaches under study, as progress/cost policies.

Crucially, an :class:`Approach` changes only *when MPI software
processing runs* and *what an application-thread call costs* — the
protocol, matching, and network model in
:mod:`repro.simtime.mpi_model` are byte-for-byte identical across
approaches.  That is what makes the simulated comparisons meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simtime.machine import MachineConfig


@dataclass(frozen=True)
class Approach:
    """A progress strategy (paper Sections 2 and 3)."""

    name: str
    #: a core is dedicated to communication (lost to the app's compute)
    dedicated_thread: bool
    #: protocol actions are serviced continuously, not only inside
    #: application MPI calls
    continuous_progress: bool
    #: the world must be MPI_THREAD_MULTIPLE (per-call lock overhead)
    requires_thread_multiple: bool
    #: application calls are command enqueues; the dedicated thread
    #: issues the real MPI calls
    offloaded_calls: bool

    def compute_cores(self, machine: MachineConfig) -> int:
        """Cores left for application computation."""
        cores = machine.cores_per_rank
        if self.dedicated_thread:
            cores -= 1
        return max(1, cores)

    def call_cost(self, machine: MachineConfig, base: float) -> float:
        """What the *application thread* pays for an MPI call whose raw
        software cost is ``base``."""
        if self.offloaded_calls:
            return machine.offload_enqueue
        cost = base
        if self.requires_thread_multiple:
            cost += machine.tm_call_overhead
        return cost

    def service_cost(self, machine: MachineConfig, base: float) -> float:
        """What the servicing context pays to process a protocol event."""
        cost = base
        if self.offloaded_calls:
            cost += machine.offload_dispatch
        elif self.requires_thread_multiple:
            # comm-self: the progress thread fights the app for the
            # library lock on every event it services.
            cost += machine.commself_service_extra
        return cost

    def eager_bandwidth(
        self, machine: MachineConfig, nbytes: int
    ) -> float:
        """Effective network bandwidth for an eager message.

        comm-self derates mid-size messages (paper §4.5's 50 % dip,
        4 KB–256 KB) because lock ping-pong between the app thread and
        the progress thread breaks copy pipelining.
        """
        bw = machine.net_bandwidth
        if self.requires_thread_multiple:
            lo, hi = machine.commself_bw_range
            if lo <= nbytes <= hi:
                bw *= machine.commself_bw_factor
        return bw


BASELINE = Approach(
    name="baseline",
    dedicated_thread=False,
    continuous_progress=False,
    requires_thread_multiple=False,
    offloaded_calls=False,
)

#: iprobe shares baseline's static properties; the difference is the
#: workload driver inserting explicit probe pumps into compute loops.
IPROBE = Approach(
    name="iprobe",
    dedicated_thread=False,
    continuous_progress=False,
    requires_thread_multiple=False,
    offloaded_calls=False,
)

COMMSELF = Approach(
    name="comm-self",
    dedicated_thread=True,
    continuous_progress=True,
    requires_thread_multiple=True,
    offloaded_calls=False,
)

OFFLOAD = Approach(
    name="offload",
    dedicated_thread=True,
    continuous_progress=True,
    requires_thread_multiple=False,
    offloaded_calls=True,
)

#: Cray core specialization (Edison, Fig. 9b): an OS-reserved core
#: drives progress; app calls remain ordinary FUNNELED MPI calls.
CORESPEC = Approach(
    name="corespec",
    dedicated_thread=True,
    continuous_progress=True,
    requires_thread_multiple=False,
    offloaded_calls=False,
)

APPROACHES: dict[str, Approach] = {
    a.name: a for a in (BASELINE, IPROBE, COMMSELF, OFFLOAD, CORESPEC)
}
