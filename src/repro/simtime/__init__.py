"""Discrete-event performance simulator.

The functional substrate (:mod:`repro.mpisim`) proves the offload
mechanisms *work*; this package predicts how they *perform* at the
paper's scales (up to 1152 nodes) by simulating virtual time.

Components:

* :mod:`repro.simtime.engine` — a minimal generator-based
  discrete-event kernel (events, processes, FIFO resources);
* :mod:`repro.simtime.machine` — calibrated machine models for the
  paper's three platforms (Endeavor Xeon, Endeavor Xeon Phi, NERSC
  Edison);
* :mod:`repro.simtime.mpi_model` — the simulated MPI: eager and
  rendezvous protocols whose control messages require *progress*, a
  library lock for ``MPI_THREAD_MULTIPLE``, per-call software costs,
  and NIC bandwidth as a shared resource;
* :mod:`repro.simtime.progress_modes` — the five approaches under
  study (baseline / iprobe / comm-self / offload / core-spec) expressed
  purely as *when progress runs and what each call costs*: the network
  and protocol model is identical across approaches, keeping the
  comparison honest;
* :mod:`repro.simtime.workloads` — per-figure/table workload drivers
  (microbenchmarks, QCD Wilson-Dslash, SOI FFT, CNN training).
"""

from repro.simtime.engine import (
    Simulator,
    SimEvent,
    Process,
    Resource,
    Store,
)
from repro.simtime.machine import (
    MachineConfig,
    ENDEAVOR_XEON,
    ENDEAVOR_PHI,
    EDISON,
    MACHINES,
)
from repro.simtime.progress_modes import (
    Approach,
    APPROACHES,
)
from repro.simtime.mpi_model import SimCluster, SimRankMPI, SimRequest

__all__ = [
    "Simulator",
    "SimEvent",
    "Process",
    "Resource",
    "Store",
    "MachineConfig",
    "ENDEAVOR_XEON",
    "ENDEAVOR_PHI",
    "EDISON",
    "MACHINES",
    "Approach",
    "APPROACHES",
    "SimCluster",
    "SimRankMPI",
    "SimRequest",
]
