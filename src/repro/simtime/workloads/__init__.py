"""Workload drivers: one simulated experiment per paper artifact.

Microbenchmarks (:mod:`repro.simtime.workloads.micro`) cover Figures
2–8; the application models (:mod:`~repro.simtime.workloads.qcd`,
:mod:`~repro.simtime.workloads.fft`, :mod:`~repro.simtime.workloads.cnn`)
cover Tables 1–2 and Figures 9–14.
"""

from repro.simtime.workloads import micro, qcd, fft, cnn

__all__ = ["micro", "qcd", "fft", "cnn"]
