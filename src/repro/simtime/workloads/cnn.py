"""Simulated hybrid-parallel CNN training (Figure 14).

An AlexNet-like layer inventory drives the costs: convolutional layers
train data-parallel (per-layer weight-gradient allreduce, posted during
backpropagation so it can overlap the next layer's compute), fully
connected layers train model-parallel (synchronized activation
all-to-alls that cannot overlap — §5.3).

The minibatch is fixed globally, so per-node compute shrinks as nodes
are added while the gradient exchanges stay put — which is why the
approaches tie up to 8 nodes (compute-dominated) and split 2X apart at
64 (communication-dominated), the paper's Figure 14 shape.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.simtime.engine import Simulator
from repro.simtime.machine import MachineConfig
from repro.simtime.mpi_model import SimCluster
from repro.simtime.progress_modes import APPROACHES, Approach


@dataclass(frozen=True)
class LayerSpec:
    """One network layer for the cost model."""

    name: str
    kind: str  # "conv" | "fc"
    weight_bytes: int
    flops_per_image: float


#: Deep-Image-like inventory (weights in single precision): a deeper,
#: wider conv stack than AlexNet, as in the paper's reference [35].
ALEXNET_LIKE: tuple[LayerSpec, ...] = (
    LayerSpec("conv1", "conv", 800_000, 3.5e8),
    LayerSpec("conv2", "conv", 6_000_000, 7.0e8),
    LayerSpec("conv3", "conv", 14_000_000, 6.0e8),
    LayerSpec("conv4", "conv", 14_000_000, 4.5e8),
    LayerSpec("conv5", "conv", 10_000_000, 3.0e8),
    LayerSpec("fc6", "fc", 150_000_000, 7.5e7),
    LayerSpec("fc7", "fc", 67_000_000, 3.4e7),
    LayerSpec("fc8", "fc", 16_000_000, 8.0e6),
)

#: global minibatch (images) — fixed, as in hybrid-parallel training
MINIBATCH = 256

#: per-image activation bytes crossing each fc stage boundary
FC_ACTIVATION_BYTES = 4096 * 4

#: compute efficiency for the conv/fc kernels
CNN_EFFICIENCY = 0.5


def cnn_iteration(
    machine: MachineConfig,
    approach: "Approach | str",
    nodes: int,
    layers: tuple[LayerSpec, ...] = ALEXNET_LIKE,
    minibatch: int = MINIBATCH,
) -> float:
    """One training iteration (fwd+bwd+exchange); returns seconds."""
    approach = APPROACHES[approach] if isinstance(approach, str) else approach
    rpn = 1 if machine.name == "endeavor-phi" else 2
    nranks = nodes * rpn
    sim = Simulator()
    cluster = SimCluster(sim, machine, approach, nranks)

    cores = approach.compute_cores(machine)
    rate = cores * machine.flops_per_core * CNN_EFFICIENCY
    images_per_rank = max(1, minibatch // nranks)
    conv_layers = [l for l in layers if l.kind == "conv"]
    fc_layers = [l for l in layers if l.kind == "fc"]
    # backward costs ~2x forward (grad wrt inputs + grad wrt weights)
    t_conv_f = [
        l.flops_per_image * images_per_rank / rate for l in conv_layers
    ]
    t_conv_b = [2.0 * t for t in t_conv_f]
    # fc is model-parallel: weights (and their flops) divide by ranks,
    # over the full minibatch
    t_fc_f = [
        l.flops_per_image * minibatch / nranks / rate for l in fc_layers
    ]
    t_fc_b = [2.0 * t for t in t_fc_f]
    bwf = 1.0 / (1.0 + 0.3 * math.log2(max(2, nranks) / 2))
    # long-haul recursive-doubling rounds congest the fabric at scale
    ar_bwf = 1.0 / (1.0 + 0.2 * math.log2(max(2, nranks) / 2))
    fc_pair_bytes = max(
        1, minibatch * FC_ACTIVATION_BYTES // max(1, nranks * nranks)
    )

    done: dict[int, float] = {}
    iters = 3

    def program(rank: int):
        mpi = cluster.ranks[rank]
        # §5.3: "backpropagation on convolution layers in one iteration
        # passes data to the corresponding layers for forward
        # propagation in the NEXT iteration" — a layer's gradient
        # allreduce is waited only right before that layer's next
        # forward pass, so it can hide behind a whole iteration of
        # compute when asynchronous progress exists.
        grad_reqs: dict[str, object] = {}
        last_iter = 0.0
        for _ in range(iters):
            t0 = sim.now
            # ---- forward: conv then fc ---------------------------------
            for l, t in zip(conv_layers, t_conv_f):
                req = grad_reqs.pop(l.name, None)
                if req is not None:
                    yield from mpi.wait(req)
                yield t
            for t in t_fc_f:
                if nranks > 1:
                    req = yield from mpi.ialltoall(
                        fc_pair_bytes, bw_factor=bwf
                    )
                    yield from mpi.wait(req)  # synchronized: no overlap
                yield t
            # ---- backward: fc (synchronized), then conv with the
            # cross-iteration gradient allreduce -------------------------
            for t in reversed(t_fc_b):
                yield t
                if nranks > 1:
                    req = yield from mpi.ialltoall(
                        fc_pair_bytes, bw_factor=bwf
                    )
                    yield from mpi.wait(req)
            for l, t in zip(reversed(conv_layers), reversed(t_conv_b)):
                yield t
                if nranks > 1:
                    grad_reqs[l.name] = yield from mpi.iallreduce(
                        l.weight_bytes, bw_factor=ar_bwf
                    )
            last_iter = sim.now - t0
        for req in grad_reqs.values():
            yield from mpi.wait(req)
        done[rank] = last_iter

    procs = [sim.process(program(r)) for r in range(nranks)]
    sim.run(sim.all_of(procs))
    return done[0]


def cnn_images_per_sec(
    machine: MachineConfig,
    approach: "Approach | str",
    nodes: int,
    layers: tuple[LayerSpec, ...] = ALEXNET_LIKE,
    minibatch: int = MINIBATCH,
) -> float:
    """Figure 14 metric: training throughput."""
    t = cnn_iteration(machine, approach, nodes, layers, minibatch)
    return minibatch / t
