"""Simulated segmented 1-D FFT (Table 2, Figure 13).

Weak scaling: a fixed problem size per node (2²⁹ double-complex on
Xeon, 2²⁵ on Phi).  The SOI-style pipeline from
:mod:`repro.apps.fft.distributed` is modeled directly: per segment,
local compute then a nonblocking all-to-all posted so the next
segment's compute can hide it (when progress exists).

All-to-all bandwidth does not scale with node count (§5.2); the
``alltoall_bw_factor`` captures the bisection derating that makes the
offload benefit shrink from ~20 % to marginal between 16 and 256 Xeon
nodes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.simtime.engine import Simulator
from repro.simtime.machine import MachineConfig
from repro.simtime.mpi_model import SimCluster
from repro.simtime.progress_modes import APPROACHES, Approach

#: FFT compute efficiency relative to peak flops.  FFTs are famously
#: memory-bound (a few percent of peak on KNC), and the SOI algorithm
#: additionally does ~2x the arithmetic; calibrated so Table 2's
#: ~310 ms internal compute at 2^25 points/node on Xeon Phi holds.
FFT_EFFICIENCY = 0.02

#: pipeline segments (paper: "partitioning the input on each node into
#: multiple segments and then pipelining")
SEGMENTS = 8


def alltoall_bw_factor(nranks: int) -> float:
    """Per-flow effective bandwidth derating for global all-to-all.

    Bisection bandwidth per flow collapses roughly as a power law once
    the exchange spans more than a switch's worth of nodes — this is
    §5.2's "all-to-all bandwidth does not scale with increasing node
    counts", which erodes the offload benefit at 128+ Xeon nodes.
    """
    if nranks <= 32:
        return 1.0
    return (32.0 / nranks) ** 1.25


@dataclass
class FFTTimings:
    """Per-iteration breakdown (Table 2 columns), rank-0 view, seconds."""

    internal_compute: float
    post: float
    wait: float
    misc: float

    @property
    def total(self) -> float:
        return self.internal_compute + self.post + self.wait + self.misc


def fft_iteration(
    machine: MachineConfig,
    approach: "Approach | str",
    elements_per_rank: int,
    nodes: int,
    ranks_per_node: int = 1,
    segments: int = SEGMENTS,
) -> FFTTimings:
    """One pipelined distributed FFT; returns rank 0's breakdown."""
    approach = APPROACHES[approach] if isinstance(approach, str) else approach
    nranks = nodes * ranks_per_node
    sim = Simulator()
    cluster = SimCluster(sim, machine, approach, nranks)

    n_global = elements_per_rank * nranks
    cores = approach.compute_cores(machine)
    total_flops = 5.0 * elements_per_rank * math.log2(max(2, n_global))
    rate = cores * machine.flops_per_core * FFT_EFFICIENCY
    t_compute_seg = total_flops / rate / segments
    # Final short cross-rank DFT, bit-reversal reordering and unpack per
    # segment (the SOI "more computation" term) — comparable to the
    # main FFT work, which is why Table 2's misc column rivals its
    # internal-compute column.
    t_post_seg = total_flops * 1.1 / rate / segments
    bytes_per_pair_seg = max(
        1, elements_per_rank * 16 // max(1, nranks) // segments
    )
    bwf = alltoall_bw_factor(nranks)

    results: dict[int, FFTTimings] = {}

    def program(rank: int):
        mpi = cluster.ranks[rank]
        post = wait = compute = misc = 0.0
        reqs: list = [None] * segments
        # Segment 0 compute, then pipeline: post s, compute s+1, ...
        t0 = sim.now
        yield t_compute_seg
        compute += sim.now - t0
        for s in range(segments):
            t1 = sim.now
            if nranks > 1:
                # posting a segment's exchange issues 2(p-1)
                # nonblocking point-to-point calls under the hood
                post_cost = 2 * (nranks - 1) * machine.sw_call_base
                reqs[s] = yield from mpi.ialltoall(
                    bytes_per_pair_seg, bw_factor=bwf, build_cost=post_cost
                )
            post += sim.now - t1
            # overlapped compute: next segment's FFT while s exchanges
            t2 = sim.now
            if s + 1 < segments:
                yield t_compute_seg
            compute += sim.now - t2
            t3 = sim.now
            if reqs[s] is not None:
                yield from mpi.wait(reqs[s])
            wait += sim.now - t3
            # post-exchange epilogue for segment s (misc/unpack+DFT)
            t4 = sim.now
            yield t_post_seg
            misc += sim.now - t4
        results[rank] = FFTTimings(compute, post, wait, misc)

    procs = [sim.process(program(r)) for r in range(nranks)]
    sim.run(sim.all_of(procs))
    return results[0]


def fft_gflops(
    machine: MachineConfig,
    approach: "Approach | str",
    elements_per_rank: int,
    nodes: int,
    ranks_per_node: int = 1,
) -> float:
    """Figure 13 metric: aggregate GFLOP/s (5 N log₂ N operations)."""
    t = fft_iteration(
        machine, approach, elements_per_rank, nodes, ranks_per_node
    )
    nranks = nodes * ranks_per_node
    n_global = elements_per_rank * nranks
    flops = 5.0 * n_global * math.log2(max(2, n_global))
    return flops / t.total / 1e9
