"""Simulated Wilson-Dslash and QCD solver (Tables 1, Figures 9–12).

The communication pattern (which neighbor, how many bytes) comes from
the *real* :class:`~repro.apps.qcd.lattice.LatticeGeometry`; only the
compute times are modeled.  Paper specifics honored:

* one rank per socket → 2 ranks per Endeavor/Edison node, 1 per Phi;
* half-spinor (2 spin × 3 color, single precision) face messages —
  which puts 32³×256 at ~48 KB/direction on 512 ranks, below the
  128 KB rendezvous threshold, exactly the §4.3 regime;
* super-linear speedup once the local working set fits in cache
  (§5.1's 256-node observation);
* the *iprobe* variant splits interior compute into chunks with a
  probe pump between chunks (Listing 1's PROGRESS placement).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.apps.qcd.dslash import dslash_flops_per_site
from repro.apps.qcd.lattice import LatticeGeometry
from repro.simtime.engine import Simulator
from repro.simtime.machine import MachineConfig
from repro.simtime.mpi_model import SimCluster
from repro.simtime.progress_modes import APPROACHES, Approach
from repro.util.timing import TimeBreakdown

#: bytes per face site: projected half spinor, single precision
#: (2 spin × 3 color × 8 B complex64)
HALF_SPINOR_BYTES = 48

#: approximate resident bytes per site (gauge links + spinors, single
#: precision) for the cache-fit heuristic
WORKING_SET_BYTES_PER_SITE = 1000

#: compute efficiency of the Dslash kernel relative to peak
#: (calibrated so a 14-core Haswell socket sustains ~150 GF/s, as the
#: paper's QPhiX-based code does)
DSLASH_EFFICIENCY = 0.3


def ranks_per_node(machine: MachineConfig) -> int:
    """One rank per socket: 2 on the dual-socket Xeon machines, 1 on
    the Phi coprocessor."""
    return 1 if machine.name == "endeavor-phi" else 2


def _cache_factor(machine: MachineConfig, local_volume: int) -> float:
    """Compute-rate multiplier from cache residence (smooth ramp)."""
    ws = local_volume * WORKING_SET_BYTES_PER_SITE
    if ws <= machine.cache_bytes:
        return machine.cache_speedup
    if ws >= 4 * machine.cache_bytes:
        return 1.0
    # log-linear ramp between 1x and 4x the cache size
    frac = math.log(4 * machine.cache_bytes / ws) / math.log(4)
    return 1.0 + (machine.cache_speedup - 1.0) * frac


@dataclass
class DslashTimings:
    """Per-iteration breakdown (Table 1 columns), rank-0 view, seconds."""

    internal_compute: float
    post: float
    wait: float
    misc: float

    @property
    def total(self) -> float:
        return self.internal_compute + self.post + self.wait + self.misc


def dslash_iteration(
    machine: MachineConfig,
    approach: "Approach | str",
    lattice: tuple[int, int, int, int],
    nodes: int,
    iterations: int = 3,
    comm_threads: int = 1,
) -> DslashTimings:
    """Simulate ``iterations`` Dslash applications; report the last.

    ``comm_threads > 1`` models the §5.1 thread-groups experiment
    (Figure 12): lattice directions are partitioned across thread
    groups which post, wait for, and boundary-process their own halo
    messages concurrently; non-offload approaches pay
    MPI_THREAD_MULTIPLE costs for the concurrent calls.
    """
    approach = APPROACHES[approach] if isinstance(approach, str) else approach
    rpn = ranks_per_node(machine)
    nranks = nodes * rpn
    geom = LatticeGeometry.partition(lattice, nranks)
    sim = Simulator()
    cluster = SimCluster(
        sim,
        machine,
        approach,
        nranks,
        thread_multiple=comm_threads > 1,
    )

    cores = approach.compute_cores(machine)
    vol = geom.local_volume
    rate = (
        cores
        * machine.flops_per_core
        * DSLASH_EFFICIENCY
        * _cache_factor(machine, vol)
    )
    flops = vol * dslash_flops_per_site()
    dims = geom.decomposed_dims()
    face_bytes = {d: geom.halo_bytes(d, itemsize=8) for d in dims}
    # Boundary processing re-accumulates one of the 8 direction terms
    # on each face site (the received halo's contribution).
    boundary_flops = sum(
        2 * geom.face_sites(d) * dslash_flops_per_site() / 8 for d in dims
    )
    t_interior = max(0.0, flops - boundary_flops) / rate
    t_boundary = boundary_flops / rate
    # Packing is parallelized over the OpenMP team (roughly half the
    # cores' aggregate copy bandwidth is sustained).
    pack_bw = machine.memcpy_bandwidth * max(1, cores // 2)
    t_pack = 2.0 * sum(face_bytes.values()) / pack_bw if dims else 0.0

    results: dict[int, DslashTimings] = {}

    def exchange_dir(mpi, rank: int, d: int, it: int):
        """Post one direction's halo exchange; returns the requests."""
        nb_f = geom.neighbor(rank, d, +1)
        nb_b = geom.neighbor(rank, d, -1)
        base_tag = (it * 8 + 2 * d) * 64
        r1 = yield from mpi.irecv(nb_f, face_bytes[d], tag=base_tag)
        r2 = yield from mpi.irecv(nb_b, face_bytes[d], tag=base_tag + 32)
        s1 = yield from mpi.isend(nb_b, face_bytes[d], tag=base_tag)
        s2 = yield from mpi.isend(nb_f, face_bytes[d], tag=base_tag + 32)
        return [r1, r2, s1, s2]

    def group_proc(mpi, rank: int, my_dims: list[int], it: int):
        """One thread group: posts its directions, computes its share
        of the interior volume, waits for its own messages, then
        boundary-processes its faces.

        Groups are the compute threads themselves (each has 1/T of the
        cores and 1/T of the volume, so its interior wall time equals
        the full team's), not extra workers — which is why the benefit
        of thread groups is posting parallelism and per-group
        pipelining, not free compute.
        """
        reqs = []
        for d in my_dims:
            got = yield from exchange_dir(mpi, rank, d, it)
            reqs += got
        yield t_interior
        yield from mpi.wait_all(reqs)
        if dims:
            # This group's faces on this group's 1/T of the cores.
            yield t_boundary * len(my_dims) / len(dims) * comm_threads
        return None

    def program(rank: int):
        mpi = cluster.ranks[rank]
        last: DslashTimings | None = None
        for it in range(iterations):
            tb = TimeBreakdown()
            t0 = sim.now
            # -- pack (misc) ------------------------------------------
            if t_pack > 0:
                yield t_pack
            tb.add("misc", sim.now - t0)
            if comm_threads > 1 and dims:
                # -- thread-groups mode: directions partitioned over
                # concurrently-running groups -----------------------------
                t1 = sim.now
                groups = [
                    [d for i, d in enumerate(dims) if i % comm_threads == g]
                    for g in range(comm_threads)
                ]
                procs = [
                    sim.process(group_proc(mpi, rank, g, it))
                    for g in groups
                    if g
                ]
                # Groups without directions still compute the interior.
                def idle_group():
                    yield t_interior

                if any(not g for g in groups):
                    procs.append(sim.process(idle_group()))
                tb.add("post", sim.now - t1)
                t2 = sim.now
                yield sim.all_of(procs)
                tb.add("internal_compute", t_interior)
                tb.add("wait", max(0.0, sim.now - t2 - t_interior))
            else:
                # -- funneled mode: master posts everything ----------------
                t1 = sim.now
                reqs = []
                for d in dims:
                    got = yield from exchange_dir(mpi, rank, d, it)
                    reqs += got
                tb.add("post", sim.now - t1)
                t2 = sim.now
                if approach.name == "iprobe" and dims:
                    chunks = 8
                    for _ in range(chunks):
                        yield t_interior / chunks
                        yield from mpi.iprobe_pump()
                else:
                    yield t_interior
                tb.add("internal_compute", sim.now - t2)
                t3 = sim.now
                yield from mpi.wait_all(reqs)
                tb.add("wait", sim.now - t3)
                t4 = sim.now
                yield t_boundary
                tb.add("misc", sim.now - t4)
            last = DslashTimings(
                internal_compute=tb.get("internal_compute"),
                post=tb.get("post"),
                wait=tb.get("wait"),
                misc=tb.get("misc"),
            )
        results[rank] = last  # steady-state iteration

    procs = [sim.process(program(r)) for r in range(nranks)]
    sim.run(sim.all_of(procs))
    return results[0]


def dslash_tflops(
    machine: MachineConfig,
    approach: "Approach | str",
    lattice: tuple[int, int, int, int],
    nodes: int,
    comm_threads: int = 1,
) -> float:
    """Figure 9/12 metric: aggregate sustained TFLOP/s."""
    t = dslash_iteration(
        machine, approach, lattice, nodes, comm_threads=comm_threads
    )
    nranks = nodes * ranks_per_node(machine)
    geom = LatticeGeometry.partition(lattice, nranks)
    total_flops = geom.global_volume * dslash_flops_per_site()
    return total_flops / t.total / 1e12


def solver_tflops(
    machine: MachineConfig,
    approach: "Approach | str",
    lattice: tuple[int, int, int, int],
    nodes: int,
) -> float:
    """Figure 11 metric: full CG/BiCGStab solver TFLOP/s.

    Per solver iteration: 2 Dslash applications, ~6 BLAS-1 sweeps
    (memory-bound, so at a fraction of Dslash's rate), and 2 global
    8-byte allreduce latencies that cannot overlap.
    """
    approach = APPROACHES[approach] if isinstance(approach, str) else approach
    t_dslash = dslash_iteration(machine, approach, lattice, nodes).total
    nranks = nodes * ranks_per_node(machine)
    geom = LatticeGeometry.partition(lattice, nranks)
    cores = approach.compute_cores(machine)
    # BLAS-1 ops run at ~25 % of the stencil's rate (bandwidth-bound).
    blas_flops = 6 * 8 * geom.local_volume * 24 / 8
    t_blas = blas_flops / (cores * machine.flops_per_core * 0.25)
    # Two blocking allreduces (dissemination latency chain).
    stages = max(1, math.ceil(math.log2(nranks)))
    t_allreduce = 2 * stages * (
        machine.net_latency + 2 * machine.action_cost + machine.sw_call_base
    )
    if approach.requires_thread_multiple:
        t_allreduce += 2 * machine.tm_call_overhead
    t_iter = 2 * t_dslash + t_blas + t_allreduce
    total_flops = 2 * geom.global_volume * dslash_flops_per_site() + (
        blas_flops * nranks
    )
    return total_flops / t_iter / 1e12
