"""Simulated microbenchmarks (paper Figures 2–8).

Each function builds a fresh two-or-more-rank :class:`SimCluster`,
runs the benchmark's exact measurement protocol in virtual time, and
returns the numbers the corresponding figure plots.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

from repro.simtime.engine import Simulator
from repro.simtime.machine import MachineConfig
from repro.simtime.mpi_model import SimCluster
from repro.simtime.progress_modes import APPROACHES, Approach


def _approach(a: "Approach | str") -> Approach:
    return APPROACHES[a] if isinstance(a, str) else a


@dataclass(frozen=True)
class OverlapResult:
    """One bar group of Figure 2/3: times as % of communication time."""

    nbytes: int
    comm_time: float
    post_pct: float
    wait_pct: float
    overlap_pct: float


def _overlap_once(
    machine: MachineConfig,
    approach: Approach,
    nbytes: int,
    compute: float,
) -> tuple[float, float, float]:
    """One round of the §4.1 overlap benchmark.

    Returns (post, wait, total) as seen by rank 0.
    """
    sim = Simulator()
    cluster = SimCluster(sim, machine, approach, 2)
    out: dict[int, tuple[float, float, float]] = {}

    def program(rank: int):
        mpi = cluster.ranks[rank]
        peer = 1 - rank
        t0 = sim.now
        rreq = yield from mpi.irecv(peer, nbytes, tag=1)
        sreq = yield from mpi.isend(peer, nbytes, tag=1)
        post = sim.now - t0
        if compute > 0:
            yield compute
        t1 = sim.now
        yield from mpi.wait_all([rreq, sreq])
        out[rank] = (post, sim.now - t1, sim.now - t0)

    procs = [sim.process(program(r)) for r in range(2)]
    sim.run(sim.all_of(procs))
    return out[0]


def overlap_p2p(
    machine: MachineConfig, approach: "Approach | str", nbytes: int
) -> OverlapResult:
    """Figure 2: point-to-point compute/communication overlap.

    Protocol per §4.1: measure communication time with no compute,
    repeat with compute equal to that communication time, and report
    post, wait, and overlap (wait-time reduction) as percentages.
    """
    approach = _approach(approach)
    post0, wait0, comm = _overlap_once(machine, approach, nbytes, 0.0)
    post1, wait1, _total = _overlap_once(machine, approach, nbytes, comm)
    overlap = max(0.0, wait0 - wait1)
    return OverlapResult(
        nbytes=nbytes,
        comm_time=comm,
        post_pct=100.0 * post1 / comm,
        wait_pct=100.0 * wait1 / comm,
        overlap_pct=100.0 * overlap / comm,
    )


_NBC_STAGES = {
    "iallreduce": lambda p: max(1, math.ceil(math.log2(p))),
    "ibcast": lambda p: max(1, math.ceil(math.log2(p))),
    "ibarrier": lambda p: max(1, math.ceil(math.log2(p))),
    "igather": lambda p: 1,
    "ialltoall": lambda p: max(1, p - 1),
}


def _nbc_post(mpi, op: str, nbytes: int):
    if op == "iallreduce":
        return mpi.iallreduce(nbytes)
    if op == "ibcast":
        return mpi.ibcast(nbytes)
    if op == "ibarrier":
        return mpi.ibarrier()
    if op == "igather":
        return mpi.igather(nbytes)
    if op == "ialltoall":
        return mpi.ialltoall(nbytes)
    raise ValueError(f"unknown collective {op}")


def _overlap_coll_once(
    machine: MachineConfig,
    approach: Approach,
    op: str,
    nbytes: int,
    nranks: int,
    compute: float,
) -> tuple[float, float, float]:
    sim = Simulator()
    cluster = SimCluster(sim, machine, approach, nranks)
    out: dict[int, tuple[float, float, float]] = {}

    def program(rank: int):
        mpi = cluster.ranks[rank]
        t0 = sim.now
        req = yield from _nbc_post(mpi, op, nbytes)
        post = sim.now - t0
        if compute > 0:
            yield compute
        t1 = sim.now
        yield from mpi.wait(req)
        out[rank] = (post, sim.now - t1, sim.now - t0)

    procs = [sim.process(program(r)) for r in range(nranks)]
    sim.run(sim.all_of(procs))
    return out[0]


def overlap_collective(
    machine: MachineConfig,
    approach: "Approach | str",
    op: str,
    nbytes: int,
    nranks: int = 32,
) -> OverlapResult:
    """Figure 3: IMB-NBC style overlap for nonblocking collectives."""
    approach = _approach(approach)
    post0, wait0, comm = _overlap_coll_once(
        machine, approach, op, nbytes, nranks, 0.0
    )
    post1, wait1, _ = _overlap_coll_once(
        machine, approach, op, nbytes, nranks, comm
    )
    overlap = max(0.0, wait0 - wait1)
    return OverlapResult(
        nbytes=nbytes,
        comm_time=comm,
        post_pct=100.0 * post1 / comm,
        wait_pct=100.0 * wait1 / comm,
        overlap_pct=100.0 * overlap / comm,
    )


def isend_overhead(
    machine: MachineConfig, approach: "Approach | str", nbytes: int
) -> float:
    """Figure 4: time an application thread spends issuing MPI_Isend
    (modified OSU ping-pong, 2 ranks)."""
    approach = _approach(approach)
    sim = Simulator()
    cluster = SimCluster(sim, machine, approach, 2)
    out: dict[str, float] = {}
    iters = 8

    def sender():
        mpi = cluster.ranks[0]
        post_total = 0.0
        for i in range(iters):
            t0 = sim.now
            sreq = yield from mpi.isend(1, nbytes, tag=i)
            post_total += sim.now - t0
            yield from mpi.wait(sreq)
            rreq = yield from mpi.irecv(1, nbytes, tag=1000 + i)
            yield from mpi.wait(rreq)
        out["post"] = post_total / iters

    def receiver():
        mpi = cluster.ranks[1]
        for i in range(iters):
            rreq = yield from mpi.irecv(0, nbytes, tag=i)
            yield from mpi.wait(rreq)
            sreq = yield from mpi.isend(0, nbytes, tag=1000 + i)
            yield from mpi.wait(sreq)

    procs = [sim.process(sender()), sim.process(receiver())]
    sim.run(sim.all_of(procs))
    return out["post"]


def icollective_overhead(
    machine: MachineConfig,
    approach: "Approach | str",
    op: str,
    nbytes: int,
    nranks: int = 32,
) -> float:
    """Figure 5: time to issue a nonblocking collective call."""
    approach = _approach(approach)
    sim = Simulator()
    cluster = SimCluster(sim, machine, approach, nranks)
    out: dict[int, float] = {}
    iters = 4

    def program(rank: int):
        mpi = cluster.ranks[rank]
        post_total = 0.0
        for _ in range(iters):
            t0 = sim.now
            req = yield from _nbc_post(mpi, op, nbytes)
            post_total += sim.now - t0
            yield from mpi.wait(req)
        out[rank] = post_total / iters

    procs = [sim.process(program(r)) for r in range(nranks)]
    sim.run(sim.all_of(procs))
    return out[0]


def osu_latency(
    machine: MachineConfig, approach: "Approach | str", nbytes: int
) -> float:
    """Figures 7(a)/8(a): OSU one-way latency (half ping-pong)."""
    approach = _approach(approach)
    sim = Simulator()
    cluster = SimCluster(sim, machine, approach, 2)
    out: dict[str, float] = {}
    iters = 10

    def r0():
        mpi = cluster.ranks[0]
        t0 = sim.now
        for i in range(iters):
            s = yield from mpi.isend(1, nbytes, tag=i)
            yield from mpi.wait(s)
            r = yield from mpi.irecv(1, nbytes, tag=1000 + i)
            yield from mpi.wait(r)
        out["lat"] = (sim.now - t0) / (2 * iters)

    def r1():
        mpi = cluster.ranks[1]
        for i in range(iters):
            r = yield from mpi.irecv(0, nbytes, tag=i)
            yield from mpi.wait(r)
            s = yield from mpi.isend(0, nbytes, tag=1000 + i)
            yield from mpi.wait(s)

    procs = [sim.process(r0()), sim.process(r1())]
    sim.run(sim.all_of(procs))
    return out["lat"]


def osu_bandwidth(
    machine: MachineConfig,
    approach: "Approach | str",
    nbytes: int,
    window: int = 32,
) -> float:
    """Figures 7(b)/8(b): OSU unidirectional bandwidth (B/s)."""
    approach = _approach(approach)
    sim = Simulator()
    cluster = SimCluster(sim, machine, approach, 2)
    out: dict[str, float] = {}

    def r0():
        mpi = cluster.ranks[0]
        t0 = sim.now
        reqs = []
        for i in range(window):
            s = yield from mpi.isend(1, nbytes, tag=i)
            reqs.append(s)
        yield from mpi.wait_all(reqs)
        ack = yield from mpi.irecv(1, 8, tag=9999)
        yield from mpi.wait(ack)
        out["bw"] = window * nbytes / (sim.now - t0)

    def r1():
        mpi = cluster.ranks[1]
        reqs = []
        for i in range(window):
            r = yield from mpi.irecv(0, nbytes, tag=i)
            reqs.append(r)
        yield from mpi.wait_all(reqs)
        s = yield from mpi.isend(0, 8, tag=9999)
        yield from mpi.wait(s)

    procs = [sim.process(r0()), sim.process(r1())]
    sim.run(sim.all_of(procs))
    return out["bw"]


def rma_put_overlap(
    machine: MachineConfig,
    approach: "Approach | str",
    nbytes: int,
    compute: float = 2e-4,
) -> tuple[float, bool]:
    """§7-extension microbenchmark: a one-sided put to a computing
    target.

    Returns ``(wait_time, done_during_compute)`` for the origin.  With
    no progress context at the target the put cannot be applied until
    someone there enters MPI; a dedicated progress context applies it
    mid-compute (the Casper behaviour).
    """
    approach = _approach(approach)
    sim = Simulator()
    cluster = SimCluster(sim, machine, approach, 2)
    out: dict[str, Any] = {}

    def origin():
        mpi = cluster.ranks[0]
        req = yield from mpi.rma_put(1, nbytes)
        yield compute
        out["done_during_compute"] = req.done
        t0 = sim.now
        yield from mpi.wait(req)
        out["wait"] = sim.now - t0

    def target():
        mpi = cluster.ranks[1]
        yield compute  # pure compute; no MPI entry
        # a fence-like entry at the end drives progress for baseline
        yield from mpi.iprobe_pump()

    procs = [sim.process(origin()), sim.process(target())]
    sim.run(sim.all_of(procs))
    return out["wait"], out["done_during_compute"]


def osu_mt_latency(
    machine: MachineConfig,
    approach: "Approach | str",
    nbytes: int,
    nthreads: int,
) -> float:
    """Figure 6: OSU multithreaded latency.

    ``nthreads`` thread pairs per rank run concurrent ping-pongs; the
    world is ``MPI_THREAD_MULTIPLE`` (except that offloaded calls never
    enter MPI, which is the whole point).  Returns the mean one-way
    latency across thread pairs.
    """
    approach = _approach(approach)
    sim = Simulator()
    cluster = SimCluster(
        sim, machine, approach, 2, thread_multiple=nthreads > 1
    )
    iters = 8
    lat: list[float] = []

    def thread0(tid: int):
        mpi = cluster.ranks[0]
        t0 = sim.now
        for i in range(iters):
            s = yield from mpi.isend(1, nbytes, tag=tid * 10000 + i)
            yield from mpi.wait(s)
            r = yield from mpi.irecv(1, nbytes, tag=tid * 10000 + 5000 + i)
            yield from mpi.wait(r)
        lat.append((sim.now - t0) / (2 * iters))

    def thread1(tid: int):
        mpi = cluster.ranks[1]
        for i in range(iters):
            r = yield from mpi.irecv(0, nbytes, tag=tid * 10000 + i)
            yield from mpi.wait(r)
            s = yield from mpi.isend(0, nbytes, tag=tid * 10000 + 5000 + i)
            yield from mpi.wait(s)

    procs = []
    for t in range(nthreads):
        procs.append(sim.process(thread0(t)))
        procs.append(sim.process(thread1(t)))
    sim.run(sim.all_of(procs))
    return sum(lat) / len(lat)
