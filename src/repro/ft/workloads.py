"""Membership-agnostic epoch workloads for the resilient driver.

The hard part of surviving a rank death is not restarting — it is
restarting *without changing the answer*.  Both workloads here (the
paper's Fig. 14 CNN trainer and Fig. 9 QCD solver loop, reduced to
epoch form) are built so that a run that loses ranks, shrinks, and
resumes from a checkpoint produces **bitwise identical** final state
to a fault-free run at any rank count.  Two ingredients:

* **Replicated state, unit-sharded work.**  The full application state
  lives on every rank.  Each epoch's work is cut into a fixed number
  of canonical *units*; unit ``u`` is computed by rank ``u % P`` for
  the *current* membership, so ownership re-balances transparently
  after a shrink — but a unit's arithmetic depends only on (state,
  epoch), never on who computes it.
* **Disjoint-slot exchange.**  Owners write results into disjoint rows
  of a zero-initialized ``(units, ...)`` array and a single
  ``allreduce(SUM)`` replicates the full set.  Every element has
  exactly one nonzero contributor, and IEEE-754 ``x + 0.0`` is exact,
  so the reduction is bitwise reproducible for *any* rank count and
  *any* reduction order.  The final combination across units happens
  locally, in canonical unit order.

Both apps implement the driver protocol
(:func:`repro.ft.resilient.run_resilient`): ``epochs``, ``init``,
``step``, ``snapshot``, ``restore``, ``finish``.  ``step`` is pure
(fresh scratch objects per call) so one app instance can be shared by
every rank thread.
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import seeded_rng


class CNNEpochApp:
    """Fig. 14 CNN training as a resilient epoch workload.

    One epoch = one SGD step of a dense classifier
    (:class:`repro.apps.cnn.layers.Dense` stack with the softmax
    cross-entropy head) on a deterministic synthetic batch.  The batch
    is cut into ``units`` canonical slices; each owner runs the full
    forward/backward on its slices and contributes the per-unit
    gradients through the disjoint-slot exchange.  The state vector is
    the flattened parameters plus one trailing slot accumulating the
    epoch losses (so the final bytes witness the whole training
    history, not just the last step).
    """

    name = "cnn-fig14"

    def __init__(
        self,
        epochs: int = 5,
        batch: int = 16,
        features: int = 12,
        hidden: int = 16,
        classes: int = 4,
        units: int = 8,
        lr: float = 0.05,
        seed: int = 0,
    ) -> None:
        if batch % units:
            raise ValueError(f"batch {batch} not divisible by {units} units")
        self.epochs = epochs
        self.batch = batch
        self.features = features
        self.hidden = hidden
        self.classes = classes
        self.units = units
        self.lr = lr
        self.seed = seed
        self._shapes = [
            (hidden, features),
            (hidden,),
            (classes, hidden),
            (classes,),
        ]
        self._nparams = sum(int(np.prod(s)) for s in self._shapes)

    # -- model plumbing ----------------------------------------------------

    def _build(self, params: np.ndarray):
        from repro.apps.cnn.layers import Dense, ReLU
        from repro.apps.cnn.network import Sequential

        model = Sequential(
            [
                Dense(self.features, self.hidden, seed=("ft", self.seed, 0)),
                ReLU(),
                Dense(self.hidden, self.classes, seed=("ft", self.seed, 1)),
            ]
        )
        off = 0
        for layer, name, p in model.parameters():
            n = p.size
            layer.params[name] = params[off : off + n].reshape(p.shape).copy()
            off += n
        return model

    def _pack(self, arrays) -> np.ndarray:
        return np.concatenate([np.asarray(a).ravel() for a in arrays])

    def _batch_for(self, epoch: int):
        rng = seeded_rng("ft-cnn-batch", self.seed, epoch)
        x = rng.standard_normal((self.batch, self.features))
        y = rng.integers(0, self.classes, self.batch)
        return x, y

    # -- driver protocol ---------------------------------------------------

    def init(self, comm) -> np.ndarray:
        from repro.apps.cnn.layers import Dense, ReLU
        from repro.apps.cnn.network import Sequential

        # The layers' own seeded initializations are the initial state.
        model = Sequential(
            [
                Dense(self.features, self.hidden, seed=("ft", self.seed, 0)),
                ReLU(),
                Dense(self.hidden, self.classes, seed=("ft", self.seed, 1)),
            ]
        )
        params = self._pack(p for _, _, p in model.parameters())
        return np.concatenate([params, [0.0]])

    def step(self, comm, state: np.ndarray, epoch: int) -> np.ndarray:
        params = state[:-1]
        x, y = self._batch_for(epoch)
        bs = self.batch // self.units
        size, me = comm.size, comm.rank
        unit_grads = np.zeros((self.units, self._nparams))
        unit_loss = np.zeros(self.units)
        for u in range(self.units):
            if u % size != me:
                continue
            model = self._build(params)
            loss = model.loss(x[u * bs : (u + 1) * bs], y[u * bs : (u + 1) * bs])
            model.backward()
            unit_grads[u] = self._pack(
                layer.grads[name]
                for layer, name, _ in model.parameters()
            )
            unit_loss[u] = loss
        all_grads = comm.allreduce(unit_grads)
        all_loss = comm.allreduce(unit_loss)
        # Canonical-order combination: identical on every rank at any P.
        grad = np.zeros(self._nparams)
        loss_sum = 0.0
        for u in range(self.units):
            grad += all_grads[u]
            loss_sum += all_loss[u]
        new_params = params - self.lr * (grad / self.units)
        return np.concatenate(
            [new_params, [state[-1] + loss_sum / self.units]]
        )

    def snapshot(self, state: np.ndarray) -> bytes:
        return state.tobytes()

    def restore(self, blob: bytes) -> np.ndarray:
        return np.frombuffer(blob, dtype=np.float64).copy()

    def finish(self, comm, state: np.ndarray) -> np.ndarray:
        return state


class QCDEpochApp:
    """Fig. 9 QCD solver loop as a resilient epoch workload.

    One epoch = a few Richardson iterations ``x += omega * (b - A x)``
    of a Wilson-like nearest-neighbor hopping operator
    ``A = I - kappa * (shift(+1) + shift(-1))`` on a periodic 1-D
    lattice — the Dslash-apply + global-reduction structure of the
    paper's solvers (§5.1) in epoch form.  The operator application is
    unit-sharded over lattice slices (the state is replicated, so an
    owner computes its slice exactly, neighbors included), and the
    residual norm is accumulated from per-unit partial dots combined
    in canonical unit order.  State = the field plus one trailing slot
    accumulating residual norms across epochs.
    """

    name = "qcd-fig9"

    def __init__(
        self,
        epochs: int = 5,
        sites: int = 64,
        units: int = 8,
        iters: int = 3,
        kappa: float = 0.45,
        omega: float = 0.8,
        seed: int = 0,
    ) -> None:
        if sites % units:
            raise ValueError(f"{sites} sites not divisible by {units} units")
        self.epochs = epochs
        self.sites = sites
        self.units = units
        self.iters = iters
        self.kappa = kappa
        self.omega = omega
        self.seed = seed

    def _rhs(self) -> np.ndarray:
        return seeded_rng("ft-qcd-rhs", self.seed).standard_normal(self.sites)

    def _apply_unit(self, x: np.ndarray, u: int) -> np.ndarray:
        """A x restricted to unit ``u``'s site slice (x is replicated)."""
        ns = self.sites // self.units
        lo = u * ns
        idx = np.arange(lo, lo + ns)
        return (
            x[idx]
            - self.kappa * (x[(idx + 1) % self.sites] + x[(idx - 1) % self.sites])
        )

    # -- driver protocol ---------------------------------------------------

    def init(self, comm) -> np.ndarray:
        return np.concatenate([np.zeros(self.sites), [0.0]])

    def step(self, comm, state: np.ndarray, epoch: int) -> np.ndarray:
        x = state[:-1].copy()
        resid_acc = state[-1]
        b = self._rhs()
        ns = self.sites // self.units
        size, me = comm.size, comm.rank
        for _ in range(self.iters):
            y = np.zeros(self.sites)
            partial = np.zeros(self.units)
            for u in range(self.units):
                if u % size != me:
                    continue
                au = self._apply_unit(x, u)
                y[u * ns : (u + 1) * ns] = au
                r_u = b[u * ns : (u + 1) * ns] - au
                partial[u] = float(r_u @ r_u)
            y = comm.allreduce(y)
            partial = comm.allreduce(partial)
            rnorm2 = 0.0
            for u in range(self.units):
                rnorm2 += partial[u]
            x = x + self.omega * (b - y)
            resid_acc += np.sqrt(rnorm2)
        return np.concatenate([x, [resid_acc]])

    def snapshot(self, state: np.ndarray) -> bytes:
        return state.tobytes()

    def restore(self, blob: bytes) -> np.ndarray:
        return np.frombuffer(blob, dtype=np.float64).copy()

    def finish(self, comm, state: np.ndarray) -> np.ndarray:
        return state
