"""Versioned checkpoint stores for the resilient driver.

A checkpoint is one *committed, consistent* snapshot of the replicated
application state at an epoch boundary: it is written only after every
survivor agreed the epoch completed (see
:func:`repro.ft.resilient.run_resilient`), so restoring from the
latest committed version is always safe — a crash between the
agreement and the commit merely replays one deterministic epoch.

Consistency rules (DESIGN.md §15):

* **Commit is atomic.**  The in-memory store swaps a dict entry under
  a lock; the disk store writes a temp file and ``os.replace``\\ s it
  into place, so a reader never observes a torn snapshot.
* **Versions are immutable.**  ``commit`` of an epoch that already has
  a snapshot is a no-op (first writer wins): after a shrink several
  survivors may race to re-commit the same replayed epoch with
  byte-identical blobs.
* **Restore reads the newest committed version**, never a newer
  uncommitted one — ``latest`` only sees what ``commit`` finished.

Every committed byte is counted in the store's ``checkpoint_bytes``
counter (obs glossary), and recovery cycles increment ``restarts``.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass

from repro.obs.counters import Counters


@dataclass(frozen=True)
class Checkpoint:
    """One committed snapshot: the epoch it closes and its bytes."""

    epoch: int
    blob: bytes


class CheckpointStore:
    """Base class: versioned snapshots keyed by epoch.

    Subclasses implement ``_put``/``_get``/``_epochs``; the public
    surface adds idempotent commit, latest-version lookup, and the
    ``checkpoint_bytes``/``restarts`` counters shared with the
    resilient driver.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.counters = Counters()

    # -- subclass storage primitives ---------------------------------------

    def _put(self, epoch: int, blob: bytes) -> None:
        raise NotImplementedError

    def _get(self, epoch: int) -> bytes | None:
        raise NotImplementedError

    def _epochs(self) -> list[int]:
        raise NotImplementedError

    # -- public surface ----------------------------------------------------

    def commit(self, epoch: int, blob: bytes) -> bool:
        """Commit ``blob`` as epoch ``epoch``'s snapshot.

        First writer wins; re-commits of an existing epoch are no-ops
        (replayed epochs produce byte-identical state, so there is
        nothing to reconcile).  Returns True when this call wrote.
        """
        with self._lock:
            if self._get(epoch) is not None:
                return False
            self._put(epoch, bytes(blob))
        self.counters.inc("checkpoint_bytes", len(blob))
        return True

    def load(self, epoch: int) -> Checkpoint | None:
        with self._lock:
            blob = self._get(epoch)
        return None if blob is None else Checkpoint(epoch, blob)

    def latest(self) -> Checkpoint | None:
        """The newest committed snapshot (None when empty)."""
        with self._lock:
            epochs = self._epochs()
            if not epochs:
                return None
            epoch = max(epochs)
            blob = self._get(epoch)
        return None if blob is None else Checkpoint(epoch, blob)

    def epochs(self) -> list[int]:
        with self._lock:
            return sorted(self._epochs())

    def record_restart(self) -> None:
        """Count one revoke→agree→shrink→restore recovery cycle."""
        self.counters.inc("restarts")

    def stats(self) -> dict[str, int]:
        return self.counters.snapshot()


class MemoryCheckpointStore(CheckpointStore):
    """Snapshots in a process-local dict (ranks share the process)."""

    def __init__(self) -> None:
        super().__init__()
        self._blobs: dict[int, bytes] = {}

    def _put(self, epoch: int, blob: bytes) -> None:
        self._blobs[epoch] = blob

    def _get(self, epoch: int) -> bytes | None:
        return self._blobs.get(epoch)

    def _epochs(self) -> list[int]:
        return list(self._blobs)


class DiskCheckpointStore(CheckpointStore):
    """Snapshots as files: ``ckpt_<epoch>.bin`` under one directory.

    Commit writes ``.ckpt_<epoch>.tmp`` and ``os.replace``\\ s it into
    place — the rename is atomic, so a snapshot either exists complete
    or not at all, never torn.
    """

    _PREFIX = "ckpt_"
    _SUFFIX = ".bin"

    def __init__(self, directory: str) -> None:
        super().__init__()
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    def _path(self, epoch: int) -> str:
        return os.path.join(
            self.directory, f"{self._PREFIX}{epoch:08d}{self._SUFFIX}"
        )

    def _put(self, epoch: int, blob: bytes) -> None:
        tmp = os.path.join(self.directory, f".{self._PREFIX}{epoch:08d}.tmp")
        with open(tmp, "wb") as fh:
            fh.write(blob)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self._path(epoch))

    def _get(self, epoch: int) -> bytes | None:
        try:
            with open(self._path(epoch), "rb") as fh:
                return fh.read()
        except FileNotFoundError:
            return None

    def _epochs(self) -> list[int]:
        out = []
        for name in os.listdir(self.directory):
            if name.startswith(self._PREFIX) and name.endswith(self._SUFFIX):
                try:
                    out.append(
                        int(name[len(self._PREFIX):-len(self._SUFFIX)])
                    )
                except ValueError:
                    continue
        return out
