"""Fault tolerance: surviving rank death (DESIGN.md §15).

The offload stack concentrates failure *detection* — a dead rank's
traffic fails typed everywhere within one progress interaction — but
until this package, detection was terminal: a chaos workload that lost
a rank failed fast.  ``repro.ft`` closes the loop with the ULFM-style
recovery plane (``Communicator.revoke`` / ``agree`` / ``shrink`` in
:mod:`repro.mpisim`) plus application-level checkpoint/restart:

* :mod:`repro.ft.checkpoint` — versioned, consistent snapshots
  (in-memory and on-disk stores, atomic commit);
* :mod:`repro.ft.resilient` — the :func:`run_resilient` driver:
  checkpoint at epoch boundaries, and on a rank death run
  revoke → agree → shrink, restore the survivors from the last
  consistent checkpoint, and keep going;
* :mod:`repro.ft.workloads` — membership-agnostic, bitwise-
  deterministic epoch workloads (the Fig. 14 CNN trainer and the
  Fig. 9 QCD solver loop) whose results are byte-identical whether
  the run lost ranks or not.
"""

from repro.ft.checkpoint import (
    Checkpoint,
    CheckpointStore,
    DiskCheckpointStore,
    MemoryCheckpointStore,
)
from repro.ft.resilient import ResilientReport, run_resilient

__all__ = [
    "Checkpoint",
    "CheckpointStore",
    "DiskCheckpointStore",
    "MemoryCheckpointStore",
    "ResilientReport",
    "run_resilient",
]
