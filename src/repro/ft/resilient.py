"""``run_resilient``: checkpointed epochs that survive rank death.

The driver runs an epoch application (protocol below) SPMD over a
:class:`~repro.mpisim.world.World` and closes the ULFM recovery loop
(DESIGN.md §15).  Per epoch, on every rank:

1. ``step`` the application (all communication goes through the
   *active* communicator — initially the world, later a shrunk one);
2. ``agree`` on whether the epoch completed everywhere — the
   fault-tolerant agreement returns the same flag on every survivor
   even when participants die mid-protocol;
3. on success, the smallest live rank commits a consistent snapshot to
   the :class:`~repro.ft.checkpoint.CheckpointStore` and everyone
   advances; on failure, survivors ``revoke`` the communicator,
   ``shrink`` to the agreed-live membership, restore from the latest
   committed checkpoint, and replay from there.

A rank that was *recorded dead* (fault injection, peer marking) exits
by re-raising its recorded death — it never rejoins, and its absence
is what the survivors shrink around.  Because the epoch apps in
:mod:`repro.ft.workloads` are membership-agnostic and bitwise
deterministic, the survivors' final state is byte-identical to a
fault-free run.

Application protocol (duck-typed)::

    app.epochs                      # number of epochs to run
    app.init(comm) -> state        # deterministic initial state
    app.step(comm, state, epoch)   # pure epoch transition -> new state
    app.snapshot(state) -> bytes   # serialize
    app.restore(blob) -> state     # deserialize (inverse of snapshot)
    app.finish(comm, state)        # final result (often just state)
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.core.recovery import RecoveryPolicy
from repro.ft.checkpoint import CheckpointStore, MemoryCheckpointStore
from repro.mpisim.exceptions import WorldError
from repro.mpisim.world import World
from repro.obs.counters import merge_counters


@dataclass
class ResilientReport:
    """Outcome of one :func:`run_resilient` run."""

    #: every surviving rank completed and their results agree bytewise
    ok: bool
    #: canonical final snapshot bytes (None when no rank completed)
    result: bytes | None
    #: global rank -> final snapshot bytes, survivors only
    results: dict[int, bytes]
    #: global ranks recorded dead during the run
    dead: list[int]
    #: recovery cycles (revoke -> agree -> shrink -> restore)
    restarts: int
    #: bytes committed to the checkpoint store
    checkpoint_bytes: int
    #: epochs the application defines (== epochs completed when ok)
    epochs: int
    #: summed fault-tolerance counters across all progress engines
    counters: dict[str, int] = field(default_factory=dict)
    #: failures that were *not* expected dead-rank bookkeeping
    unexpected: dict[int, str] = field(default_factory=dict)


def _expected_death(world: World, rank: int, exc: BaseException) -> bool:
    """Is this per-rank failure just the recorded death resurfacing?"""
    if rank in world.dead_ranks:
        return True
    from repro.faults.plan import FaultInjectionError

    return isinstance(exc, FaultInjectionError)


def _rank_loop(
    comm,
    app,
    store: CheckpointStore,
    results: dict[int, bytes],
    results_lock: threading.Lock,
    offload: bool,
    recovery: RecoveryPolicy | None,
    op_timeout: float,
    max_restarts: int,
    ft_timeout: float,
) -> None:
    world = comm.world
    me = comm.rank  # world rank == global rank for the world comm

    def _check_self_dead() -> None:
        dead = world.dead_ranks
        if me in dead:
            raise dead[me]

    def _epoch_loop(active) -> bytes:
        state = None
        epoch = 0
        restarts = 0
        while epoch < app.epochs:
            _check_self_dead()
            if state is None:
                ck = store.latest()
                if ck is None:
                    state = app.init(active)
                    epoch = 0
                else:
                    state = app.restore(ck.blob)
                    epoch = ck.epoch + 1
                if epoch >= app.epochs:
                    break
            ok = 1
            new_state = None
            try:
                new_state = app.step(active, state, epoch)
            except Exception:  # noqa: BLE001 - folded into the agreement
                ok = 0
                # ULFM rule: the detector revokes *before* agreeing.
                # A peer that lost its exchange partner mid-collective
                # is still blocked waiting on a live rank; the revoke
                # notice piggybacked on our agreement traffic poisons
                # its pending operations and frees it to join the
                # agreement (a failed collective need not fail on
                # every member — only revoke makes that global).
                active.revoke()
            _check_self_dead()
            # Same flag on every survivor, even if participants died
            # mid-protocol; works on a revoked communicator too.
            flag = active.agree(ok, timeout=ft_timeout)
            if flag:
                state = new_state
                inner = getattr(active, "inner", active)
                dead = world.dead_ranks
                live = [g for g in inner.group if g not in dead]
                if live and min(live) == me:
                    store.commit(epoch, app.snapshot(state))
                epoch += 1
                continue
            # Recovery cycle: someone's epoch failed.  Shrink around
            # the dead and replay from the last committed snapshot.
            restarts += 1
            if restarts > max_restarts:
                raise RuntimeError(
                    f"rank {me}: gave up after {max_restarts} restarts"
                )
            active.revoke()
            active = active.shrink(timeout=ft_timeout)
            if active.rank == 0:
                store.record_restart()
            state = None  # restore at the top of the loop
        final = app.finish(active, state)
        return app.snapshot(final)

    if offload:
        from repro.core.interpose import offloaded

        rec = recovery or RecoveryPolicy(rank_failure="shrink")
        with offloaded(
            comm, telemetry=True, recovery=rec, op_timeout=op_timeout
        ) as oc:
            blob = _epoch_loop(oc)
    else:
        blob = _epoch_loop(comm)
    with results_lock:
        results[me] = blob


def run_resilient(
    app,
    world: World,
    *,
    store: CheckpointStore | None = None,
    offload: bool = False,
    recovery: RecoveryPolicy | None = None,
    op_timeout: float = 1.0,
    max_restarts: int | None = None,
    ft_timeout: float = 30.0,
    run_timeout: float = 120.0,
) -> ResilientReport:
    """Run ``app`` to completion over ``world``, surviving rank death.

    Parameters
    ----------
    store:
        Checkpoint store shared by all ranks (defaults to a fresh
        :class:`MemoryCheckpointStore`).
    offload:
        Route the application's MPI through an offload engine per rank
        (:func:`repro.core.interpose.offloaded`); the engine's
        ``rank_failure="shrink"`` policy auto-revokes on dead-rank
        failures, so detection reaches the driver as a typed step
        failure.
    recovery:
        Offload-mode :class:`RecoveryPolicy` override.
    max_restarts:
        Recovery cycles before a rank gives up (default: one per
        possible death, ``nranks``).
    ft_timeout:
        Budget for each ``agree``/``shrink`` protocol run.
    """
    if store is None:
        store = MemoryCheckpointStore()
    if max_restarts is None:
        max_restarts = world.nranks
    results: dict[int, bytes] = {}
    results_lock = threading.Lock()
    unexpected: dict[int, str] = {}
    try:
        world.run(
            _rank_loop,
            app,
            store,
            results,
            results_lock,
            offload,
            recovery,
            op_timeout,
            max_restarts,
            ft_timeout,
            timeout=run_timeout,
        )
    except WorldError as exc:
        # Dead ranks re-raise their recorded death by design; anything
        # else (including a timeout = hang) is a real failure.
        for rank, sub in exc.failures.items():
            if not _expected_death(world, rank, sub):
                unexpected[rank] = f"{type(sub).__name__}: {sub}"
    dead = sorted(world.dead_ranks)
    blobs = {r: results[r] for r in sorted(results)}
    canonical = next(iter(blobs.values()), None)
    agree_bytes = canonical is not None and all(
        b == canonical for b in blobs.values()
    )
    stats = store.stats()
    ok = bool(agree_bytes and not unexpected)
    return ResilientReport(
        ok=ok,
        result=canonical,
        results=blobs,
        dead=dead,
        restarts=stats.get("restarts", 0),
        checkpoint_bytes=stats.get("checkpoint_bytes", 0),
        epochs=app.epochs,
        counters=merge_counters(
            [
                {
                    k: e.counters().get(k, 0)
                    for k in ("comm_revokes", "agree_rounds", "shrink_epochs")
                }
                for e in world.engines
            ]
        ),
        unexpected=unexpected,
    )


__all__ = ["ResilientReport", "run_resilient"]
