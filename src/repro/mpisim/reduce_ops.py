"""Reduction operators for collectives.

Each op is a named wrapper around a NumPy ufunc applied elementwise.
All provided ops are commutative and associative, which the tree-based
reduction algorithms in :mod:`repro.mpisim.collectives` rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np


@dataclass(frozen=True)
class ReduceOp:
    """An elementwise reduction operator.

    ``fn(a, b, out)`` must write the combination of ``a`` and ``b``
    into ``out`` (which may alias ``a``).
    """

    name: str
    fn: Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray]

    def __call__(
        self, a: np.ndarray, b: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        if out is None:
            out = np.empty_like(a)
        return self.fn(a, b, out)

    def __repr__(self) -> str:
        return f"ReduceOp({self.name})"


def _logical(ufunc):
    def fn(a, b, out):
        # logical ops return bools; cast back to the input dtype the way
        # MPI_LAND on integers does.
        np.copyto(out, ufunc(a != 0, b != 0).astype(a.dtype))
        return out

    return fn


SUM = ReduceOp("sum", lambda a, b, out: np.add(a, b, out=out))
PROD = ReduceOp("prod", lambda a, b, out: np.multiply(a, b, out=out))
MAX = ReduceOp("max", lambda a, b, out: np.maximum(a, b, out=out))
MIN = ReduceOp("min", lambda a, b, out: np.minimum(a, b, out=out))
LAND = ReduceOp("land", _logical(np.logical_and))
LOR = ReduceOp("lor", _logical(np.logical_or))
BAND = ReduceOp("band", lambda a, b, out: np.bitwise_and(a, b, out=out))
BOR = ReduceOp("bor", lambda a, b, out: np.bitwise_or(a, b, out=out))

ALL_OPS: tuple[ReduceOp, ...] = (SUM, PROD, MAX, MIN, LAND, LOR, BAND, BOR)
INTEGER_ONLY_OPS: tuple[ReduceOp, ...] = (BAND, BOR)
