"""Receive-status object (the analogue of ``MPI_Status``)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Status:
    """Outcome of a completed receive or probe.

    Attributes
    ----------
    source:
        Rank the message actually came from (resolves ``ANY_SOURCE``).
    tag:
        Tag the message actually carried (resolves ``ANY_TAG``).
    count:
        Payload size in bytes.
    cancelled:
        True when the operation was cancelled before matching.
    """

    source: int
    tag: int
    count: int
    cancelled: bool = False

    def get_count(self, itemsize: int = 1) -> int:
        """Number of elements of the given ``itemsize`` received.

        Raises :class:`ValueError` when the byte count is not an exact
        multiple, mirroring ``MPI_UNDEFINED`` from ``MPI_Get_count``.
        """
        if itemsize <= 0:
            raise ValueError("itemsize must be positive")
        if self.count % itemsize:
            raise ValueError(
                f"received {self.count} bytes, not a multiple of {itemsize}"
            )
        return self.count // itemsize


#: Placeholder status used for locally-completed operations (e.g. sends
#: and ``PROC_NULL`` receives).
EMPTY_STATUS = Status(source=-2, tag=-1, count=0)
