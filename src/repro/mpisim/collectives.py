"""Blocking collectives implemented over point-to-point.

Algorithms are the textbook ones production MPIs use at these scales:

* barrier — dissemination (⌈log₂ p⌉ rounds);
* bcast / reduce — binomial trees;
* allreduce — recursive doubling (power-of-two), reduce+bcast otherwise;
* gather / scatter — linear rooted exchange;
* allgather — ring;
* alltoall — fully posted nonblocking pairwise exchange;
* reduce_scatter — reduce + scatter;
* scan — linear chain.

All traffic runs on the communicator's *collective* context with a
per-call sequence tag, so user point-to-point can never match it and
back-to-back collectives cannot cross-talk.
"""

from __future__ import annotations

import numpy as np

from repro.mpisim.communicator import Communicator
from repro.mpisim.datatypes import pack_object, unpack_object
from repro.mpisim.reduce_ops import ReduceOp, SUM
from repro.mpisim.requests import waitall


def _contig(arr: np.ndarray, name: str) -> np.ndarray:
    if not isinstance(arr, np.ndarray):
        raise TypeError(f"{name} must be a NumPy array")
    if not arr.flags.c_contiguous:
        raise ValueError(f"{name} must be C-contiguous")
    return arr


def _sendrecv(
    comm: Communicator,
    sendarr: np.ndarray,
    dst: int,
    recvarr: np.ndarray,
    src: int,
    tag: int,
) -> None:
    ctx = comm.ctx_coll
    rreq = comm._irecv_internal(recvarr, src, tag, ctx)
    sreq = comm._isend_internal(sendarr, dst, tag, ctx)
    waitall([sreq, rreq])


def barrier(comm: Communicator) -> None:
    """Dissemination barrier."""
    tag = comm.next_coll_tag()
    size, rank = comm.size, comm.rank
    if size == 1:
        return
    token = np.zeros(1, dtype=np.uint8)
    sink = np.zeros(1, dtype=np.uint8)
    dist = 1
    while dist < size:
        dst = (rank + dist) % size
        src = (rank - dist) % size
        _sendrecv(comm, token, dst, sink, src, tag)
        dist <<= 1


def bcast(comm: Communicator, buf: np.ndarray, root: int = 0) -> None:
    """Binomial-tree broadcast; ``buf`` holds data at root, is filled
    elsewhere."""
    buf = _contig(buf, "buf")
    tag = comm.next_coll_tag()
    size, rank = comm.size, comm.rank
    if size == 1:
        return
    ctx = comm.ctx_coll
    vrank = (rank - root) % size
    # Receive from the parent (peel the lowest set bit of vrank).
    mask = 1
    while mask < size:
        if vrank & mask:
            parent = ((vrank - mask) + root) % size
            comm._irecv_internal(buf, parent, tag, ctx).wait()
            break
        mask <<= 1
    else:
        mask = 1
        while mask < size:
            mask <<= 1
    # Forward to children, highest distance first.
    mask >>= 1
    while mask > 0:
        if vrank + mask < size and not (vrank & mask):
            child = ((vrank + mask) + root) % size
            comm._isend_internal(buf, child, tag, ctx).wait()
        mask >>= 1


def bcast_obj(comm: Communicator, obj=None, root: int = 0):
    """Broadcast an arbitrary picklable object; returns it on all ranks."""
    size_buf = np.zeros(1, dtype=np.int64)
    if comm.rank == root:
        payload = pack_object(obj)
        size_buf[0] = payload.nbytes
    bcast(comm, size_buf, root)
    if comm.rank != root:
        payload = np.empty(int(size_buf[0]), dtype=np.uint8)
    bcast(comm, payload, root)
    return obj if comm.rank == root else unpack_object(payload)


def reduce(
    comm: Communicator,
    sendbuf: np.ndarray,
    recvbuf: np.ndarray | None = None,
    op: ReduceOp = SUM,
    root: int = 0,
) -> np.ndarray | None:
    """Binomial-tree reduction to ``root``.

    Returns the filled ``recvbuf`` at root, ``None`` elsewhere.
    """
    sendbuf = _contig(sendbuf, "sendbuf")
    tag = comm.next_coll_tag()
    size, rank = comm.size, comm.rank
    ctx = comm.ctx_coll
    vrank = (rank - root) % size
    acc = sendbuf.copy()
    tmp = np.empty_like(sendbuf)
    mask = 1
    while mask < size:
        if vrank & mask:
            parent = ((vrank - mask) + root) % size
            comm._isend_internal(acc, parent, tag, ctx).wait()
            break
        child_v = vrank + mask
        if child_v < size:
            child = (child_v + root) % size
            comm._irecv_internal(tmp, child, tag, ctx).wait()
            op(acc, tmp, out=acc)
        mask <<= 1
    if rank == root:
        if recvbuf is None:
            recvbuf = np.empty_like(sendbuf)
        np.copyto(recvbuf, acc)
        return recvbuf
    return None


def allreduce(
    comm: Communicator,
    sendbuf: np.ndarray,
    recvbuf: np.ndarray | None = None,
    op: ReduceOp = SUM,
) -> np.ndarray:
    """All-reduce: recursive doubling when ``size`` is a power of two,
    otherwise binomial reduce followed by broadcast."""
    sendbuf = _contig(sendbuf, "sendbuf")
    size, rank = comm.size, comm.rank
    if recvbuf is None:
        recvbuf = np.empty_like(sendbuf)
    if size == 1:
        np.copyto(recvbuf, sendbuf)
        return recvbuf
    if size & (size - 1) == 0:
        tag = comm.next_coll_tag()
        acc = sendbuf.copy()
        tmp = np.empty_like(sendbuf)
        mask = 1
        while mask < size:
            partner = rank ^ mask
            _sendrecv(comm, acc, partner, tmp, partner, tag)
            op(acc, tmp, out=acc)
            mask <<= 1
        np.copyto(recvbuf, acc)
        return recvbuf
    out = reduce(comm, sendbuf, recvbuf if rank == 0 else None, op, 0)
    if rank == 0:
        assert out is not None
        np.copyto(recvbuf, out)
    bcast(comm, recvbuf, 0)
    return recvbuf


def gather(
    comm: Communicator,
    sendbuf: np.ndarray,
    recvbuf: np.ndarray | None = None,
    root: int = 0,
) -> np.ndarray | None:
    """Linear gather: ``recvbuf[i]`` receives rank ``i``'s ``sendbuf``.

    Returns the filled ``recvbuf`` at root (allocated with a leading
    ``size`` axis when ``None``), ``None`` elsewhere.
    """
    sendbuf = _contig(sendbuf, "sendbuf")
    tag = comm.next_coll_tag()
    size, rank = comm.size, comm.rank
    ctx = comm.ctx_coll
    if rank == root:
        if recvbuf is None:
            recvbuf = np.empty((size,) + sendbuf.shape, dtype=sendbuf.dtype)
        recvbuf = _contig(recvbuf, "recvbuf")
        flat = recvbuf.reshape(size, -1)
        reqs = []
        for r in range(size):
            if r == root:
                flat[r] = sendbuf.reshape(-1)
            else:
                reqs.append(
                    comm._irecv_internal(flat[r], r, tag, ctx)
                )
        waitall(reqs)
        return recvbuf
    comm._isend_internal(sendbuf, root, tag, ctx).wait()
    return None


def scatter(
    comm: Communicator,
    sendbuf: np.ndarray | None,
    recvbuf: np.ndarray,
    root: int = 0,
) -> np.ndarray:
    """Linear scatter: rank ``i`` receives ``sendbuf[i]`` from root."""
    recvbuf = _contig(recvbuf, "recvbuf")
    tag = comm.next_coll_tag()
    size, rank = comm.size, comm.rank
    ctx = comm.ctx_coll
    if rank == root:
        if sendbuf is None:
            raise ValueError("root must supply sendbuf")
        sendbuf = _contig(sendbuf, "sendbuf")
        if sendbuf.shape[0] != size:
            raise ValueError(
                f"sendbuf leading dimension {sendbuf.shape[0]} != size {size}"
            )
        flat = sendbuf.reshape(size, -1)
        reqs = []
        for r in range(size):
            if r == root:
                recvbuf.reshape(-1)[:] = flat[r]
            else:
                reqs.append(comm._isend_internal(flat[r], r, tag, ctx))
        waitall(reqs)
    else:
        comm._irecv_internal(recvbuf, root, tag, ctx).wait()
    return recvbuf


def allgather(
    comm: Communicator,
    sendbuf: np.ndarray,
    recvbuf: np.ndarray | None = None,
) -> np.ndarray:
    """Ring allgather: ``size - 1`` steps, each forwarding one block."""
    sendbuf = _contig(sendbuf, "sendbuf")
    tag = comm.next_coll_tag()
    size, rank = comm.size, comm.rank
    if recvbuf is None:
        recvbuf = np.empty((size,) + sendbuf.shape, dtype=sendbuf.dtype)
    recvbuf = _contig(recvbuf, "recvbuf")
    flat = recvbuf.reshape(size, -1)
    flat[rank] = sendbuf.reshape(-1)
    if size == 1:
        return recvbuf
    right = (rank + 1) % size
    left = (rank - 1) % size
    for step in range(1, size):
        send_idx = (rank - step + 1) % size
        recv_idx = (rank - step) % size
        _sendrecv(comm, flat[send_idx], right, flat[recv_idx], left, tag)
    return recvbuf


def alltoall(
    comm: Communicator,
    sendbuf: np.ndarray,
    recvbuf: np.ndarray | None = None,
) -> np.ndarray:
    """Fully posted pairwise exchange.

    ``sendbuf`` must have a leading ``size`` axis; block ``i`` goes to
    rank ``i`` and ``recvbuf[i]`` receives rank ``i``'s block for us.
    This is the heaviest communication pattern in the paper's FFT and
    CNN workloads.
    """
    sendbuf = _contig(sendbuf, "sendbuf")
    size, rank = comm.size, comm.rank
    if sendbuf.shape[0] != size:
        raise ValueError(
            f"sendbuf leading dimension {sendbuf.shape[0]} != size {size}"
        )
    tag = comm.next_coll_tag()
    ctx = comm.ctx_coll
    if recvbuf is None:
        recvbuf = np.empty_like(sendbuf)
    recvbuf = _contig(recvbuf, "recvbuf")
    sflat = sendbuf.reshape(size, -1)
    rflat = recvbuf.reshape(size, -1)
    rflat[rank] = sflat[rank]
    reqs = []
    for off in range(1, size):
        peer = (rank + off) % size
        reqs.append(comm._irecv_internal(rflat[peer], peer, tag, ctx))
    for off in range(1, size):
        peer = (rank - off) % size
        reqs.append(comm._isend_internal(sflat[peer], peer, tag, ctx))
    waitall(reqs)
    return recvbuf


def reduce_scatter(
    comm: Communicator,
    sendbuf: np.ndarray,
    recvbuf: np.ndarray | None = None,
    op: ReduceOp = SUM,
) -> np.ndarray:
    """Equal-block reduce-scatter (reduce to rank 0, then scatter)."""
    sendbuf = _contig(sendbuf, "sendbuf")
    size, rank = comm.size, comm.rank
    if sendbuf.shape[0] != size:
        raise ValueError(
            f"sendbuf leading dimension {sendbuf.shape[0]} != size {size}"
        )
    if recvbuf is None:
        recvbuf = np.empty(sendbuf.shape[1:], dtype=sendbuf.dtype)
    total = reduce(comm, sendbuf, None, op, 0)
    scatter(comm, total if rank == 0 else None, recvbuf, 0)
    return recvbuf


def scan(
    comm: Communicator,
    sendbuf: np.ndarray,
    recvbuf: np.ndarray | None = None,
    op: ReduceOp = SUM,
) -> np.ndarray:
    """Inclusive prefix reduction along rank order (linear chain)."""
    sendbuf = _contig(sendbuf, "sendbuf")
    tag = comm.next_coll_tag()
    size, rank = comm.size, comm.rank
    ctx = comm.ctx_coll
    if recvbuf is None:
        recvbuf = np.empty_like(sendbuf)
    recvbuf = _contig(recvbuf, "recvbuf")
    if rank == 0:
        np.copyto(recvbuf, sendbuf)
    else:
        prev = np.empty_like(sendbuf)
        comm._irecv_internal(prev, rank - 1, tag, ctx).wait()
        op(prev, sendbuf, out=recvbuf)
    if rank + 1 < size:
        comm._isend_internal(recvbuf, rank + 1, tag, ctx).wait()
    return recvbuf


def _check_counts(counts, size: int, name: str) -> list[int]:
    counts = [int(c) for c in counts]
    if len(counts) != size:
        raise ValueError(f"{name} must have one entry per rank")
    if any(c < 0 for c in counts):
        raise ValueError(f"{name} entries must be nonnegative")
    return counts


def gatherv(
    comm: Communicator,
    sendbuf: np.ndarray,
    recvcounts,
    recvbuf: np.ndarray | None = None,
    root: int = 0,
) -> np.ndarray | None:
    """Variable-count gather (``MPI_Gatherv``), flat 1-D buffers.

    ``recvcounts[i]`` elements arrive from rank ``i``; at root they are
    packed contiguously in rank order.
    """
    sendbuf = _contig(np.asarray(sendbuf).reshape(-1), "sendbuf")
    tag = comm.next_coll_tag()
    size, rank = comm.size, comm.rank
    ctx = comm.ctx_coll
    counts = _check_counts(recvcounts, size, "recvcounts")
    if sendbuf.size != counts[rank]:
        raise ValueError(
            f"rank {rank} sends {sendbuf.size} elements but recvcounts "
            f"says {counts[rank]}"
        )
    if rank == root:
        total = sum(counts)
        if recvbuf is None:
            recvbuf = np.empty(total, dtype=sendbuf.dtype)
        recvbuf = _contig(recvbuf.reshape(-1), "recvbuf")
        if recvbuf.size != total:
            raise ValueError(
                f"recvbuf holds {recvbuf.size} elements, need {total}"
            )
        offsets = np.concatenate(([0], np.cumsum(counts)))
        reqs = []
        for r in range(size):
            dest = recvbuf[offsets[r] : offsets[r + 1]]
            if r == root:
                dest[:] = sendbuf
            elif counts[r]:
                reqs.append(comm._irecv_internal(dest, r, tag, ctx))
        waitall(reqs)
        return recvbuf
    if counts[rank]:
        comm._isend_internal(sendbuf, root, tag, ctx).wait()
    return None


def scatterv(
    comm: Communicator,
    sendbuf: np.ndarray | None,
    sendcounts,
    recvbuf: np.ndarray,
    root: int = 0,
) -> np.ndarray:
    """Variable-count scatter (``MPI_Scatterv``), flat 1-D buffers."""
    recvbuf = _contig(recvbuf.reshape(-1), "recvbuf")
    tag = comm.next_coll_tag()
    size, rank = comm.size, comm.rank
    ctx = comm.ctx_coll
    counts = _check_counts(sendcounts, size, "sendcounts")
    if recvbuf.size != counts[rank]:
        raise ValueError(
            f"rank {rank} expects {counts[rank]} elements but recvbuf "
            f"holds {recvbuf.size}"
        )
    if rank == root:
        if sendbuf is None:
            raise ValueError("root must supply sendbuf")
        sendbuf = _contig(np.asarray(sendbuf).reshape(-1), "sendbuf")
        total = sum(counts)
        if sendbuf.size != total:
            raise ValueError(
                f"sendbuf holds {sendbuf.size} elements, need {total}"
            )
        offsets = np.concatenate(([0], np.cumsum(counts)))
        reqs = []
        for r in range(size):
            block = sendbuf[offsets[r] : offsets[r + 1]]
            if r == root:
                recvbuf[:] = block
            elif counts[r]:
                reqs.append(comm._isend_internal(block, r, tag, ctx))
        waitall(reqs)
    elif counts[rank]:
        comm._irecv_internal(recvbuf, root, tag, ctx).wait()
    return recvbuf


def alltoallv(
    comm: Communicator,
    sendbuf: np.ndarray,
    sendcounts,
    recvbuf: np.ndarray,
    recvcounts,
) -> np.ndarray:
    """Variable-count all-to-all (``MPI_Alltoallv``), flat 1-D buffers.

    ``sendcounts[r]`` elements go to rank ``r`` (packed contiguously in
    rank order in ``sendbuf``); ``recvcounts[r]`` arrive from rank
    ``r`` (packed likewise in ``recvbuf``).  Callers must supply
    consistent counts: ``sendcounts[q]`` on rank ``p`` must equal
    ``recvcounts[p]`` on rank ``q``.
    """
    sendbuf = _contig(np.asarray(sendbuf).reshape(-1), "sendbuf")
    recvbuf = _contig(recvbuf.reshape(-1), "recvbuf")
    tag = comm.next_coll_tag()
    size, rank = comm.size, comm.rank
    ctx = comm.ctx_coll
    scounts = _check_counts(sendcounts, size, "sendcounts")
    rcounts = _check_counts(recvcounts, size, "recvcounts")
    if sendbuf.size != sum(scounts):
        raise ValueError(
            f"sendbuf holds {sendbuf.size} elements, counts say "
            f"{sum(scounts)}"
        )
    if recvbuf.size != sum(rcounts):
        raise ValueError(
            f"recvbuf holds {recvbuf.size} elements, counts say "
            f"{sum(rcounts)}"
        )
    soff = np.concatenate(([0], np.cumsum(scounts)))
    roff = np.concatenate(([0], np.cumsum(rcounts)))
    recvbuf[roff[rank] : roff[rank + 1]] = sendbuf[
        soff[rank] : soff[rank + 1]
    ]
    reqs = []
    for off in range(1, size):
        peer = (rank + off) % size
        if rcounts[peer]:
            reqs.append(
                comm._irecv_internal(
                    recvbuf[roff[peer] : roff[peer + 1]], peer, tag, ctx
                )
            )
    for off in range(1, size):
        peer = (rank - off) % size
        if scounts[peer]:
            reqs.append(
                comm._isend_internal(
                    sendbuf[soff[peer] : soff[peer + 1]], peer, tag, ctx
                )
            )
    waitall(reqs)
    return recvbuf
