"""Persistent communication requests (``MPI_Send_init`` family).

Production stencil codes — including the QPhiX-style QCD code the
paper evaluates — set up their halo exchange once with
``MPI_Send_init``/``MPI_Recv_init`` and then fire it every iteration
with ``MPI_Startall``, amortizing argument validation and buffer
bookkeeping.  This module provides that API on the substrate; the
Wilson-Dslash operator uses it when constructed with
``persistent=True``.

A persistent request alternates between *inactive* and *active*:
``start()`` activates it (posting a fresh underlying operation against
the bound buffer), ``wait``/``test`` complete it back to inactive, and
it may then be started again.  Starting an active request is an error,
as in MPI.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.mpisim.exceptions import MPIError
from repro.mpisim.requests import Request
from repro.mpisim.status import Status

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpisim.communicator import Communicator


class PersistentRequest:
    """Base: a restartable operation bound to a fixed buffer."""

    _KIND = "persistent"

    def __init__(self, comm: "Communicator") -> None:
        self.comm = comm
        self._inner: Request | None = None
        self.starts = 0
        self.completions = 0

    # -- state ------------------------------------------------------------

    @property
    def active(self) -> bool:
        """Started and not yet completed via ``wait``/``test``."""
        return self._inner is not None

    def _post(self) -> Request:  # pragma: no cover - abstract
        raise NotImplementedError

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "PersistentRequest":
        """Activate: post the underlying operation afresh."""
        if self.active:
            raise MPIError(
                f"{self._KIND} request started while still active"
            )
        self._inner = self._post()
        self.starts += 1
        return self

    def test(self) -> tuple[bool, Status | None]:
        """Nonblocking completion check; deactivates when complete.

        (Offloaded underlying handles are single-shot, so completion
        consumes the inner request either way.)
        """
        if self._inner is None:
            raise MPIError(f"{self._KIND} request tested before start")
        done, st = self._inner.test()
        if done:
            self._inner = None
            self.completions += 1
        return done, st

    def wait(self, timeout: float | None = None) -> Status:
        """Block until complete; the request returns to inactive."""
        if self._inner is None:
            raise MPIError(f"{self._KIND} request waited before start")
        st = self._inner.wait(timeout=timeout)
        self._inner = None
        self.completions += 1
        return st


class PersistentSend(PersistentRequest):
    """Restartable send; each ``start`` snapshots the bound buffer."""

    _KIND = "persistent-send"

    def __init__(
        self, comm: "Communicator", buf: np.ndarray, dest: int, tag: int
    ) -> None:
        super().__init__(comm)
        self.buf = buf
        self.dest = dest
        self.tag = tag

    def _post(self) -> Request:
        return self.comm.isend(self.buf, self.dest, self.tag)


class PersistentRecv(PersistentRequest):
    """Restartable receive into the bound buffer."""

    _KIND = "persistent-recv"

    def __init__(
        self, comm: "Communicator", buf: np.ndarray, source: int, tag: int
    ) -> None:
        super().__init__(comm)
        self.buf = buf
        self.source = source
        self.tag = tag

    def _post(self) -> Request:
        return self.comm.irecv(self.buf, self.source, self.tag)


def start_all(requests: Sequence[PersistentRequest]) -> None:
    """``MPI_Startall``: activate every request."""
    for r in requests:
        r.start()


def wait_all_persistent(
    requests: Sequence[PersistentRequest], timeout: float | None = None
) -> list[Status]:
    """Complete every active request; statuses in request order.

    ``timeout`` is one overall budget for the whole set: each wait
    receives only the remaining budget, so N requests cannot stack up
    to ``N * timeout`` of wall clock.
    """
    if timeout is None:
        return [r.wait() for r in requests]
    deadline = time.perf_counter() + timeout
    out: list[Status] = []
    for r in requests:
        remaining = max(0.0, deadline - time.perf_counter())
        out.append(r.wait(timeout=remaining))
    return out
