"""An in-process MPI implementation with ranks as threads.

This package is the substrate the paper's offload infrastructure sits
on.  It is a *functional* MPI: real tag/source/context matching with
posted-receive and unexpected-message queues, real eager and rendezvous
protocols, an explicit progress engine, nonblocking requests, blocking
and schedule-based nonblocking collectives, and thread-level
(``SINGLE``/``FUNNELED``/``SERIALIZED``/``MULTIPLE``) enforcement.

Crucially it reproduces the semantic hazard the paper attacks
(Section 2): a rendezvous-protocol ``isend`` merely posts a
ready-to-send control message — the data transfer happens only when the
*sender's* progress engine later observes the receiver's clear-to-send.
If no thread pumps progress during application compute, the entire
transfer lands inside ``wait()``, destroying overlap, exactly as with a
production MPI library.

Usage mirrors mpi4py's buffer API::

    from repro.mpisim import World

    def program(comm):
        import numpy as np
        if comm.rank == 0:
            comm.send(np.arange(4.0), dest=1, tag=7)
        else:
            buf = np.empty(4)
            st = comm.recv(buf, source=0, tag=7)
            return buf.sum()

    results = World(2).run(program)
"""

from repro.mpisim.constants import (
    ANY_SOURCE,
    ANY_TAG,
    PROC_NULL,
    THREAD_SINGLE,
    THREAD_FUNNELED,
    THREAD_SERIALIZED,
    THREAD_MULTIPLE,
    MAX_USER_TAG,
)
from repro.mpisim.exceptions import (
    CommRevokedError,
    MPIError,
    RankDeadError,
    TruncationError,
    InvalidRankError,
    InvalidTagError,
    ThreadLevelError,
    WorldError,
)
from repro.mpisim.status import Status
from repro.mpisim.reduce_ops import (
    SUM,
    PROD,
    MAX,
    MIN,
    LAND,
    LOR,
    BAND,
    BOR,
    ReduceOp,
)
from repro.mpisim.requests import (
    Request,
    test_request,
    wait_request,
    waitall,
    waitany,
    waitsome,
    testall,
    testany,
)
from repro.mpisim.communicator import Communicator
from repro.mpisim.persistent import (
    PersistentRecv,
    PersistentSend,
    start_all,
    wait_all_persistent,
)
from repro.mpisim.rma import (
    LOCK_EXCLUSIVE,
    LOCK_SHARED,
    RMAError,
    Window,
)
from repro.mpisim.world import World

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "PROC_NULL",
    "THREAD_SINGLE",
    "THREAD_FUNNELED",
    "THREAD_SERIALIZED",
    "THREAD_MULTIPLE",
    "MAX_USER_TAG",
    "MPIError",
    "CommRevokedError",
    "RankDeadError",
    "TruncationError",
    "InvalidRankError",
    "InvalidTagError",
    "ThreadLevelError",
    "WorldError",
    "Status",
    "SUM",
    "PROD",
    "MAX",
    "MIN",
    "LAND",
    "LOR",
    "BAND",
    "BOR",
    "ReduceOp",
    "Request",
    "test_request",
    "wait_request",
    "waitall",
    "waitany",
    "waitsome",
    "testall",
    "testany",
    "Communicator",
    "LOCK_EXCLUSIVE",
    "LOCK_SHARED",
    "RMAError",
    "Window",
    "World",
    "PersistentSend",
    "PersistentRecv",
    "start_all",
    "wait_all_persistent",
]
