"""Schedule-based nonblocking collectives (MPI-3 ``MPI_I...``).

Each nonblocking collective compiles, at call time, into a per-rank
*schedule*: a list of rounds, where a round posts some point-to-point
requests and, once they all complete, runs a finalize step (e.g. a
local reduction) before the next round is posted.

The schedule advances only when the owning rank's progress engine is
pumped — by ``test``/``wait`` on the request, by any other MPI call, or
by the offload thread's idle ``Testany`` loop.  That last case is what
Figure 3 of the paper measures: with a dedicated progress thread, NBC
schedules advance *during application compute*, yielding near-total
overlap; without one they advance only inside ``MPI_Wait``.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.mpisim.communicator import Communicator
from repro.mpisim.exceptions import MPIError
from repro.mpisim.reduce_ops import ReduceOp, SUM
from repro.mpisim.requests import Request
from repro.mpisim.status import EMPTY_STATUS

#: A round: ``post()`` returns the round's sub-requests; ``finish()``
#: runs after they all complete (may be ``None``).
Round = tuple[Callable[[], list[Request]], Callable[[], None] | None]


class NBCRequest(Request):
    """Request handle driving a compiled collective schedule."""

    __slots__ = ("_rounds", "_round_idx", "_current", "_finish")

    def __init__(self, comm: Communicator, rounds: list[Round]) -> None:
        super().__init__(comm.engine)
        self._rounds = rounds
        self._round_idx = 0
        self._current: list[Request] | None = None
        self._finish: Callable[[], None] | None = None
        comm.engine.register_nbc(self)
        # Kick the schedule so round 0 is posted immediately (matching
        # MPI semantics: the collective starts at the I-call).
        self._advance()

    def _advance(self) -> None:
        """Advance as many rounds as are currently completable.

        Guarded by the owning engine's library lock: with concurrent
        progress contexts (e.g. a multi-thread offload engine group),
        two threads must never both observe a round as "unposted" and
        post it twice — that would duplicate the round's messages and
        corrupt the reduction.  Checks sub-request ``done`` flags
        directly to avoid re-entering progress.
        """
        self.engine._acquire()
        try:
            self._advance_locked()
        finally:
            self.engine._release()

    def _advance_locked(self) -> None:
        if self.done:
            return
        while True:
            if self._current is None:
                if self._round_idx >= len(self._rounds):
                    self._complete(EMPTY_STATUS)
                    return
                post, finish = self._rounds[self._round_idx]
                self._current = post()
                self._finish = finish
            for r in self._current:
                if r.error is not None:
                    raise MPIError(
                        f"collective sub-operation failed: {r.error}"
                    ) from r.error
            if not all(r.done for r in self._current):
                return
            if self._finish is not None:
                self._finish()
            self._current = None
            self._finish = None
            self._round_idx += 1


def ibarrier(comm: Communicator) -> NBCRequest:
    """Nonblocking dissemination barrier."""
    tag = comm.next_coll_tag()
    size, rank = comm.size, comm.rank
    ctx = comm.ctx_coll
    token = np.zeros(1, dtype=np.uint8)
    rounds: list[Round] = []
    dist = 1
    while dist < size:
        dst = (rank + dist) % size
        src = (rank - dist) % size
        sink = np.zeros(1, dtype=np.uint8)

        def post(dst=dst, src=src, sink=sink) -> list[Request]:
            return [
                comm._irecv_internal(sink, src, tag, ctx),
                comm._isend_internal(token, dst, tag, ctx),
            ]

        rounds.append((post, None))
        dist <<= 1
    return NBCRequest(comm, rounds)


def ibcast(
    comm: Communicator, buf: np.ndarray, root: int = 0
) -> NBCRequest:
    """Nonblocking binomial broadcast."""
    tag = comm.next_coll_tag()
    size, rank = comm.size, comm.rank
    ctx = comm.ctx_coll
    vrank = (rank - root) % size
    rounds: list[Round] = []

    recv_bit = 0
    mask = 1
    while mask < size:
        if vrank & mask:
            recv_bit = mask
            break
        mask <<= 1

    if recv_bit:
        parent = ((vrank - recv_bit) + root) % size

        def post_recv() -> list[Request]:
            return [comm._irecv_internal(buf, parent, tag, ctx)]

        rounds.append((post_recv, None))
        child_mask = recv_bit >> 1
    else:
        child_mask = 1
        while child_mask < size:
            child_mask <<= 1
        child_mask >>= 1

    children = []
    m = child_mask
    while m > 0:
        if vrank + m < size:
            children.append(((vrank + m) + root) % size)
        m >>= 1

    if children:

        def post_sends() -> list[Request]:
            return [
                comm._isend_internal(buf, child, tag, ctx)
                for child in children
            ]

        rounds.append((post_sends, None))
    return NBCRequest(comm, rounds)


def iallreduce(
    comm: Communicator,
    sendbuf: np.ndarray,
    recvbuf: np.ndarray,
    op: ReduceOp = SUM,
) -> NBCRequest:
    """Nonblocking allreduce.

    Recursive doubling for power-of-two sizes; binomial reduce to rank 0
    followed by binomial broadcast otherwise.
    """
    size, rank = comm.size, comm.rank
    ctx = comm.ctx_coll
    if recvbuf is sendbuf:
        raise ValueError("iallreduce requires distinct send/recv buffers")
    np.copyto(recvbuf, sendbuf)
    if size == 1:
        tag = comm.next_coll_tag()  # keep tag sequence aligned
        return NBCRequest(comm, [])
    rounds: list[Round] = []
    if size & (size - 1) == 0:
        tag = comm.next_coll_tag()
        tmp = np.empty_like(sendbuf)
        mask = 1
        while mask < size:
            partner = rank ^ mask

            def post(partner=partner) -> list[Request]:
                return [
                    comm._irecv_internal(tmp, partner, tag, ctx),
                    comm._isend_internal(recvbuf, partner, tag, ctx),
                ]

            def finish() -> None:
                op(recvbuf, tmp, out=recvbuf)

            rounds.append((post, finish))
            mask <<= 1
        return NBCRequest(comm, rounds)
    # Non-power-of-two: reduce-to-0 rounds then bcast-from-0 rounds.
    rtag = comm.next_coll_tag()
    btag = comm.next_coll_tag()
    tmp = np.empty_like(sendbuf)
    vrank = rank
    mask = 1
    while mask < size:
        if vrank & mask:
            parent = vrank - mask

            def post_send(parent=parent) -> list[Request]:
                return [comm._isend_internal(recvbuf, parent, rtag, ctx)]

            rounds.append((post_send, None))
            break
        child = vrank + mask
        if child < size:

            def post_recv(child=child) -> list[Request]:
                return [comm._irecv_internal(tmp, child, rtag, ctx)]

            def finish() -> None:
                op(recvbuf, tmp, out=recvbuf)

            rounds.append((post_recv, finish))
        mask <<= 1
    # Broadcast phase (root 0 binomial, same construction as ibcast).
    recv_bit = 0
    mask = 1
    while mask < size:
        if vrank & mask:
            recv_bit = mask
            break
        mask <<= 1
    if recv_bit:
        parent = vrank - recv_bit

        def post_brecv(parent=parent) -> list[Request]:
            return [comm._irecv_internal(recvbuf, parent, btag, ctx)]

        rounds.append((post_brecv, None))
        child_mask = recv_bit >> 1
    else:
        child_mask = 1
        while child_mask < size:
            child_mask <<= 1
        child_mask >>= 1
    children = []
    m = child_mask
    while m > 0:
        if vrank + m < size:
            children.append(vrank + m)
        m >>= 1
    if children:

        def post_bsends() -> list[Request]:
            return [
                comm._isend_internal(recvbuf, child, btag, ctx)
                for child in children
            ]

        rounds.append((post_bsends, None))
    return NBCRequest(comm, rounds)


def igather(
    comm: Communicator,
    sendbuf: np.ndarray,
    recvbuf: np.ndarray | None = None,
    root: int = 0,
) -> NBCRequest:
    """Nonblocking linear gather.

    At root, ``recvbuf`` must be preallocated with a leading ``size``
    axis (the request cannot return a fresh array).
    """
    tag = comm.next_coll_tag()
    size, rank = comm.size, comm.rank
    ctx = comm.ctx_coll
    if rank == root:
        if recvbuf is None:
            raise ValueError("igather at root requires a recvbuf")
        flat = recvbuf.reshape(size, -1)

        def post_root() -> list[Request]:
            flat[root] = sendbuf.reshape(-1)
            return [
                comm._irecv_internal(flat[r], r, tag, ctx)
                for r in range(size)
                if r != root
            ]

        return NBCRequest(comm, [(post_root, None)])

    def post_leaf() -> list[Request]:
        return [comm._isend_internal(sendbuf, root, tag, ctx)]

    return NBCRequest(comm, [(post_leaf, None)])


def ialltoall(
    comm: Communicator, sendbuf: np.ndarray, recvbuf: np.ndarray
) -> NBCRequest:
    """Nonblocking fully posted pairwise all-to-all exchange."""
    size, rank = comm.size, comm.rank
    if sendbuf.shape[0] != size:
        raise ValueError(
            f"sendbuf leading dimension {sendbuf.shape[0]} != size {size}"
        )
    tag = comm.next_coll_tag()
    ctx = comm.ctx_coll
    sflat = sendbuf.reshape(size, -1)
    rflat = recvbuf.reshape(size, -1)

    def post() -> list[Request]:
        rflat[rank] = sflat[rank]
        reqs: list[Request] = []
        for off in range(1, size):
            peer = (rank + off) % size
            reqs.append(comm._irecv_internal(rflat[peer], peer, tag, ctx))
        for off in range(1, size):
            peer = (rank - off) % size
            reqs.append(comm._isend_internal(sflat[peer], peer, tag, ctx))
        return reqs

    return NBCRequest(comm, [(post, None)])
