"""Per-rank progress engine: the MPI library's beating heart.

One :class:`ProgressEngine` exists per rank.  Every MPI call on that
rank enters through it, serialized by the **library lock** — the same
global critical section that makes ``MPI_THREAD_MULTIPLE`` slow in
production MPI implementations (paper Sections 2.2/3.3).  The engine
counts lock contention so benchmarks can observe exactly that effect.

Progress is *explicit*: envelopes delivered by peer ranks sit in this
rank's inbox until some thread calls :meth:`progress` (directly, or via
any blocking call / ``test`` / ``wait``).  In particular a rendezvous
send posted with ``isend`` transfers **no data** until the sender side
pumps progress after the receiver has matched — reproducing the
overlap pathology the offload thread exists to fix.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.mpisim import datatypes
from repro.mpisim.constants import DEFAULT_EAGER_THRESHOLD, PROC_NULL
from repro.mpisim.envelope import BufferRef, Envelope, EnvelopeKind
from repro.mpisim.exceptions import (
    CommRevokedError,
    DatatypeMismatch,
    MPIError,
    RankDeadError,
    TruncationError,
)
from repro.mpisim.matching import PostedReceiveQueue, UnexpectedQueue
from repro.mpisim.requests import (
    CompletedRequest,
    RecvRequest,
    Request,
    SendRequest,
)
from repro.mpisim.status import EMPTY_STATUS, Status

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpisim.nbc import NBCRequest


class ProgressEngine:
    """Matching, protocols and progress for one rank."""

    def __init__(
        self,
        rank: int,
        deliver: Callable[[int, Envelope], None],
        eager_threshold: int = DEFAULT_EAGER_THRESHOLD,
        zero_copy: bool = False,
    ) -> None:
        self.rank = rank
        self._deliver = deliver  # world-level routing: (dst, env) -> None
        self.eager_threshold = eager_threshold
        #: zero-copy data plane (DESIGN.md §14): eager sends ship a
        #: *borrowed* :class:`BufferRef` aliasing the user buffer and
        #: complete at match time, after the single direct copy into
        #: the receiver's posted buffer.  Off by default: classic eager
        #: semantics (copy at post time, complete immediately).
        self.zero_copy = zero_copy
        self._inbox: deque[Envelope] = deque()
        self._prq = PostedReceiveQueue()
        self._umq = UnexpectedQueue()
        self._lock = threading.RLock()
        self._active_nbc: list["NBCRequest"] = []
        #: one-sided windows registered on this rank, by window id
        self._windows: dict[int, object] = {}
        # --- introspection counters -------------------------------------
        self.lock_contentions = 0
        self.progress_calls = 0
        self.eager_sends = 0
        self.rendezvous_sends = 0
        self.coalesced_sends = 0
        self.bytes_sent = 0
        self.envelopes_handled = 0
        #: intermediate payload materializations (send-time eager
        #: copies, fault-duplicate deep copies) — NOT the final copy
        #: into the receiver's posted buffer, which every protocol pays
        self.payload_copies = 0
        #: deliveries satisfied directly from the sender's user buffer
        #: (one copy total, no intermediate materialization)
        self.payload_zero_copy_hits = 0
        #: telemetry hook: a :class:`repro.obs.trace.TraceBuffer` an
        #: offload engine attaches while it runs (else None)
        self.trace = None
        #: fault-injection hook: a :class:`repro.faults.plan.FaultPlan`
        #: the world installs (else None; single `is None` check)
        self.faults = None
        #: ranks known dead, shared across the world's engines (empty
        #: dict in normal operation: the guard is one truthiness check)
        self.dead_ranks: dict[int, BaseException] = {}
        #: communicator ids this rank knows revoked (ULFM semantics,
        #: DESIGN.md §15).  Empty set in normal operation — every hot
        #: path guard is one truthiness check.
        self._revoked: set[int] = set()
        # --- fault-tolerance counters (DESIGN.md §15) --------------------
        self.comm_revokes = 0
        self.agree_rounds = 0
        self.shrink_epochs = 0
        #: DST-only regression hook: complete zero-copy eager sends at
        #: *post* time (the pre-fix behavior) instead of at match time.
        #: Re-opens the classic zero-copy race — sender legally reuses
        #: its buffer after completion while a late-matching receiver
        #: still reads the borrowed view.  Only ever set by the
        #: regression corpus (repro.dst.targets), never by production
        #: code.
        self._unsafe_complete_eager_at_post = False
        #: DST-only regression hook: skip the drain-time revoked check
        #: in :meth:`_handle` (the pre-fix behavior).  Re-opens the
        #: shrink-vs-inflight-eager race — a zero-copy eager envelope
        #: that arrives *after* the revoke purge parks in the UMQ
        #: forever and its sender's request never completes.  Only ever
        #: set by the regression corpus (repro.dst.targets).
        self._unsafe_skip_revoked_drain_check = False

    # -- library lock ------------------------------------------------------

    def _acquire(self) -> None:
        if not self._lock.acquire(blocking=False):
            self.lock_contentions += 1
            self._lock.acquire()

    def _release(self) -> None:
        self._lock.release()

    # -- envelope delivery (called by PEER rank threads) --------------------

    def inject(self, env: Envelope) -> None:
        """Called by a remote engine's thread; must not take our lock."""
        self._inbox.append(env)  # deque.append is atomic

    # -- posting -------------------------------------------------------------

    def post_send(
        self,
        payload: np.ndarray,
        dst: int,
        tag: int,
        context_id: int,
    ) -> Request:
        """Nonblocking send entry point (``isend``).

        Eager messages are buffered and complete immediately — unless
        :attr:`zero_copy` is on, in which case they ship a *borrowed*
        view of the user buffer and complete only once the receiver's
        match copies it (exactly one copy, paid at match time).
        Larger messages post a ready-to-send and complete once the
        rendezvous is driven to the data transfer by later progress.
        """
        if dst == PROC_NULL:
            return CompletedRequest()
        if self.dead_ranks and dst in self.dead_ranks:
            exc = self.dead_ranks[dst]
            raise RankDeadError(
                f"send to rank {dst} cannot complete: rank is dead "
                f"({exc})",
                rank=dst,
                rule_id=getattr(exc, "rule_id", None),
                cid=context_id >> 1 if context_id >= 0 else None,
            )
        self._acquire()
        try:
            self._check_revoked(context_id, f"send to rank {dst}")
            self.bytes_sent += payload.nbytes
            if payload.nbytes <= self.eager_threshold:
                self.eager_sends += 1
                if self.zero_copy:
                    req = SendRequest(self, payload, dst, tag, context_id)
                    env = Envelope(
                        kind=EnvelopeKind.EAGER,
                        src=self.rank,
                        dst=dst,
                        context_id=context_id,
                        tag=tag,
                        nbytes=payload.nbytes,
                        payload=BufferRef.borrow(payload),
                        send_req=req,
                    )
                    self._deliver(dst, env)
                    if (
                        self._unsafe_complete_eager_at_post
                        and not req.done
                    ):
                        req._complete(EMPTY_STATUS)
                    return req
                # Eager: copy now (this copy IS the cost the paper's
                # Figure 4 shows growing toward the 128 KB threshold).
                self.payload_copies += 1
                env = Envelope(
                    kind=EnvelopeKind.EAGER,
                    src=self.rank,
                    dst=dst,
                    context_id=context_id,
                    tag=tag,
                    nbytes=payload.nbytes,
                    payload=payload.copy(),
                )
                self._deliver(dst, env)
                return CompletedRequest(EMPTY_STATUS)
            # Rendezvous: hand off only a control message.
            self.rendezvous_sends += 1
            req = SendRequest(self, payload, dst, tag, context_id)
            env = Envelope(
                kind=EnvelopeKind.RTS,
                src=self.rank,
                dst=dst,
                context_id=context_id,
                tag=tag,
                nbytes=payload.nbytes,
                send_req=req,
            )
            self._deliver(dst, env)
            return req
        finally:
            self._release()

    def post_send_coalesced(
        self,
        payloads: list[np.ndarray],
        dst: int,
        tags: list[int],
        context_id: int,
    ) -> list[Request]:
        """Several eager sends to one destination, one wire message.

        The offload engine's small-message coalescer lands here: each
        payload is copied into its own ``EAGER`` sub-envelope (exactly
        what :meth:`post_send` would have built), but all of them ride
        a single ``COALESCED`` envelope through delivery — one library
        lock acquisition and one inbox append for the whole run.  The
        receiver unpacks the parts in order, so matching cannot tell
        coalesced sends from back-to-back eager sends.
        """
        if self.dead_ranks and dst in self.dead_ranks:
            exc = self.dead_ranks[dst]
            raise RankDeadError(
                f"send to rank {dst} cannot complete: rank is dead "
                f"({exc})",
                rank=dst,
                rule_id=getattr(exc, "rule_id", None),
                cid=context_id >> 1 if context_id >= 0 else None,
            )
        self._acquire()
        try:
            self._check_revoked(context_id, f"coalesced send to rank {dst}")
            zero_copy = self.zero_copy
            parts: list[Envelope] = []
            reqs: list[Request] = []
            for payload, tag in zip(payloads, tags):
                assert payload.nbytes <= self.eager_threshold
                self.bytes_sent += payload.nbytes
                self.eager_sends += 1
                if zero_copy:
                    req: Request = SendRequest(
                        self, payload, dst, tag, context_id
                    )
                    part_payload: "np.ndarray | BufferRef" = (
                        BufferRef.borrow(payload)
                    )
                    send_req = req
                else:
                    self.payload_copies += 1
                    req = CompletedRequest(EMPTY_STATUS)
                    part_payload = payload.copy()
                    send_req = None
                reqs.append(req)
                parts.append(
                    Envelope(
                        kind=EnvelopeKind.EAGER,
                        src=self.rank,
                        dst=dst,
                        context_id=context_id,
                        tag=tag,
                        nbytes=payload.nbytes,
                        payload=part_payload,
                        send_req=send_req,
                    )
                )
            self.coalesced_sends += 1
            env = Envelope(
                kind=EnvelopeKind.COALESCED,
                src=self.rank,
                dst=dst,
                context_id=context_id,
                tag=-1,
                nbytes=sum(p.nbytes for p in parts),
                parts=parts,
            )
            self._deliver(dst, env)
            if zero_copy and self._unsafe_complete_eager_at_post:
                for req in reqs:
                    if not req.done:
                        req._complete(EMPTY_STATUS)
            return reqs
        finally:
            self._release()

    def post_recv(
        self,
        buffer: np.ndarray,
        source: int,
        tag: int,
        context_id: int,
    ) -> Request:
        """Nonblocking receive entry point (``irecv``)."""
        if source == PROC_NULL:
            return CompletedRequest(Status(PROC_NULL, tag, 0))
        self._acquire()
        try:
            self._check_revoked(context_id, f"receive from rank {source}")
            # Drain arrivals first so the unexpected queue is current.
            self._drain_inbox()
            req = RecvRequest(self, buffer, source, tag, context_id)
            env = self._umq.match(source, tag, context_id)
            if env is None:
                if (
                    self.dead_ranks
                    and source in self.dead_ranks
                ):
                    # Nothing already arrived can satisfy it and the
                    # source can never send again: fail fast.
                    exc = self.dead_ranks[source]
                    raise RankDeadError(
                        f"receive from rank {source} cannot complete: "
                        f"rank is dead ({exc})",
                        rank=source,
                        rule_id=getattr(exc, "rule_id", None),
                        cid=context_id >> 1 if context_id >= 0 else None,
                    )
                self._prq.post(req)
            else:
                self._match_pair(env, req)
            return req
        finally:
            self._release()

    def cancel_recv(self, req: RecvRequest) -> bool:
        """Withdraw an unmatched posted receive."""
        self._acquire()
        try:
            if req.done or req.matched:
                return False
            if self._prq.remove(req):
                req.cancelled = True
                req._complete(
                    Status(req.source, req.tag, 0, cancelled=True)
                )
                return True
            return False
        finally:
            self._release()

    # -- probing ---------------------------------------------------------------

    def iprobe(
        self, source: int, tag: int, context_id: int
    ) -> Status | None:
        """Nonblocking probe; also pumps progress (as real iprobe does)."""
        self._acquire()
        try:
            self._check_revoked(context_id, f"probe of rank {source}")
            self._drain_inbox()
            self._advance_nbc()
            env = self._umq.peek(source, tag, context_id)
            if env is None:
                return None
            return Status(env.src, env.tag, env.nbytes)
        finally:
            self._release()

    # -- progress ----------------------------------------------------------------

    def progress(self) -> int:
        """Pump the engine once; returns envelopes processed."""
        self._acquire()
        try:
            self.progress_calls += 1
            if self.faults is not None:
                # Straggler/stall sleeps happen inside this call (under
                # the library lock, so a stall wedges the rank); matured
                # DELAY'd messages are re-queued for delivery now.
                for env in self.faults.on_progress(self):
                    self._inbox.append(env)
            n = self._drain_inbox()
            self._advance_nbc()
            return n
        finally:
            self._release()

    # -- dead-rank handling ------------------------------------------------

    def notify_rank_death(self, rank: int, exc: BaseException) -> None:
        """A peer rank died: fail everything here that depends on it.

        * posted receives naming ``rank`` as their source can never be
          matched — fail them with :class:`RankDeadError` now (bounded
          detection instead of a silent hang);
        * unexpected RTS control messages from ``rank`` reference a
          send that will never transfer — drop them and fail the
          (dead-owned) send request.

        EAGER envelopes from the dead rank stay receivable: their data
        already arrived, matching fail-stop MPI semantics for sends
        that completed before the failure.
        """
        err = _rank_dead_error(rank, exc)
        self._acquire()
        try:
            for req in self._prq.remove_where(
                lambda r: r.source == rank
            ):
                req._fail(err)
            for env in self._umq.remove_where(
                lambda e: e.src == rank and e.kind is EnvelopeKind.RTS
            ):
                if env.send_req is not None and not env.send_req.done:
                    env.send_req._fail(err)
        finally:
            self._release()

    def fail_pending_on_death(self, exc: BaseException) -> None:
        """*This* rank died: fail peers' requests parked on it.

        Peers' rendezvous sends (RTS in our inbox/unexpected queue),
        zero-copy eager sends still awaiting our match, and matched
        transfers awaiting our copy (CTS in our inbox) would otherwise
        wait forever for a progress pump that will never run.
        """
        err = _rank_dead_error(self.rank, exc)
        self._acquire()
        try:
            while True:
                try:
                    env = self._inbox.popleft()
                except IndexError:
                    break
                for req in (env.send_req, env.recv_req):
                    if req is not None and not req.done:
                        req._fail(err)
                if env.parts:
                    for part in env.parts:
                        if (
                            part.send_req is not None
                            and not part.send_req.done
                        ):
                            part.send_req._fail(err)
            for env in self._umq.remove_where(
                lambda e: e.kind is EnvelopeKind.RTS
                or e.send_req is not None
            ):
                if env.send_req is not None and not env.send_req.done:
                    env.send_req._fail(err)
            for req in self._prq.remove_where(lambda r: True):
                req._fail(err)
        finally:
            self._release()

    # -- communicator revocation (ULFM semantics, DESIGN.md §15) -----------

    def _check_revoked(self, context_id: int, what: str) -> None:
        """Fail-fast guard at every post entry point.

        Negative context ids belong to the fault-management plane
        (``Communicator.ctx_ft`` — the agreement protocol), which MUST
        keep working on a revoked communicator so survivors can agree
        and shrink; they bypass the guard by construction.
        """
        if (
            self._revoked
            and context_id >= 0
            and (context_id >> 1) in self._revoked
        ):
            cid = context_id >> 1
            raise CommRevokedError(
                f"{what}: communicator {cid} has been revoked", cid=cid
            )

    def apply_revoke(self, cid: int) -> bool:
        """Record ``cid`` revoked and poison everything queued on it.

        Idempotent; returns ``True`` only on the first application (the
        caller then propagates the revoke to peers).  Poisons, with
        :class:`CommRevokedError`:

        * every posted receive on the communicator's contexts,
        * every unexpected envelope on them (failing the sender's
          request where one is pending — zero-copy eager and RTS).

        The fault-management context (negative id) is untouched, so
        ``agree`` still runs on a revoked communicator.
        """
        if cid < 0:
            return False
        self._acquire()
        try:
            if cid in self._revoked:
                return False
            self._revoked.add(cid)
            self.comm_revokes += 1
            ctxs = (2 * cid, 2 * cid + 1)
            err = CommRevokedError(
                f"communicator {cid} has been revoked", cid=cid
            )
            for req in self._prq.remove_where(
                lambda r: r.context_id in ctxs
            ):
                req._fail(err)
            for env in self._umq.remove_where(
                lambda e: e.context_id in ctxs
            ):
                self._poison_envelope(env, err)
            return True
        finally:
            self._release()

    def shrink_cleanup(self, cid: int, dead: set[int]) -> None:
        """Post-shrink sweep: drop the dead peers' leftovers.

        Called once per survivor after ``Communicator.shrink`` agreed
        on the new membership: drains orphaned unexpected envelopes and
        posted receives tied to the old communicator (its p2p/coll
        contexts were already purged by :meth:`apply_revoke`; this
        additionally clears the fault-management context of stale
        agreement traffic from ranks that did not survive).
        """
        ctxs = (2 * cid, 2 * cid + 1, -(2 * cid + 2))
        err = CommRevokedError(
            f"communicator {cid} was shrunk away", cid=cid
        )
        self._acquire()
        try:
            self.shrink_epochs += 1
            for req in self._prq.remove_where(
                lambda r: r.context_id in ctxs and r.source in dead
            ):
                req._fail(err)
            for env in self._umq.remove_where(
                lambda e: e.context_id in ctxs and e.src in dead
            ):
                self._poison_envelope(env, err)
        finally:
            self._release()

    def _poison_envelope(self, env: Envelope, err: MPIError) -> None:
        """Terminally fail every live request an envelope references."""
        for req in (env.send_req, env.recv_req):
            if req is not None and not req.done:
                req._fail(err)
        if env.parts:
            for part in env.parts:
                self._poison_envelope(part, err)

    # -- one-sided windows -------------------------------------------------

    def register_window(self, win) -> None:
        """Attach an RMA window so incoming records can be applied."""
        self._acquire()
        try:
            self._windows[win.win_id] = win
        finally:
            self._release()

    def unregister_window(self, win) -> None:
        self._acquire()
        try:
            self._windows.pop(win.win_id, None)
        finally:
            self._release()

    def send_rma(self, msg) -> None:
        """Ship a one-sided record to its target rank's engine."""
        env = Envelope(
            kind=EnvelopeKind.RMA,
            src=self.rank,
            dst=msg.target,
            context_id=-1,
            tag=-1,
            nbytes=msg.payload.nbytes if msg.payload is not None else 0,
            rma=msg,
        )
        self._deliver(msg.target, env)

    def register_nbc(self, req: "NBCRequest") -> None:
        """Track a schedule-based nonblocking collective for progress."""
        self._acquire()
        try:
            self._active_nbc.append(req)
        finally:
            self._release()

    def _advance_nbc(self) -> None:
        if not self._active_nbc:
            return
        still = []
        for req in self._active_nbc:
            try:
                req._advance()
            except MPIError as exc:
                req._fail(exc)
            if not req.done:
                still.append(req)
        self._active_nbc = still

    # -- internals ------------------------------------------------------------------

    def _drain_inbox(self) -> int:
        n = 0
        while True:
            try:
                env = self._inbox.popleft()
            except IndexError:
                return n
            n += 1
            self._handle(env)

    def _handle(self, env: Envelope) -> None:
        self.envelopes_handled += 1
        if self.trace is not None:
            self.trace.append(
                f"envelope:{env.kind.name.lower()}", rank=self.rank
            )
        if env.revoked:
            # Piggybacked revoke notice: the sender knew these cids
            # were revoked when it sent — learn them before handling,
            # so no traffic from a revoke-aware rank is ever matched
            # on a communicator we should consider revoked.
            for cid in env.revoked:
                self.apply_revoke(cid)
        if env.kind is EnvelopeKind.REVOKE:
            self.apply_revoke(env.context_id >> 1)
            return
        if env.kind is EnvelopeKind.CTS:
            self._handle_cts(env)
            return
        if env.kind is EnvelopeKind.RMA:
            self._handle_rma(env)
            return
        if env.kind is EnvelopeKind.COALESCED:
            # Unpack in order: each part goes through exactly the
            # matching path it would have taken as a lone eager send.
            assert env.parts is not None
            for part in env.parts:
                self._handle(part)
            return
        if (
            self._revoked
            and env.context_id >= 0
            and (env.context_id >> 1) in self._revoked
            and not self._unsafe_skip_revoked_drain_check
        ):
            # The cid was revoked after this envelope left its sender:
            # without this check a zero-copy eager arrival would park
            # in the UMQ forever (nothing can legally receive it) and
            # its sender's request would never complete — the
            # shrink-vs-inflight-eager race in the DST corpus.
            cid = env.context_id >> 1
            self._poison_envelope(
                env,
                CommRevokedError(
                    f"communicator {cid} has been revoked", cid=cid
                ),
            )
            return
        # EAGER or RTS: try to match a posted receive.
        req = self._prq.match(env)
        if req is None:
            self._umq.add(env)
        else:
            self._match_pair(env, req)

    def _match_pair(self, env: Envelope, req: RecvRequest) -> None:
        """A receive and an envelope found each other."""
        req.matched = True
        if env.kind is EnvelopeKind.EAGER:
            payload = env.payload
            send_req = env.send_req
            assert payload is not None
            try:
                n = datatypes.copy_into(req.buffer, payload)
            except (TruncationError, DatatypeMismatch) as exc:
                req._fail(exc)
                # Truncation is the receiver's error (MPI_ERR_TRUNCATE
                # surfaces on the receive); the zero-copy sender's data
                # still left its buffer, so its request completes.
                if send_req is not None and not send_req.done:
                    send_req._complete(EMPTY_STATUS)
                return
            if isinstance(payload, BufferRef) and not payload.owned:
                # Single copy, straight out of the sender's live user
                # buffer into the posted receive: the zero-copy hit.
                self.payload_zero_copy_hits += 1
            if send_req is not None and not send_req.done:
                # Deferred completion: only now — with the bytes safely
                # in the receiver's buffer — does the sender's buffer
                # legally revert to the application.  Completing before
                # this copy is the classic zero-copy race (DST target
                # ``eager-deferred-copy``).
                send_req._complete(EMPTY_STATUS)
            req._complete(Status(env.src, env.tag, n))
        elif env.kind is EnvelopeKind.RTS:
            # Rendezvous: tell the sender where the data goes.  The
            # sender's engine performs the copy when IT next progresses.
            assert env.send_req is not None
            if env.nbytes > req.buffer.nbytes:
                # Fail fast on truncation: notify both sides.
                exc = TruncationError(
                    f"rendezvous message of {env.nbytes} bytes exceeds "
                    f"receive buffer of {req.buffer.nbytes}"
                )
                req._fail(exc)
                env.send_req._fail(exc)
                return
            cts = Envelope(
                kind=EnvelopeKind.CTS,
                src=self.rank,
                dst=env.src,
                context_id=env.context_id,
                tag=env.tag,
                nbytes=env.nbytes,
                send_req=env.send_req,
                recv_req=req,
            )
            self._deliver(env.src, cts)
        else:  # pragma: no cover - defensive
            raise MPIError(f"unexpected envelope kind {env.kind}")

    def _handle_cts(self, env: Envelope) -> None:
        """Receiver granted clear-to-send: do the rendezvous transfer.

        Ranks share one address space, so the copy goes straight into
        the receiver's buffer; completing the receive request from this
        (the sender's) thread is safe because the buffer is exclusively
        owned by the pending receive until completion.
        """
        send_req = env.send_req
        recv_req = env.recv_req
        assert send_req is not None and recv_req is not None
        n = datatypes.copy_into(recv_req.buffer, send_req.payload)
        send_req._complete(EMPTY_STATUS)
        recv_req._complete(Status(send_req.engine.rank, env.tag, n))

    def _handle_rma(self, env: Envelope) -> None:
        """Apply a one-sided record to its window (we are the target,
        or the origin for replies/acks)."""
        msg = env.rma
        win = self._windows.get(msg.win_id)
        if win is None:
            # Window not (yet/anymore) attached here: fail the origin.
            if msg.request is not None and msg.op not in ("ack", "nack"):
                from repro.mpisim.rma import RMAError

                msg.request._fail(
                    RMAError(
                        f"window {msg.win_id} not registered on rank "
                        f"{self.rank}"
                    )
                )
            return
        win._apply(msg, self)

    # -- diagnostics --------------------------------------------------------------------

    def pending_counts(self) -> dict[str, int]:
        """Snapshot of queue depths (diagnostic)."""
        self._acquire()
        try:
            return {
                "inbox": len(self._inbox),
                "posted_recvs": len(self._prq),
                "unexpected": len(self._umq),
                "active_nbc": len(self._active_nbc),
            }
        finally:
            self._release()

    def counters(self) -> dict[str, int]:
        """All introspection counters plus current queue depths, as one
        flat dict (consumed by :mod:`repro.obs.report`)."""
        out = {
            "progress_calls": self.progress_calls,
            "lock_contentions": self.lock_contentions,
            "eager_sends": self.eager_sends,
            "rendezvous_sends": self.rendezvous_sends,
            "coalesced_sends": self.coalesced_sends,
            "bytes_sent": self.bytes_sent,
            "envelopes_handled": self.envelopes_handled,
            "payload_copies": self.payload_copies,
            "payload_zero_copy_hits": self.payload_zero_copy_hits,
            "comm_revokes": self.comm_revokes,
            "agree_rounds": self.agree_rounds,
            "shrink_epochs": self.shrink_epochs,
        }
        out.update(self.pending_counts())
        return out


def _rank_dead_error(rank: int, exc: BaseException) -> RankDeadError:
    """Build the canonical "rank died" error, carrying structured
    context: the dead rank and — when the death was injected by a
    :class:`repro.faults.plan.FaultRule` — the originating rule id."""
    rule_id = getattr(exc, "rule_id", None)
    via = "" if rule_id is None else f" [fault-rule {rule_id}]"
    return RankDeadError(
        f"rank {rank} died{via}: {exc}", rank=rank, rule_id=rule_id
    )
