"""One-sided communication (MPI RMA) — the paper's §7 future work.

The paper closes by intending to "explore efficient implementations of
other MPI operations, including RMA (i.e. one-sided)", and its related
work discusses Casper [30], which provides asynchronous progress for
exactly these operations.  This module implements windows with the
same progress semantics as the two-sided substrate:

* ``put``/``accumulate`` ship an RMA record to the target rank's
  progress engine; the data is applied to the window **only when the
  target's progress runs** — precisely the asynchronous-progress
  problem Casper attacks (a target busy computing applies nothing);
* ``get`` requires a round trip: target progress serves the read,
  origin progress completes it;
* ``fence`` is an *active-target* epoch boundary: it completes every
  locally-issued operation (requiring remote progress) and then
  barriers — and, being blocking-with-no-nonblocking-equivalent, it is
  the very call the paper names (§3.3) as the offload approach's
  acknowledged limitation;
* ``lock``/``unlock`` provide *passive-target* epochs with shared or
  exclusive semantics granted by the target's progress engine.

Origin-completion bookkeeping uses acknowledgements, so ``flush`` has
real meaning: data is in the window when the ack arrived, not when the
call returned.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.mpisim.envelope import BufferRef
from repro.mpisim.exceptions import MPIError
from repro.mpisim.requests import Request
from repro.mpisim.status import EMPTY_STATUS

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpisim.communicator import Communicator

LOCK_SHARED = "shared"
LOCK_EXCLUSIVE = "exclusive"


class RMAError(MPIError):
    """Invalid one-sided operation (bad offset, missing epoch, ...)."""


@dataclass(slots=True)
class RMAMessage:
    """One one-sided operation in flight to a target engine."""

    op: str  # "put" | "get" | "acc" | "ack" | "get_reply" | "lock" | ...
    win_id: int
    origin: int  # global rank
    target: int  # global rank
    offset: int = 0
    #: put/acc carry a :class:`BufferRef` (borrowed under zero-copy:
    #: the origin buffer is only read at target-apply time, which the
    #: RMA contract makes legal — origin buffers must stay untouched
    #: until local completion); control ops carry plain arrays
    payload: "np.ndarray | BufferRef | None" = None
    reduce_op: Any = None
    request: "Request | None" = None  # origin-side completion
    lock_kind: str = LOCK_SHARED
    #: get only: the origin-side destination view the reply fills
    dest: np.ndarray | None = None


@dataclass
class _LockState:
    """Per-window lock manager living at each target rank."""

    exclusive_held_by: int | None = None
    shared_holders: set[int] = field(default_factory=set)
    queue: list[RMAMessage] = field(default_factory=list)

    def try_grant(self, msg: RMAMessage) -> bool:
        if msg.lock_kind == LOCK_EXCLUSIVE:
            if self.exclusive_held_by is None and not self.shared_holders:
                self.exclusive_held_by = msg.origin
                return True
            return False
        if self.exclusive_held_by is None:
            self.shared_holders.add(msg.origin)
            return True
        return False

    def release(self, origin: int) -> None:
        if self.exclusive_held_by == origin:
            self.exclusive_held_by = None
        else:
            self.shared_holders.discard(origin)


class Window:
    """An RMA window over one NumPy array per rank.

    Created collectively via :meth:`create`; all ranks must call with
    arrays of identical dtype (sizes may differ).
    """

    def __init__(
        self, comm: "Communicator", local: np.ndarray, win_id: int
    ) -> None:
        if not isinstance(local, np.ndarray) or not local.flags.c_contiguous:
            raise TypeError("window memory must be a contiguous ndarray")
        self.comm = comm
        self.local = local.reshape(-1)
        self.win_id = win_id
        self.dtype = local.dtype
        #: origin-side: outstanding ops awaiting acks, per target rank
        self._pending: dict[int, list[Request]] = {}
        #: target-side lock manager
        self._locks = _LockState()
        self._mutex = threading.Lock()
        #: epochs this rank currently holds (passive target)
        self._held_locks: dict[int, str] = {}
        comm.engine.register_window(self)

    # ------------------------------------------------------------ creation

    @classmethod
    def create(cls, comm: "Communicator", local: np.ndarray) -> "Window":
        """Collective window creation (allocates an agreed id)."""
        from repro.mpisim import collectives

        wid_buf = np.empty(1, dtype=np.int64)
        if comm.rank == 0:
            wid_buf[0] = comm.world.allocate_cid()
        collectives.bcast(comm, wid_buf, 0)
        win = cls(comm, local, int(wid_buf[0]))
        collectives.barrier(comm)
        return win

    def free(self) -> None:
        """Collective window destruction."""
        from repro.mpisim import collectives

        self.fence()
        self.comm.engine.unregister_window(self)
        collectives.barrier(self.comm)

    # ------------------------------------------------------------ plumbing

    def _track(self, target: int, req: Request) -> None:
        with self._mutex:
            self._pending.setdefault(target, []).append(req)

    def _send(self, msg: RMAMessage) -> None:
        self.comm.engine.send_rma(msg)

    def _pack_origin(self, origin: np.ndarray) -> BufferRef:
        """Origin data for put/accumulate as a :class:`BufferRef`.

        Under the engine's zero-copy mode a contiguous, dtype-matching
        origin is *borrowed* — no copy here; the target's apply reads
        straight out of the user buffer (legal until local completion
        per the RMA contract).  Otherwise the bytes are materialized
        exactly once (a derived-datatype pack or the classic
        copy-at-post path), counted in ``payload_copies``.
        """
        engine = self.comm.engine
        data = np.asarray(origin)
        if data.dtype != self.dtype or not data.flags.c_contiguous:
            # Pack: one materialization, unavoidable (dtype/stride
            # conversion), and the result is ours to keep.
            packed = np.ascontiguousarray(
                origin, dtype=self.dtype
            ).reshape(-1)
            engine.payload_copies += 1
            return BufferRef(
                view=packed.view(np.uint8),
                owned=True,
                dtype=str(self.dtype),
                shape=packed.shape,
            )
        flat = data.reshape(-1)
        if engine.zero_copy:
            return BufferRef.borrow(flat)
        engine.payload_copies += 1
        return BufferRef.own(flat)

    def _check_range(self, target_offset: int, count: int) -> None:
        if target_offset < 0 or count < 0:
            raise RMAError("negative offset or count")

    def _global(self, rank: int) -> int:
        return self.comm.group[rank]

    # ------------------------------------------------------------ operations

    def put(
        self, origin: np.ndarray, target_rank: int, target_offset: int = 0
    ) -> Request:
        """One-sided write; returns an origin-completion request.

        The data lands in the target window only once the *target's*
        progress engine processes the record (and the returned request
        completes only when the ack comes back) — synchronize with
        ``fence``/``flush``/``unlock``.
        """
        ref = self._pack_origin(origin)
        self._check_range(target_offset, ref.nbytes // self.dtype.itemsize)
        req = Request(self.comm.engine)
        msg = RMAMessage(
            op="put",
            win_id=self.win_id,
            origin=self.comm.engine.rank,
            target=self._global(target_rank),
            offset=target_offset,
            payload=ref,
            request=req,
        )
        self._track(target_rank, req)
        self._send(msg)
        return req

    def get(
        self,
        dest: np.ndarray,
        target_rank: int,
        target_offset: int = 0,
    ) -> Request:
        """One-sided read into ``dest``; completes at sync/wait."""
        if dest.dtype != self.dtype:
            raise RMAError(
                f"dest dtype {dest.dtype} != window dtype {self.dtype}"
            )
        flat = dest.reshape(-1)
        self._check_range(target_offset, flat.size)
        req = Request(self.comm.engine)
        msg = RMAMessage(
            op="get",
            win_id=self.win_id,
            origin=self.comm.engine.rank,
            target=self._global(target_rank),
            offset=target_offset,
            payload=np.array([flat.size], dtype=np.int64),
            request=req,
            dest=flat,
        )
        self._track(target_rank, req)
        self._send(msg)
        return req

    def accumulate(
        self,
        origin: np.ndarray,
        target_rank: int,
        target_offset: int = 0,
        op: Any = None,
    ) -> Request:
        """One-sided reduction into the target window (default SUM).

        Applied atomically with respect to other accumulates at the
        target (the target engine applies records serially).
        """
        from repro.mpisim.reduce_ops import SUM

        ref = self._pack_origin(origin)
        self._check_range(target_offset, ref.nbytes // self.dtype.itemsize)
        req = Request(self.comm.engine)
        msg = RMAMessage(
            op="acc",
            win_id=self.win_id,
            origin=self.comm.engine.rank,
            target=self._global(target_rank),
            offset=target_offset,
            payload=ref,
            reduce_op=op or SUM,
            request=req,
        )
        self._track(target_rank, req)
        self._send(msg)
        return req

    # -------------------------------------------------------- synchronization

    def flush(self, target_rank: int | None = None, timeout: float = 60.0):
        """Wait until all outstanding ops to ``target_rank`` (or all
        targets) have been applied and acknowledged."""
        with self._mutex:
            if target_rank is None:
                reqs = [r for lst in self._pending.values() for r in lst]
                self._pending.clear()
            else:
                reqs = self._pending.pop(target_rank, [])
        for r in reqs:
            r.wait(timeout=timeout)

    def fence(self, timeout: float = 60.0) -> None:
        """Active-target epoch boundary: flush everything, then
        barrier.  Blocking with no nonblocking equivalent — the §3.3
        caveat call."""
        from repro.mpisim import collectives

        self.flush(timeout=timeout)
        collectives.barrier(self.comm)

    def lock(
        self,
        target_rank: int,
        kind: str = LOCK_SHARED,
        timeout: float = 60.0,
    ) -> None:
        """Begin a passive-target epoch at ``target_rank``."""
        if kind not in (LOCK_SHARED, LOCK_EXCLUSIVE):
            raise RMAError(f"unknown lock kind {kind!r}")
        if target_rank in self._held_locks:
            raise RMAError(f"lock already held on rank {target_rank}")
        req = Request(self.comm.engine)
        msg = RMAMessage(
            op="lock",
            win_id=self.win_id,
            origin=self.comm.engine.rank,
            target=self._global(target_rank),
            lock_kind=kind,
            request=req,
        )
        self._send(msg)
        req.wait(timeout=timeout)  # grant
        self._held_locks[target_rank] = kind

    def unlock(self, target_rank: int, timeout: float = 60.0) -> None:
        """End a passive-target epoch: flush ops to the target, then
        release the lock."""
        if target_rank not in self._held_locks:
            raise RMAError(f"no lock held on rank {target_rank}")
        self.flush(target_rank, timeout=timeout)
        req = Request(self.comm.engine)
        msg = RMAMessage(
            op="unlock",
            win_id=self.win_id,
            origin=self.comm.engine.rank,
            target=self._global(target_rank),
            request=req,
        )
        self._send(msg)
        req.wait(timeout=timeout)
        del self._held_locks[target_rank]

    # ------------------------------------------------- target-side application

    def _apply(self, msg: RMAMessage, engine) -> None:
        """Run on the *target's* progress engine (one record at a time,
        hence target-side atomicity)."""
        if msg.op == "put":
            assert msg.payload is not None
            data = self._payload_array(msg.payload, engine)
            end = msg.offset + data.size
            if end > self.local.size:
                self._nack(msg, engine, f"put outside window ({end})")
                return
            self.local[msg.offset : end] = data
            self._ack(msg, engine)
        elif msg.op == "acc":
            assert msg.payload is not None
            data = self._payload_array(msg.payload, engine)
            end = msg.offset + data.size
            if end > self.local.size:
                self._nack(msg, engine, f"accumulate outside window ({end})")
                return
            view = self.local[msg.offset : end]
            msg.reduce_op(view, data, out=view)
            self._ack(msg, engine)
        elif msg.op == "get":
            assert msg.payload is not None
            count = int(msg.payload[0])
            end = msg.offset + count
            if end > self.local.size:
                self._nack(msg, engine, f"get outside window ({end})")
                return
            reply = RMAMessage(
                op="get_reply",
                win_id=self.win_id,
                origin=msg.target,
                target=msg.origin,
                payload=self.local[msg.offset : end].copy(),
                request=msg.request,
                dest=msg.dest,
            )
            engine.send_rma(reply)
        elif msg.op == "get_reply":
            # back at the origin: deliver into the destination buffer
            req = msg.request
            assert req is not None and msg.payload is not None
            assert msg.dest is not None
            msg.dest[: msg.payload.size] = msg.payload
            req._complete(EMPTY_STATUS)
        elif msg.op == "ack":
            assert msg.request is not None
            msg.request._complete(EMPTY_STATUS)
        elif msg.op == "nack":
            assert msg.request is not None and msg.payload is not None
            msg.request._fail(RMAError(bytes(msg.payload).decode()))
        elif msg.op == "lock":
            if self._locks.try_grant(msg):
                self._ack(msg, engine)
            else:
                self._locks.queue.append(msg)
        elif msg.op == "unlock":
            self._locks.release(msg.origin)
            self._ack(msg, engine)
            # grant queued waiters now permitted
            still = []
            for waiting in self._locks.queue:
                if self._locks.try_grant(waiting):
                    self._ack(waiting, engine)
                else:
                    still.append(waiting)
            self._locks.queue = still
        else:  # pragma: no cover - defensive
            raise RMAError(f"unknown RMA op {msg.op!r}")

    def _payload_array(self, payload, engine) -> np.ndarray:
        """Window-typed view of a put/acc payload (no copy).

        A *borrowed* ref means the bytes are coming straight out of the
        origin's user buffer right now — the zero-copy hit, counted on
        the target engine (mirroring the two-sided receiver side).
        """
        if isinstance(payload, BufferRef):
            if not payload.owned:
                engine.payload_zero_copy_hits += 1
            return payload.as_array().view(self.dtype)
        return payload.view(self.dtype)

    def _ack(self, msg: RMAMessage, engine) -> None:
        engine.send_rma(
            RMAMessage(
                op="ack",
                win_id=self.win_id,
                origin=msg.target,
                target=msg.origin,
                request=msg.request,
            )
        )

    def _nack(self, msg: RMAMessage, engine, reason: str) -> None:
        engine.send_rma(
            RMAMessage(
                op="nack",
                win_id=self.win_id,
                origin=msg.target,
                target=msg.origin,
                payload=np.frombuffer(reason.encode(), dtype=np.uint8).copy(),
                request=msg.request,
            )
        )
