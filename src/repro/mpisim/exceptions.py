"""Exception hierarchy for the in-process MPI implementation."""

from __future__ import annotations


class MPIError(Exception):
    """Base class for all errors raised by :mod:`repro.mpisim`."""


class InvalidRankError(MPIError):
    """A rank argument is outside the communicator."""


class InvalidTagError(MPIError):
    """A tag argument is negative (and not a wildcard) or too large."""


class TruncationError(MPIError):
    """An incoming message is larger than the posted receive buffer.

    Mirrors ``MPI_ERR_TRUNCATE``: matching succeeded but the data does
    not fit, so the receive completes in error.
    """


class DatatypeMismatch(MPIError):
    """Payload bytes cannot be laid down in the destination view.

    Raised by :func:`repro.mpisim.datatypes.copy_into` when a strided
    (non-contiguous) destination cannot absorb the payload without
    splitting an element — e.g. 10 bytes into a ``float64`` view.
    Mirrors ``MPI_ERR_TYPE``: the old code path silently truncated to
    whole elements instead of surfacing the disagreement.
    """


class ThreadLevelError(MPIError):
    """An MPI call violated the requested thread-support level.

    E.g. a non-main thread called into MPI under ``THREAD_FUNNELED``.
    """


class CommAbortError(MPIError):
    """The communicator's world has been aborted (peer rank failed)."""


class RankDeadError(MPIError):
    """A peer rank is known dead; the operation can never complete.

    Raised fast at post time (``post_send``/``post_recv`` against a
    dead rank) and used to fail operations already pending on a rank
    when :meth:`repro.mpisim.world.World.mark_rank_dead` runs — the
    fail-stop analogue of a ULFM ``MPI_ERR_PROC_FAILED``.

    Carries structured context alongside the message: ``rank`` (the
    dead global rank, when known), ``rule_id`` (the fault rule that
    killed it, when the death was injected), and ``cid`` (the
    communicator the failing operation ran on, when the error surfaced
    through one).
    """

    def __init__(
        self,
        message: str,
        *,
        rank: int | None = None,
        rule_id: str | None = None,
        cid: int | None = None,
    ) -> None:
        super().__init__(message)
        self.rank = rank
        self.rule_id = rule_id
        self.cid = cid


class CommRevokedError(MPIError):
    """The communicator has been revoked (ULFM ``MPI_ERR_REVOKED``).

    Every in-flight and future operation on a revoked communicator
    fails with this error; only the fault-management plane —
    ``agree``/``shrink`` — keeps working, so survivors can rebuild.
    """

    def __init__(self, message: str, *, cid: int | None = None) -> None:
        super().__init__(message)
        self.cid = cid


class WorldError(MPIError):
    """A rank program raised; carries the per-rank failures.

    Repeated deaths with the same cause are merged into one entry
    (``ranks 0,2: ...``) so a crashed rank surfacing through several
    survivors reads as one failure, not N.
    """

    def __init__(self, failures: dict[int, BaseException]):
        self.failures = failures
        groups: dict[tuple[str, str], list[int]] = {}
        for r, e in sorted(failures.items()):
            groups.setdefault((type(e).__name__, str(e)), []).append(r)
        parts = []
        for (tname, msg), ranks in groups.items():
            label = (
                f"rank {ranks[0]}"
                if len(ranks) == 1
                else "ranks " + ",".join(str(r) for r in ranks)
            )
            parts.append(f"{label}: {tname}: {msg}")
        detail = "; ".join(parts)
        super().__init__(f"{len(failures)} rank(s) failed: {detail}")
