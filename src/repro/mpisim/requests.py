"""Nonblocking request objects and the wait/test family.

A :class:`Request` belongs to exactly one rank's progress engine.
Testing or waiting on it pumps that engine, which is what gives the
substrate real MPI progress semantics: *nothing moves unless somebody
calls into the library* — the pathology the offload thread cures.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.mpisim.exceptions import MPIError
from repro.mpisim.status import EMPTY_STATUS, Status

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpisim.progress import ProgressEngine

#: How long a waiter sleeps between progress pumps.  Completion set by a
#: peer thread wakes the waiter immediately via the event.
_WAIT_SLICE = 1e-4


class Request:
    """Base class for all nonblocking operations."""

    __slots__ = (
        "engine",
        "_event",
        "status",
        "error",
        "cancelled",
    )

    def __init__(self, engine: "ProgressEngine | None") -> None:
        self.engine = engine
        self._event = threading.Event()
        self.status: Status | None = None
        self.error: BaseException | None = None
        self.cancelled = False

    # -- completion (called by progress engines, any thread) ------------

    def _complete(self, status: Status) -> None:
        self.status = status
        self._event.set()

    def _fail(self, exc: BaseException) -> None:
        self.error = exc
        self.status = EMPTY_STATUS
        self._event.set()

    # -- querying --------------------------------------------------------

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def test(self) -> tuple[bool, Status | None]:
        """Nonblocking completion check; pumps progress once."""
        if not self._event.is_set() and self.engine is not None:
            self.engine.progress()
        if self._event.is_set():
            if self.error is not None:
                raise self.error
            return True, self.status
        return False, None

    def wait(self, timeout: float | None = None) -> Status:
        """Block (pumping progress) until complete.

        ``timeout`` is a safety net for tests; production MPI has none.
        """
        deadline = None if timeout is None else _now() + timeout
        while True:
            if self.engine is not None:
                self.engine.progress()
            if self._event.is_set():
                if self.error is not None:
                    raise self.error
                assert self.status is not None
                return self.status
            remaining = _WAIT_SLICE
            if deadline is not None:
                remaining = min(remaining, deadline - _now())
                if remaining <= 0:
                    raise TimeoutError(
                        f"request did not complete within {timeout}s"
                    )
            self._event.wait(remaining)

    def cancel(self) -> bool:
        """Attempt to cancel; only unmatched receives are cancellable."""
        raise MPIError(f"{type(self).__name__} cannot be cancelled")


class CompletedRequest(Request):
    """A request born complete (PROC_NULL ops, eager local completion)."""

    __slots__ = ()

    def __init__(self, status: Status = EMPTY_STATUS) -> None:
        super().__init__(None)
        self._complete(status)


class SendRequest(Request):
    """In-flight send.  For rendezvous, holds the un-copied payload."""

    __slots__ = ("payload", "dst", "tag", "context_id", "nbytes")

    def __init__(
        self,
        engine: "ProgressEngine",
        payload: np.ndarray,
        dst: int,
        tag: int,
        context_id: int,
    ) -> None:
        super().__init__(engine)
        self.payload = payload
        self.dst = dst
        self.tag = tag
        self.context_id = context_id
        self.nbytes = payload.nbytes


class RecvRequest(Request):
    """Posted receive awaiting a match (or rendezvous data)."""

    __slots__ = ("buffer", "source", "tag", "context_id", "matched")

    def __init__(
        self,
        engine: "ProgressEngine",
        buffer: np.ndarray,
        source: int,
        tag: int,
        context_id: int,
    ) -> None:
        super().__init__(engine)
        self.buffer = buffer
        self.source = source
        self.tag = tag
        self.context_id = context_id
        #: set once matching succeeds; cancellation is then impossible
        self.matched = False

    def cancel(self) -> bool:
        if self.done:
            return False
        assert self.engine is not None
        return self.engine.cancel_recv(self)


def _now() -> float:
    import time

    return time.perf_counter()


def _engines(requests: Iterable[Request]):
    seen = []
    for r in requests:
        if r.engine is not None and r.engine not in seen:
            seen.append(r.engine)
    return seen


def test_request(req: Request) -> tuple[bool, Status | None]:
    """Module-level alias of :meth:`Request.test`."""
    return req.test()


def wait_request(req: Request, timeout: float | None = None) -> Status:
    """Module-level alias of :meth:`Request.wait`."""
    return req.wait(timeout=timeout)


def testall(requests: Sequence[Request]) -> tuple[bool, list[Status] | None]:
    """True plus statuses when every request is complete."""
    for e in _engines(requests):
        e.progress()
    if all(r.done for r in requests):
        out = []
        for r in requests:
            if r.error is not None:
                raise r.error
            assert r.status is not None
            out.append(r.status)
        return True, out
    return False, None


def testany(
    requests: Sequence[Request],
) -> tuple[int | None, Status | None]:
    """Index and status of some complete request, or ``(None, None)``."""
    for e in _engines(requests):
        e.progress()
    for i, r in enumerate(requests):
        if r.done:
            if r.error is not None:
                raise r.error
            return i, r.status
    return None, None


def waitall(
    requests: Sequence[Request], timeout: float | None = None
) -> list[Status]:
    """Wait for every request; statuses in request order."""
    deadline = None if timeout is None else _now() + timeout
    engines = _engines(requests)
    while True:
        for e in engines:
            e.progress()
        if all(r.done for r in requests):
            out = []
            for r in requests:
                if r.error is not None:
                    raise r.error
                assert r.status is not None
                out.append(r.status)
            return out
        if deadline is not None and _now() > deadline:
            pending = sum(not r.done for r in requests)
            raise TimeoutError(f"waitall: {pending} request(s) pending")
        _sleep_slice()


def waitany(
    requests: Sequence[Request], timeout: float | None = None
) -> tuple[int, Status]:
    """Wait until some request completes; returns its index and status."""
    if not requests:
        raise ValueError("waitany on empty request list")
    deadline = None if timeout is None else _now() + timeout
    engines = _engines(requests)
    while True:
        for e in engines:
            e.progress()
        for i, r in enumerate(requests):
            if r.done:
                if r.error is not None:
                    raise r.error
                assert r.status is not None
                return i, r.status
        if deadline is not None and _now() > deadline:
            raise TimeoutError("waitany: no request completed")
        _sleep_slice()


def waitsome(
    requests: Sequence[Request], timeout: float | None = None
) -> tuple[list[int], list[Status]]:
    """Wait until at least one completes; returns all completed."""
    idx, _ = waitany(requests, timeout=timeout)
    indices: list[int] = []
    statuses: list[Status] = []
    for i, r in enumerate(requests):
        if r.done:
            if r.error is not None:
                raise r.error
            assert r.status is not None
            indices.append(i)
            statuses.append(r.status)
    assert idx in indices
    return indices, statuses


def _sleep_slice() -> None:
    import time

    time.sleep(_WAIT_SLICE / 10)
