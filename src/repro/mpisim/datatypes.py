"""Buffer handling for message payloads.

Following mpi4py's split personality, the communicator offers a fast
buffer path (NumPy arrays, zero intermediate pickling) and a
convenience object path (arbitrary picklable objects).  Everything
below normalizes user arguments into flat byte views so the matching
and protocol layers deal in one representation.
"""

from __future__ import annotations

import pickle
from typing import Any

import numpy as np

from repro.mpisim.envelope import BufferRef
from repro.mpisim.exceptions import DatatypeMismatch, TruncationError


def as_send_buffer(buf: Any) -> np.ndarray:
    """View ``buf`` as a contiguous 1-D uint8 array without copying.

    Accepts NumPy arrays, ``bytes``/``bytearray``/``memoryview`` and
    anything exposing the buffer protocol.  Non-contiguous arrays are
    copied (as a real MPI derived-datatype pack would).
    """
    if isinstance(buf, np.ndarray):
        arr = buf
    else:
        arr = np.frombuffer(memoryview(buf).cast("B"), dtype=np.uint8)
    if not arr.flags.c_contiguous:
        arr = np.ascontiguousarray(arr)
    return arr.reshape(-1).view(np.uint8)


def as_recv_buffer(buf: Any) -> np.ndarray:
    """View ``buf`` as a writable contiguous 1-D uint8 array.

    The caller retains ownership; incoming payload bytes are copied into
    this view on match.
    """
    if isinstance(buf, np.ndarray):
        arr = buf
    else:
        mv = memoryview(buf)
        if mv.readonly:
            raise TypeError("receive buffer must be writable")
        arr = np.frombuffer(mv.cast("B"), dtype=np.uint8)
        # np.frombuffer marks the result read-only even for writable
        # memoryviews of bytearrays; re-enable writes explicitly.
        arr.flags.writeable = True
    if not arr.flags.writeable:
        raise TypeError("receive buffer must be writable")
    if not arr.flags.c_contiguous:
        raise TypeError("receive buffer must be contiguous")
    return arr.reshape(-1).view(np.uint8)


def copy_into(dst: np.ndarray, payload: "np.ndarray | BufferRef") -> int:
    """Copy ``payload`` bytes into ``dst``; returns bytes copied.

    This is the zero-copy data plane's *single* copy: the payload may
    be a :class:`~repro.mpisim.envelope.BufferRef` borrowing the
    sender's live user buffer, in which case the bytes move directly
    from that buffer into the receiver's posted view with no
    intermediate materialization.

    ``dst`` may be any writable NumPy view:

    * contiguous views (any dtype) take the flat byte path;
    * strided / non-contiguous views are filled element-wise through
      ``dst.flat`` — the payload byte count must then be a whole
      number of destination elements, else :class:`DatatypeMismatch`
      is raised (the old path silently dropped the partial element).

    Raises :class:`TruncationError` when the payload does not fit,
    mirroring ``MPI_ERR_TRUNCATE``.  Short messages are fine (the
    status carries the true count).
    """
    src = payload.view if isinstance(payload, BufferRef) else payload
    n = src.nbytes
    if n > dst.nbytes:
        raise TruncationError(
            f"message of {n} bytes truncated: receive buffer holds "
            f"{dst.nbytes}"
        )
    if not n:
        return 0
    src_bytes = src.reshape(-1).view(np.uint8)
    if dst.flags.c_contiguous:
        dst_bytes = dst.reshape(-1).view(np.uint8)
        dst_bytes[:n] = src_bytes
        return n
    # Strided destination: bytes cannot be viewed in place, so lay the
    # payload down element-by-element through the strided iterator.
    itemsize = dst.dtype.itemsize
    if n % itemsize:
        raise DatatypeMismatch(
            f"payload of {n} bytes does not divide into whole "
            f"{dst.dtype} elements ({itemsize} bytes each) for a "
            f"non-contiguous destination view"
        )
    k = n // itemsize
    dst.flat[:k] = src_bytes.view(dst.dtype)
    return n


def pack_object(obj: Any) -> np.ndarray:
    """Pickle an arbitrary object into a uint8 payload array."""
    raw = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    return np.frombuffer(raw, dtype=np.uint8).copy()


def unpack_object(payload: np.ndarray) -> Any:
    """Inverse of :func:`pack_object`."""
    return pickle.loads(payload.tobytes())
