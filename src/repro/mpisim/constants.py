"""MPI-style constants for the in-process implementation."""

from __future__ import annotations

from enum import IntEnum

#: Wildcard source for receives and probes.
ANY_SOURCE: int = -1

#: Wildcard tag for receives and probes.
ANY_TAG: int = -1

#: Null process: sends/recvs to it complete immediately with no data.
PROC_NULL: int = -2

#: Largest tag an application may use; larger values are reserved for
#: internal collective traffic.
MAX_USER_TAG: int = 2**28 - 1

#: Default eager/rendezvous switchover, matching the MPI implementation
#: measured in the paper (Section 4.1: "the MPI implementation uses the
#: eager protocol for messages up to 128 KB").
DEFAULT_EAGER_THRESHOLD: int = 128 * 1024


class ThreadLevel(IntEnum):
    """MPI thread support levels, ordered by permissiveness."""

    SINGLE = 0
    FUNNELED = 1
    SERIALIZED = 2
    MULTIPLE = 3


THREAD_SINGLE = ThreadLevel.SINGLE
THREAD_FUNNELED = ThreadLevel.FUNNELED
THREAD_SERIALIZED = ThreadLevel.SERIALIZED
THREAD_MULTIPLE = ThreadLevel.MULTIPLE
