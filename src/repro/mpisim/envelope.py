"""Wire envelopes exchanged between rank progress engines.

Three envelope kinds implement the two transfer protocols:

* ``EAGER`` — payload travels with the envelope (the sender copied it
  at post time, so the send completed locally).
* ``RTS`` (ready-to-send) — rendezvous control message; carries only
  the size and a reference to the sender's pending request.  The
  *receiver's* progress engine answers with ``CTS`` once a matching
  receive exists.
* ``CTS`` (clear-to-send) — carries the matched receive request; the
  *sender's* progress engine performs the actual copy when it sees
  this, then completes both requests.  This is where the "no progress
  ⇒ no transfer" hazard of the paper's Section 2 lives.

``COALESCED`` is a transport-level wrapper, not a protocol of its own:
it carries several consecutive ``EAGER`` envelopes for the same
destination as one wire message (the offload engine's small-message
coalescer packs them at issue time).  The receiver unpacks and handles
the parts in order, so matching semantics are exactly those of the
individual eager sends.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpisim.requests import RecvRequest, SendRequest


class EnvelopeKind(Enum):
    EAGER = "eager"
    RTS = "rts"
    CTS = "cts"
    #: one-sided operation record (see :mod:`repro.mpisim.rma`)
    RMA = "rma"
    #: batch of EAGER envelopes packed into one wire message
    COALESCED = "coalesced"


@dataclass(slots=True)
class Envelope:
    kind: EnvelopeKind
    src: int  # global sender rank
    dst: int  # global receiver rank
    context_id: int
    tag: int
    nbytes: int
    payload: np.ndarray | None = None  # EAGER only
    send_req: "SendRequest | None" = None  # RTS / CTS
    recv_req: "RecvRequest | None" = None  # CTS only
    rma: object | None = None  # RMA only: an RMAMessage record
    parts: "list[Envelope] | None" = None  # COALESCED only

    def matches(self, source: int, tag: int, context_id: int) -> bool:
        """Does this (EAGER/RTS) envelope satisfy a receive's pattern?"""
        from repro.mpisim.constants import ANY_SOURCE, ANY_TAG

        if self.context_id != context_id:
            return False
        if source != ANY_SOURCE and self.src != source:
            return False
        if tag != ANY_TAG and self.tag != tag:
            return False
        return True
