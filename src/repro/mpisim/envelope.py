"""Wire envelopes exchanged between rank progress engines.

Three envelope kinds implement the two transfer protocols:

* ``EAGER`` — payload travels with the envelope (the sender copied it
  at post time, so the send completed locally).
* ``RTS`` (ready-to-send) — rendezvous control message; carries only
  the size and a reference to the sender's pending request.  The
  *receiver's* progress engine answers with ``CTS`` once a matching
  receive exists.
* ``CTS`` (clear-to-send) — carries the matched receive request; the
  *sender's* progress engine performs the actual copy when it sees
  this, then completes both requests.  This is where the "no progress
  ⇒ no transfer" hazard of the paper's Section 2 lives.

``COALESCED`` is a transport-level wrapper, not a protocol of its own:
it carries several consecutive ``EAGER`` envelopes for the same
destination as one wire message (the offload engine's small-message
coalescer packs them at issue time).  The receiver unpacks and handles
the parts in order, so matching semantics are exactly those of the
individual eager sends.

Payloads are either an owned ``np.ndarray`` (the sender copied at post
time — the classic eager data path) or a :class:`BufferRef`, the
zero-copy data plane's unit of currency: a flat byte view plus a
dtype/shape header and an explicit ``owned``/``borrowed`` lifetime bit.
A *borrowed* ref aliases the sender's user buffer; the matching layer
copies it exactly once, directly into the receiver's posted buffer, and
only then completes the sender's request (DESIGN.md §14).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpisim.requests import RecvRequest, SendRequest


@dataclass(slots=True)
class BufferRef:
    """A payload by reference: byte view + header + lifetime bit.

    ``view`` is a flat ``uint8`` array.  ``owned=False`` means the view
    aliases memory the *application* owns (the sender's user buffer):
    it may only be read while the originating send request is pending,
    and whoever needs the bytes past that point must
    :meth:`materialize` first.  ``owned=True`` means the ref owns its
    bytes outright (a materialized copy, or a buffer built for the
    message) and may be held indefinitely.

    The ``dtype``/``shape`` header describes the logical array the
    bytes encode (the RMA path round-trips typed window data through
    it via :meth:`as_array`); for the two-sided byte path it is simply
    ``uint8``/``(nbytes,)``.
    """

    view: np.ndarray
    owned: bool
    dtype: str = "uint8"
    shape: tuple = ()

    @classmethod
    def borrow(cls, arr: np.ndarray) -> "BufferRef":
        """Wrap ``arr`` without copying (borrowed lifetime)."""
        flat = arr.reshape(-1).view(np.uint8)
        return cls(
            view=flat, owned=False, dtype=str(arr.dtype), shape=arr.shape
        )

    @classmethod
    def own(cls, arr: np.ndarray) -> "BufferRef":
        """Take an owned copy of ``arr`` (one materialization)."""
        flat = np.array(
            arr.reshape(-1).view(np.uint8), dtype=np.uint8, copy=True
        )
        return cls(
            view=flat, owned=True, dtype=str(arr.dtype), shape=arr.shape
        )

    @property
    def nbytes(self) -> int:
        return self.view.nbytes

    def materialize(self) -> "BufferRef":
        """An owned ref with the same bytes (no-op when already owned)."""
        if self.owned:
            return self
        return BufferRef(
            view=self.view.copy(),
            owned=True,
            dtype=self.dtype,
            shape=self.shape,
        )

    def as_array(self) -> np.ndarray:
        """The header-typed view of the bytes (no copy)."""
        return self.view.view(np.dtype(self.dtype)).reshape(self.shape)


class EnvelopeKind(Enum):
    EAGER = "eager"
    RTS = "rts"
    CTS = "cts"
    #: one-sided operation record (see :mod:`repro.mpisim.rma`)
    RMA = "rma"
    #: batch of EAGER envelopes packed into one wire message
    COALESCED = "coalesced"
    #: ULFM revoke notice: ``context_id >> 1`` names the revoked cid
    REVOKE = "revoke"


@dataclass(slots=True)
class Envelope:
    kind: EnvelopeKind
    src: int  # global sender rank
    dst: int  # global receiver rank
    context_id: int
    tag: int
    nbytes: int
    payload: "np.ndarray | BufferRef | None" = None  # EAGER only
    send_req: "SendRequest | None" = None  # RTS / CTS / zero-copy EAGER
    recv_req: "RecvRequest | None" = None  # CTS only
    rma: object | None = None  # RMA only: an RMAMessage record
    parts: "list[Envelope] | None" = None  # COALESCED only
    #: piggybacked revoke notice: cids the *sender* knows revoked,
    #: stamped by ``World._deliver`` so receivers learn of a revoke
    #: from any traffic, without a side channel (DESIGN.md §15)
    revoked: "tuple[int, ...] | None" = None

    def matches(self, source: int, tag: int, context_id: int) -> bool:
        """Does this (EAGER/RTS) envelope satisfy a receive's pattern?"""
        from repro.mpisim.constants import ANY_SOURCE, ANY_TAG

        if self.context_id != context_id:
            return False
        if source != ANY_SOURCE and self.src != source:
            return False
        if tag != ANY_TAG and self.tag != tag:
            return False
        return True
