"""MPI message matching: posted-receive and unexpected-message queues.

MPI's matching rules, which this module implements verbatim:

* a message matches a receive when context ids are equal and the
  receive's source/tag each either equal the message's or are
  wildcards;
* among candidates, matching is FIFO — the *earliest posted* receive
  takes the *earliest arrived* message (non-overtaking between a pair
  of ranks on one context).

Both queues are plain ordered lists scanned front-to-back; the caller
(the progress engine) holds the library lock, so no internal locking is
needed here.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterator

from repro.mpisim.envelope import Envelope
from repro.mpisim.requests import RecvRequest


class PostedReceiveQueue:
    """Receives posted but not yet matched, in post order."""

    __slots__ = ("_q",)

    def __init__(self) -> None:
        self._q: deque[RecvRequest] = deque()

    def post(self, req: RecvRequest) -> None:
        self._q.append(req)

    def match(self, env: Envelope) -> RecvRequest | None:
        """Remove and return the first receive matching ``env``."""
        for i, req in enumerate(self._q):
            if env.matches(req.source, req.tag, req.context_id):
                del self._q[i]
                return req
        return None

    def remove(self, req: RecvRequest) -> bool:
        """Withdraw a posted receive (cancellation)."""
        try:
            self._q.remove(req)
            return True
        except ValueError:
            return False

    def remove_where(
        self, pred: Callable[[RecvRequest], bool]
    ) -> list[RecvRequest]:
        """Remove and return every posted receive satisfying ``pred``
        (dead-rank cleanup: receives that can never be matched)."""
        taken = [req for req in self._q if pred(req)]
        if taken:
            self._q = deque(req for req in self._q if not pred(req))
        return taken

    def __len__(self) -> int:
        return len(self._q)

    def __iter__(self) -> Iterator[RecvRequest]:  # pragma: no cover
        return iter(self._q)


class UnexpectedQueue:
    """Arrived envelopes with no matching receive, in arrival order."""

    __slots__ = ("_q",)

    def __init__(self) -> None:
        self._q: deque[Envelope] = deque()

    def add(self, env: Envelope) -> None:
        self._q.append(env)

    def match(
        self, source: int, tag: int, context_id: int
    ) -> Envelope | None:
        """Remove and return the first envelope matching the pattern."""
        for i, env in enumerate(self._q):
            if env.matches(source, tag, context_id):
                del self._q[i]
                return env
        return None

    def peek(
        self, source: int, tag: int, context_id: int
    ) -> Envelope | None:
        """Like :meth:`match` but leaves the envelope queued (probe)."""
        for env in self._q:
            if env.matches(source, tag, context_id):
                return env
        return None

    def remove_where(
        self, pred: Callable[[Envelope], bool]
    ) -> list[Envelope]:
        """Remove and return every queued envelope satisfying ``pred``
        (dead-rank cleanup: control messages whose sender died)."""
        taken = [env for env in self._q if pred(env)]
        if taken:
            self._q = deque(env for env in self._q if not pred(env))
        return taken

    def __len__(self) -> int:
        return len(self._q)

    def __iter__(self) -> Iterator[Envelope]:  # pragma: no cover
        return iter(self._q)
