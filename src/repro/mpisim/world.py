"""World launcher: runs an SPMD rank program on N threads.

The analogue of ``mpiexec -n N``: each rank is a thread executing the
same function with its own :class:`~repro.mpisim.communicator.Communicator`
(the world communicator).  Ranks share one address space, which is what
lets the rendezvous protocol copy directly between user buffers — the
same property the paper exploits for its zero-extra-copy offload
(Section 3.1).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

from repro.lockfree.atomics import AtomicCounter
from repro.mpisim.communicator import Communicator
from repro.mpisim.constants import (
    DEFAULT_EAGER_THRESHOLD,
    ThreadLevel,
    THREAD_FUNNELED,
)
from repro.mpisim.envelope import Envelope
from repro.mpisim.exceptions import WorldError
from repro.mpisim.progress import ProgressEngine

_WORLD_CID = 0
_SELF_CID = 1


class World:
    """A fixed set of ranks (threads) and their progress engines.

    Parameters
    ----------
    nranks:
        Number of MPI ranks to emulate.
    thread_level:
        The granted thread-support level, enforced at every MPI call.
    eager_threshold:
        Protocol switchover in bytes (paper's MPI used 128 KB).
    zero_copy:
        Enable the zero-copy data plane (DESIGN.md §14): eager sends
        borrow the user buffer and complete at match time, paying
        exactly one copy — directly into the receiver's posted buffer.
        Off by default (classic copy-at-post eager semantics).
    """

    def __init__(
        self,
        nranks: int,
        thread_level: ThreadLevel = THREAD_FUNNELED,
        eager_threshold: int = DEFAULT_EAGER_THRESHOLD,
        zero_copy: bool = False,
    ) -> None:
        if nranks <= 0:
            raise ValueError("nranks must be positive")
        self.nranks = nranks
        self.thread_level = ThreadLevel(thread_level)
        self.eager_threshold = eager_threshold
        self.zero_copy = zero_copy
        self.engines = [
            ProgressEngine(
                r, self._deliver, eager_threshold, zero_copy=zero_copy
            )
            for r in range(nranks)
        ]
        self._funnel: dict[int, int | None] = {r: None for r in range(nranks)}
        self._next_cid = AtomicCounter(2)  # 0 = WORLD, 1 = SELF
        #: installed :class:`repro.faults.plan.FaultPlan` (None = no
        #: fault injection; the delivery hot path is one `is None` test)
        self.fault_plan = None
        #: ranks that have failed, shared with every progress engine
        self._dead_ranks: dict[int, BaseException] = {}
        self._death_lock = threading.Lock()
        #: per-dead-rank completion flags: set once the winning
        #: :meth:`mark_rank_dead` caller finished sweeping pending
        #: operations, so racing callers do not return early
        self._death_done: dict[int, threading.Event] = {}
        #: keyed context-id allocations (see :meth:`allocate_cid_keyed`)
        self._keyed_cids: dict[object, int] = {}
        self._cid_key_lock = threading.Lock()
        #: DST-only regression hook: make ``Communicator.agree`` decide
        #: after its first round, skipping the uniform-mask check and
        #: gather-failure retry (the pre-fix behavior).  Re-opens the
        #: split-brain agreement race the ``agree-vs-participant-crash``
        #: corpus target rediscovers.  Only ever set by repro.dst.targets.
        self._unsafe_agree_trust_first_round = False
        for e in self.engines:
            e.dead_ranks = self._dead_ranks

    # -- routing -----------------------------------------------------------

    def _deliver(self, dst: int, env: Envelope) -> None:
        src_eng = self.engines[env.src]
        if src_eng._revoked:
            # Piggyback the sender's revoked-cid knowledge on every
            # outgoing envelope: receivers learn of a revoke from any
            # traffic, no side channel needed (DESIGN.md §15).
            env.revoked = tuple(src_eng._revoked)
        if self._dead_ranks and dst in self._dead_ranks:
            self._bounce_dead(dst, env)
            return
        plan = self.fault_plan
        if plan is None:
            self.engines[dst].inject(env)
            return
        for d, e in plan.on_deliver(dst, env):
            self.engines[d].inject(e)

    def _bounce_dead(self, dst: int, env: Envelope) -> None:
        """A message addressed to a dead rank: fail its live requester.

        Rendezvous control traffic carries request references — failing
        them here is what bounds detection for operations posted
        *after* the death was recorded but routed before the poster
        observed it.
        """
        from repro.mpisim.exceptions import RankDeadError

        exc = self._dead_ranks[dst]
        err = RankDeadError(
            f"message to dead rank {dst} bounced ({exc})",
            rank=dst,
            rule_id=getattr(exc, "rule_id", None),
            cid=env.context_id >> 1 if env.context_id >= 0 else None,
        )
        for req in (env.send_req, env.recv_req):
            if req is not None and not req.done:
                req._fail(err)
        if env.parts:
            # Coalesced wrapper: zero-copy parts carry live send
            # requests of their own.
            for part in env.parts:
                if part.send_req is not None and not part.send_req.done:
                    part.send_req._fail(err)

    # -- fault injection ---------------------------------------------------

    def install_faults(self, plan) -> None:
        """Install a :class:`repro.faults.plan.FaultPlan` world-wide.

        Binds the plan (so RANK_CRASH rules can reach
        :meth:`mark_rank_dead`) and attaches it to every progress
        engine; offload engines constructed afterwards pick it up
        automatically via ``world.fault_plan``.
        """
        plan.bind(self)
        self.fault_plan = plan
        for e in self.engines:
            e.faults = plan

    # -- dead-rank bookkeeping ---------------------------------------------

    @property
    def dead_ranks(self) -> dict[int, BaseException]:
        """Ranks recorded dead (empty in normal operation)."""
        return dict(self._dead_ranks)

    def mark_rank_dead(self, rank: int, exc: BaseException) -> None:
        """Record a rank as failed and unblock everything waiting on it.

        Idempotent.  Fails (with :class:`RankDeadError`):

        * peers' rendezvous/matched traffic parked on the dead rank,
        * every peer's posted receive naming the dead rank as source,

        and makes subsequent ``post_send``/``post_recv`` against the
        rank fail fast — so no operation involving a dead rank waits
        past its next progress interaction.

        Idempotent *and* synchronizing under concurrency: when two
        threads race to mark the same rank dead, exactly one performs
        the pending-operation sweep, and the loser blocks until that
        sweep finished — so every caller may assume, on return, that
        nothing is still parked on the dead rank.  (The first recorded
        exception wins; later ones are dropped.)
        """
        from repro.dst import hooks as _dst

        with self._death_lock:
            done = self._death_done.get(rank)
            if done is not None:
                winner = False
            else:
                done = threading.Event()
                self._death_done[rank] = done
                self._dead_ranks[rank] = exc
                winner = True
        if not winner:
            # A concurrent caller is (or was) mid-sweep; returning
            # before it finishes would break the "nothing still parked"
            # guarantee above.
            if _dst.is_virtual_thread():
                _dst.flag_wait(done.is_set)
            else:
                done.wait()
            return
        if _dst._scheduler is not None and _dst.is_virtual_thread():
            # Expose the insert-vs-sweep window to the DST explorer.
            _dst.yield_point("world.mark_rank_dead")
        try:
            self.engines[rank].fail_pending_on_death(exc)
            for r, e in enumerate(self.engines):
                if r != rank:
                    e.notify_rank_death(rank, exc)
        finally:
            done.set()

    # -- context-id allocation (see Communicator.dup/split) -----------------

    def allocate_cid(self) -> int:
        return self._next_cid.fetch_add(1)

    def allocate_cid_block(self, n: int) -> int:
        return self._next_cid.fetch_add(n)

    def allocate_cid_keyed(self, key: object) -> int:
        """One context id per distinct ``key``, whoever asks first.

        ``Communicator.shrink`` survivors cannot run an ordinary
        root-broadcast cid agreement (the root may be the dead rank),
        so each survivor derives the *same* key from agreed state and
        the first asker allocates; everyone else gets the cached id.

        The fresh cid is allocated *outside* the key lock:
        ``AtomicCounter.fetch_add`` carries a DST yield point, and
        parking a virtual thread while holding a real lock stalls
        every concurrent caller outside the scheduler's view.  A
        racing loser's speculative cid is simply abandoned (cid space
        is allowed to have gaps).
        """
        with self._cid_key_lock:
            cid = self._keyed_cids.get(key)
        if cid is not None:
            return cid
        fresh = self.allocate_cid()
        with self._cid_key_lock:
            return self._keyed_cids.setdefault(key, fresh)

    # -- thread-level bookkeeping -------------------------------------------

    def funnel_thread(self, rank: int) -> int | None:
        return self._funnel[rank]

    def set_funnel_thread(self, rank: int, ident: int | None) -> None:
        """Designate which thread may call MPI under FUNNELED.

        The offload engine points this at its communication thread so
        the substrate itself verifies the paper's claim that only the
        offload thread ever enters MPI.
        """
        self._funnel[rank] = ident

    # -- communicator construction -------------------------------------------

    def comm_world(self, rank: int) -> Communicator:
        """This rank's handle on the world communicator."""
        return Communicator(
            self, self.engines[rank], tuple(range(self.nranks)), _WORLD_CID
        )

    def comm_self(self, rank: int) -> Communicator:
        """This rank's COMM_SELF (used by the comm-self progress thread)."""
        return Communicator(self, self.engines[rank], (rank,), _SELF_CID)

    # -- SPMD execution ----------------------------------------------------------

    def run(
        self,
        fn: Callable[..., Any],
        *args: Any,
        timeout: float = 120.0,
        **kwargs: Any,
    ) -> list[Any]:
        """Run ``fn(comm, *args, **kwargs)`` on every rank; return results.

        Raises :class:`WorldError` aggregating any per-rank exceptions.
        ``timeout`` bounds the whole run (deadlocked ranks surface as
        ``TimeoutError`` entries rather than hanging the process).
        """
        results: list[Any] = [None] * self.nranks
        failures: dict[int, BaseException] = {}

        def runner(rank: int) -> None:
            self._funnel[rank] = threading.get_ident()
            comm = self.comm_world(rank)
            try:
                results[rank] = fn(comm, *args, **kwargs)
            except BaseException as exc:  # noqa: BLE001 - reported to caller
                failures[rank] = exc

        threads = [
            threading.Thread(
                target=runner, args=(r,), name=f"mpisim-rank-{r}", daemon=True
            )
            for r in range(self.nranks)
        ]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for r, t in enumerate(threads):
            remaining = timeout - (time.perf_counter() - t0)
            t.join(max(0.0, remaining))
            if t.is_alive():
                failures.setdefault(
                    r,
                    TimeoutError(
                        f"rank {r} did not finish within {timeout}s "
                        f"(likely deadlock); queues: "
                        f"{self.engines[r].pending_counts()}"
                    ),
                )
        # Snapshot under the death lock: a straggler fault-injection
        # thread may still be marking ranks dead while we aggregate.
        with self._death_lock:
            dead = dict(self._dead_ranks)
        for rank, exc in dead.items():
            failures.setdefault(rank, exc)
        if failures:
            raise WorldError(failures)
        return results

    # -- diagnostics ----------------------------------------------------------------

    def total_lock_contentions(self) -> int:
        return sum(e.lock_contentions for e in self.engines)

    def total_bytes_sent(self) -> int:
        return sum(e.bytes_sent for e in self.engines)

    def total_payload_copies(self) -> int:
        """Intermediate payload materializations across all ranks."""
        return sum(e.payload_copies for e in self.engines)

    def total_payload_zero_copy_hits(self) -> int:
        """Direct user-buffer-to-posted-buffer deliveries, all ranks."""
        return sum(e.payload_zero_copy_hits for e in self.engines)
