"""The user-facing communicator: point-to-point, probes, collectives.

Mirrors mpi4py conventions: buffer methods (``send``/``recv``/...)
move NumPy arrays or buffer-protocol objects with zero pickling;
``*_obj`` variants move arbitrary picklable Python objects.

Thread-level rules (paper Section 1/3.3) are enforced at every entry
point:

* ``THREAD_SINGLE`` / ``THREAD_FUNNELED`` — only the rank's designated
  funnel thread may call MPI (the offload engine re-designates this to
  its communication thread);
* ``THREAD_SERIALIZED`` — any thread, but concurrent entry is an error
  and is detected;
* ``THREAD_MULTIPLE`` — anything goes; the price is library-lock
  contention, which the engine counts.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

from repro.mpisim import datatypes
from repro.mpisim.constants import (
    ANY_SOURCE,
    ANY_TAG,
    MAX_USER_TAG,
    PROC_NULL,
    ThreadLevel,
)
from repro.mpisim.envelope import Envelope, EnvelopeKind
from repro.mpisim.exceptions import (
    InvalidRankError,
    InvalidTagError,
    MPIError,
    RankDeadError,
    ThreadLevelError,
)
from repro.mpisim.reduce_ops import ReduceOp, SUM
from repro.mpisim.requests import Request
from repro.mpisim.status import Status

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpisim.progress import ProgressEngine
    from repro.mpisim.world import World

#: Internal tag space base for collective traffic (beyond user tags).
_COLL_TAG_BASE = MAX_USER_TAG + 1

#: Agreement-protocol message kinds (wire word [1] of an ft message).
_FT_CAND = 0  # candidate value for a round
_FT_DECIDED = 1  # final value; receivers adopt and re-disseminate


class Communicator:
    """Per-rank communicator handle.

    Instances are cheap views over a shared (group, context) identity;
    ``dup``/``split`` are collective calls producing new identities.
    """

    def __init__(
        self,
        world: "World",
        engine: "ProgressEngine",
        group: tuple[int, ...],
        cid: int,
    ) -> None:
        self.world = world
        self.engine = engine
        self.group = group
        self.cid = cid
        #: context ids: even for point-to-point, odd for collectives
        self.ctx_p2p = 2 * cid
        self.ctx_coll = 2 * cid + 1
        #: fault-management context (negative by construction): the
        #: ULFM plane — ``agree``/``shrink`` traffic — which bypasses
        #: every revoked-communicator guard, so survivors can still
        #: coordinate on a revoked communicator (DESIGN.md §15)
        self.ctx_ft = -(2 * cid + 2)
        self.rank = group.index(engine.rank)
        self.size = len(group)
        self._coll_seq = 0
        self._coll_lock = threading.Lock()
        #: agreement epoch counter (one per ``agree`` call; collective
        #: call order keeps survivors' epochs aligned)
        self._agree_seq = 0
        self._agree_lock = threading.Lock()
        #: ft-plane messages pulled but belonging to a later epoch,
        #: per comm-local peer (consumed before posting new receives)
        self._ft_backlog: dict[int, deque[np.ndarray]] = {}
        self._serial_guard: int | None = None
        self._serial_lock = threading.Lock()

    # ------------------------------------------------------------------ basics

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Communicator(cid={self.cid}, rank={self.rank}/{self.size})"
        )

    @property
    def thread_level(self) -> ThreadLevel:
        return self.world.thread_level

    # ------------------------------------------------------- thread-level police

    def _enter(self) -> None:
        level = self.world.thread_level
        ident = threading.get_ident()
        if level <= ThreadLevel.FUNNELED:
            funnel = self.world.funnel_thread(self.engine.rank)
            if funnel is not None and ident != funnel:
                raise ThreadLevelError(
                    f"thread {ident} called MPI under "
                    f"{'THREAD_SINGLE' if level == ThreadLevel.SINGLE else 'THREAD_FUNNELED'}; "
                    f"only thread {funnel} may"
                )
        elif level == ThreadLevel.SERIALIZED:
            with self._serial_lock:
                if self._serial_guard is not None and self._serial_guard != ident:
                    raise ThreadLevelError(
                        "concurrent MPI calls detected under THREAD_SERIALIZED "
                        f"(threads {self._serial_guard} and {ident})"
                    )
                self._serial_guard = ident

    def _exit(self) -> None:
        if self.world.thread_level == ThreadLevel.SERIALIZED:
            with self._serial_lock:
                if self._serial_guard == threading.get_ident():
                    self._serial_guard = None

    # ----------------------------------------------------------------- checking

    def _check_rank(self, r: int, *, wildcard: bool = False) -> None:
        if r == PROC_NULL:
            return
        if wildcard and r == ANY_SOURCE:
            return
        if not 0 <= r < self.size:
            raise InvalidRankError(
                f"rank {r} outside communicator of size {self.size}"
            )

    @staticmethod
    def _check_tag(tag: int, *, wildcard: bool = False) -> None:
        if wildcard and tag == ANY_TAG:
            return
        if not 0 <= tag <= MAX_USER_TAG:
            raise InvalidTagError(f"tag {tag} out of range")

    def _global(self, r: int) -> int:
        return r if r == PROC_NULL else self.group[r]

    # -------------------------------------------------------------- internal p2p
    # Used by collectives: explicit context, no thread-level re-entry check.

    def _isend_internal(
        self, payload: np.ndarray, dst: int, tag: int, ctx: int
    ) -> Request:
        return self.engine.post_send(
            datatypes.as_send_buffer(payload), self._global(dst), tag, ctx
        )

    def _irecv_internal(
        self, buffer: np.ndarray, src: int, tag: int, ctx: int
    ) -> Request:
        return self.engine.post_recv(
            datatypes.as_recv_buffer(buffer), self._global(src), tag, ctx
        )

    def next_coll_tag(self) -> int:
        """Per-communicator collective sequence number.

        MPI requires all ranks to issue collectives on a communicator in
        the same order, so each rank's local counter yields identical
        tags for the matching calls.
        """
        with self._coll_lock:
            tag = _COLL_TAG_BASE + self._coll_seq
            self._coll_seq += 1
            return tag

    # ---------------------------------------------------------------- public p2p

    def isend(self, buf: Any, dest: int, tag: int = 0) -> Request:
        """Nonblocking buffer send."""
        self._enter()
        try:
            self._check_rank(dest)
            self._check_tag(tag)
            payload = datatypes.as_send_buffer(buf)
            return self.engine.post_send(
                payload, self._global(dest), tag, self.ctx_p2p
            )
        finally:
            self._exit()

    def isend_coalesced(
        self, items: Sequence[tuple[Any, int]], dest: int
    ) -> list[Request]:
        """Several eager-sized sends to one peer as one wire message.

        ``items`` is a sequence of ``(buf, tag)`` pairs.  Semantically
        identical to issuing the ``isend`` calls back to back (the
        receiver unpacks and matches the parts in order); used by the
        offload engine's small-message coalescer, not application code.
        """
        self._enter()
        try:
            self._check_rank(dest)
            payloads: list[np.ndarray] = []
            tags: list[int] = []
            for buf, tag in items:
                self._check_tag(tag)
                payloads.append(datatypes.as_send_buffer(buf))
                tags.append(tag)
            return self.engine.post_send_coalesced(
                payloads, self._global(dest), tags, self.ctx_p2p
            )
        finally:
            self._exit()

    def irecv(
        self, buf: Any, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> Request:
        """Nonblocking buffer receive."""
        self._enter()
        try:
            self._check_rank(source, wildcard=True)
            self._check_tag(tag, wildcard=True)
            buffer = datatypes.as_recv_buffer(buf)
            gsrc = source if source in (ANY_SOURCE, PROC_NULL) else self.group[source]
            return self.engine.post_recv(buffer, gsrc, tag, self.ctx_p2p)
        finally:
            self._exit()

    def send(self, buf: Any, dest: int, tag: int = 0) -> None:
        """Blocking buffer send (returns when the buffer is reusable)."""
        self.isend(buf, dest, tag).wait()

    def recv(
        self, buf: Any, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> Status:
        """Blocking buffer receive; returns the message status."""
        st = self.irecv(buf, source, tag).wait()
        return self._localize_status(st)

    def sendrecv(
        self,
        sendbuf: Any,
        dest: int,
        recvbuf: Any,
        source: int,
        sendtag: int = 0,
        recvtag: int = ANY_TAG,
    ) -> Status:
        """Combined send+receive; deadlock-free for exchange patterns."""
        rreq = self.irecv(recvbuf, source, recvtag)
        sreq = self.isend(sendbuf, dest, sendtag)
        sreq.wait()
        return self._localize_status(rreq.wait())

    def _localize_status(self, st: Status) -> Status:
        """Convert the engine's global source rank to a comm-local one."""
        if st.source < 0:
            return st
        return Status(
            self.group.index(st.source), st.tag, st.count, st.cancelled
        )

    # -------------------------------------------------------------------- probes

    def iprobe(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> Status | None:
        """Nonblocking probe.  Also drives progress — which is exactly
        how the paper's *iprobe* approach uses it (Section 2.1)."""
        self._enter()
        try:
            self._check_rank(source, wildcard=True)
            self._check_tag(tag, wildcard=True)
            gsrc = source if source == ANY_SOURCE else self.group[source]
            st = self.engine.iprobe(gsrc, tag, self.ctx_p2p)
            return None if st is None else self._localize_status(st)
        finally:
            self._exit()

    def probe(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        timeout: float | None = None,
    ) -> Status:
        """Blocking probe."""
        import time

        deadline = None if timeout is None else time.perf_counter() + timeout
        while True:
            st = self.iprobe(source, tag)
            if st is not None:
                return st
            if deadline is not None and time.perf_counter() > deadline:
                raise TimeoutError("probe timed out")
            time.sleep(1e-5)

    # ------------------------------------------------------------------- objects

    def isend_obj(self, obj: Any, dest: int, tag: int = 0) -> Request:
        """Nonblocking pickled-object send."""
        return self.isend(datatypes.pack_object(obj), dest, tag)

    def send_obj(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Blocking pickled-object send."""
        self.isend_obj(obj, dest, tag).wait()

    def recv_obj(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        timeout: float | None = None,
    ) -> Any:
        """Blocking pickled-object receive.

        Probes for the matching message to size the buffer, then
        receives it.  FIFO matching guarantees the subsequent receive
        takes the same message the probe saw.
        """
        st = self.probe(source, tag, timeout=timeout)
        buf = np.empty(st.count, dtype=np.uint8)
        self.recv(buf, st.source, st.tag)
        return datatypes.unpack_object(buf)

    # --------------------------------------------------------------- collectives
    # Implemented in repro.mpisim.collectives / nbc; thin wrappers here.

    def barrier(self) -> None:
        from repro.mpisim import collectives

        self._enter()
        try:
            collectives.barrier(self)
        finally:
            self._exit()

    def bcast(self, buf: Any, root: int = 0) -> None:
        from repro.mpisim import collectives

        self._enter()
        try:
            self._check_rank(root)
            collectives.bcast(self, buf, root)
        finally:
            self._exit()

    def bcast_obj(self, obj: Any = None, root: int = 0) -> Any:
        from repro.mpisim import collectives

        self._enter()
        try:
            self._check_rank(root)
            return collectives.bcast_obj(self, obj, root)
        finally:
            self._exit()

    def reduce(
        self,
        sendbuf: np.ndarray,
        recvbuf: np.ndarray | None = None,
        op: ReduceOp = SUM,
        root: int = 0,
    ) -> np.ndarray | None:
        from repro.mpisim import collectives

        self._enter()
        try:
            self._check_rank(root)
            return collectives.reduce(self, sendbuf, recvbuf, op, root)
        finally:
            self._exit()

    def allreduce(
        self,
        sendbuf: np.ndarray,
        recvbuf: np.ndarray | None = None,
        op: ReduceOp = SUM,
    ) -> np.ndarray:
        from repro.mpisim import collectives

        self._enter()
        try:
            return collectives.allreduce(self, sendbuf, recvbuf, op)
        finally:
            self._exit()

    def gather(
        self,
        sendbuf: np.ndarray,
        recvbuf: np.ndarray | None = None,
        root: int = 0,
    ) -> np.ndarray | None:
        from repro.mpisim import collectives

        self._enter()
        try:
            self._check_rank(root)
            return collectives.gather(self, sendbuf, recvbuf, root)
        finally:
            self._exit()

    def scatter(
        self,
        sendbuf: np.ndarray | None,
        recvbuf: np.ndarray,
        root: int = 0,
    ) -> np.ndarray:
        from repro.mpisim import collectives

        self._enter()
        try:
            self._check_rank(root)
            return collectives.scatter(self, sendbuf, recvbuf, root)
        finally:
            self._exit()

    def allgather(
        self, sendbuf: np.ndarray, recvbuf: np.ndarray | None = None
    ) -> np.ndarray:
        from repro.mpisim import collectives

        self._enter()
        try:
            return collectives.allgather(self, sendbuf, recvbuf)
        finally:
            self._exit()

    def alltoall(
        self, sendbuf: np.ndarray, recvbuf: np.ndarray | None = None
    ) -> np.ndarray:
        from repro.mpisim import collectives

        self._enter()
        try:
            return collectives.alltoall(self, sendbuf, recvbuf)
        finally:
            self._exit()

    def gatherv(
        self,
        sendbuf: np.ndarray,
        recvcounts,
        recvbuf: np.ndarray | None = None,
        root: int = 0,
    ) -> np.ndarray | None:
        from repro.mpisim import collectives

        self._enter()
        try:
            self._check_rank(root)
            return collectives.gatherv(self, sendbuf, recvcounts, recvbuf, root)
        finally:
            self._exit()

    def scatterv(
        self,
        sendbuf: np.ndarray | None,
        sendcounts,
        recvbuf: np.ndarray,
        root: int = 0,
    ) -> np.ndarray:
        from repro.mpisim import collectives

        self._enter()
        try:
            self._check_rank(root)
            return collectives.scatterv(self, sendbuf, sendcounts, recvbuf, root)
        finally:
            self._exit()

    def alltoallv(
        self,
        sendbuf: np.ndarray,
        sendcounts,
        recvbuf: np.ndarray,
        recvcounts,
    ) -> np.ndarray:
        from repro.mpisim import collectives

        self._enter()
        try:
            return collectives.alltoallv(
                self, sendbuf, sendcounts, recvbuf, recvcounts
            )
        finally:
            self._exit()

    def reduce_scatter(
        self,
        sendbuf: np.ndarray,
        recvbuf: np.ndarray | None = None,
        op: ReduceOp = SUM,
    ) -> np.ndarray:
        from repro.mpisim import collectives

        self._enter()
        try:
            return collectives.reduce_scatter(self, sendbuf, recvbuf, op)
        finally:
            self._exit()

    def scan(
        self,
        sendbuf: np.ndarray,
        recvbuf: np.ndarray | None = None,
        op: ReduceOp = SUM,
    ) -> np.ndarray:
        from repro.mpisim import collectives

        self._enter()
        try:
            return collectives.scan(self, sendbuf, recvbuf, op)
        finally:
            self._exit()

    # ---------------------------------------------------- nonblocking collectives

    def ibarrier(self) -> Request:
        from repro.mpisim import nbc

        self._enter()
        try:
            return nbc.ibarrier(self)
        finally:
            self._exit()

    def ibcast(self, buf: np.ndarray, root: int = 0) -> Request:
        from repro.mpisim import nbc

        self._enter()
        try:
            self._check_rank(root)
            return nbc.ibcast(self, buf, root)
        finally:
            self._exit()

    def iallreduce(
        self,
        sendbuf: np.ndarray,
        recvbuf: np.ndarray,
        op: ReduceOp = SUM,
    ) -> Request:
        from repro.mpisim import nbc

        self._enter()
        try:
            return nbc.iallreduce(self, sendbuf, recvbuf, op)
        finally:
            self._exit()

    def igather(
        self,
        sendbuf: np.ndarray,
        recvbuf: np.ndarray | None = None,
        root: int = 0,
    ) -> Request:
        from repro.mpisim import nbc

        self._enter()
        try:
            self._check_rank(root)
            return nbc.igather(self, sendbuf, recvbuf, root)
        finally:
            self._exit()

    def ialltoall(
        self, sendbuf: np.ndarray, recvbuf: np.ndarray
    ) -> Request:
        from repro.mpisim import nbc

        self._enter()
        try:
            return nbc.ialltoall(self, sendbuf, recvbuf)
        finally:
            self._exit()

    # ---------------------------------------------- fault tolerance (ULFM)
    # The fault-management plane: callable from any thread (no _enter —
    # recovery must run even when the funnel/offload thread is the
    # casualty), working even on a revoked communicator (ctx_ft is
    # negative, bypassing every revoked guard).  DESIGN.md §15.

    @property
    def revoked(self) -> bool:
        """Has this communicator been revoked (locally known)?"""
        return self.cid in self.engine._revoked

    def revoke(self) -> None:
        """Revoke the communicator (ULFM ``MPI_Comm_revoke``).

        Poisons every in-flight and future operation on it — locally at
        once, remotely via an explicit ``REVOKE`` notice to every group
        member plus piggybacked notices on all subsequent traffic
        (``World._deliver`` stamps them), so peers learn of the revoke
        without a side channel.  Idempotent; never raises on dead peers.
        """
        if not self.engine.apply_revoke(self.cid):
            return
        for g in self.group:
            if g == self.engine.rank:
                continue
            self.world._deliver(
                g,
                Envelope(
                    kind=EnvelopeKind.REVOKE,
                    src=self.engine.rank,
                    dst=g,
                    context_id=self.ctx_p2p,
                    tag=-1,
                    nbytes=0,
                ),
            )

    # -- agreement ---------------------------------------------------------

    def _ft_send(
        self, peer: int, epoch: int, kind: int, rnd: int, value: int,
        mask_bits: int,
    ) -> None:
        """Ship one ft-plane word to comm-local ``peer`` (eager, 40 B)."""
        msg = np.array(
            [epoch, kind, rnd, value, mask_bits], dtype=np.int64
        )
        self.engine.post_send(msg, self.group[peer], 0, self.ctx_ft)

    def _ft_wait(self, req: Request, deadline: float) -> None:
        """Actively pump progress until ``req`` completes.

        Must not park on the request event: nobody else pumps this
        rank's engine during agreement, so the waiter drives its own
        progress.  Under a DST scheduler each iteration is a yield
        point instead of a sleep, keeping the wait replayable.
        """
        from repro.dst import hooks as _dst

        while True:
            self.engine.progress()
            if req.done:
                if req.error is not None:
                    raise req.error
                return
            if _dst.is_virtual_thread():
                _dst.yield_point("agree.recv_wait")
            else:
                if time.perf_counter() > deadline:
                    raise MPIError(
                        "agree: timed out waiting for a peer message"
                    )
                time.sleep(1e-5)

    def _ft_next_msg(
        self, peer: int, epoch: int, deadline: float
    ) -> np.ndarray:
        """Next ft-plane message from ``peer`` with epoch >= ``epoch``.

        Stale-epoch messages (leftovers of an agreement this rank
        already finished) are dropped; per-pair FIFO guarantees a
        peer's traffic arrives in the order it was sent, so the first
        non-stale message is the relevant one.
        """
        backlog = self._ft_backlog.setdefault(peer, deque())
        while True:
            while backlog:
                msg = backlog.popleft()
                if int(msg[0]) >= epoch:
                    return msg
            buf = np.empty(5, dtype=np.int64)
            req = self.engine.post_recv(
                buf, self.group[peer], 0, self.ctx_ft
            )
            self._ft_wait(req, deadline)
            if int(buf[0]) >= epoch:
                return buf.copy()

    def agree(self, flag: int = 1, timeout: float = 60.0) -> int:
        """Fault-tolerant agreement (ULFM ``MPI_Comm_agree``).

        Returns the bitwise AND of every participant's ``flag``, with
        the guarantee that **all survivors return the same value** even
        when participants die mid-protocol.  Works on a revoked
        communicator (it runs on the fault-management context).

        Protocol (DESIGN.md §15): rounds of all-to-all candidate
        exchange.  Each round a rank sends ``CAND(epoch, round, cand,
        mask)`` to every peer it believes live, then gathers exactly
        one in-round message from each; a round *decides* only if no
        send or receive failed, every gathered message was this exact
        round's candidate, and every participant reported the identical
        live-mask — i.e. all deciders of a round consumed identical
        candidate sets, hence compute identical values.  Non-deciders
        retry; per-pair FIFO means they next consume a decider's
        ``DECIDED`` notice and adopt its value, re-disseminating before
        returning so chains of adopters stay consistent.  Candidates
        only shrink (bitwise AND is monotone), and the shared dead-rank
        table means live-masks converge once deaths stop — so the loop
        terminates.
        """
        eng = self.engine
        world = self.world
        with self._agree_lock:
            epoch = self._agree_seq
            self._agree_seq += 1
        deadline = time.perf_counter() + timeout
        cand = int(flag)
        trust_first = world._unsafe_agree_trust_first_round
        max_rounds = 4 * self.size + 8
        stash: dict[int, np.ndarray] = {}
        rnd = 0
        decided_value: int | None = None
        while decided_value is None:
            rnd += 1
            if rnd > max_rounds:
                raise MPIError(
                    f"agree: no decision after {max_rounds} rounds "
                    f"(cid {self.cid}, epoch {epoch})"
                )
            eng.agree_rounds += 1
            dead = world.dead_ranks
            mask = [
                i
                for i in range(self.size)
                if self.group[i] == eng.rank or self.group[i] not in dead
            ]
            mask_bits = 0
            for i in mask:
                mask_bits |= 1 << i
            decisive = True
            for i in mask:
                if i == self.rank:
                    continue
                try:
                    self._ft_send(
                        i, epoch, _FT_CAND, rnd, cand, mask_bits
                    )
                except RankDeadError:
                    decisive = False
            for i in mask:
                if i == self.rank:
                    continue
                msg = stash.pop(i, None)
                while True:
                    if msg is None:
                        try:
                            msg = self._ft_next_msg(i, epoch, deadline)
                        except RankDeadError:
                            decisive = False
                            break
                    kind = int(msg[1])
                    if kind == _FT_DECIDED:
                        decided_value = int(msg[3])
                        break
                    mrnd = int(msg[2])
                    if mrnd < rnd:
                        # Stale round (we retried past it): drop.
                        msg = None
                        continue
                    cand &= int(msg[3])
                    if mrnd > rnd:
                        # Peer ran ahead; its value is safe to AND
                        # (monotone) but deciding on drifted rounds is
                        # not — keep it for the round it belongs to.
                        stash[i] = msg
                        decisive = False
                    if int(msg[4]) != mask_bits:
                        decisive = False
                    break
                if decided_value is not None:
                    break
            if decided_value is not None:
                break
            if decisive or trust_first:
                decided_value = cand
        # Decision reached (own or adopted): disseminate before
        # returning, so peers still gathering consume DECIDED as this
        # rank's next message and adopt the same value.
        dead = world.dead_ranks
        for i in range(self.size):
            if i == self.rank or self.group[i] in dead:
                continue
            try:
                self._ft_send(
                    i, epoch, _FT_DECIDED, rnd, decided_value, 0
                )
            except RankDeadError:
                pass
        return decided_value

    def shrink(self, timeout: float = 60.0) -> "Communicator":
        """Build a live-members-only communicator (ULFM ``MPI_Comm_shrink``).

        Revokes this communicator (idempotent), agrees on the surviving
        membership, renumbers ranks in old-group order, and drains the
        dead peers' orphaned queue entries.  Every survivor returns a
        communicator with the identical (group, context) identity; a
        repeat death during the protocol restarts the membership
        agreement, so the result is always a membership every survivor
        confirmed *after* it was fixed.
        """
        eng = self.engine
        world = self.world
        self.revoke()
        deadline = time.perf_counter() + timeout
        attempts = 0
        while True:
            attempts += 1
            if attempts > self.size + 2:
                raise MPIError(
                    f"shrink: membership did not stabilize after "
                    f"{attempts - 1} attempts (cid {self.cid})"
                )
            budget = max(1.0, deadline - time.perf_counter())
            dead = world.dead_ranks
            my_mask = 0
            for i in range(self.size):
                if (
                    self.group[i] == eng.rank
                    or self.group[i] not in dead
                ):
                    my_mask |= 1 << i
            agreed_mask = self.agree(my_mask, timeout=budget)
            members = [
                self.group[i]
                for i in range(self.size)
                if (agreed_mask >> i) & 1
            ]
            if eng.rank not in members:
                raise MPIError(
                    f"shrink: rank {eng.rank} excluded from the agreed "
                    f"membership (marked dead by a peer)"
                )
            # Confirmation pass: 1 iff no agreed member has died since.
            # Running it through agree keeps every survivor's epoch
            # counter aligned and the verdict identical everywhere.
            dead = world.dead_ranks
            ok = 1 if all(
                g == eng.rank or g not in dead for g in members
            ) else 0
            if self.agree(ok, timeout=budget):
                break
        dead_snapshot = set(world.dead_ranks)
        new_cid = world.allocate_cid_keyed(
            ("shrink", self.cid, self._agree_seq)
        )
        eng.shrink_cleanup(self.cid, dead_snapshot)
        return Communicator(world, eng, tuple(members), new_cid)

    # ------------------------------------------------------- communicator algebra

    def dup(self) -> "Communicator":
        """Collective duplicate with a fresh context."""
        self._enter()
        try:
            cid_buf = np.empty(1, dtype=np.int64)
            if self.rank == 0:
                cid_buf[0] = self.world.allocate_cid()
            from repro.mpisim import collectives

            collectives.bcast(self, cid_buf, 0)
            return Communicator(
                self.world, self.engine, self.group, int(cid_buf[0])
            )
        finally:
            self._exit()

    def split(self, color: int | None, key: int = 0) -> "Communicator | None":
        """Collective split into disjoint sub-communicators.

        ``color=None`` opts out (returns ``None``), like
        ``MPI_UNDEFINED``.
        """
        self._enter()
        try:
            from repro.mpisim import collectives

            # Exchange (color, key, global rank); None -> sentinel.
            mine = np.array(
                [
                    -1 if color is None else color,
                    key,
                    self.engine.rank,
                ],
                dtype=np.int64,
            )
            table = collectives.allgather(self, mine)
            table = table.reshape(self.size, 3)
            colors = sorted({int(c) for c in table[:, 0] if c >= 0})
            base_buf = np.empty(1, dtype=np.int64)
            if self.rank == 0:
                base_buf[0] = self.world.allocate_cid_block(
                    max(1, len(colors))
                )
            collectives.bcast(self, base_buf, 0)
            if color is None:
                return None
            members = [
                (int(k), int(g))
                for c, k, g in table
                if int(c) == color
            ]
            # Sort by key, breaking ties by original global rank.
            members.sort()
            group = tuple(g for _, g in members)
            cid = int(base_buf[0]) + colors.index(color)
            return Communicator(self.world, self.engine, group, cid)
        finally:
            self._exit()

    def translate_rank(self, local_rank: int) -> int:
        """Map a comm-local rank to a world rank."""
        self._check_rank(local_rank)
        return self.group[local_rank]

    def send_init(self, buf: Any, dest: int, tag: int = 0):
        """Create a persistent send bound to ``buf`` (``MPI_Send_init``);
        fire with ``.start()``, complete with ``.wait()``, repeat."""
        from repro.mpisim.persistent import PersistentSend

        self._check_rank(dest)
        self._check_tag(tag)
        return PersistentSend(self, buf, dest, tag)

    def recv_init(self, buf: Any, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Create a persistent receive bound to ``buf``."""
        from repro.mpisim.persistent import PersistentRecv

        self._check_rank(source, wildcard=True)
        self._check_tag(tag, wildcard=True)
        return PersistentRecv(self, buf, source, tag)

    def win_create(self, local: np.ndarray):
        """Collectively create a one-sided RMA window (see
        :mod:`repro.mpisim.rma`)."""
        from repro.mpisim.rma import Window

        self._enter()
        try:
            return Window.create(self, local)
        finally:
            self._exit()

    def progress(self) -> int:
        """Explicitly pump this rank's progress engine."""
        return self.engine.progress()
