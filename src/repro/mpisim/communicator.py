"""The user-facing communicator: point-to-point, probes, collectives.

Mirrors mpi4py conventions: buffer methods (``send``/``recv``/...)
move NumPy arrays or buffer-protocol objects with zero pickling;
``*_obj`` variants move arbitrary picklable Python objects.

Thread-level rules (paper Section 1/3.3) are enforced at every entry
point:

* ``THREAD_SINGLE`` / ``THREAD_FUNNELED`` — only the rank's designated
  funnel thread may call MPI (the offload engine re-designates this to
  its communication thread);
* ``THREAD_SERIALIZED`` — any thread, but concurrent entry is an error
  and is detected;
* ``THREAD_MULTIPLE`` — anything goes; the price is library-lock
  contention, which the engine counts.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

from repro.mpisim import datatypes
from repro.mpisim.constants import (
    ANY_SOURCE,
    ANY_TAG,
    MAX_USER_TAG,
    PROC_NULL,
    ThreadLevel,
)
from repro.mpisim.exceptions import (
    InvalidRankError,
    InvalidTagError,
    ThreadLevelError,
)
from repro.mpisim.reduce_ops import ReduceOp, SUM
from repro.mpisim.requests import Request
from repro.mpisim.status import Status

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpisim.progress import ProgressEngine
    from repro.mpisim.world import World

#: Internal tag space base for collective traffic (beyond user tags).
_COLL_TAG_BASE = MAX_USER_TAG + 1


class Communicator:
    """Per-rank communicator handle.

    Instances are cheap views over a shared (group, context) identity;
    ``dup``/``split`` are collective calls producing new identities.
    """

    def __init__(
        self,
        world: "World",
        engine: "ProgressEngine",
        group: tuple[int, ...],
        cid: int,
    ) -> None:
        self.world = world
        self.engine = engine
        self.group = group
        self.cid = cid
        #: context ids: even for point-to-point, odd for collectives
        self.ctx_p2p = 2 * cid
        self.ctx_coll = 2 * cid + 1
        self.rank = group.index(engine.rank)
        self.size = len(group)
        self._coll_seq = 0
        self._coll_lock = threading.Lock()
        self._serial_guard: int | None = None
        self._serial_lock = threading.Lock()

    # ------------------------------------------------------------------ basics

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Communicator(cid={self.cid}, rank={self.rank}/{self.size})"
        )

    @property
    def thread_level(self) -> ThreadLevel:
        return self.world.thread_level

    # ------------------------------------------------------- thread-level police

    def _enter(self) -> None:
        level = self.world.thread_level
        ident = threading.get_ident()
        if level <= ThreadLevel.FUNNELED:
            funnel = self.world.funnel_thread(self.engine.rank)
            if funnel is not None and ident != funnel:
                raise ThreadLevelError(
                    f"thread {ident} called MPI under "
                    f"{'THREAD_SINGLE' if level == ThreadLevel.SINGLE else 'THREAD_FUNNELED'}; "
                    f"only thread {funnel} may"
                )
        elif level == ThreadLevel.SERIALIZED:
            with self._serial_lock:
                if self._serial_guard is not None and self._serial_guard != ident:
                    raise ThreadLevelError(
                        "concurrent MPI calls detected under THREAD_SERIALIZED "
                        f"(threads {self._serial_guard} and {ident})"
                    )
                self._serial_guard = ident

    def _exit(self) -> None:
        if self.world.thread_level == ThreadLevel.SERIALIZED:
            with self._serial_lock:
                if self._serial_guard == threading.get_ident():
                    self._serial_guard = None

    # ----------------------------------------------------------------- checking

    def _check_rank(self, r: int, *, wildcard: bool = False) -> None:
        if r == PROC_NULL:
            return
        if wildcard and r == ANY_SOURCE:
            return
        if not 0 <= r < self.size:
            raise InvalidRankError(
                f"rank {r} outside communicator of size {self.size}"
            )

    @staticmethod
    def _check_tag(tag: int, *, wildcard: bool = False) -> None:
        if wildcard and tag == ANY_TAG:
            return
        if not 0 <= tag <= MAX_USER_TAG:
            raise InvalidTagError(f"tag {tag} out of range")

    def _global(self, r: int) -> int:
        return r if r == PROC_NULL else self.group[r]

    # -------------------------------------------------------------- internal p2p
    # Used by collectives: explicit context, no thread-level re-entry check.

    def _isend_internal(
        self, payload: np.ndarray, dst: int, tag: int, ctx: int
    ) -> Request:
        return self.engine.post_send(
            datatypes.as_send_buffer(payload), self._global(dst), tag, ctx
        )

    def _irecv_internal(
        self, buffer: np.ndarray, src: int, tag: int, ctx: int
    ) -> Request:
        return self.engine.post_recv(
            datatypes.as_recv_buffer(buffer), self._global(src), tag, ctx
        )

    def next_coll_tag(self) -> int:
        """Per-communicator collective sequence number.

        MPI requires all ranks to issue collectives on a communicator in
        the same order, so each rank's local counter yields identical
        tags for the matching calls.
        """
        with self._coll_lock:
            tag = _COLL_TAG_BASE + self._coll_seq
            self._coll_seq += 1
            return tag

    # ---------------------------------------------------------------- public p2p

    def isend(self, buf: Any, dest: int, tag: int = 0) -> Request:
        """Nonblocking buffer send."""
        self._enter()
        try:
            self._check_rank(dest)
            self._check_tag(tag)
            payload = datatypes.as_send_buffer(buf)
            return self.engine.post_send(
                payload, self._global(dest), tag, self.ctx_p2p
            )
        finally:
            self._exit()

    def isend_coalesced(
        self, items: Sequence[tuple[Any, int]], dest: int
    ) -> list[Request]:
        """Several eager-sized sends to one peer as one wire message.

        ``items`` is a sequence of ``(buf, tag)`` pairs.  Semantically
        identical to issuing the ``isend`` calls back to back (the
        receiver unpacks and matches the parts in order); used by the
        offload engine's small-message coalescer, not application code.
        """
        self._enter()
        try:
            self._check_rank(dest)
            payloads: list[np.ndarray] = []
            tags: list[int] = []
            for buf, tag in items:
                self._check_tag(tag)
                payloads.append(datatypes.as_send_buffer(buf))
                tags.append(tag)
            return self.engine.post_send_coalesced(
                payloads, self._global(dest), tags, self.ctx_p2p
            )
        finally:
            self._exit()

    def irecv(
        self, buf: Any, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> Request:
        """Nonblocking buffer receive."""
        self._enter()
        try:
            self._check_rank(source, wildcard=True)
            self._check_tag(tag, wildcard=True)
            buffer = datatypes.as_recv_buffer(buf)
            gsrc = source if source in (ANY_SOURCE, PROC_NULL) else self.group[source]
            return self.engine.post_recv(buffer, gsrc, tag, self.ctx_p2p)
        finally:
            self._exit()

    def send(self, buf: Any, dest: int, tag: int = 0) -> None:
        """Blocking buffer send (returns when the buffer is reusable)."""
        self.isend(buf, dest, tag).wait()

    def recv(
        self, buf: Any, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> Status:
        """Blocking buffer receive; returns the message status."""
        st = self.irecv(buf, source, tag).wait()
        return self._localize_status(st)

    def sendrecv(
        self,
        sendbuf: Any,
        dest: int,
        recvbuf: Any,
        source: int,
        sendtag: int = 0,
        recvtag: int = ANY_TAG,
    ) -> Status:
        """Combined send+receive; deadlock-free for exchange patterns."""
        rreq = self.irecv(recvbuf, source, recvtag)
        sreq = self.isend(sendbuf, dest, sendtag)
        sreq.wait()
        return self._localize_status(rreq.wait())

    def _localize_status(self, st: Status) -> Status:
        """Convert the engine's global source rank to a comm-local one."""
        if st.source < 0:
            return st
        return Status(
            self.group.index(st.source), st.tag, st.count, st.cancelled
        )

    # -------------------------------------------------------------------- probes

    def iprobe(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> Status | None:
        """Nonblocking probe.  Also drives progress — which is exactly
        how the paper's *iprobe* approach uses it (Section 2.1)."""
        self._enter()
        try:
            self._check_rank(source, wildcard=True)
            self._check_tag(tag, wildcard=True)
            gsrc = source if source == ANY_SOURCE else self.group[source]
            st = self.engine.iprobe(gsrc, tag, self.ctx_p2p)
            return None if st is None else self._localize_status(st)
        finally:
            self._exit()

    def probe(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        timeout: float | None = None,
    ) -> Status:
        """Blocking probe."""
        import time

        deadline = None if timeout is None else time.perf_counter() + timeout
        while True:
            st = self.iprobe(source, tag)
            if st is not None:
                return st
            if deadline is not None and time.perf_counter() > deadline:
                raise TimeoutError("probe timed out")
            time.sleep(1e-5)

    # ------------------------------------------------------------------- objects

    def isend_obj(self, obj: Any, dest: int, tag: int = 0) -> Request:
        """Nonblocking pickled-object send."""
        return self.isend(datatypes.pack_object(obj), dest, tag)

    def send_obj(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Blocking pickled-object send."""
        self.isend_obj(obj, dest, tag).wait()

    def recv_obj(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        timeout: float | None = None,
    ) -> Any:
        """Blocking pickled-object receive.

        Probes for the matching message to size the buffer, then
        receives it.  FIFO matching guarantees the subsequent receive
        takes the same message the probe saw.
        """
        st = self.probe(source, tag, timeout=timeout)
        buf = np.empty(st.count, dtype=np.uint8)
        self.recv(buf, st.source, st.tag)
        return datatypes.unpack_object(buf)

    # --------------------------------------------------------------- collectives
    # Implemented in repro.mpisim.collectives / nbc; thin wrappers here.

    def barrier(self) -> None:
        from repro.mpisim import collectives

        self._enter()
        try:
            collectives.barrier(self)
        finally:
            self._exit()

    def bcast(self, buf: Any, root: int = 0) -> None:
        from repro.mpisim import collectives

        self._enter()
        try:
            self._check_rank(root)
            collectives.bcast(self, buf, root)
        finally:
            self._exit()

    def bcast_obj(self, obj: Any = None, root: int = 0) -> Any:
        from repro.mpisim import collectives

        self._enter()
        try:
            self._check_rank(root)
            return collectives.bcast_obj(self, obj, root)
        finally:
            self._exit()

    def reduce(
        self,
        sendbuf: np.ndarray,
        recvbuf: np.ndarray | None = None,
        op: ReduceOp = SUM,
        root: int = 0,
    ) -> np.ndarray | None:
        from repro.mpisim import collectives

        self._enter()
        try:
            self._check_rank(root)
            return collectives.reduce(self, sendbuf, recvbuf, op, root)
        finally:
            self._exit()

    def allreduce(
        self,
        sendbuf: np.ndarray,
        recvbuf: np.ndarray | None = None,
        op: ReduceOp = SUM,
    ) -> np.ndarray:
        from repro.mpisim import collectives

        self._enter()
        try:
            return collectives.allreduce(self, sendbuf, recvbuf, op)
        finally:
            self._exit()

    def gather(
        self,
        sendbuf: np.ndarray,
        recvbuf: np.ndarray | None = None,
        root: int = 0,
    ) -> np.ndarray | None:
        from repro.mpisim import collectives

        self._enter()
        try:
            self._check_rank(root)
            return collectives.gather(self, sendbuf, recvbuf, root)
        finally:
            self._exit()

    def scatter(
        self,
        sendbuf: np.ndarray | None,
        recvbuf: np.ndarray,
        root: int = 0,
    ) -> np.ndarray:
        from repro.mpisim import collectives

        self._enter()
        try:
            self._check_rank(root)
            return collectives.scatter(self, sendbuf, recvbuf, root)
        finally:
            self._exit()

    def allgather(
        self, sendbuf: np.ndarray, recvbuf: np.ndarray | None = None
    ) -> np.ndarray:
        from repro.mpisim import collectives

        self._enter()
        try:
            return collectives.allgather(self, sendbuf, recvbuf)
        finally:
            self._exit()

    def alltoall(
        self, sendbuf: np.ndarray, recvbuf: np.ndarray | None = None
    ) -> np.ndarray:
        from repro.mpisim import collectives

        self._enter()
        try:
            return collectives.alltoall(self, sendbuf, recvbuf)
        finally:
            self._exit()

    def gatherv(
        self,
        sendbuf: np.ndarray,
        recvcounts,
        recvbuf: np.ndarray | None = None,
        root: int = 0,
    ) -> np.ndarray | None:
        from repro.mpisim import collectives

        self._enter()
        try:
            self._check_rank(root)
            return collectives.gatherv(self, sendbuf, recvcounts, recvbuf, root)
        finally:
            self._exit()

    def scatterv(
        self,
        sendbuf: np.ndarray | None,
        sendcounts,
        recvbuf: np.ndarray,
        root: int = 0,
    ) -> np.ndarray:
        from repro.mpisim import collectives

        self._enter()
        try:
            self._check_rank(root)
            return collectives.scatterv(self, sendbuf, sendcounts, recvbuf, root)
        finally:
            self._exit()

    def alltoallv(
        self,
        sendbuf: np.ndarray,
        sendcounts,
        recvbuf: np.ndarray,
        recvcounts,
    ) -> np.ndarray:
        from repro.mpisim import collectives

        self._enter()
        try:
            return collectives.alltoallv(
                self, sendbuf, sendcounts, recvbuf, recvcounts
            )
        finally:
            self._exit()

    def reduce_scatter(
        self,
        sendbuf: np.ndarray,
        recvbuf: np.ndarray | None = None,
        op: ReduceOp = SUM,
    ) -> np.ndarray:
        from repro.mpisim import collectives

        self._enter()
        try:
            return collectives.reduce_scatter(self, sendbuf, recvbuf, op)
        finally:
            self._exit()

    def scan(
        self,
        sendbuf: np.ndarray,
        recvbuf: np.ndarray | None = None,
        op: ReduceOp = SUM,
    ) -> np.ndarray:
        from repro.mpisim import collectives

        self._enter()
        try:
            return collectives.scan(self, sendbuf, recvbuf, op)
        finally:
            self._exit()

    # ---------------------------------------------------- nonblocking collectives

    def ibarrier(self) -> Request:
        from repro.mpisim import nbc

        self._enter()
        try:
            return nbc.ibarrier(self)
        finally:
            self._exit()

    def ibcast(self, buf: np.ndarray, root: int = 0) -> Request:
        from repro.mpisim import nbc

        self._enter()
        try:
            self._check_rank(root)
            return nbc.ibcast(self, buf, root)
        finally:
            self._exit()

    def iallreduce(
        self,
        sendbuf: np.ndarray,
        recvbuf: np.ndarray,
        op: ReduceOp = SUM,
    ) -> Request:
        from repro.mpisim import nbc

        self._enter()
        try:
            return nbc.iallreduce(self, sendbuf, recvbuf, op)
        finally:
            self._exit()

    def igather(
        self,
        sendbuf: np.ndarray,
        recvbuf: np.ndarray | None = None,
        root: int = 0,
    ) -> Request:
        from repro.mpisim import nbc

        self._enter()
        try:
            self._check_rank(root)
            return nbc.igather(self, sendbuf, recvbuf, root)
        finally:
            self._exit()

    def ialltoall(
        self, sendbuf: np.ndarray, recvbuf: np.ndarray
    ) -> Request:
        from repro.mpisim import nbc

        self._enter()
        try:
            return nbc.ialltoall(self, sendbuf, recvbuf)
        finally:
            self._exit()

    # ------------------------------------------------------- communicator algebra

    def dup(self) -> "Communicator":
        """Collective duplicate with a fresh context."""
        self._enter()
        try:
            cid_buf = np.empty(1, dtype=np.int64)
            if self.rank == 0:
                cid_buf[0] = self.world.allocate_cid()
            from repro.mpisim import collectives

            collectives.bcast(self, cid_buf, 0)
            return Communicator(
                self.world, self.engine, self.group, int(cid_buf[0])
            )
        finally:
            self._exit()

    def split(self, color: int | None, key: int = 0) -> "Communicator | None":
        """Collective split into disjoint sub-communicators.

        ``color=None`` opts out (returns ``None``), like
        ``MPI_UNDEFINED``.
        """
        self._enter()
        try:
            from repro.mpisim import collectives

            # Exchange (color, key, global rank); None -> sentinel.
            mine = np.array(
                [
                    -1 if color is None else color,
                    key,
                    self.engine.rank,
                ],
                dtype=np.int64,
            )
            table = collectives.allgather(self, mine)
            table = table.reshape(self.size, 3)
            colors = sorted({int(c) for c in table[:, 0] if c >= 0})
            base_buf = np.empty(1, dtype=np.int64)
            if self.rank == 0:
                base_buf[0] = self.world.allocate_cid_block(
                    max(1, len(colors))
                )
            collectives.bcast(self, base_buf, 0)
            if color is None:
                return None
            members = [
                (int(k), int(g))
                for c, k, g in table
                if int(c) == color
            ]
            # Sort by key, breaking ties by original global rank.
            members.sort()
            group = tuple(g for _, g in members)
            cid = int(base_buf[0]) + colors.index(color)
            return Communicator(self.world, self.engine, group, cid)
        finally:
            self._exit()

    def translate_rank(self, local_rank: int) -> int:
        """Map a comm-local rank to a world rank."""
        self._check_rank(local_rank)
        return self.group[local_rank]

    def send_init(self, buf: Any, dest: int, tag: int = 0):
        """Create a persistent send bound to ``buf`` (``MPI_Send_init``);
        fire with ``.start()``, complete with ``.wait()``, repeat."""
        from repro.mpisim.persistent import PersistentSend

        self._check_rank(dest)
        self._check_tag(tag)
        return PersistentSend(self, buf, dest, tag)

    def recv_init(self, buf: Any, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Create a persistent receive bound to ``buf``."""
        from repro.mpisim.persistent import PersistentRecv

        self._check_rank(source, wildcard=True)
        self._check_tag(tag, wildcard=True)
        return PersistentRecv(self, buf, source, tag)

    def win_create(self, local: np.ndarray):
        """Collectively create a one-sided RMA window (see
        :mod:`repro.mpisim.rma`)."""
        from repro.mpisim.rma import Window

        self._enter()
        try:
            return Window.create(self, local)
        finally:
            self._exit()

    def progress(self) -> int:
        """Explicitly pump this rank's progress engine."""
        return self.engine.progress()
