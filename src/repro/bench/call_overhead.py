"""Functional nonblocking-call-overhead benchmark (§4.2, Figure 4).

Measures the time an application thread spends *inside* ``isend`` —
for the offload approach that is one lock-free enqueue regardless of
message size; for direct approaches it includes the eager copy below
the threshold.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench.harness import ApproachName, run_on_approach


def isend_overhead_benchmark(
    approach: ApproachName,
    nbytes: int,
    iters: int = 30,
    eager_threshold: int | None = None,
) -> float:
    """Mean seconds spent issuing one ``isend`` (rank 0's view)."""

    def program(comm):
        peer = 1 - comm.rank
        send = np.zeros(nbytes, dtype=np.uint8)
        recv = np.empty(nbytes, dtype=np.uint8)
        comm.barrier()
        post_total = 0.0
        for i in range(iters):
            if comm.rank == 0:
                t0 = time.perf_counter()
                req = comm.isend(send, peer, tag=i)
                post_total += time.perf_counter() - t0
                req.wait()
                comm.recv(recv, peer, tag=1000 + i)
            else:
                comm.recv(recv, peer, tag=i)
                comm.send(send, peer, tag=1000 + i)
        return post_total / iters

    results = run_on_approach(
        approach, 2, program, eager_threshold=eager_threshold
    )
    return results[0]
