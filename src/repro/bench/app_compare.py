"""Functional application comparison: the Dslash wait split, for real.

Table 1 and Figure 10 come from the performance simulator; this module
produces the same post/wait split *functionally* — the actual
Wilson-Dslash operator on the threaded substrate under each approach —
so the library's end-to-end claim ("run your stencil unmodified, get
your wait time back") is observable, not just simulated.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.qcd import (
    DslashOperator,
    LatticeGeometry,
    random_gauge_field,
    random_spinor_field,
)
from repro.bench.harness import ApproachName, run_on_approach
from repro.util.timing import TimeBreakdown


@dataclass(frozen=True)
class DslashSplit:
    """Rank-0 mean per-application phase times (seconds)."""

    approach: str
    pack: float
    post: float
    interior: float
    wait: float
    boundary: float

    @property
    def total(self) -> float:
        return (
            self.pack + self.post + self.interior + self.wait + self.boundary
        )


def dslash_split(
    approach: ApproachName,
    lattice: tuple[int, int, int, int] = (8, 8, 8, 16),
    nranks: int = 2,
    iterations: int = 4,
    persistent: bool = False,
    eager_threshold: int | None = 16 * 1024,
) -> DslashSplit:
    """Run real Dslash applications under ``approach``; return rank 0's
    mean phase breakdown (first iteration discarded as warmup).

    The default ``eager_threshold`` of 16 KB puts the halo faces in the
    rendezvous regime — the paper's large-message case, where the
    approaches actually differ."""

    def program(comm):
        geom = LatticeGeometry.partition(lattice, nranks)
        full_geom = LatticeGeometry(lattice, (1, 1, 1, 1))
        u_full = random_gauge_field(full_geom, 0, seed="bench")
        psi_full = random_spinor_field(full_geom, 0, seed="bench")
        lo = geom.local_origin(comm.rank)
        slc = tuple(slice(o, o + l) for o, l in zip(lo, geom.local_dims))
        u = np.ascontiguousarray(u_full[slc])
        psi = np.ascontiguousarray(psi_full[slc])
        op = DslashOperator(geom, comm, u, persistent=persistent)
        op.apply(psi)  # warmup
        tb = TimeBreakdown()
        for _ in range(iterations):
            op.apply(psi, timings=tb)
        return tb.scaled(1.0 / iterations)

    results = run_on_approach(
        approach,
        nranks,
        program,
        eager_threshold=eager_threshold,
        timeout=300,
    )
    tb = results[0]
    return DslashSplit(
        approach=approach,
        pack=tb.get("pack"),
        post=tb.get("post"),
        interior=tb.get("interior"),
        wait=tb.get("wait"),
        boundary=tb.get("boundary"),
    )


def compare_dslash_splits(
    lattice: tuple[int, int, int, int] = (8, 8, 8, 16),
    nranks: int = 2,
    iterations: int = 4,
) -> dict[str, DslashSplit]:
    """The functional Figure-10 analogue across all three approaches."""
    return {
        a: dslash_split(a, lattice, nranks, iterations)
        for a in ("baseline", "comm-self", "offload")
    }
