"""Run a rank program under any of the paper's approaches.

``run_on_approach`` wraps a user function so that the same benchmark
body executes under *baseline* (plain communicator), *comm-self*
(plain communicator + progress thread), or *offload* (interposed
communicator + offload engine), exactly like the paper's unmodified-
application methodology (§3.4).
"""

from __future__ import annotations

from typing import Any, Callable, Literal

from repro.core.commself import CommSelfProgressThread
from repro.core.interpose import offloaded
from repro.mpisim.constants import THREAD_FUNNELED, THREAD_MULTIPLE
from repro.mpisim.world import World

ApproachName = Literal["baseline", "comm-self", "offload"]

APPROACH_NAMES: tuple[ApproachName, ...] = (
    "baseline",
    "comm-self",
    "offload",
)


def thread_level_for(approach: ApproachName, nthreads: int = 1):
    """The MPI thread level the approach requires (§2.2/§3.3)."""
    if approach == "comm-self" or nthreads > 1:
        return THREAD_MULTIPLE
    return THREAD_FUNNELED


def run_on_approach(
    approach: ApproachName,
    nranks: int,
    fn: Callable[..., Any],
    *args: Any,
    nthreads: int = 1,
    eager_threshold: int | None = None,
    timeout: float = 120.0,
) -> list[Any]:
    """Execute ``fn(comm, *args)`` on every rank under ``approach``.

    ``fn`` receives a communicator-like object; it never needs to know
    which approach is active.
    """
    if approach not in APPROACH_NAMES:
        raise ValueError(f"unknown approach {approach!r}")
    kwargs = {}
    if eager_threshold is not None:
        kwargs["eager_threshold"] = eager_threshold
    world = World(
        nranks, thread_level=thread_level_for(approach, nthreads), **kwargs
    )

    def rank_program(comm, *fargs):
        if approach == "baseline":
            return fn(comm, *fargs)
        if approach == "comm-self":
            with CommSelfProgressThread(comm):
                return fn(comm, *fargs)
        with offloaded(comm) as ocomm:
            return fn(ocomm, *fargs)

    # CPython's default 5 ms GIL switch interval starves dedicated
    # progress threads on benchmark timescales; a fine interval lets
    # them behave like the extra hardware thread they model.
    import sys

    prev = sys.getswitchinterval()
    sys.setswitchinterval(5e-5)
    try:
        return world.run(rank_program, *args, timeout=timeout)
    finally:
        sys.setswitchinterval(prev)
