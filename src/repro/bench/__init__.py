"""Functional microbenchmarks on the threaded substrate.

These run the *real* code — mpisim's matching engine, the actual
offload thread, the actual comm-self progress thread — and measure
wall-clock behaviour.  They demonstrate the paper's mechanisms
functionally (e.g. rendezvous transfers completing during compute
only when a progress context exists); the *figures'* absolute numbers
come from :mod:`repro.simtime.workloads`, since Python wall-clock
microbenchmarks of a GIL-shared thread pool cannot reproduce
nanosecond-scale hardware effects.
"""

from repro.bench.harness import ApproachName, run_on_approach
from repro.bench.overlap import overlap_benchmark, OverlapSample
from repro.bench.osu import (
    osu_latency_benchmark,
    osu_bandwidth_benchmark,
    osu_multithreaded_latency,
)
from repro.bench.call_overhead import isend_overhead_benchmark
from repro.bench.app_compare import (
    DslashSplit,
    compare_dslash_splits,
    dslash_split,
)

__all__ = [
    "ApproachName",
    "run_on_approach",
    "overlap_benchmark",
    "OverlapSample",
    "osu_latency_benchmark",
    "osu_bandwidth_benchmark",
    "osu_multithreaded_latency",
    "isend_overhead_benchmark",
    "DslashSplit",
    "dslash_split",
    "compare_dslash_splits",
]
