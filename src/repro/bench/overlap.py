"""Functional compute/communication overlap benchmark (§4.1).

Two ranks each post ``irecv`` + ``isend``, optionally busy-compute,
then wait.  On this substrate the rendezvous hazard is real: above the
eager threshold, no data moves until someone pumps progress — so the
measured *overlap achieved* discriminates the approaches exactly as
the paper's Figure 2 does, just at Python timescales.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bench.harness import ApproachName, run_on_approach
from repro.util.timing import busy_spin


@dataclass(frozen=True)
class OverlapSample:
    """Rank-0 measurement of one overlap experiment."""

    nbytes: int
    comm_time: float
    post_time: float
    wait_time: float
    overlap_fraction: float
    #: were both requests already complete when wait() was called?
    done_before_wait: bool


def _one_round(comm, nbytes: int, compute: float):
    import time

    n = comm.size
    peer = (comm.rank + 1) % n
    src = (comm.rank - 1) % n
    send = np.zeros(nbytes, dtype=np.uint8)
    recv = np.empty(nbytes, dtype=np.uint8)
    comm.barrier()
    t0 = time.perf_counter()
    rreq = comm.irecv(recv, src, tag=7)
    sreq = comm.isend(send, peer, tag=7)
    t1 = time.perf_counter()
    if compute > 0:
        busy_spin(compute)
    done_before = rreq.done and sreq.done
    t2 = time.perf_counter()
    rreq.wait()
    sreq.wait()
    t3 = time.perf_counter()
    return t1 - t0, t3 - t2, t3 - t0, done_before


def overlap_benchmark(
    approach: ApproachName,
    nbytes: int,
    nranks: int = 2,
    repeats: int = 3,
) -> OverlapSample:
    """Measure overlap for one approach and message size."""

    def program(comm):
        # Warm up, then measure base communication time.
        _one_round(comm, nbytes, 0.0)
        comm_times = []
        for _ in range(repeats):
            _post, _wait, total, _ = _one_round(comm, nbytes, 0.0)
            comm_times.append(total)
        comm_time = min(comm_times)
        # Repeat with compute equal to the communication time; report
        # the best round (GIL scheduling makes single rounds noisy).
        best = None
        any_done_before = False
        for _ in range(repeats):
            post, wait, _total, done_before = _one_round(
                comm, nbytes, comm_time
            )
            any_done_before = any_done_before or done_before
            if best is None or wait < best[1]:
                best = (post, wait)
        post, wait = best
        done_before = any_done_before
        overlap = max(0.0, min(1.0, 1.0 - wait / comm_time))
        return OverlapSample(
            nbytes=nbytes,
            comm_time=comm_time,
            post_time=post,
            wait_time=wait,
            overlap_fraction=overlap,
            done_before_wait=done_before,
        )

    results = run_on_approach(approach, nranks, program)
    return results[0]
