"""Functional OSU-style latency / bandwidth / multithreaded benchmarks
(§4.4, §4.5) on the threaded substrate."""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.bench.harness import ApproachName, run_on_approach
from repro.core.thread_groups import ThreadGroupRunner, make_thread_comms


def osu_latency_benchmark(
    approach: ApproachName,
    nbytes: int,
    iters: int = 50,
    warmup: int = 5,
) -> float:
    """One-way latency (half the ping-pong round trip), seconds."""

    def program(comm):
        peer = 1 - comm.rank
        send = np.zeros(nbytes, dtype=np.uint8)
        recv = np.empty(nbytes, dtype=np.uint8)
        comm.barrier()
        t0 = None
        for i in range(warmup + iters):
            if i == warmup:
                t0 = time.perf_counter()
            if comm.rank == 0:
                comm.send(send, peer, tag=1)
                comm.recv(recv, peer, tag=2)
            else:
                comm.recv(recv, peer, tag=1)
                comm.send(send, peer, tag=2)
        assert t0 is not None
        return (time.perf_counter() - t0) / iters / 2.0

    return run_on_approach(approach, 2, program)[0]


def osu_bandwidth_benchmark(
    approach: ApproachName,
    nbytes: int,
    window: int = 16,
    iters: int = 5,
) -> float:
    """Unidirectional bandwidth (B/s): window of isends, then an ack."""

    def program(comm):
        peer = 1 - comm.rank
        bufs = [np.zeros(nbytes, dtype=np.uint8) for _ in range(window)]
        rbufs = [np.empty(nbytes, dtype=np.uint8) for _ in range(window)]
        ack = np.zeros(1, dtype=np.uint8)
        comm.barrier()
        t0 = time.perf_counter()
        for it in range(iters):
            if comm.rank == 0:
                reqs = [
                    comm.isend(bufs[i], peer, tag=it * 1000 + i)
                    for i in range(window)
                ]
                for r in reqs:
                    r.wait()
                comm.recv(ack, peer, tag=it * 1000 + 999)
            else:
                reqs = [
                    comm.irecv(rbufs[i], peer, tag=it * 1000 + i)
                    for i in range(window)
                ]
                for r in reqs:
                    r.wait()
                comm.send(ack, peer, tag=it * 1000 + 999)
        elapsed = time.perf_counter() - t0
        return iters * window * nbytes / elapsed

    return run_on_approach(approach, 2, program)[0]


def osu_multithreaded_latency(
    approach: ApproachName,
    nbytes: int,
    nthreads: int,
    iters: int = 20,
) -> float:
    """§4.4 multithreaded OSU latency: ``nthreads`` thread pairs per
    rank run concurrent ping-pongs; returns the mean one-way latency.

    Under *baseline*/*comm-self* the threads contend on the library
    lock (``MPI_THREAD_MULTIPLE``); under *offload* they enqueue onto
    the lock-free command queue.
    """

    def program(comm):
        comms = make_thread_comms(comm, nthreads)
        peer = 1 - comm.rank
        lat = [0.0] * nthreads
        barrier = threading.Barrier(nthreads)

        def worker(tid: int, tcomm):
            send = np.zeros(nbytes, dtype=np.uint8)
            recv = np.empty(nbytes, dtype=np.uint8)
            barrier.wait()
            t0 = time.perf_counter()
            for i in range(iters):
                if comm.rank == 0:
                    tcomm.send(send, peer, tag=i)
                    tcomm.recv(recv, peer, tag=i)
                else:
                    tcomm.recv(recv, peer, tag=i)
                    tcomm.send(send, peer, tag=i)
            lat[tid] = (time.perf_counter() - t0) / iters / 2.0
            return lat[tid]

        results = ThreadGroupRunner(comms).run(worker)
        return sum(results) / len(results)

    return run_on_approach(approach, 2, program, nthreads=nthreads)[0]
