"""Linearizability checking (Wing–Gong) for concurrent histories.

The DST scheduler gives tests total control over interleavings; this
module gives them a *correctness oracle*: record every operation on a
shared structure as an (invocation, response) interval on the
scheduler's logical clock, then search for a **linearization** — a
sequential order of the operations that (a) respects real-time order
(an operation that finished before another began must come first) and
(b) is legal for a simple sequential model of the structure.

The search is the classic Wing–Gong recursion with Lowe's memoization:
at each step, any *minimal* un-linearized operation (one that was
invoked before every other remaining operation's response) may be
tried next; a (remaining-set, model-state) pair that already failed is
never re-explored.  Model specs are nondeterminism-friendly —
``apply`` returns the set of possible successor states — which is what
lets a free list say "``alloc`` may return *any* currently-free slot".

Operations still pending when the history closes (e.g. cut off by an
injected crash) are handled per Wing–Gong: a pending operation may be
linearized (it may have taken effect) or dropped (it may not have).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable

from repro.dst import hooks as _hooks

#: Response timestamp for operations still pending at history close.
_PENDING = float("inf")


class LinearizabilityError(AssertionError):
    """The recorded history has no valid linearization."""


@dataclass
class Op:
    """One operation interval in a concurrent history."""

    opid: int
    thread: str
    op: str
    args: tuple
    result: Any = None
    invoked: int = 0
    responded: "int | float" = _PENDING

    @property
    def pending(self) -> bool:
        return self.responded is _PENDING

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        span = (
            f"[{self.invoked},{'…' if self.pending else self.responded}]"
        )
        return (
            f"Op({self.thread}:{self.op}{self.args!r} -> "
            f"{self.result!r} {span})"
        )


class History:
    """Thread-safe recorder of operation intervals.

    Timestamps come from the installed DST scheduler's logical clock
    when one is present (so they are schedule-deterministic), falling
    back to a private counter otherwise.
    """

    def __init__(self) -> None:
        self.ops: list[Op] = []
        self._lock = threading.Lock()
        self._fallback_clock = 0
        self._next_id = 0

    def _now(self) -> int:
        """Strictly increasing logical timestamp.

        The scheduler clock alone is not enough: several history events
        can fall inside one scheduler hop (no yield between them), and
        zero-duration intervals break Wing–Gong's minimal-operation
        selection (an op whose response *is* the minimum would exclude
        itself).  Shifting the clock and bumping a local sequence makes
        every timestamp unique and strictly ordered, while cross-thread
        order still follows the scheduler clock (threads only
        interleave across hops, which bump it).
        """
        sched = _hooks.current()
        base = (sched.clock << 20) if sched is not None else 0
        self._fallback_clock = max(base, self._fallback_clock + 1)
        return self._fallback_clock

    def invoke(self, op: str, args: tuple = (), thread: str = "") -> Op:
        """Record an invocation; returns the open :class:`Op`."""
        with self._lock:
            rec = Op(
                opid=self._next_id,
                thread=thread or threading.current_thread().name,
                op=op,
                args=tuple(args),
                invoked=self._now(),
            )
            self._next_id += 1
            self.ops.append(rec)
            return rec

    def respond(self, rec: Op, result: Any) -> None:
        """Close ``rec`` with its observed result."""
        with self._lock:
            rec.result = result
            rec.responded = self._now()

    def discard(self, rec: Op) -> None:
        """Drop an invoked operation from the history.

        For recorders that only check a *sub-history* — e.g. the queue
        target drops empty-dequeue probes, whose ``(False, None)``
        result is only quiescently consistent on a ticket queue (see
        :class:`repro.dst.targets.QueueLinearizabilityProgram`).
        """
        with self._lock:
            self.ops.remove(rec)

    def __len__(self) -> int:
        return len(self.ops)

    def render(self) -> str:
        """Human-readable dump (used in failure messages)."""

        def ts(t: "int | float") -> str:
            # timestamps are (scheduler clock << 20) + sequence
            return f"{t >> 20}.{t & 0xFFFFF}"

        lines = []
        for op in sorted(self.ops, key=lambda o: o.invoked):
            end = "pending" if op.pending else ts(op.responded)
            lines.append(
                f"  [{ts(op.invoked):>7}..{end:>7}] {op.thread:<12} "
                f"{op.op}{op.args!r} -> {op.result!r}"
            )
        return "\n".join(lines)


class SequentialSpec:
    """Sequential model of a shared structure.

    ``apply`` returns every model state the operation could legally
    leave behind given its observed result — an empty iterable means
    the (state, op, result) combination is illegal.
    """

    def init(self) -> Any:
        raise NotImplementedError

    def apply(self, state: Any, op: Op) -> Iterable[Any]:
        raise NotImplementedError

    def key(self, state: Any) -> Hashable:
        """Hashable identity of a state (memoization)."""
        return state


@dataclass
class LinResult:
    """Outcome of a linearizability check."""

    ok: bool
    ops: int
    states_explored: int
    #: a witness linearization (op ids in order) when ``ok``
    witness: "list[int] | None" = None
    reason: str = ""

    def __bool__(self) -> bool:
        return self.ok


def check_linearizable(
    history: History,
    spec: SequentialSpec,
    max_states: int = 500_000,
) -> LinResult:
    """Search for a linearization of ``history`` against ``spec``.

    Raises nothing; returns a :class:`LinResult` (callers that want an
    exception use :func:`assert_linearizable`).  ``max_states`` bounds
    the memoized search; exceeding it reports failure with an explicit
    reason rather than running unbounded.
    """
    ops = list(history.ops)
    explored = 0
    memo: set[tuple[frozenset, Hashable]] = set()
    witness: list[int] = []

    def dfs(remaining: dict[int, Op], state: Any) -> bool:
        nonlocal explored
        if not remaining:
            return True
        if all(op.pending for op in remaining.values()):
            # every remaining op may simply not have taken effect
            return True
        sig = (frozenset(remaining), spec.key(state))
        if sig in memo:
            return False
        explored += 1
        if explored > max_states:
            raise _SearchBudget()
        min_resp = min(op.responded for op in remaining.values())
        for opid, op in remaining.items():
            if op.invoked >= min_resp:
                continue  # some other op finished before this began
            rest = dict(remaining)
            del rest[opid]
            for new_state in spec.apply(state, op):
                witness.append(opid)
                if dfs(rest, new_state):
                    return True
                witness.pop()
            if op.pending:
                # a pending op may also be dropped entirely
                if dfs(rest, state):
                    return True
        memo.add(sig)
        return False

    class _SearchBudget(Exception):
        pass

    try:
        ok = dfs({op.opid: op for op in ops}, spec.init())
    except _SearchBudget:
        return LinResult(
            ok=False,
            ops=len(ops),
            states_explored=explored,
            reason=f"search budget exceeded ({max_states} states)",
        )
    if ok:
        return LinResult(
            ok=True,
            ops=len(ops),
            states_explored=explored,
            witness=list(witness),
        )
    return LinResult(
        ok=False,
        ops=len(ops),
        states_explored=explored,
        reason="no valid linearization exists",
    )


def assert_linearizable(
    history: History, spec: SequentialSpec, max_states: int = 500_000
) -> LinResult:
    """Raise :class:`LinearizabilityError` unless the history checks."""
    res = check_linearizable(history, spec, max_states=max_states)
    if not res.ok:
        raise LinearizabilityError(
            f"history of {res.ops} ops is not linearizable "
            f"({res.reason}; {res.states_explored} states explored):\n"
            + history.render()
        )
    return res


# ---------------------------------------------------------------------------
# Sequential model specs for the lockfree/offload structures
# ---------------------------------------------------------------------------


class QueueSpec(SequentialSpec):
    """FIFO queue with bounded capacity and close semantics.

    Operation vocabulary (results are what the concurrent code
    observed):

    * ``("enqueue", (x,)) -> "ok" | "closed" | "full"``
    * ``("dequeue", ()) -> (True, x) | (False, None)``
    * ``("close", ()) -> "ok"``
    """

    def __init__(self, capacity: int = 2**30) -> None:
        self.capacity = capacity

    def init(self) -> tuple:
        return ((), False)  # (items, closed)

    def apply(self, state: tuple, op: Op) -> list:
        items, closed = state
        if op.pending:
            # A pending op's result is unknown: it may have taken
            # effect in any way the sequential object allows.  (Its
            # "took no effect" alternative is handled by the checker,
            # which may also drop a pending op entirely.)
            if op.op == "enqueue":
                if not closed and len(items) < self.capacity:
                    return [(items + (op.args[0],), closed)]
                return []
            if op.op == "dequeue":
                return [(items[1:], closed)] if items else []
            if op.op == "close":
                return [(items, True)]
            raise ValueError(f"QueueSpec: unknown op {op.op!r}")
        if op.op == "enqueue":
            if op.result == "ok":
                if closed or len(items) >= self.capacity:
                    return []
                return [(items + (op.args[0],), closed)]
            if op.result == "closed":
                return [state] if closed else []
            if op.result == "full":
                return [state] if len(items) >= self.capacity else []
            return []
        if op.op == "dequeue":
            ok, value = op.result
            if ok:
                if items and items[0] == value:
                    return [(items[1:], closed)]
                return []
            return [state] if not items else []
        if op.op == "close":
            return [(items, True)]
        raise ValueError(f"QueueSpec: unknown op {op.op!r}")


class FreeListSpec(SequentialSpec):
    """Pool of ``capacity`` slots: alloc hands out any free one.

    * ``("alloc", ()) -> idx | "exhausted"``
    * ``("free", (idx,)) -> "ok" | "double_free"``
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity

    def init(self) -> frozenset:
        return frozenset(range(self.capacity))

    def apply(self, state: frozenset, op: Op) -> list:
        if op.pending:
            # unknown result: any legal effect (see QueueSpec.apply)
            if op.op == "alloc":
                return [state - {idx} for idx in state]
            if op.op == "free":
                idx = op.args[0]
                return [state | {idx}] if idx not in state else []
            raise ValueError(f"FreeListSpec: unknown op {op.op!r}")
        if op.op == "alloc":
            if op.result == "exhausted":
                return [state] if not state else []
            if op.result in state:
                return [state - {op.result}]
            return []
        if op.op == "free":
            idx = op.args[0]
            if op.result == "ok":
                if idx in state:
                    return []  # freeing a slot that was already free
                return [state | {idx}]
            if op.result == "double_free":
                return [state] if idx in state else []
            return []
        raise ValueError(f"FreeListSpec: unknown op {op.op!r}")


class RequestPoolSpec(FreeListSpec):
    """Request-pool slot accounting: the pool's alloc/release pair maps
    directly onto the free-list model (cached slots are accounted free,
    so the spec is unchanged — see
    :class:`repro.core.request_pool.OffloadRequestPool`).

    * ``("alloc", ()) -> idx | "exhausted"``
    * ``("release", (idx,)) -> "ok" | "double_free"``
    """

    def apply(self, state: frozenset, op: Op) -> list:
        if op.op == "release":
            op = Op(
                opid=op.opid,
                thread=op.thread,
                op="free",
                args=op.args,
                result=op.result,
                invoked=op.invoked,
                responded=op.responded,
            )
        return super().apply(state, op)
