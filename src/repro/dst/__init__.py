"""Deterministic simulation testing (DST) for the lockfree/offload stack.

Layers (bottom-up):

* :mod:`repro.dst.hooks` — the zero-overhead yield/crash points the
  production lockfree and engine code calls (a single ``is None``
  check when no scheduler is installed);
* :mod:`repro.dst.scheduler` — the seeded cooperative scheduler that
  owns a test's virtual threads and turns every interleaving decision
  into an explicit choice;
* :mod:`repro.dst.strategies` — random-walk, PCT, and exhaustive
  schedule enumeration;
* :mod:`repro.dst.linearize` — Wing–Gong linearizability checking of
  recorded histories against sequential model specs;
* :mod:`repro.dst.explorer` — the schedule explorer: budgeted
  exploration, single-token replay, obs counters;
* :mod:`repro.dst.targets` — the regression corpus (the three
  lifecycle races re-run as explorer targets).

Every name except ``hooks`` is loaded **lazily** (PEP 562): the
production lockfree layer sits at the very bottom of the import graph
and does ``from repro.dst import hooks``, which must not drag in the
explorer (whose :mod:`repro.obs` dependency imports the lockfree layer
right back — a cycle).  ``targets`` additionally depends on
:mod:`repro.core`, the same shape as :mod:`repro.faults` vs
:mod:`repro.faults.chaos`.
"""

from repro.dst import hooks
from repro.dst.hooks import ScheduledCrash, current, install, uninstall

#: lazy attribute -> (submodule, name) table (PEP 562)
_LAZY = {
    "DeadlockError": "repro.dst.scheduler",
    "DstError": "repro.dst.scheduler",
    "ScheduleBudgetExceeded": "repro.dst.scheduler",
    "Scheduler": "repro.dst.scheduler",
    "SchedulerStalled": "repro.dst.scheduler",
    "ExhaustiveStrategy": "repro.dst.strategies",
    "FixedPathStrategy": "repro.dst.strategies",
    "PCTStrategy": "repro.dst.strategies",
    "RandomWalkStrategy": "repro.dst.strategies",
    "Strategy": "repro.dst.strategies",
    "strategy_from_token": "repro.dst.strategies",
    "FreeListSpec": "repro.dst.linearize",
    "History": "repro.dst.linearize",
    "LinearizabilityError": "repro.dst.linearize",
    "LinResult": "repro.dst.linearize",
    "Op": "repro.dst.linearize",
    "QueueSpec": "repro.dst.linearize",
    "RequestPoolSpec": "repro.dst.linearize",
    "SequentialSpec": "repro.dst.linearize",
    "assert_linearizable": "repro.dst.linearize",
    "check_linearizable": "repro.dst.linearize",
    "ExplorationResult": "repro.dst.explorer",
    "Explorer": "repro.dst.explorer",
    "InvariantViolation": "repro.dst.explorer",
    "ScheduleFailure": "repro.dst.explorer",
    "derive_seed": "repro.dst.explorer",
    "targets": "repro.dst.targets",
}

__all__ = [
    "ScheduledCrash",
    "current",
    "hooks",
    "install",
    "uninstall",
    *sorted(_LAZY),
]


def __getattr__(name: str):
    modname = _LAZY.get(name)
    if modname is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(modname)
    value = module if name == "targets" else getattr(module, name)
    globals()[name] = value  # cache: __getattr__ runs once per name
    return value


def __dir__():
    return sorted(__all__)
