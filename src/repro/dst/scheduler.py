"""Seeded cooperative scheduler: the core of the DST subsystem.

A :class:`Scheduler` owns every *virtual thread* in a test.  Virtual
threads are real Python threads, but only one ever runs at a time: each
one parks on a private event and advances exactly one hop — up to its
next yield point — when the scheduler grants it the turn.  Yield points
are threaded through the lockfree layer and the engine hot paths via
:mod:`repro.dst.hooks`, so *which* thread wins each CAS race, observes
each flag, or publishes each ring cell is decided here, by a pluggable
:class:`~repro.dst.strategies.Strategy`, from a single seed.

That inversion is what makes concurrency failures reproducible: a
schedule is just the sequence of choices the strategy made, so any
failing run can be replayed exactly by re-running the same strategy
with the same seed (see :class:`repro.dst.explorer.Explorer`).

The scheduler also detects the two ways a schedule can go wrong
structurally:

* **deadlock** — every live virtual thread is parked in
  :meth:`wait_until` on a predicate that cannot become true (raises
  :class:`DeadlockError` naming the stuck threads and their sites);
* **runaway schedules** — more than ``max_steps`` grants (raises
  :class:`ScheduleBudgetExceeded`; a livelock guard for spin loops).

Wall-clock safety net: every handoff carries a real timeout
(``handoff_timeout``), so a virtual thread that blocks on something the
scheduler cannot see fails the run with :class:`SchedulerStalled`
instead of hanging the test process.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.dst import hooks as _hooks
from repro.dst.strategies import Strategy


class DstError(Exception):
    """Base class for scheduler-detected failures."""


class DeadlockError(DstError):
    """Every live virtual thread is blocked on an unsatisfied predicate."""


class ScheduleBudgetExceeded(DstError):
    """The schedule ran past ``max_steps`` grants (livelock guard)."""


class SchedulerStalled(DstError):
    """A virtual thread failed to yield back within the wall-clock
    handoff timeout (it blocked on something the scheduler cannot
    see — a real lock, a real event, real I/O)."""


class _Killed(BaseException):
    """Injected into parked virtual threads during teardown.

    Derives from ``BaseException`` so target code's ``except
    Exception`` blocks cannot swallow it.
    """


class VThread:
    """One scheduler-owned virtual thread."""

    __slots__ = (
        "tid",
        "name",
        "thread",
        "turn",
        "done",
        "exc",
        "blocked_on",
        "last_site",
        "steps",
    )

    def __init__(self, tid: int, name: str) -> None:
        self.tid = tid
        self.name = name
        self.thread: threading.Thread | None = None
        #: set by the scheduler to grant this thread its next hop
        self.turn = threading.Event()
        self.done = False
        self.exc: BaseException | None = None
        #: predicate this thread is blocked on (None = runnable)
        self.blocked_on: Callable[[], bool] | None = None
        #: the yield site this thread is parked at (next thing it does)
        self.last_site = "spawn"
        self.steps = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = (
            "done"
            if self.done
            else ("blocked" if self.blocked_on is not None else "runnable")
        )
        return f"VThread({self.tid}:{self.name}, {state} at {self.last_site})"


class Scheduler:
    """Cooperative scheduler driving virtual threads one hop at a time.

    Parameters
    ----------
    strategy:
        Decides which runnable thread advances at each step and whether
        crash points fire.  All nondeterminism lives here.
    max_steps:
        Grant budget; exceeding it raises
        :class:`ScheduleBudgetExceeded`.
    handoff_timeout:
        Real seconds the driver waits for a granted thread to yield
        back before declaring the run stalled.
    """

    def __init__(
        self,
        strategy: Strategy,
        max_steps: int = 20_000,
        handoff_timeout: float = 30.0,
    ) -> None:
        self.strategy = strategy
        self.max_steps = max_steps
        self.handoff_timeout = handoff_timeout
        self._vthreads: list[VThread] = []
        self._by_ident: dict[int, VThread] = {}
        #: set by a virtual thread when it parks (yield/block/finish)
        self._control = threading.Event()
        self._aborting = False
        self._started = False
        # -- observable schedule state ---------------------------------
        #: grants issued so far (the logical clock of the run)
        self.steps = 0
        #: yield points taken (>= steps: a grant may cross several
        #: non-yielding operations only at thread start/exit)
        self.yields = 0
        #: one entry per grant: (tid, site the thread was parked at)
        self.schedule_log: list[tuple[int, str]] = []
        #: True once a crash point fired (at most one per schedule)
        self.crashed = False
        self.crash_site: str | None = None

    # ------------------------------------------------------------ clock

    @property
    def clock(self) -> int:
        """Logical timestamp: total yield points taken so far.

        Monotonic within a run; used by
        :class:`repro.dst.linearize.History` to order invocation and
        response events.
        """
        return self.yields

    # ------------------------------------------------------------ spawn

    def spawn(
        self, fn: Callable[..., Any], *args: Any, name: str | None = None
    ) -> VThread:
        """Register a virtual thread running ``fn(*args)``.

        The thread starts parked; it only ever advances when the
        scheduler grants it a turn inside :meth:`run`.
        """
        if self._started:
            raise RuntimeError("spawn() after run() started")
        vt = VThread(len(self._vthreads), name or f"vt{len(self._vthreads)}")

        def _body() -> None:
            vt.turn.wait()
            vt.turn.clear()
            try:
                if not self._aborting:
                    fn(*args)
            except _Killed:
                pass
            except BaseException as exc:  # noqa: BLE001 - reported via vt.exc
                vt.exc = exc
            finally:
                vt.done = True
                self._control.set()

        vt.thread = threading.Thread(
            target=_body, name=f"dst-{vt.name}", daemon=True
        )
        self._vthreads.append(vt)
        vt.thread.start()
        self._by_ident[vt.thread.ident] = vt  # type: ignore[index]
        return vt

    def owns_current_thread(self) -> bool:
        return threading.get_ident() in self._by_ident

    def _current(self) -> VThread | None:
        return self._by_ident.get(threading.get_ident())

    # ------------------------------------------------------------ driver

    def run(self) -> None:
        """Drive all virtual threads to completion under the strategy.

        Raises the structural failures documented on the class; leaves
        per-thread exceptions in ``vt.exc`` for the caller (the
        explorer) to interpret.
        """
        self._started = True
        self.strategy.begin_run()
        try:
            while True:
                live = [vt for vt in self._vthreads if not vt.done]
                if not live:
                    return
                runnable: list[VThread] = []
                for vt in live:
                    pred = vt.blocked_on
                    if pred is None:
                        runnable.append(vt)
                    elif pred():
                        vt.blocked_on = None
                        runnable.append(vt)
                if not runnable:
                    raise DeadlockError(
                        "all live virtual threads are blocked: "
                        + ", ".join(
                            f"{vt.name} at {vt.last_site}" for vt in live
                        )
                    )
                if self.steps >= self.max_steps:
                    raise ScheduleBudgetExceeded(
                        f"schedule exceeded {self.max_steps} steps "
                        f"(possible livelock); last grants: "
                        f"{self.schedule_log[-5:]}"
                    )
                choice = self.strategy.pick_index(
                    [vt.tid for vt in runnable]
                )
                vt = runnable[choice]
                self.steps += 1
                vt.steps += 1
                self.schedule_log.append((vt.tid, vt.last_site))
                self._grant(vt)
        finally:
            self._teardown()

    def _grant(self, vt: VThread) -> None:
        """Let ``vt`` advance one hop and wait for it to park again."""
        self._control.clear()
        vt.turn.set()
        if not self._control.wait(self.handoff_timeout):
            self._aborting = True
            raise SchedulerStalled(
                f"virtual thread {vt.name} did not yield within "
                f"{self.handoff_timeout}s (blocked outside the "
                f"scheduler at/after {vt.last_site})"
            )

    def _teardown(self) -> None:
        """Unpark every surviving thread with a kill signal."""
        self._aborting = True
        for vt in self._vthreads:
            if not vt.done:
                vt.turn.set()
        for vt in self._vthreads:
            if vt.thread is not None:
                vt.thread.join(timeout=1.0)

    # ---------------------------------------------------- vthread side

    def yield_point(self, site: str, detail: Any = None) -> None:
        """Hook entry: park the calling thread until granted again.

        No-op for threads the scheduler does not own, so production
        threads coexist with an installed scheduler.
        """
        vt = self._current()
        if vt is None:
            return
        self.yields += 1
        vt.last_site = site if detail is None else f"{site}:{detail}"
        self._park(vt)

    def _park(self, vt: VThread) -> None:
        self._control.set()
        vt.turn.wait()
        vt.turn.clear()
        if self._aborting:
            raise _Killed()

    def wait_until(self, predicate: Callable[[], bool]) -> None:
        """Cooperative blocking: park until ``predicate()`` holds.

        The predicate is re-evaluated by the *driver* before each
        grant, so it must be cheap and read-only.  If every live thread
        ends up here with a false predicate, the driver raises
        :class:`DeadlockError`.
        """
        vt = self._current()
        if vt is None:  # foreign thread: degrade to a spin (tests only)
            while not predicate():
                threading.Event().wait(1e-4)
            return
        while not predicate():
            self.yields += 1
            vt.blocked_on = predicate
            vt.last_site = f"wait_until@{vt.last_site}"
            self._park(vt)

    def crash_point(self, site: str) -> bool:
        """Strategy decision: inject a crash here?  At most one per run."""
        vt = self._current()
        if vt is None or self.crashed:
            return False
        # The decision itself is a choice point: park first so the
        # crash lands at an explored position in the interleaving.
        self.yields += 1
        vt.last_site = f"crash?{site}"
        self._park(vt)
        if self.strategy.pick_bool(site):
            self.crashed = True
            self.crash_site = site
            return True
        return False

    # ------------------------------------------------------------ misc

    def install(self) -> "Scheduler":
        _hooks.install(self)
        return self

    def uninstall(self) -> None:
        _hooks.uninstall()

    def thread_errors(self) -> list[tuple[str, BaseException]]:
        """(name, exception) for every virtual thread that raised."""
        return [
            (vt.name, vt.exc)
            for vt in self._vthreads
            if vt.exc is not None
        ]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Scheduler(threads={len(self._vthreads)}, steps={self.steps}, "
            f"yields={self.yields}, crashed={self.crashed})"
        )
