"""Schedule exploration: run a DST program under many interleavings.

An :class:`Explorer` repeatedly executes a *program* — an object that
spawns virtual threads on a fresh :class:`~repro.dst.scheduler.Scheduler`
and states its invariants — under schedules drawn from a strategy:

* ``random`` — one independent random-walk schedule per run, each with
  a derived seed;
* ``pct`` — PCT priority schedules (better at ordering bugs of small
  depth);
* ``exhaustive`` — depth-first enumeration of every schedule, for
  small bounded programs (stops early when the tree is exhausted).

Any violation — a failed invariant, an unexpected virtual-thread
exception, a deadlock, a non-linearizable history — stops exploration
and is reported with a **replay token**: for random/PCT schedules a
single integer seed, for exhaustive schedules the decision path.
:meth:`Explorer.replay` re-executes exactly that schedule, so a CI
failure line is a complete reproduction recipe.

Counters (``schedules_explored``, ``yields``,
``lin_histories_checked``) follow the :mod:`repro.obs` conventions and
are exposed on :attr:`Explorer.counters`.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.dst.linearize import (
    LinearizabilityError,
    check_linearizable,
)
from repro.dst.scheduler import DstError, Scheduler
from repro.dst.strategies import (
    ExhaustiveStrategy,
    PCTStrategy,
    RandomWalkStrategy,
    Strategy,
    strategy_from_token,
)
from repro.obs.counters import Counters


class InvariantViolation(AssertionError):
    """A DST program's post-run invariant failed."""


#: Per-run seeds are derived from the base seed with a large odd
#: multiplier so neighbouring base seeds do not share runs.
_SEED_STRIDE = 1_000_003


def derive_seed(base_seed: int, run_index: int) -> int:
    """The seed of run ``run_index`` under base seed ``base_seed``."""
    return base_seed * _SEED_STRIDE + run_index


@dataclass
class ScheduleFailure:
    """Everything needed to understand and replay one failing schedule."""

    run_index: int
    token: tuple
    error: BaseException
    schedule: list = field(default_factory=list)
    steps: int = 0
    crash_site: "str | None" = None

    def replay_hint(self) -> str:
        if self.token[0] in ("random", "pct"):
            seed = self.token[1]
            return (
                f"seed={seed} — replay with Explorer(...).replay({seed}) "
                f"or REPRO_TEST_SEED={seed}"
            )
        return f"token={self.token!r} — replay with Explorer(...).replay(token)"

    def __str__(self) -> str:
        return (
            f"schedule #{self.run_index} failed after {self.steps} steps "
            f"({self.error.__class__.__name__}: {self.error}); "
            f"{self.replay_hint()}"
        )


@dataclass
class ExplorationResult:
    """Summary of an exploration."""

    found: bool
    runs: int
    failure: "ScheduleFailure | None" = None
    exhausted: bool = False
    total_steps: int = 0
    total_yields: int = 0

    def __bool__(self) -> bool:
        return self.found


class Explorer:
    """Drive a program factory through many schedules.

    Parameters
    ----------
    make_program:
        Zero-arg callable returning a **fresh** program per run.  A
        program must provide ``setup(scheduler)`` (spawn virtual
        threads) and ``check()`` (raise :class:`InvariantViolation` on
        a bug).  Optionally it may expose ``history`` and ``spec``
        attributes, in which case every run's history is additionally
        checked for linearizability.
    strategy:
        ``"random"``, ``"pct"``, ``"exhaustive"``, or a
        :class:`~repro.dst.strategies.Strategy` factory
        ``(run_seed) -> Strategy``.
    schedules:
        Schedule budget (exhaustive stops earlier if the tree is
        smaller).
    seed:
        Base seed; run *i* uses :func:`derive_seed` of it.
    """

    def __init__(
        self,
        make_program: Callable[[], Any],
        strategy: "str | Callable[[int], Strategy]" = "random",
        schedules: int = 200,
        seed: int = 0,
        max_steps: int = 20_000,
        pct_depth: int = 3,
        counters: "Counters | None" = None,
        verbose: bool = False,
    ) -> None:
        self.make_program = make_program
        self.schedules = schedules
        self.seed = seed
        self.max_steps = max_steps
        self.pct_depth = pct_depth
        self.counters = counters if counters is not None else Counters()
        self.verbose = verbose
        self._strategy_arg = strategy
        self._exhaustive: ExhaustiveStrategy | None = None

    # ------------------------------------------------------------ runs

    def _strategy_for_run(self, run_index: int) -> Strategy:
        arg = self._strategy_arg
        if callable(arg):
            return arg(derive_seed(self.seed, run_index))
        if arg == "random":
            return RandomWalkStrategy(derive_seed(self.seed, run_index))
        if arg == "pct":
            return PCTStrategy(
                derive_seed(self.seed, run_index),
                depth=self.pct_depth,
                expected_steps=self.max_steps,
            )
        if arg == "exhaustive":
            if self._exhaustive is None:
                self._exhaustive = ExhaustiveStrategy()
            return self._exhaustive
        raise ValueError(f"unknown strategy {arg!r}")

    def run_one(self, strategy: Strategy) -> "tuple[Scheduler, BaseException | None]":
        """Execute one schedule; returns (scheduler, violation-or-None)."""
        program = self.make_program()
        sched = Scheduler(strategy, max_steps=self.max_steps)
        sched.install()
        error: BaseException | None = None
        try:
            program.setup(sched)
            try:
                sched.run()
            except DstError as exc:
                error = exc
        finally:
            sched.uninstall()
        self.counters.inc("schedules_explored")
        self.counters.inc("yields", sched.yields)
        if error is None:
            for name, exc in sched.thread_errors():
                error = InvariantViolation(
                    f"virtual thread {name} raised {exc!r}"
                )
                error.__cause__ = exc
                break
        if error is None:
            try:
                program.check()
            except (InvariantViolation, AssertionError) as exc:
                error = exc
        if error is None:
            history = getattr(program, "history", None)
            spec = getattr(program, "spec", None)
            if history is not None and spec is not None:
                self.counters.inc("lin_histories_checked")
                res = check_linearizable(history, spec)
                if not res.ok:
                    error = LinearizabilityError(
                        f"history not linearizable ({res.reason}; "
                        f"{res.states_explored} states):\n"
                        + history.render()
                    )
        return sched, error

    def run(self) -> ExplorationResult:
        """Explore up to ``schedules`` schedules; stop on first violation."""
        total_steps = 0
        total_yields = 0
        runs = 0
        exhausted = False
        for i in range(self.schedules):
            strategy = self._strategy_for_run(i)
            if i > 0 and not strategy.next_run():
                exhausted = True
                break
            sched, error = self.run_one(strategy)
            runs += 1
            total_steps += sched.steps
            total_yields += sched.yields
            if error is not None:
                failure = ScheduleFailure(
                    run_index=i,
                    token=strategy.token(),
                    error=error,
                    schedule=list(sched.schedule_log),
                    steps=sched.steps,
                    crash_site=sched.crash_site,
                )
                self.counters.inc("dst_violations")
                # The one line a failing CI log must contain: what broke
                # and the token that replays it exactly.  On stderr so
                # machine-readable stdout (--json) stays clean.
                print(f"DST: {failure}", file=sys.stderr)
                return ExplorationResult(
                    found=True,
                    runs=runs,
                    failure=failure,
                    total_steps=total_steps,
                    total_yields=total_yields,
                )
            if self.verbose:
                print(
                    f"DST: schedule #{i} ok "
                    f"({sched.steps} steps, {sched.yields} yields)"
                )
        return ExplorationResult(
            found=False,
            runs=runs,
            exhausted=exhausted,
            total_steps=total_steps,
            total_yields=total_yields,
        )

    # ------------------------------------------------------------ replay

    def replay(self, token: "tuple | int") -> "ScheduleFailure | None":
        """Re-execute the exact schedule a failure token names.

        Returns the reproduced failure, or ``None`` if the schedule now
        passes (i.e. the program or fix changed since the recording).
        """
        strategy = strategy_from_token(token)
        sched, error = self.run_one(strategy)
        if error is None:
            return None
        return ScheduleFailure(
            run_index=-1,
            token=strategy.token(),
            error=error,
            schedule=list(sched.schedule_log),
            steps=sched.steps,
            crash_site=sched.crash_site,
        )
