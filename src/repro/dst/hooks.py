"""Yield-point hooks for deterministic simulation testing (DST).

This module is the *only* thing the production lockfree/core layers
import from :mod:`repro.dst`, and it deliberately imports nothing from
``repro`` itself — it sits below the whole stack, exactly like the
``is None`` fault hooks of :mod:`repro.faults.plan`:

* when no scheduler is installed (normal operation, benchmarks,
  production), every hook site is a single module-attribute read plus
  an ``is None`` check — no scheduler code runs, no behavior changes;
* when a :class:`repro.dst.scheduler.Scheduler` is installed, hook
  sites become *scheduler choice points*: the calling thread parks and
  the scheduler decides which virtual thread advances next, making
  every shared-memory interleaving decision an explicit, seeded,
  replayable choice.

Threads the scheduler does not own (the pytest main thread, a real
offload engine thread in an unrelated test) pass straight through even
while a scheduler is installed, so installation is safe process-wide.

Hook vocabulary
---------------
``yield_point(site)``
    A shared-memory access is about to happen at ``site``; give the
    scheduler the chance to run someone else first.
``crash_point(site)``
    The engine is about to dispatch a command; the scheduler may
    answer "crash here" (at most once per schedule), in which case the
    caller raises :class:`ScheduledCrash` through its normal
    crash-handling path.
``flag_wait(predicate)``
    A blocking wait on a done-flag: under the scheduler this becomes a
    cooperative ``wait_until`` (the deadlock detector replaces the
    timeout); returns ``False`` when the caller should fall back to a
    real wait.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.dst.scheduler import Scheduler

#: The installed scheduler, or ``None``.  Production hook sites read
#: this exactly once per operation (``if _scheduler is not None``).
_scheduler: "Scheduler | None" = None


class ScheduledCrash(RuntimeError):
    """Engine crash injected by the DST scheduler at a crash point.

    Mirrors :class:`repro.faults.plan.InjectedCrash` (which lives above
    this module in the import graph): raised inside the engine loop so
    the normal crash handling — terminal-fail the current command, then
    ``_fail_pending`` everything else — is exercised under an explored
    schedule.
    """


def install(scheduler: "Scheduler") -> None:
    """Make ``scheduler`` the process-wide DST scheduler."""
    global _scheduler
    if _scheduler is not None:
        raise RuntimeError("a DST scheduler is already installed")
    _scheduler = scheduler


def uninstall() -> None:
    """Remove the installed scheduler (idempotent)."""
    global _scheduler
    _scheduler = None


def current() -> "Scheduler | None":
    """The installed scheduler, or ``None``."""
    return _scheduler


def is_virtual_thread() -> bool:
    """Is the calling thread owned by the installed scheduler?"""
    s = _scheduler
    return s is not None and s.owns_current_thread()


def yield_point(site: str, detail: Any = None) -> None:
    """Scheduler choice point before a shared-memory access."""
    s = _scheduler
    if s is not None:
        s.yield_point(site, detail)


def crash_point(site: str) -> bool:
    """May the caller crash here?  Always ``False`` without a scheduler."""
    s = _scheduler
    if s is not None:
        return s.crash_point(site)
    return False


def wait_until(predicate: Callable[[], bool]) -> None:
    """Cooperative block until ``predicate()`` holds.

    Only meaningful on scheduler-owned threads (callers guard with
    :func:`is_virtual_thread`); parking on a predicate instead of
    spin-yielding keeps spin loops out of the schedule tree — a
    blocked thread is not a branch point.
    """
    s = _scheduler
    if s is not None:
        s.wait_until(predicate)


def flag_wait(predicate: Callable[[], bool]) -> bool:
    """Cooperative stand-in for a blocking flag wait.

    Returns ``True`` once ``predicate()`` holds (having yielded to the
    scheduler in between), or ``False`` immediately when the calling
    thread is not scheduler-owned — the caller then performs its normal
    blocking wait.
    """
    s = _scheduler
    if s is not None and s.owns_current_thread():
        s.wait_until(predicate)
        return True
    return False
