"""DST regression corpus: known races re-run as explorer targets.

The lifecycle-hardening PR fixed three concurrency bugs in the offload
stack.  Each is kept alive here as a *target program* with a guarded
fix-disable hook, proving the DST harness would have found it — and
would find a regression — within a bounded schedule budget:

``queue-close-enqueue``
    A producer that won its enqueue CAS concurrently with ``close()``
    published its value into a ring the consumer had already finally
    drained — the command was silently lost.  Fixed by the post-CAS
    ``closed`` re-check + tombstone
    (:attr:`MPSCQueue._unsafe_skip_close_recheck` disables it).

``freelist-double-free``
    Two racing frees of the same slot both succeeded, linking the slot
    into the free list twice (a cycle), so later allocs handed the same
    slot to two owners.  Fixed by the live-set ownership ledger
    (:attr:`FreeList._unsafe_skip_live_check` disables it).

``engine-mid-batch-crash``
    A crash inside ``_process_batch`` lost the drained-but-undispatched
    tail of the batch: those commands' waiters hung forever.  Fixed by
    keeping the batch on ``engine._drained`` where ``_fail_pending``
    sweeps it (:attr:`OffloadEngine._unsafe_drop_drained_on_fail`
    disables it).

Alongside the regressions, three *linearizability targets* record
operation histories of the MPSCQueue, the FreeList, and the request
pool under explored schedules and check them against their sequential
model specs (:mod:`repro.dst.linearize`) — an oracle that catches
classes of bugs no hand-written invariant anticipates.

The sharded engine-pool PR added four more regression targets, one per
cross-shard path its correctness argument leans on:

``steal-vs-submit``
    A thief ignoring the owner's ``dispatch_busy``/``steal_pending``
    gates can issue a *newer* ring batch before the owner issues an
    older one — per-queue issue order diverges from ring order and the
    MPI non-overtaking argument collapses
    (:attr:`MPSCQueue._unsafe_steal_skip_busy_check` disables the gate).

``steal-vs-close``
    A thief bypassing the consumer claim races ``close()`` +
    ``drain_closed()`` over the same cells: both sides walk the same
    dequeue cursor, so items are delivered twice, lost, or replaced by
    ``None`` (:attr:`MPSCQueue._unsafe_steal_skip_claim` disables the
    claim).

``shard-crash-stolen-work``
    A thief that crashes mid-dispatch of a stolen batch must still
    release the victim's ``steal_pending`` gate; leaking it wedges the
    surviving victim shard forever — the explorer surfaces this as a
    deadlock (:attr:`OffloadEngine._unsafe_steal_leak_on_crash` skips
    the crash-path release).

``routing-order``
    The router's per-stream stickiness is what keeps same-(dest, tag)
    sends on one ring; ignoring it round-robins one ordered stream
    over two shards and the issue log reorders
    (:attr:`ShardRouter._unsafe_ignore_stickiness` disables
    stickiness).

The zero-copy data-plane PR added one more:

``eager-deferred-copy``
    A zero-copy eager send that completes at *post* time tells the
    sender its buffer is reusable while a late-matching receiver will
    still read it through the borrowed reference.  Fixed by deferring
    completion to the match, where the single copy runs
    (:attr:`ProgressEngine._unsafe_complete_eager_at_post` re-opens
    the race).

The fault-tolerance PR (ULFM revoke/shrink/agree, DESIGN.md §15) added
two more:

``agree-participant-crash``
    A participant that dies between its round-1 candidate sends leaves
    a partial candidate set behind; an agreement that decides after one
    round regardless of gather failures and live-mask mismatches lets
    one survivor consume the dead rank's candidate while another trusts
    its own — two different "agreed" values
    (:attr:`World._unsafe_agree_trust_first_round` disables the
    decisiveness guard).

``shrink-inflight-eager``
    A zero-copy eager envelope still in the delivery pipe when
    ``revoke()`` purges the receiver's UMQ arrives *after* the purge
    and parks forever — its sender's deferred-completion request never
    terminates (:attr:`ProgressEngine._unsafe_skip_revoked_drain_check`
    disables the drain-time poisoning that closes the window).

The continuation-completion PR (serving front-end, DESIGN.md §16)
added two more:

``continuation-vs-crash``
    An engine crash fails pending slots through ``pool.fail``; with
    the fail-path delivery skipped, registered continuations never
    fire and their asyncio awaiters hang forever
    (:attr:`OffloadRequestPool._unsafe_skip_fire_on_fail` disables the
    delivery).

``continuation-double-fire``
    Registration racing completion: both sides can reach the fire
    path, and only the ``cont_fired`` claim under ``cont_lock``
    collapses them to one delivery
    (:attr:`OffloadRequestPool._unsafe_skip_fire_once_guard` skips the
    claim).

This module imports :mod:`repro.core` and therefore must never be
imported from :mod:`repro.dst.hooks`'s import path (see the package
docstring); consumers reach it via ``repro.dst.targets`` directly or
lazily through ``repro.dst``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.commands import Command, CommandKind
from repro.core.engine import OffloadEngine
from repro.core.request_pool import (
    OffloadEngineDied,
    OffloadRequest,
    OffloadRequestPool,
)
from repro.dst import hooks as _dst
from repro.dst.explorer import ExplorationResult, Explorer, InvariantViolation
from repro.dst.linearize import (
    FreeListSpec,
    History,
    Op,
    QueueSpec,
    RequestPoolSpec,
)
from repro.lockfree.freelist import (
    DoubleFree,
    FreeList,
    FreeListExhausted,
)
from repro.lockfree.mpsc_queue import MPSCQueue, QueueClosed, QueueFull


class _FakeComm:
    """Minimal communicator stand-in for a never-started engine.

    The mid-batch-crash target drives :meth:`OffloadEngine._process_batch`
    from a virtual thread with CALL commands only, so no substrate is
    needed — just the two attributes the constructor reads.
    """

    class _Engine:
        rank = 0

    world = None
    engine = _Engine()


# ---------------------------------------------------------------------------
# Regression race 1: queue close vs. enqueue
# ---------------------------------------------------------------------------


class CloseEnqueueProgram:
    """Producers racing ``close()`` + final drain on the command ring.

    Invariant: every enqueue that *reported success* is either in the
    final drain or was delivered by an earlier dequeue — accepted items
    are never silently lost.
    """

    def __init__(self, fix_disabled: bool, n_producers: int = 1) -> None:
        self.queue: MPSCQueue[str] = MPSCQueue(8)
        self.queue._unsafe_skip_close_recheck = fix_disabled
        self.n_producers = n_producers
        self.accepted: list[str] = []
        self.drained: list[str] | None = None

    def setup(self, sched: Any) -> None:
        def producer(label: str) -> None:
            try:
                self.queue.enqueue(label)
            except (QueueClosed, QueueFull):
                return
            self.accepted.append(label)

        def closer() -> None:
            self.queue.close()
            self.drained = self.queue.drain_closed()

        for i in range(self.n_producers):
            sched.spawn(producer, f"item{i}", name=f"producer{i}")
        sched.spawn(closer, name="closer")

    def check(self) -> None:
        drained = self.drained if self.drained is not None else []
        for item in self.accepted:
            if item not in drained:
                raise InvariantViolation(
                    f"enqueue of {item!r} reported success but the item "
                    f"is not in the final drain {drained!r} — silently "
                    "lost in the close/enqueue race"
                )


# ---------------------------------------------------------------------------
# Regression race 2: free-list double free
# ---------------------------------------------------------------------------


class DoubleFreeProgram:
    """Two threads racing ``free()`` of the same allocated slot.

    Invariant: exactly one of the racing frees succeeds (the other gets
    a typed :class:`DoubleFree`), and the list stays structurally sound
    — no cycle, and re-allocating never hands out duplicates.
    """

    def __init__(self, fix_disabled: bool) -> None:
        self.freelist: FreeList[None] = FreeList(4)
        self.freelist._unsafe_skip_live_check = fix_disabled
        # Claimed on the (unscheduled) driver thread: the race below is
        # over *freeing*, not allocating.
        self.idx = self.freelist.alloc()
        self.free_outcomes: list[str] = []

    def setup(self, sched: Any) -> None:
        def racer(name: str) -> None:
            try:
                self.freelist.free(self.idx)
            except DoubleFree:
                self.free_outcomes.append("double_free")
            else:
                self.free_outcomes.append("ok")

        sched.spawn(racer, "freer0", name="freer0")
        sched.spawn(racer, "freer1", name="freer1")

    def check(self) -> None:
        ok = self.free_outcomes.count("ok")
        if ok != 1:
            raise InvariantViolation(
                f"{ok} of 2 racing frees of slot {self.idx} succeeded "
                "(expected exactly 1; the loser must get DoubleFree)"
            )
        # Structural soundness: free_count walks the list and raises on
        # a cycle; draining it must yield distinct slots.
        n_free = self.freelist.free_count()
        seen: set[int] = set()
        for _ in range(n_free):
            got = self.freelist.alloc()
            if got in seen:
                raise InvariantViolation(
                    f"free list handed out slot {got} twice — corrupted "
                    "by the unchecked double free"
                )
            seen.add(got)


# ---------------------------------------------------------------------------
# Regression race 3: engine crash mid-batch
# ---------------------------------------------------------------------------


class MidBatchCrashProgram:
    """Engine loop crashing partway through a drained batch.

    A producer submits CALL commands while a virtual engine thread runs
    the real drain + ``_process_batch`` path; the scheduler may fire
    the ``engine.dispatch`` crash point under any command of the batch.
    Invariant: every command whose ``submit`` reported success reaches
    a terminal done-flag state — completed or typed-failed, never
    silently dropped.
    """

    def __init__(self, fix_disabled: bool, n_commands: int = 4) -> None:
        self.engine = OffloadEngine(
            _FakeComm(),
            pool_capacity=8,
            queue_capacity=16,
            telemetry=False,
            pool_cache=0,
        )
        self.engine._unsafe_drop_drained_on_fail = fix_disabled
        self.n_commands = n_commands
        self.accepted: list[Command] = []
        self._submitted_all = False

    def setup(self, sched: Any) -> None:
        eng = self.engine

        def producer() -> None:
            try:
                for _ in range(self.n_commands):
                    cmd = Command(CommandKind.CALL, fn=lambda: None)
                    try:
                        eng.submit(cmd)
                    except OffloadEngineDied:
                        return
                    self.accepted.append(cmd)
            finally:
                self._submitted_all = True

        def engine_thread() -> None:
            # The drain + dispatch half of OffloadEngine._run, driven
            # cooperatively; the crash handling mirrors _run's except
            # path exactly (terminal-fail everything pending).
            try:
                while True:
                    batch = eng.queue.drain(eng.batch_size)
                    if batch:
                        eng._drained.extend(batch)
                        eng._process_batch()
                        continue
                    if self._submitted_all and eng.queue.empty():
                        return
                    _dst.wait_until(
                        lambda: self._submitted_all
                        or not eng.queue.empty()
                    )
            except _dst.ScheduledCrash as exc:
                died = OffloadEngineDied(
                    f"offload thread crashed: {exc!r}"
                )
                died.__cause__ = exc
                eng._dead = died
                eng._fail_pending(died)

        sched.spawn(engine_thread, name="engine")
        sched.spawn(producer, name="producer")

    def check(self) -> None:
        for i, cmd in enumerate(self.accepted):
            if cmd.done is None or not cmd.done.is_set():
                raise InvariantViolation(
                    f"submitted command #{i} never reached a terminal "
                    "state (done flag unset) — lost from the drained "
                    "batch by the mid-batch crash"
                )


# ---------------------------------------------------------------------------
# Regression race 4: steal vs. owner dispatch (batch-issue ordering)
# ---------------------------------------------------------------------------


class StealSubmitRaceProgram:
    """Owner drain/issue racing a sibling's batch steal on one ring.

    The ring is pre-filled on the driver thread; an owner and a thief
    then compete for batches, each appending what it *issues* to a
    shared log.  Invariant: the issue log is a prefix of ring order —
    batches leave the ring and are issued strictly oldest-first,
    whoever issues them.  With the ``dispatch_busy``/``steal_pending``
    gates disabled, the thief can issue a newer batch while the owner
    still holds an older one, and the log reorders.
    """

    def __init__(self, fix_disabled: bool, n_items: int = 6) -> None:
        self.queue: MPSCQueue[str] = MPSCQueue(16)
        self.queue.enable_steal()
        self.queue._unsafe_steal_skip_busy_check = fix_disabled
        self.items = [f"i{k}" for k in range(n_items)]
        for item in self.items:
            self.queue.enqueue(item)
        self.log: list[str] = []

    def setup(self, sched: Any) -> None:
        q = self.queue

        def owner() -> None:
            for _ in range(12):
                batch = q.drain(2)
                if batch:
                    # The engine dispatches between drain and done-ack;
                    # model that window as a schedule choice point.
                    _dst.yield_point("owner.issue")
                    self.log.extend(batch)
                    q.consume_done()
                if len(self.log) == len(self.items):
                    return

        def thief() -> None:
            for _ in range(8):
                batch = q.steal_drain(2)
                if batch:
                    _dst.yield_point("thief.issue")
                    self.log.extend(batch)
                    q.steal_done()
                if len(self.log) == len(self.items):
                    return

        sched.spawn(owner, name="owner")
        sched.spawn(thief, name="thief")

    def check(self) -> None:
        if len(set(self.log)) != len(self.log):
            raise InvariantViolation(
                f"issue log {self.log!r} contains duplicates — one ring "
                "batch was handed to both the owner and the thief"
            )
        if self.log != self.items[: len(self.log)]:
            raise InvariantViolation(
                f"issue log {self.log!r} is not a prefix of ring order "
                f"{self.items!r} — a stolen batch was issued out of "
                "order against the owner's dispatch"
            )


# ---------------------------------------------------------------------------
# Regression race 5: steal vs. close/final-drain (exactly-once delivery)
# ---------------------------------------------------------------------------


class StealCloseRaceProgram:
    """A thief's scan racing ``close()`` + ``drain_closed()``.

    Invariant: the stolen batches and the final drain together deliver
    every pre-filled item exactly once.  With the consumer claim
    skipped, both sides walk the same dequeue cursor concurrently —
    items are delivered twice, lost, or surface as ``None`` (a cell
    the other side already emptied).
    """

    def __init__(self, fix_disabled: bool, n_items: int = 4) -> None:
        self.queue: MPSCQueue[str] = MPSCQueue(8)
        self.queue.enable_steal()
        self.queue._unsafe_steal_skip_claim = fix_disabled
        self.items = [f"i{k}" for k in range(n_items)]
        for item in self.items:
            self.queue.enqueue(item)
        self.stolen: list[str] = []
        self.drained: list[str] | None = None

    def setup(self, sched: Any) -> None:
        q = self.queue

        def thief() -> None:
            for _ in range(3):
                batch = q.steal_drain(2)
                if batch:
                    self.stolen.extend(batch)
                    q.steal_done()

        def closer() -> None:
            q.close()
            self.drained = q.drain_closed()

        sched.spawn(thief, name="thief")
        sched.spawn(closer, name="closer")

    def check(self) -> None:
        delivered = list(self.stolen) + list(self.drained or [])
        if any(v is None for v in delivered):
            raise InvariantViolation(
                f"delivery {delivered!r} contains None — a thief stole "
                "a cell the final drain had already consumed"
            )
        for item in self.items:
            n = delivered.count(item)
            if n != 1:
                raise InvariantViolation(
                    f"item {item!r} delivered {n} times in {delivered!r} "
                    "(expected exactly once) — the unclaimed steal "
                    "raced the final drain"
                )


# ---------------------------------------------------------------------------
# Regression race 6: shard crash with stolen work outstanding
# ---------------------------------------------------------------------------


class ShardCrashStolenWorkProgram:
    """Thief engine crashing mid-dispatch of a batch stolen from a
    sibling.

    Two never-started engines share nothing but the victim's ring.
    The victim drains and dispatches its own queue; the thief steals
    batches from it through the real ``_try_steal`` path, whose
    dispatch may crash at the ``engine.dispatch`` crash point.

    Invariants: every accepted command reaches a terminal done-flag
    state, and the victim shard survives a *thief* crash — with the
    crash-path ``steal_done`` release leaked, ``steal_pending`` wedges
    the victim's ring forever and the schedule deadlocks (the explorer
    counts a deadlock as a violation).
    """

    def __init__(self, fix_disabled: bool, n_commands: int = 4) -> None:
        self.victim = OffloadEngine(
            _FakeComm(),
            pool_capacity=8,
            queue_capacity=16,
            telemetry=False,
            pool_cache=0,
        )
        self.thief = OffloadEngine(
            _FakeComm(),
            pool_capacity=8,
            queue_capacity=16,
            telemetry=False,
            pool_cache=0,
        )
        self.victim.queue.enable_steal()
        self.thief._unsafe_steal_leak_on_crash = fix_disabled
        victim_queue = self.victim.queue

        def source(thief_engine: OffloadEngine):
            cmds = victim_queue.steal_drain(2)
            if not cmds:
                return None
            return victim_queue, cmds

        self.thief._steal_source = source
        self.accepted: list[Command] = []
        for _ in range(n_commands):
            cmd = Command(CommandKind.CALL, fn=lambda: None)
            self.victim.submit(cmd)
            self.accepted.append(cmd)

    def setup(self, sched: Any) -> None:
        victim, thief = self.victim, self.thief
        q = victim.queue

        def victim_thread() -> None:
            try:
                while True:
                    batch = q.drain(victim.batch_size)
                    if batch:
                        victim._drained.extend(batch)
                        victim._process_batch()
                        q.consume_done()
                        continue
                    if q.steal_pending:
                        # Idle only because a stolen batch is out; a
                        # leaked steal_done parks this wait forever.
                        _dst.wait_until(lambda: not q.steal_pending)
                        continue
                    if q.empty():
                        return
            except _dst.ScheduledCrash as exc:
                died = OffloadEngineDied(
                    f"offload thread crashed: {exc!r}"
                )
                died.__cause__ = exc
                victim._dead = died
                victim._fail_pending(died)

        def thief_thread() -> None:
            try:
                for _ in range(5):
                    thief._try_steal()
            except _dst.ScheduledCrash as exc:
                died = OffloadEngineDied(
                    f"offload thread crashed: {exc!r}"
                )
                died.__cause__ = exc
                thief._dead = died
                thief._fail_pending(died)

        sched.spawn(victim_thread, name="victim")
        sched.spawn(thief_thread, name="thief")

    def check(self) -> None:
        for i, cmd in enumerate(self.accepted):
            if cmd.done is None or not cmd.done.is_set():
                raise InvariantViolation(
                    f"submitted command #{i} never reached a terminal "
                    "state — lost between the victim ring and the "
                    "thief's crashed dispatch"
                )


# ---------------------------------------------------------------------------
# Regression race 7: router stickiness vs. same-(dest, tag) send order
# ---------------------------------------------------------------------------


class RoutingOrderProgram:
    """Same-(dest, tag) sends routed through a 2-shard pool.

    A producer routes and submits one ordered send stream through an
    (unstarted) :class:`~repro.core.engine_pool.EnginePool` while one
    consumer per shard drains its ring into a shared issue log.
    Invariant: the log is a prefix of submission order.  Stickiness
    guarantees it trivially — the whole stream lands on one ring; with
    stickiness ignored, the stream round-robins over both rings and
    the two consumers interleave it out of order.
    """

    def __init__(self, fix_disabled: bool, n_sends: int = 6) -> None:
        from repro.core.engine_pool import EnginePool

        self.pool = EnginePool(
            _FakeComm(),
            pool_size=2,
            router="rr",
            steal_threshold=None,
            autoscale=False,
            pool_capacity=8,
            queue_capacity=16,
            telemetry=False,
        )
        self.pool.router._unsafe_ignore_stickiness = fix_disabled
        self.dest_comm = _FakeComm()
        self.n_sends = n_sends
        self.submitted: list[Command] = []
        self.log: list[Command] = []

    def setup(self, sched: Any) -> None:
        pool = self.pool

        def producer() -> None:
            for i in range(self.n_sends):
                # Facade order: allocate a slot from the shared request
                # pool, then route, then submit to the routed shard.
                slot = pool.request_pool.alloc()
                cmd = Command(
                    CommandKind.ISEND,
                    comm=self.dest_comm,
                    peer=1,
                    tag=7,
                    slot=slot,
                )
                engine = pool.route(cmd)
                engine.submit(cmd)
                self.submitted.append(cmd)

        def consumer(idx: int) -> None:
            # Stay alive until the whole stream is issued (bounded so a
            # broken schedule cannot spin forever): a consumer that
            # exits while the producer still holds the CPU would never
            # witness the reordering it exists to detect.
            q = pool.engines[idx].queue
            for _ in range(8 * self.n_sends):
                if len(self.log) >= self.n_sends:
                    return
                for cmd in q.drain(2):
                    _dst.yield_point("pool.issue")
                    self.log.append(cmd)

        sched.spawn(producer, name="producer")
        sched.spawn(consumer, 0, name="shard0")
        sched.spawn(consumer, 1, name="shard1")

    def check(self) -> None:
        want = self.submitted[: len(self.log)]
        ok = len(self.log) <= len(self.submitted) and all(
            a is b for a, b in zip(self.log, want)
        )
        if not ok:
            ids = {id(c): i for i, c in enumerate(self.submitted)}
            got = [ids.get(id(c), "?") for c in self.log]
            raise InvariantViolation(
                f"issue order {got} is not a prefix of submission order "
                "— the send stream was split across shards and "
                "reordered"
            )


# ---------------------------------------------------------------------------
# Regression race 8: zero-copy eager send completing before the copy
# ---------------------------------------------------------------------------


class EagerDeferredCopyProgram:
    """Zero-copy eager send racing the sender's buffer reuse.

    The zero-copy data plane (DESIGN.md §14) lets an eager send borrow
    the user's buffer and defer the single copy to match time.  That
    is only sound if the send request completes *at the match* — the
    classic zero-copy race is completing it at post time, which tells
    the sender "your buffer is reusable" while a late-matching
    receiver will still read it.

    Rank 0 posts a zero-copy eager send, waits for completion, then
    scribbles the buffer (legal reuse under MPI semantics); rank 1
    posts its receive at a schedule-chosen later point.  Invariant:
    the receiver observes the original payload, never the scribble.
    :attr:`ProgressEngine._unsafe_complete_eager_at_post` re-opens the
    race.
    """

    def __init__(self, fix_disabled: bool, nbytes: int = 64) -> None:
        import numpy as np

        from repro.mpisim.constants import ThreadLevel
        from repro.mpisim.world import World

        self.np = np
        self.world = World(
            2, ThreadLevel.MULTIPLE, zero_copy=True
        )
        self.world.engines[0]._unsafe_complete_eager_at_post = fix_disabled
        self.nbytes = nbytes
        self.expected = np.arange(nbytes, dtype=np.uint8)
        self.received: Any = None

    def setup(self, sched: Any) -> None:
        np = self.np

        def sender() -> None:
            comm = self.world.comm_world(0)
            buf = self.expected.copy()
            req = comm.isend(buf, 1, tag=3)
            # Bounded completion wait: each pass is one atomic library
            # call (no lock held across a yield), and the schedule
            # decides how the receiver's posting interleaves with it.
            for _ in range(40):
                if req.done:
                    break
                _dst.yield_point("zc.send_wait")
            if req.done:
                # MPI contract: a completed send means the buffer is
                # ours again.  With completion deferred to the match
                # this can never be observed by the receiver.
                buf[:] = 0xEE

        def receiver() -> None:
            comm = self.world.comm_world(1)
            _dst.yield_point("zc.recv_delay")
            rbuf = np.empty(self.nbytes, dtype=np.uint8)
            rreq = comm.irecv(rbuf, 0, tag=3)
            for _ in range(40):
                if rreq.done:
                    break
                comm.engine.progress()
                _dst.yield_point("zc.recv_pump")
            if rreq.done:
                self.received = rbuf.copy()

        sched.spawn(sender, name="sender")
        sched.spawn(receiver, name="receiver")

    def check(self) -> None:
        if self.received is None:
            return  # delivery did not complete within this schedule
        if not (self.received == self.expected).all():
            raise InvariantViolation(
                "receiver observed the sender's post-completion "
                "scribble through a borrowed zero-copy buffer — the "
                "eager send completed before the deferred copy ran"
            )


class AgreeParticipantCrashProgram:
    """Fault-tolerant agreement racing a participant's death.

    The ULFM agreement (``Communicator.agree``, DESIGN.md §15) must
    return the **same** value on every survivor even when a participant
    dies mid-protocol.  The guard doing that work is the decisiveness
    check: a round only decides when no send/receive failed, every
    gathered candidate belonged to this exact round, and every
    participant reported the identical live-mask.

    Here rank 2 ships its round-1 candidate ``0`` to rank 0 *only*,
    then dies at a schedule-chosen point while ranks 0 and 1 run
    ``agree(1)``.  With the guard off
    (:attr:`World._unsafe_agree_trust_first_round`) a rank decides
    after round 1 regardless: schedules where rank 0 still believed
    rank 2 live (it consumes the ``0``, decides ``0``) while rank 1
    already saw it dead (its gather fails, it trusts its own ``1``)
    split-brain the agreement.  With the guard on, the mask mismatch
    and gather failure force re-rounds, and the laggard adopts the
    decider's ``DECIDED`` notice — the values always match.
    """

    def __init__(self, fix_disabled: bool) -> None:
        from repro.mpisim.constants import ThreadLevel
        from repro.mpisim.world import World

        self.world = World(3, ThreadLevel.MULTIPLE)
        self.world._unsafe_agree_trust_first_round = fix_disabled
        self.values: dict[int, int] = {}
        self.complete = False

    def setup(self, sched: Any) -> None:
        from repro.mpisim.communicator import _FT_CAND
        from repro.mpisim.exceptions import MPIError

        def crasher() -> None:
            comm = self.world.comm_world(2)
            # Round-1 candidate 0 to rank 0 only, full live-mask —
            # exactly what a rank that dies between its sends leaves
            # behind.
            comm._ft_send(0, 0, _FT_CAND, 1, 0, 0b111)
            _dst.yield_point("agree.crash_window")
            self.world.mark_rank_dead(
                2, RuntimeError("participant died mid-agreement")
            )

        def participant(rank: int) -> None:
            comm = self.world.comm_world(rank)
            try:
                self.values[rank] = comm.agree(1)
            except MPIError:
                pass  # typed protocol failure: not a split brain

        sched.spawn(crasher, name="crasher")
        sched.spawn(participant, 0, name="agree0")
        sched.spawn(participant, 1, name="agree1")

    def check(self) -> None:
        if len(self.values) < 2:
            return  # a participant did not decide within this schedule
        if self.values[0] != self.values[1]:
            raise InvariantViolation(
                f"split-brain agreement: rank 0 returned "
                f"{self.values[0]}, rank 1 returned {self.values[1]} — "
                f"survivors of one agreement must return one value"
            )


class ShrinkInflightEagerProgram:
    """Revoke racing a zero-copy eager send already in flight.

    ``revoke()`` purges the receiver's unexpected-message queue and
    fails the purged senders' requests — but an envelope still in the
    delivery pipe at purge time arrives *afterwards*.  The drain-time
    revoked check in ``ProgressEngine._handle`` poisons such arrivals
    (failing the sender's request typed); with it off
    (:attr:`ProgressEngine._unsafe_skip_revoked_drain_check`) the
    zero-copy envelope parks in the UMQ forever, nothing can legally
    receive it, and the sender's deferred-completion send request never
    reaches a terminal state — exactly the hang ``shrink`` exists to
    make impossible.

    Rank 0 posts a zero-copy eager send; rank 1 revokes the world
    communicator at a schedule-chosen point; both shrink (the
    fault-management plane ignores revoked guards, so recovery itself
    still runs).  Invariant: after recovery the send request is
    terminal — completed or typed-failed, never limbo.
    """

    def __init__(self, fix_disabled: bool, nbytes: int = 64) -> None:
        import numpy as np

        from repro.mpisim.constants import ThreadLevel
        from repro.mpisim.world import World

        self.np = np
        self.world = World(2, ThreadLevel.MULTIPLE, zero_copy=True)
        self.world.engines[1]._unsafe_skip_revoked_drain_check = (
            fix_disabled
        )
        self.nbytes = nbytes
        self.send_req: Any = None
        self.posted = False
        self.complete = 0

    def setup(self, sched: Any) -> None:
        np = self.np
        from repro.mpisim.exceptions import CommRevokedError, MPIError

        def sender() -> None:
            comm = self.world.comm_world(0)
            buf = np.arange(self.nbytes, dtype=np.uint8)
            try:
                self.send_req = comm.isend(buf, 1, tag=5)
                self.posted = True
            except CommRevokedError:
                pass  # revoke won the race to the post: typed, fine
            for _ in range(40):
                if self.send_req is None or self.send_req.done:
                    break
                comm.engine.progress()
                _dst.yield_point("shrink.send_pump")
            try:
                comm.shrink()
            except MPIError:
                pass
            self.complete += 1

        def revoker() -> None:
            comm = self.world.comm_world(1)
            _dst.yield_point("shrink.revoke_delay")
            comm.revoke()
            for _ in range(40):
                comm.engine.progress()
                _dst.yield_point("shrink.revoke_pump")
                if self.posted and (
                    self.send_req is None or self.send_req.done
                ):
                    break
            try:
                comm.shrink()
            except MPIError:
                pass
            self.complete += 1

        sched.spawn(sender, name="sender")
        sched.spawn(revoker, name="revoker")

    def check(self) -> None:
        if self.complete < 2:
            return  # recovery did not finish within this schedule
        if self.send_req is not None and not self.send_req.done:
            raise InvariantViolation(
                "zero-copy eager send request still in limbo after "
                "revoke + shrink: the envelope arrived after the "
                "revoke purge and parked in the UMQ with no drain-time "
                "poisoning"
            )


# ---------------------------------------------------------------------------
# Regression races 11/12: continuation completion (serving PR)
# ---------------------------------------------------------------------------


class _DoneInnerRequest:
    """Inner request that is already complete when the engine tracks
    it: `_track` short-circuits straight into `_finish`."""

    done = True
    status = None
    error = None


class _ContComm:
    """``cmd.comm`` stand-in whose isend completes immediately."""

    @staticmethod
    def isend(buf: Any, peer: int, tag: int) -> _DoneInnerRequest:
        return _DoneInnerRequest()


class ContinuationCrashProgram:
    """Continuations registered on slot commands vs. an engine crash.

    A producer allocates slots, registers a continuation on each
    handle, and submits ISEND commands while a virtual engine thread
    runs the real drain + dispatch path; the scheduler may fire the
    ``engine.dispatch`` crash point under any command.  Invariant:
    every accepted command's continuation fires **exactly once** —
    success and crash (``_fail_pending`` → ``pool.fail``) are both
    firing paths.  With the fail-path delivery disabled
    (:attr:`OffloadRequestPool._unsafe_skip_fire_on_fail`), a crash
    leaves continuations undelivered: the asyncio awaiters they stand
    for would hang forever.
    """

    def __init__(self, fix_disabled: bool, n_commands: int = 4) -> None:
        self.engine = OffloadEngine(
            _FakeComm(),
            pool_capacity=8,
            queue_capacity=16,
            telemetry=False,
            pool_cache=0,
        )
        self.engine.pool._unsafe_skip_fire_on_fail = fix_disabled
        self.n_commands = n_commands
        #: one fire-record per accepted command
        self.fires: list[list[int]] = []
        self._submitted_all = False
        self._comm = _ContComm()

    def setup(self, sched: Any) -> None:
        eng = self.engine
        pool = eng.pool

        def producer() -> None:
            try:
                for i in range(self.n_commands):
                    idx = pool.alloc()
                    handle = OffloadRequest(pool, idx)
                    record: list[int] = []
                    handle.add_continuation(
                        lambda r=record: r.append(1)
                    )
                    cmd = Command(
                        CommandKind.ISEND,
                        comm=self._comm,
                        buf=None,
                        peer=0,
                        tag=i,
                        slot=idx,
                    )
                    try:
                        eng.submit(cmd)
                    except OffloadEngineDied:
                        return
                    self.fires.append(record)
            finally:
                self._submitted_all = True

        def engine_thread() -> None:
            # Same cooperative drain/dispatch loop as the
            # mid-batch-crash target, crash handling mirroring _run.
            try:
                while True:
                    batch = eng.queue.drain(eng.batch_size)
                    if batch:
                        eng._drained.extend(batch)
                        eng._process_batch()
                        continue
                    if self._submitted_all and eng.queue.empty():
                        return
                    _dst.wait_until(
                        lambda: self._submitted_all
                        or not eng.queue.empty()
                    )
            except _dst.ScheduledCrash as exc:
                died = OffloadEngineDied(
                    f"offload thread crashed: {exc!r}"
                )
                died.__cause__ = exc
                eng._dead = died
                eng._fail_pending(died)

        sched.spawn(engine_thread, name="engine")
        sched.spawn(producer, name="producer")

    def check(self) -> None:
        for i, record in enumerate(self.fires):
            if len(record) != 1:
                raise InvariantViolation(
                    f"accepted command #{i}'s continuation fired "
                    f"{len(record)} times (expected exactly once) — "
                    "its awaiter "
                    + (
                        "hangs forever"
                        if not record
                        else "was woken twice"
                    )
                )


class ContinuationDoubleFireProgram:
    """Registration racing completion over the exactly-once claim.

    One thread registers a continuation on a live handle while another
    completes the slot.  Both sides can legitimately reach the fire
    path (the registrant when it observes the flag already set, the
    completer when it observes a registered continuation); the
    ``cont_fired`` claim under ``cont_lock`` is what collapses them to
    one delivery.  With the claim skipped
    (:attr:`OffloadRequestPool._unsafe_skip_fire_once_guard`), the
    overlap window delivers twice.  Invariant: once both threads have
    finished, the continuation fired exactly once.
    """

    def __init__(self, fix_disabled: bool) -> None:
        self.pool = OffloadRequestPool(capacity=4, cache_size=0)
        self.pool._unsafe_skip_fire_once_guard = fix_disabled
        self.idx = self.pool.alloc()
        self.handle = OffloadRequest(self.pool, self.idx)
        self.fired: list[int] = []

    def setup(self, sched: Any) -> None:
        def registrant() -> None:
            self.handle.add_continuation(lambda: self.fired.append(1))

        def completer() -> None:
            self.pool.complete(self.idx, None)

        sched.spawn(registrant, name="registrant")
        sched.spawn(completer, name="completer")

    def check(self) -> None:
        if len(self.fired) != 1:
            raise InvariantViolation(
                f"continuation fired {len(self.fired)} times (expected "
                "exactly once: registration either beats the completer "
                "or fires immediately on the already-set flag; the "
                "claim must suppress the second delivery)"
            )
        # The delivery happened (exactly once), so nothing may be
        # reported as dropped: the losing fire attempt is silent.
        if self.pool.continuation_drops > 0:
            raise InvariantViolation(
                f"{self.pool.continuation_drops} continuation drops "
                "recorded although the delivery happened"
            )


# ---------------------------------------------------------------------------
# Linearizability targets (history-recording programs)
# ---------------------------------------------------------------------------


def _record(history: History, op: str, args: tuple, fn: Callable[[], Any]):
    """Run ``fn`` as one recorded operation interval."""
    rec = history.invoke(op, args)
    result = fn()
    history.respond(rec, result)
    return result


class QueueLinearizabilityProgram:
    """Concurrent MPSCQueue history checked against :class:`QueueSpec`.

    Empty-dequeue probes are *not* recorded: on a Vyukov-style ticket
    queue, emptiness is only quiescently consistent — a consumer can
    observe "empty" while a *completed* enqueue sits behind an earlier
    claimed-but-unpublished ticket (the DST oracle rediscovers this in
    a few dozen schedules if the probes are recorded).  What is checked
    is the linearizability of the delivered sub-history: every
    successful enqueue/dequeue in FIFO order with no loss, duplication,
    or reordering.
    """

    def __init__(
        self, n_producers: int = 2, items_per_producer: int = 2
    ) -> None:
        self.queue: MPSCQueue[str] = MPSCQueue(4)
        self.history = History()
        self.spec = QueueSpec(capacity=4)
        self.n_producers = n_producers
        self.items = items_per_producer

    def _enqueue(self, value: str) -> str:
        try:
            self.queue.enqueue(value)
        except QueueFull:
            return "full"
        except QueueClosed:
            return "closed"
        return "ok"

    def setup(self, sched: Any) -> None:
        total = self.n_producers * self.items

        def producer(pid: int) -> None:
            for i in range(self.items):
                value = f"p{pid}i{i}"
                _record(
                    self.history,
                    "enqueue",
                    (value,),
                    lambda v=value: self._enqueue(v),
                )

        def consumer() -> None:
            # One attempt per produced item plus slack for empty polls:
            # bounded, so exhaustive exploration stays finite.  Empty
            # probes are discarded (weak emptiness; see class docs).
            for _ in range(total + 2):
                rec = self.history.invoke("dequeue", ())
                result = self.queue.try_dequeue()
                if result[0]:
                    self.history.respond(rec, result)
                else:
                    self.history.discard(rec)

        for pid in range(self.n_producers):
            sched.spawn(producer, pid, name=f"producer{pid}")
        sched.spawn(consumer, name="consumer")

    def check(self) -> None:
        """Linearizability is checked by the explorer via history/spec."""


class FreeListLinearizabilityProgram:
    """Concurrent FreeList alloc/free history vs :class:`FreeListSpec`."""

    def __init__(self, n_threads: int = 2, cycles: int = 2) -> None:
        self.freelist: FreeList[None] = FreeList(2)
        self.history = History()
        self.spec = FreeListSpec(2)
        self.n_threads = n_threads
        self.cycles = cycles

    def _alloc(self):
        try:
            return self.freelist.alloc()
        except FreeListExhausted:
            return "exhausted"

    def _free(self, idx: int) -> str:
        try:
            self.freelist.free(idx)
        except DoubleFree:
            return "double_free"
        return "ok"

    def setup(self, sched: Any) -> None:
        def worker(wid: int) -> None:
            for _ in range(self.cycles):
                idx = _record(self.history, "alloc", (), self._alloc)
                if idx == "exhausted":
                    continue
                _record(
                    self.history,
                    "free",
                    (idx,),
                    lambda i=idx: self._free(i),
                )

        for wid in range(self.n_threads):
            sched.spawn(worker, wid, name=f"worker{wid}")

    def check(self) -> None:
        """Linearizability is checked by the explorer via history/spec."""


class RequestPoolLinearizabilityProgram:
    """Request-pool alloc/release accounting vs :class:`RequestPoolSpec`.

    Runs with per-thread slot caching enabled, so the batched-refill
    (``alloc_batch``) and cache-spill paths are the ones explored.
    """

    def __init__(self, n_threads: int = 2, cycles: int = 2) -> None:
        self.pool = OffloadRequestPool(capacity=3, cache_size=2)
        self.history = History()
        self.spec = RequestPoolSpec(3)
        self.n_threads = n_threads
        self.cycles = cycles

    def _alloc(self):
        try:
            return self.pool.alloc()
        except FreeListExhausted:
            return "exhausted"

    def _release(self, idx: int) -> str:
        self.pool.release(idx)
        return "ok"

    def setup(self, sched: Any) -> None:
        def worker(wid: int) -> None:
            for _ in range(self.cycles):
                idx = _record(self.history, "alloc", (), self._alloc)
                if idx == "exhausted":
                    continue
                _record(
                    self.history,
                    "release",
                    (idx,),
                    lambda i=idx: self._release(i),
                )

        for wid in range(self.n_threads):
            sched.spawn(worker, wid, name=f"worker{wid}")

    def check(self) -> None:
        """Linearizability is checked by the explorer via history/spec."""


# ---------------------------------------------------------------------------
# Corpus registry + runner
# ---------------------------------------------------------------------------


@dataclass
class Target:
    """One corpus entry: how to build and explore a program."""

    name: str
    description: str
    #: program factory; regression targets take ``fix_disabled``
    make: Callable[..., Any]
    #: True for the three guarded-fix regression races
    regression: bool
    #: default exploration strategy (every target also supports the
    #: others; exhaustive only where the schedule tree is small enough)
    strategy: str = "exhaustive"
    schedules: int = 2000
    max_steps: int = 20_000


CORPUS: dict[str, Target] = {
    t.name: t
    for t in [
        Target(
            name="queue-close-enqueue",
            description=(
                "MPSCQueue close() racing a producer's post-CAS "
                "publish (silently lost command)"
            ),
            make=CloseEnqueueProgram,
            regression=True,
        ),
        Target(
            name="freelist-double-free",
            description=(
                "two frees of one FreeList slot racing the ownership "
                "ledger (list cycle, duplicate allocs)"
            ),
            make=DoubleFreeProgram,
            regression=True,
        ),
        Target(
            name="engine-mid-batch-crash",
            description=(
                "engine crash mid-_process_batch dropping the drained "
                "tail (hung waiters)"
            ),
            make=MidBatchCrashProgram,
            regression=True,
            strategy="random",
            schedules=400,
        ),
        Target(
            name="steal-vs-submit",
            description=(
                "thief ignoring the dispatch_busy/steal_pending gates "
                "issues ring batches out of order"
            ),
            make=StealSubmitRaceProgram,
            regression=True,
            strategy="random",
            schedules=300,
        ),
        Target(
            name="steal-vs-close",
            description=(
                "unclaimed steal racing close()+drain_closed() over "
                "one dequeue cursor (duplicate/lost delivery)"
            ),
            make=StealCloseRaceProgram,
            regression=True,
            strategy="random",
            schedules=400,
        ),
        Target(
            name="shard-crash-stolen-work",
            description=(
                "thief crash mid-stolen-batch leaking steal_pending "
                "(victim ring wedged forever)"
            ),
            make=ShardCrashStolenWorkProgram,
            regression=True,
            strategy="random",
            schedules=300,
        ),
        Target(
            name="routing-order",
            description=(
                "router stickiness ignored: one same-(dest,tag) send "
                "stream split over two shards and reordered"
            ),
            make=RoutingOrderProgram,
            regression=True,
            strategy="random",
            schedules=200,
        ),
        Target(
            name="eager-deferred-copy",
            description=(
                "zero-copy eager send completed at post time: sender's "
                "buffer reuse races the deferred match-time copy"
            ),
            make=EagerDeferredCopyProgram,
            regression=True,
            strategy="random",
            schedules=200,
        ),
        Target(
            name="agree-participant-crash",
            description=(
                "participant death mid-agreement vs the decisiveness "
                "guard (split-brain agree values)"
            ),
            make=AgreeParticipantCrashProgram,
            regression=True,
            strategy="random",
            schedules=300,
        ),
        Target(
            name="shrink-inflight-eager",
            description=(
                "zero-copy eager arrival after the revoke purge vs "
                "the drain-time check (send request in limbo forever)"
            ),
            make=ShrinkInflightEagerProgram,
            regression=True,
            strategy="random",
            schedules=300,
        ),
        Target(
            name="continuation-vs-crash",
            description=(
                "engine crash vs the fail-path continuation delivery "
                "(registered continuations never fire; awaiters hang)"
            ),
            make=ContinuationCrashProgram,
            regression=True,
            strategy="random",
            schedules=400,
        ),
        Target(
            name="continuation-double-fire",
            description=(
                "continuation registration racing completion over the "
                "exactly-once claim (double delivery)"
            ),
            make=ContinuationDoubleFireProgram,
            regression=True,
            strategy="random",
            schedules=300,
        ),
        Target(
            name="queue-linearizability",
            description=(
                "MPSCQueue enqueue/dequeue history vs the sequential "
                "FIFO spec"
            ),
            make=QueueLinearizabilityProgram,
            regression=False,
            strategy="random",
            schedules=150,
        ),
        Target(
            name="freelist-linearizability",
            description=(
                "FreeList alloc/free history vs the sequential pool "
                "spec"
            ),
            make=FreeListLinearizabilityProgram,
            regression=False,
            strategy="random",
            schedules=150,
        ),
        Target(
            name="pool-linearizability",
            description=(
                "request-pool alloc/release (cached, batch-refilled) "
                "history vs the sequential pool spec"
            ),
            make=RequestPoolLinearizabilityProgram,
            regression=False,
            strategy="random",
            schedules=100,
        ),
    ]
}


@dataclass
class TargetOutcome:
    """Result of exploring one corpus target in one fix configuration."""

    target: str
    fix_disabled: bool
    result: ExplorationResult
    #: did the exploration behave as the corpus demands?
    expected: bool = field(init=False)

    def __post_init__(self) -> None:
        # Fix disabled -> the explorer must rediscover the race.
        # Fix enabled (or oracle target) -> it must find nothing.
        self.expected = self.result.found == self.fix_disabled


def run_target(
    name: str,
    fix_disabled: bool = False,
    seed: int = 0,
    schedules: int | None = None,
    strategy: str | None = None,
    counters: Any = None,
    verbose: bool = False,
) -> TargetOutcome:
    """Explore one corpus target; see :class:`TargetOutcome`."""
    target = CORPUS[name]
    if target.regression:
        make = lambda: target.make(fix_disabled)  # noqa: E731
    else:
        if fix_disabled:
            raise ValueError(
                f"{name} is an oracle target; it has no fix to disable"
            )
        make = target.make
    explorer = Explorer(
        make,
        strategy=strategy or target.strategy,
        schedules=schedules or target.schedules,
        seed=seed,
        max_steps=target.max_steps,
        counters=counters,
        verbose=verbose,
    )
    return TargetOutcome(
        target=name, fix_disabled=fix_disabled, result=explorer.run()
    )


def run_corpus(
    seed: int = 0,
    schedules: int | None = None,
    strategy: str | None = None,
    counters: Any = None,
) -> list[TargetOutcome]:
    """Self-check the whole corpus.

    Every regression target is explored twice — fix disabled (the race
    must be rediscovered) and fix enabled (the schedule budget must
    pass clean) — and every oracle target once.  The harness is only
    trusted if *both* directions hold: finding planted bugs and not
    crying wolf on fixed code.
    """
    outcomes: list[TargetOutcome] = []
    for name, target in CORPUS.items():
        if target.regression:
            outcomes.append(
                run_target(
                    name,
                    fix_disabled=True,
                    seed=seed,
                    schedules=schedules,
                    strategy=strategy,
                    counters=counters,
                )
            )
        outcomes.append(
            run_target(
                name,
                fix_disabled=False,
                seed=seed,
                schedules=schedules,
                strategy=strategy,
                counters=counters,
            )
        )
    return outcomes
