"""Schedule-exploration strategies for the DST scheduler.

A strategy answers two questions, over and over, for the scheduler:

* :meth:`Strategy.pick_index` — which runnable virtual thread advances
  next (an index into the runnable list, which the scheduler presents
  in deterministic spawn order);
* :meth:`Strategy.pick_bool` — does this crash point fire.

Everything else about a run is deterministic, so the sequence of these
answers *is* the schedule.  Three strategies are provided:

``RandomWalkStrategy``
    Uniform random choices from one seeded ``random.Random``.  The
    workhorse: cheap, unbiased, and replayable from its seed.

``PCTStrategy``
    Probabilistic Concurrency Testing (Burckhardt et al., ASPLOS'10):
    assign each thread a random priority, always run the
    highest-priority runnable thread, and demote the running thread at
    ``depth - 1`` randomly chosen steps.  For a bug of depth *d* this
    gives a provable detection probability per run of at least
    ``1/(n * k^(d-1))`` — far better than random walk for ordering
    bugs — while staying replayable from its seed.

``ExhaustiveStrategy``
    Depth-first enumeration of *every* schedule, for small bounded
    programs: the choice sequence is treated as an odometer and
    advanced run by run until the tree is exhausted.  The replay token
    is the decision path itself.

A recorded decision path can be replayed exactly with
:class:`FixedPathStrategy`, regardless of which strategy produced it.
"""

from __future__ import annotations

from random import Random
from typing import Any


class Strategy:
    """Interface the scheduler drives.  Subclasses must be
    deterministic functions of their constructor arguments and the
    sequence of calls made to them."""

    #: replay token type tag (see :meth:`token`)
    kind = "abstract"

    def begin_run(self) -> None:
        """Reset per-run state (called once before each schedule)."""

    def pick_index(self, runnable_tids: list[int]) -> int:
        """Index into ``runnable_tids`` of the thread to advance."""
        raise NotImplementedError

    def pick_bool(self, site: str) -> bool:
        """Crash-point decision at ``site``."""
        raise NotImplementedError

    def next_run(self) -> bool:
        """Advance to the next schedule; False when exploration is done.

        Unbounded strategies (random, PCT) always return True — the
        explorer's schedule budget bounds them.
        """
        return True

    def token(self) -> tuple:
        """Replay token for the *current* run (printed on failure)."""
        raise NotImplementedError


class RandomWalkStrategy(Strategy):
    """Uniform random schedule choices from a single seed."""

    kind = "random"

    def __init__(self, seed: int, crash_probability: float = 0.5) -> None:
        self.seed = seed
        self.crash_probability = crash_probability
        self._rng = Random(seed)

    def begin_run(self) -> None:
        self._rng = Random(self.seed)

    def pick_index(self, runnable_tids: list[int]) -> int:
        if len(runnable_tids) == 1:
            return 0
        return self._rng.randrange(len(runnable_tids))

    def pick_bool(self, site: str) -> bool:
        return self._rng.random() < self.crash_probability

    def token(self) -> tuple:
        return ("random", self.seed)


class PCTStrategy(Strategy):
    """Priority-based probabilistic concurrency testing.

    Parameters
    ----------
    seed:
        Seeds thread priorities, priority-change points, and crash
        decisions.
    depth:
        Targeted bug depth *d*: ``d - 1`` priority-change points are
        planted per run.
    expected_steps:
        Horizon *k* the change points are sampled from (should be of
        the order of the program's step count).
    """

    kind = "pct"

    def __init__(
        self,
        seed: int,
        depth: int = 3,
        expected_steps: int = 512,
        crash_probability: float = 0.5,
    ) -> None:
        if depth < 1:
            raise ValueError("depth must be >= 1")
        self.seed = seed
        self.depth = depth
        self.expected_steps = max(2, expected_steps)
        self.crash_probability = crash_probability
        self._rng = Random(seed)
        self._prio: dict[int, float] = {}
        self._changes: set[int] = set()
        self._step = 0
        self._demote_floor = 0.0

    def begin_run(self) -> None:
        self._rng = Random(self.seed)
        self._prio = {}
        self._step = 0
        self._demote_floor = 0.0
        n_changes = min(self.depth - 1, self.expected_steps - 1)
        self._changes = (
            set(self._rng.sample(range(1, self.expected_steps), n_changes))
            if n_changes > 0
            else set()
        )

    def _priority(self, tid: int) -> float:
        p = self._prio.get(tid)
        if p is None:
            p = self._rng.random()
            self._prio[tid] = p
        return p

    def pick_index(self, runnable_tids: list[int]) -> int:
        self._step += 1
        best = max(
            range(len(runnable_tids)),
            key=lambda i: self._priority(runnable_tids[i]),
        )
        if self._step in self._changes:
            # Demote the thread that would have run: give it a priority
            # strictly below every priority handed out so far.
            self._demote_floor -= 1.0
            self._prio[runnable_tids[best]] = self._demote_floor
            best = max(
                range(len(runnable_tids)),
                key=lambda i: self._priority(runnable_tids[i]),
            )
        return best

    def pick_bool(self, site: str) -> bool:
        return self._rng.random() < self.crash_probability

    def token(self) -> tuple:
        return ("pct", self.seed, self.depth)


class ExhaustiveStrategy(Strategy):
    """DFS over the full schedule tree of a bounded program.

    Each decision (thread choice or crash bool) is a node; the path of
    decisions taken this run is kept as ``[chosen, n_options]`` pairs.
    :meth:`next_run` advances the deepest branch with unexplored
    alternatives (odometer-style) and prunes exhausted suffixes, so
    every schedule of a deterministic bounded program is visited
    exactly once.
    """

    kind = "exhaustive"

    def __init__(self) -> None:
        self._path: list[list[int]] = []  # [chosen, n_options]
        self._pos = 0
        self.runs = 0

    def begin_run(self) -> None:
        self._pos = 0
        self.runs += 1

    def _choose(self, n_options: int) -> int:
        if n_options <= 1:
            # Forced move: not a tree node (recording it would inflate
            # the DFS tree with branchless depth).  FixedPathStrategy
            # skips these identically, so tokens replay across both.
            return 0
        if self._pos < len(self._path):
            choice, recorded_n = self._path[self._pos]
            # A deterministic program presents the same option count at
            # the same path position; clamp defensively anyway.
            if choice >= n_options:
                choice = n_options - 1
                self._path[self._pos][0] = choice
            self._path[self._pos][1] = n_options
        else:
            self._path.append([0, n_options])
            choice = 0
        self._pos += 1
        return choice

    def pick_index(self, runnable_tids: list[int]) -> int:
        return self._choose(len(runnable_tids))

    def pick_bool(self, site: str) -> bool:
        return bool(self._choose(2))

    def next_run(self) -> bool:
        # Drop decisions below the last run's frontier, then advance
        # the deepest decision with remaining alternatives.
        del self._path[self._pos :]
        while self._path:
            last = self._path[-1]
            if last[0] + 1 < last[1]:
                last[0] += 1
                return True
            self._path.pop()
        return False

    def token(self) -> tuple:
        return ("path", tuple(choice for choice, _ in self._path[: self._pos]))


class FixedPathStrategy(Strategy):
    """Replay a recorded decision path exactly.

    Decisions beyond the recorded path fall back to "first runnable" /
    "no crash", which is only reached if the program changed since the
    recording.
    """

    kind = "path"

    def __init__(self, path: "tuple[int, ...] | list[int]") -> None:
        self.path = tuple(int(c) for c in path)
        self._pos = 0

    def begin_run(self) -> None:
        self._pos = 0

    def _next(self, n_options: int) -> int:
        if n_options <= 1:
            return 0  # forced move; never recorded (see ExhaustiveStrategy)
        if self._pos < len(self.path):
            choice = min(self.path[self._pos], n_options - 1)
        else:
            choice = 0
        self._pos += 1
        return choice

    def pick_index(self, runnable_tids: list[int]) -> int:
        return self._next(len(runnable_tids))

    def pick_bool(self, site: str) -> bool:
        return bool(self._next(2))

    def token(self) -> tuple:
        return ("path", self.path)


def strategy_from_token(token: "tuple | int | list") -> Strategy:
    """Rebuild the strategy a failure token names.

    Accepts a bare integer (random-walk seed — the common "seed printed
    on failure" form), or a ``(kind, ...)`` tuple as produced by
    :meth:`Strategy.token`.
    """
    if isinstance(token, int):
        return RandomWalkStrategy(token)
    kind = token[0]
    if kind == "random":
        return RandomWalkStrategy(int(token[1]))
    if kind == "pct":
        depth = int(token[2]) if len(token) > 2 else 3
        return PCTStrategy(int(token[1]), depth=depth)
    if kind == "path":
        return FixedPathStrategy(tuple(token[1]))
    raise ValueError(f"unknown strategy token {token!r}")
