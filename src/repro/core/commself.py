"""The *comm-self* progress thread (paper §2.2) — a comparison point.

A dedicated thread duplicates ``MPI_COMM_SELF`` and posts a blocking
receive for which no send will ever arrive.  Because a blocking receive
continuously drives the progress engine while it waits, the thread
keeps the MPI progress engine hot, providing asynchronous progress for
the application's nonblocking operations.

Costs faithfully reproduced from the paper:

* the world must be initialized with ``MPI_THREAD_MULTIPLE`` (the app's
  master thread and this thread are both inside MPI), bringing
  library-lock contention with it — the engine counts it;
* one hardware thread is consumed;
* the master thread still pays its own full MPI call costs, so load
  imbalance is *not* improved (§2.2).
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

import numpy as np

from repro.mpisim.constants import ThreadLevel
from repro.mpisim.exceptions import ThreadLevelError

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpisim.communicator import Communicator

#: Internal tag for the never-matched receive.
_SENTINEL_TAG = 0


class CommSelfProgressThread:
    """Progress thread driving MPI via a never-completing self receive."""

    def __init__(self, comm: "Communicator") -> None:
        if comm.world.thread_level < ThreadLevel.MULTIPLE:
            raise ThreadLevelError(
                "the comm-self approach requires MPI_THREAD_MULTIPLE "
                f"(world has {comm.world.thread_level.name})"
            )
        self._comm = comm
        self._self_comm = comm.world.comm_self(comm.engine.rank)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.progress_pumps = 0

    def start(self) -> "CommSelfProgressThread":
        if self._thread is not None:
            raise RuntimeError("comm-self thread already started")
        self._thread = threading.Thread(
            target=self._run,
            name=f"comm-self-rank-{self._comm.engine.rank}",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self, timeout: float = 10.0) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout)
        if self._thread.is_alive():  # pragma: no cover - watchdog
            raise RuntimeError("comm-self thread failed to stop")
        self._thread = None

    def __enter__(self) -> "CommSelfProgressThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def _run(self) -> None:
        """Post the sentinel receive and sit in its wait loop.

        The wait loop's repeated ``progress()`` pumps are exactly what
        keeps rendezvous handshakes and NBC schedules moving while
        application threads compute.
        """
        sink = np.empty(1, dtype=np.uint8)
        req = self._self_comm.irecv(sink, source=0, tag=_SENTINEL_TAG)
        engine = self._comm.engine
        while not self._stop.is_set():
            # Blocking-receive progress: identical effect to sitting in
            # MPI_Recv, but interruptible for clean shutdown.
            engine.progress()
            self.progress_pumps += 1
            if req.done:  # pragma: no cover - nothing ever sends this
                break
            self._stop.wait(2e-5)
        req.cancel()
