"""The *iprobe* progress approach (paper §2.1) — a comparison point.

The master thread sprinkles ``MPI_Iprobe()`` calls into its compute
loops so the MPI progress engine runs periodically.  This buys some
communication/computation overlap but (a) the probe time itself adds
to the master thread's load, worsening imbalance, and (b) placement and
frequency are notoriously hard to tune — both effects the functional
benchmarks and the performance model reproduce.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.mpisim.constants import ANY_SOURCE, ANY_TAG

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpisim.communicator import Communicator


def progress_hook(
    comm: "Communicator", every: int = 1
) -> Callable[[], None]:
    """Build the ``PROGRESS`` hook of the paper's Listing 1.

    Returns a zero-argument callable the application inserts into its
    inner loops; every ``every``-th invocation issues an ``iprobe``
    (which pumps the progress engine).  ``hook.calls`` and
    ``hook.probes`` expose how much master-thread time the approach
    consumed — its hidden cost.
    """
    if every < 1:
        raise ValueError("'every' must be >= 1")
    state = {"n": 0, "probes": 0}

    def hook() -> None:
        state["n"] += 1
        if state["n"] % every == 0:
            comm.iprobe(ANY_SOURCE, ANY_TAG)
            state["probes"] += 1

    def calls() -> int:
        return state["n"]

    def probes() -> int:
        return state["probes"]

    hook.calls = calls  # type: ignore[attr-defined]
    hook.probes = probes  # type: ignore[attr-defined]
    return hook
