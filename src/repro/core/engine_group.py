"""Multiple offload threads per rank — the paper's §7 future work.

The paper closes: replacing MPI with endpoint-capable low-level APIs
"will allow us to use multiple threads for software offload".  This
module provides that architecture on the substrate: an
:class:`OffloadEngineGroup` runs N offload engines (each a dedicated
thread with its own lock-free command queue and request pool) behind
one communicator facade.

Application threads are assigned an engine *stickily by thread
identity*, which preserves exactly the ordering MPI guarantees under
``MPI_THREAD_MULTIPLE`` (per-thread program order; no cross-thread
ordering), while spreading command-processing and progress work over
the group.

Honesty note: on this substrate the per-rank progress engine has a
single library lock standing in for the endpoint, so the group's
engines contend there — the same reason the paper needs endpoint APIs
before multiple offload threads pay off.  The group is still the
correct architecture to demonstrate: dispatch parallelism, per-thread
ordering, and lifecycle all behave as the paper describes.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

from repro.core.engine import OffloadEngine
from repro.mpisim.constants import ThreadLevel
from repro.mpisim.exceptions import ThreadLevelError

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpisim.communicator import Communicator


class OffloadEngineGroup:
    """N offload engines behind one ``route()`` interface.

    Drop-in wherever a single :class:`OffloadEngine` is used (the
    facade calls ``route()`` to pick the engine for the current
    thread; a bare engine's ``route()`` returns itself).
    """

    def __init__(
        self,
        comm: "Communicator",
        nthreads: int = 2,
        pool_capacity: int = 4096,
        queue_capacity: int = 4096,
        telemetry: bool | None = None,
        faults=None,
        recovery=None,
        batch_size: int | None = None,
        coalesce_eager: bool = False,
        pool_cache: int | None = None,
    ) -> None:
        if nthreads < 1:
            raise ValueError("nthreads must be >= 1")
        if nthreads > 1 and comm.world.thread_level < ThreadLevel.MULTIPLE:
            raise ThreadLevelError(
                "multiple offload threads enter MPI concurrently; the "
                "world must be MPI_THREAD_MULTIPLE"
            )
        engine_kwargs: dict = {}
        if batch_size is not None:
            engine_kwargs["batch_size"] = batch_size
        if pool_cache is not None:
            engine_kwargs["pool_cache"] = pool_cache
        self.comm = comm
        self.engines = [
            OffloadEngine(
                comm,
                pool_capacity=pool_capacity,
                queue_capacity=queue_capacity,
                telemetry=telemetry,
                faults=faults,
                recovery=recovery,
                coalesce_eager=coalesce_eager,
                **engine_kwargs,
            )
            for _ in range(nthreads)
        ]
        self._assign_lock = threading.Lock()
        self._assignment: dict[int, int] = {}
        self._next = 0

    # -- facade interface ---------------------------------------------------

    def route(self) -> OffloadEngine:
        """The engine serving the calling application thread.

        Sticky round-robin: a thread keeps its engine for life, so its
        operations retain program order (the MPI_THREAD_MULTIPLE
        ordering contract).
        """
        ident = threading.get_ident()
        idx = self._assignment.get(ident)
        if idx is None:
            with self._assign_lock:
                idx = self._assignment.setdefault(
                    ident, self._next % len(self.engines)
                )
                self._next += 1
        return self.engines[idx]

    # Compatibility surface with a single engine (stats/inspection).
    @property
    def pool(self):
        return self.route().pool

    @property
    def queue(self):
        return self.route().queue

    @property
    def telemetry(self):
        """The routed engine's telemetry bundle (facade compatibility)."""
        return self.route().telemetry

    def stats(self) -> dict[str, int]:
        """Aggregated statistics across the group (sums; maxima for
        ``*_hwm`` high-water marks)."""
        total: dict[str, int] = {}
        for e in self.engines:
            for k, v in e.stats().items():
                if k.endswith("_hwm") or k.startswith("max_"):
                    total[k] = max(total.get(k, 0), v)
                else:
                    total[k] = total.get(k, 0) + v
        total["engines"] = len(self.engines)
        return total

    def telemetry_snapshot(self, include_trace: bool = False) -> dict:
        """Merged structured snapshot across the group's engines."""
        from repro import obs

        return obs.merge(
            [
                e.telemetry_snapshot(include_trace=include_trace)
                for e in self.engines
            ]
        )

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "OffloadEngineGroup":
        started = []
        try:
            for e in self.engines:
                e.start()
                started.append(e)
        except BaseException:
            for e in started:
                e.abort("group start failed")
            raise
        return self

    def stop(self, timeout: float = 30.0) -> None:
        errors = []
        for e in self.engines:
            try:
                e.stop(timeout=timeout)
            except RuntimeError as exc:  # pragma: no cover - watchdog
                errors.append(exc)
                e.abort("group stop escalation")
        if errors:  # pragma: no cover
            raise errors[0]

    def __enter__(self) -> "OffloadEngineGroup":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
