"""Multiple offload threads per rank — the paper's §7 future work.

The paper closes: replacing MPI with endpoint-capable low-level APIs
"will allow us to use multiple threads for software offload".  This
module provides that architecture on the substrate as the historical
thread-sticky specialization of the general
:class:`~repro.core.engine_pool.EnginePool`: N offload engines behind
one communicator facade, with application threads assigned an engine
*stickily by thread identity*.  That policy preserves exactly the
ordering MPI guarantees under ``MPI_THREAD_MULTIPLE`` (per-thread
program order; no cross-thread ordering), while spreading
command-processing and progress work over the group.

Work stealing and autoscaling are deliberately off here: the group
predates them and its contract is the plain sticky spread.  Use
:class:`EnginePool` directly (or the ``pool_size``/``router`` knobs of
:func:`~repro.core.interpose.offloaded`) for the routed, stealing,
elastic pool.

Honesty note: on this substrate the per-rank progress engine has a
single library lock standing in for the endpoint, so the group's
engines contend there — the same reason the paper needs endpoint APIs
before multiple offload threads pay off.  The group is still the
correct architecture to demonstrate: dispatch parallelism, per-thread
ordering, and lifecycle all behave as the paper describes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.engine_pool import EnginePool

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpisim.communicator import Communicator


class OffloadEngineGroup(EnginePool):
    """N thread-sticky offload engines behind one ``route()`` interface.

    Drop-in wherever a single :class:`~repro.core.engine.OffloadEngine`
    is used (the facade calls ``route()`` to pick the engine for the
    current thread; a bare engine's ``route()`` returns itself).
    """

    def __init__(
        self,
        comm: "Communicator",
        nthreads: int = 2,
        pool_capacity: int = 4096,
        queue_capacity: int = 4096,
        telemetry: bool | None = None,
        faults=None,
        recovery=None,
        batch_size: int | None = None,
        coalesce_eager: bool = False,
        pool_cache: int | None = None,
    ) -> None:
        if nthreads < 1:
            raise ValueError("nthreads must be >= 1")
        super().__init__(
            comm,
            pool_size=nthreads,
            router="thread",
            steal_threshold=None,
            autoscale=False,
            pool_capacity=pool_capacity,
            queue_capacity=queue_capacity,
            telemetry=telemetry,
            faults=faults,
            recovery=recovery,
            batch_size=batch_size,
            coalesce_eager=coalesce_eager,
            pool_cache=pool_cache,
        )
