"""Thread-groups support for ``MPI_THREAD_MULTIPLE`` experiments.

Paper §5.1 (Figure 12) uses the authors' earlier *thread-groups*
library [33]: the threads of a rank are partitioned into groups, each
group communicating independently to increase compute/communication
parallelism.  The ingredients reproduced here:

* :func:`make_thread_comms` — one duplicated communicator per thread
  group, so concurrent traffic from different groups can never match
  across groups (the role the library's per-group channels play);
* :class:`ThreadGroupRunner` — spawns the per-rank worker threads and
  runs a group program on each, collecting results/exceptions.

With a plain communicator this exercises the substrate's
``THREAD_MULTIPLE`` path (library-lock contention and all); with an
:class:`~repro.core.offload_comm.OffloadCommunicator` the same program
enqueues concurrently onto the lock-free command queue — the paper's
6X-latency comparison in Figure 6.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Sequence

from repro.mpisim.constants import ThreadLevel
from repro.mpisim.exceptions import ThreadLevelError


def make_thread_comms(comm: Any, nthreads: int) -> list[Any]:
    """Duplicate ``comm`` once per thread group (collective call).

    Works for both plain and offloaded communicators (both expose
    ``dup``).  All ranks must call with equal ``nthreads``.
    """
    if nthreads < 1:
        raise ValueError("nthreads must be >= 1")
    return [comm.dup() for _ in range(nthreads)]


class ThreadGroupRunner:
    """Run ``fn(tid, comm_for_tid)`` on ``nthreads`` concurrent threads.

    The communicators are per-thread (see :func:`make_thread_comms`);
    exceptions propagate to the caller with the raising thread id.
    """

    def __init__(self, comms: Sequence[Any]) -> None:
        if not comms:
            raise ValueError("need at least one per-thread communicator")
        self.comms = list(comms)

    def run(
        self, fn: Callable[[int, Any], Any], timeout: float = 60.0
    ) -> list[Any]:
        first = self.comms[0]
        # Plain communicators need THREAD_MULTIPLE for concurrent entry;
        # offloaded ones do not enter MPI from app threads at all.
        inner = getattr(first, "inner", None)
        if inner is None and hasattr(first, "world"):
            if first.world.thread_level < ThreadLevel.MULTIPLE:
                raise ThreadLevelError(
                    "ThreadGroupRunner over plain communicators requires "
                    "MPI_THREAD_MULTIPLE"
                )
        results: list[Any] = [None] * len(self.comms)
        failures: dict[int, BaseException] = {}

        def worker(tid: int) -> None:
            try:
                results[tid] = fn(tid, self.comms[tid])
            except BaseException as exc:  # noqa: BLE001 - reported below
                failures[tid] = exc

        threads = [
            threading.Thread(
                target=worker, args=(t,), name=f"tg-{t}", daemon=True
            )
            for t in range(len(self.comms))
        ]
        for t in threads:
            t.start()
        for tid, t in enumerate(threads):
            t.join(timeout)
            if t.is_alive():
                failures.setdefault(
                    tid, TimeoutError(f"thread group {tid} timed out")
                )
        if failures:
            tid, exc = sorted(failures.items())[0]
            raise RuntimeError(
                f"{len(failures)} thread group(s) failed; first: "
                f"thread {tid}"
            ) from exc
        return results
