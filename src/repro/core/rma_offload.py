"""One-sided (RMA) operations through the offload engine.

Extends the offload infrastructure to the operations the paper lists
as future work (§7, "other MPI operations, including RMA").  Window
calls are routed to the communication thread as commands, so the
application thread never enters MPI:

* ``put``/``get``/``accumulate`` are issued by the offload thread and
  return origin-completion handles; the offload thread's progress
  sweeps process the target-side applications and acknowledgements —
  i.e. the offload thread is simultaneously playing the role Casper's
  ghost processes play for RMA async progress;
* ``fence`` runs *inline* on the offload thread: it is the blocking
  call with no nonblocking equivalent the paper names as this
  approach's acknowledged limitation (§3.3).  Other commands queue
  behind it, but in-flight operations still progress because the
  fence's internal waits pump the same progress engine.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

import numpy as np

from repro.core.commands import Command, CommandKind
from repro.mpisim.rma import LOCK_SHARED, Window

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.offload_comm import OffloadCommunicator
    from repro.mpisim.requests import Request


class OffloadWindow:
    """An RMA window whose every call executes on the offload thread."""

    def __init__(self, ocomm: "OffloadCommunicator", win: Window) -> None:
        self.ocomm = ocomm
        self.win = win

    # -- construction -----------------------------------------------------

    @classmethod
    def create(
        cls, ocomm: "OffloadCommunicator", local: np.ndarray
    ) -> "OffloadWindow":
        """Collective window creation via the offload thread."""
        win = ocomm._blocking(
            Command(
                kind=CommandKind.CALL,
                fn=lambda: Window.create(ocomm.inner, local),
            )
        )
        return cls(ocomm, win)

    def free(self) -> None:
        self._call(self.win.free)

    # -- plumbing -----------------------------------------------------------

    def _call(self, fn, *args, **kwargs) -> Any:
        return self.ocomm._blocking(
            Command(kind=CommandKind.CALL, fn=lambda: fn(*args, **kwargs))
        )

    @property
    def local(self) -> np.ndarray:
        return self.win.local

    # -- operations -----------------------------------------------------------

    def put(
        self, origin: np.ndarray, target_rank: int, target_offset: int = 0
    ) -> "Request":
        """Offloaded one-sided write; returns the completion request.

        The handle's ``wait`` merely observes the flag the offload
        thread sets when the ack arrives.
        """
        return self._call(self.win.put, origin, target_rank, target_offset)

    def get(
        self, dest: np.ndarray, target_rank: int, target_offset: int = 0
    ) -> "Request":
        return self._call(self.win.get, dest, target_rank, target_offset)

    def accumulate(
        self,
        origin: np.ndarray,
        target_rank: int,
        target_offset: int = 0,
        op: Any = None,
    ) -> "Request":
        return self._call(
            self.win.accumulate, origin, target_rank, target_offset, op
        )

    # -- synchronization ----------------------------------------------------------

    def flush(self, target_rank: int | None = None) -> None:
        self._call(self.win.flush, target_rank)

    def fence(self) -> None:
        """The §3.3 caveat call: runs blocking on the offload thread."""
        self._call(self.win.fence)

    def lock(self, target_rank: int, kind: str = LOCK_SHARED) -> None:
        self._call(self.win.lock, target_rank, kind)

    def unlock(self, target_rank: int) -> None:
        self._call(self.win.unlock, target_rank)
