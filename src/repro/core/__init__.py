"""The paper's contribution: software-offloaded MPI communication.

Application threads never enter MPI.  Instead, every MPI call is
serialized into a command record and enqueued on a lock-free command
queue (:mod:`repro.lockfree`); a dedicated *offload thread* per rank
dequeues commands, issues the real MPI calls, and drives asynchronous
progress with a ``Testany`` loop whenever the queue is empty
(paper Section 3).

Highlights, mapped to the paper:

* :class:`~repro.core.engine.OffloadEngine` — the dedicated thread +
  command queue + in-flight tracker (§3.1, §3.2).
* :class:`~repro.core.request_pool.OffloadRequestPool` — pre-allocated
  array-based free list of request slots so nonblocking calls return a
  handle before MPI has been invoked (§3.1).
* :class:`~repro.core.offload_comm.OffloadCommunicator` — the facade
  that turns an ordinary communicator's API into enqueued commands;
  blocking calls are converted to nonblocking + completion-flag spin
  (§3.3), so a blocking call from one application thread never stalls
  the engine.
* :func:`~repro.core.interpose.offloaded` — transparent interposition
  so *unmodified* applications gain offload (§3.4; the Python analogue
  of LD_PRELOAD).
* :class:`~repro.core.commself.CommSelfProgressThread` and
  :func:`~repro.core.iprobe_progress.progress_hook` — faithful
  implementations of the paper's two comparison approaches (§2.1, §2.2).
* :func:`~repro.core.thread_groups.make_thread_comms` — the
  thread-groups helper used for the ``MPI_THREAD_MULTIPLE`` study
  (§5.1, Figure 12).
"""

from repro.core.commands import Command, CommandKind
from repro.core.request_pool import (
    OffloadRequest,
    OffloadRequestPool,
    OffloadError,
    OffloadEngineDied,
)
from repro.core.engine import OffloadEngine
from repro.core.engine_pool import EnginePool, ShardRouter
from repro.core.engine_group import OffloadEngineGroup
from repro.core.recovery import (
    EngineWatchdog,
    OffloadStopTimeout,
    OffloadTimeout,
    RecoveryPolicy,
    RetryPolicy,
)
from repro.core.offload_comm import (
    OffloadCommunicator,
    offload_waitall,
    offload_waitany,
)
from repro.core.interpose import offloaded, interpose
from repro.core.commself import CommSelfProgressThread
from repro.core.iprobe_progress import progress_hook
from repro.core.rma_offload import OffloadWindow
from repro.core.thread_groups import make_thread_comms, ThreadGroupRunner

__all__ = [
    "Command",
    "CommandKind",
    "OffloadRequest",
    "OffloadRequestPool",
    "OffloadError",
    "OffloadEngineDied",
    "OffloadTimeout",
    "OffloadStopTimeout",
    "RetryPolicy",
    "RecoveryPolicy",
    "EngineWatchdog",
    "OffloadEngine",
    "EnginePool",
    "ShardRouter",
    "OffloadEngineGroup",
    "OffloadCommunicator",
    "offload_waitall",
    "offload_waitany",
    "offloaded",
    "interpose",
    "CommSelfProgressThread",
    "progress_hook",
    "make_thread_comms",
    "ThreadGroupRunner",
    "OffloadWindow",
]
