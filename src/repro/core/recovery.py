"""Recovery policies for the offload engine: deadlines, retries,
watchdog, graceful degradation.

The offload design funnels all of a rank's MPI activity through one
communication thread, so that thread is a single point of failure.
A sharded :class:`~repro.core.engine_pool.EnginePool` splits the blast
radius — one wedged shard is poisoned while its siblings keep
completing — but each shard is still a thread that can die.  This
module is the caller-side half of surviving either case:

* :class:`RetryPolicy` — exponential-backoff re-driving of idempotent
  commands that failed with a transient error (off by default).
* :class:`RecoveryPolicy` — the bundle an engine is constructed with:
  an optional retry policy, a watchdog bound, and whether the facade
  should *degrade* to inline (FUNNELED-style) issuance when the engine
  dies instead of raising.
* :class:`EngineWatchdog` — samples the engine's heartbeat counter
  from a caller thread; if the heartbeat does not advance within the
  bound while work is pending, the engine is declared wedged and
  poisoned, so every waiter observes
  :class:`~repro.core.request_pool.OffloadEngineDied` within the bound
  instead of spinning forever.

All of it is opt-in and zero-overhead when unused: an engine without a
recovery policy runs the exact pre-existing hot paths (a single
``is None`` check at each site, mirroring the telemetry discipline).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.request_pool import OffloadError
from repro.faults.plan import TransientFaultError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import OffloadEngine


class OffloadTimeout(OffloadError, TimeoutError):
    """An offloaded command missed its deadline.

    Raised at the waiter when the engine expired the command (queued
    past its deadline, or in flight without completing by it).
    """


class OffloadStopTimeout(OffloadError, RuntimeError):
    """``OffloadEngine.stop`` timed out with work still outstanding.

    Carries the still-pending operations so the caller can see *what*
    cannot complete instead of a bare "failed to stop".
    """

    def __init__(
        self, message: str, pending: "list[str] | None" = None
    ) -> None:
        super().__init__(message)
        #: human-readable descriptions of the outstanding operations
        self.pending: list[str] = pending or []


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff for idempotent commands.

    Only commands in :data:`repro.core.commands.IDEMPOTENT_KINDS` are
    re-driven, and only when the failure is an instance of
    ``retry_on`` — by default the injected
    :class:`~repro.faults.plan.TransientFaultError`, which is raised
    *before* dispatch and therefore always safe to retry.
    """

    max_retries: int = 3
    base_backoff: float = 1e-3
    multiplier: float = 2.0
    max_backoff: float = 0.1
    retry_on: tuple[type[BaseException], ...] = (TransientFaultError,)

    def backoff(self, attempt: int) -> float:
        """Delay before retry number ``attempt`` (1-based)."""
        return min(
            self.base_backoff * self.multiplier ** max(0, attempt - 1),
            self.max_backoff,
        )


@dataclass
class RecoveryPolicy:
    """How an engine and its callers respond to failures.

    Parameters
    ----------
    retry:
        Re-drive idempotent commands that failed transiently
        (``None`` = fail them immediately, the default).
    watchdog_timeout:
        Declare the engine wedged when its heartbeat has not advanced
        for this many seconds while a caller is waiting (``None`` = no
        watchdog).  Detection latency is bounded by
        ``watchdog_timeout + poll_interval``.
    degrade:
        When the engine is dead, issue *new* facade calls inline on the
        calling thread (the FUNNELED fallback) instead of raising.
        Commands already submitted still fail with
        ``OffloadEngineDied``.
    poll_interval:
        Caller-side sampling period for the done flag / heartbeat.
    rank_failure:
        What the engine does when a command fails with
        :class:`~repro.mpisim.exceptions.RankDeadError`.  ``"fail"``
        (default): terminal-fail the command, leave recovery to the
        application.  ``"shrink"``: additionally *revoke* the command's
        communicator, so every survivor's in-flight and future
        operations on it fail typed at once and the application's
        recovery driver (see :func:`repro.ft.run_resilient`) can run
        revoke→agree→shrink without waiting out stragglers.
    """

    retry: RetryPolicy | None = None
    watchdog_timeout: float | None = None
    degrade: bool = False
    poll_interval: float = 0.02
    rank_failure: str = "fail"


class EngineWatchdog:
    """Caller-side heartbeat monitor for an engine — or a whole pool.

    Each engine increments ``engine.heartbeat`` once per loop
    iteration; callers hold one watchdog per wait and call
    :meth:`check` each sampling period.  A heartbeat frozen past the
    bound (with the thread either wedged or vanished) trips the
    watchdog, which poisons the engine via
    :meth:`OffloadEngine.watchdog_trip`.

    Handed an :class:`~repro.core.engine_pool.EnginePool` (anything
    with an ``engines`` attribute), the watchdog samples every live
    shard independently and poisons only the wedged one — one shard
    dying is a shard-local event, the pool survives and keeps routing
    around it.
    """

    __slots__ = ("engine", "engines", "timeout", "_states")

    def __init__(self, engine: "OffloadEngine", timeout: float) -> None:
        self.engine = engine
        #: the individual engines monitored (the pool's shards, or the
        #: single engine itself)
        self.engines = list(getattr(engine, "engines", None) or [engine])
        self.timeout = timeout
        now = time.perf_counter()
        #: per-shard (last heartbeat sampled, time it last advanced)
        self._states = {
            id(e): (e.heartbeat, now) for e in self.engines
        }

    def check(self) -> bool:
        """Sample every live shard once; True when any shard tripped.

        Only the wedged shard is poisoned — siblings keep running."""
        tripped = False
        now = time.perf_counter()
        for engine in self.engines:
            if engine.dead is not None:
                continue  # already dead; nothing to detect
            beat = engine.heartbeat
            last_beat, last_change = self._states[id(engine)]
            if beat != last_beat:
                self._states[id(engine)] = (beat, now)
                continue
            thread = engine._thread
            if thread is not None and not thread.is_alive():
                engine.watchdog_trip("offload thread vanished")
                tripped = True
                continue
            if now - last_change >= self.timeout:
                engine.watchdog_trip(
                    f"heartbeat frozen for {now - last_change:.3f}s "
                    f"(bound {self.timeout}s)"
                )
                tripped = True
        return tripped
