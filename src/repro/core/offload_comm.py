"""Application-facing facade: an MPI interface backed by the offload
engine.

Mirrors :class:`repro.mpisim.communicator.Communicator`'s API so that
application code is *unchanged* — it simply holds this object instead
(see :mod:`repro.core.interpose`).  Every method serializes its
parameters into a :class:`~repro.core.commands.Command` and enqueues it;
the calling thread never enters MPI:

* nonblocking calls allocate a request-pool slot and return an
  :class:`~repro.core.request_pool.OffloadRequest` immediately — the
  paper's constant ~140 ns post cost (Figure 4);
* blocking calls spin on the command's done flag (§3.1);
* many application threads may call concurrently — the queue and pool
  are lock-free, which is the paper's ``MPI_THREAD_MULTIPLE`` story
  (§3.3, Figure 6).
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

from repro.core.commands import Command, CommandKind
from repro.core.engine import OffloadEngine
from repro.core.request_pool import OffloadError, OffloadRequest
from repro.mpisim import datatypes
from repro.mpisim.constants import ANY_SOURCE, ANY_TAG
from repro.mpisim.reduce_ops import ReduceOp, SUM
from repro.mpisim.status import Status

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpisim.communicator import Communicator

K = CommandKind


class OffloadCommunicator:
    """Drop-in communicator whose MPI calls run on the offload thread."""

    def __init__(self, comm: "Communicator", engine: OffloadEngine) -> None:
        self.inner = comm
        self.engine = engine

    # ------------------------------------------------------------- identity

    @property
    def rank(self) -> int:
        return self.inner.rank

    @property
    def size(self) -> int:
        return self.inner.size

    @property
    def group(self) -> tuple[int, ...]:
        return self.inner.group

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"OffloadCommunicator({self.inner!r})"

    # ------------------------------------------------------------- plumbing

    def _blocking(self, cmd: Command) -> Any:
        assert cmd.done is not None
        engine = self.engine.route()
        if engine.telemetry is not None:
            engine.telemetry.counters.inc("app_blocking_calls")
        engine.submit(cmd)
        cmd.done.wait()
        if cmd.error is not None:
            raise OffloadError(str(cmd.error)) from cmd.error
        return cmd.done.payload

    def _nonblocking(self, cmd_kind: K, **fields: Any) -> OffloadRequest:
        # route() picks this thread's engine (a single engine routes to
        # itself; an OffloadEngineGroup shards threads over engines).
        engine = self.engine.route()
        if engine.telemetry is not None:
            engine.telemetry.counters.inc("app_nonblocking_calls")
        slot = engine.pool.alloc()
        cmd = Command(kind=cmd_kind, slot=slot, **fields)
        handle = OffloadRequest(engine.pool, slot)
        engine.submit(cmd)
        return handle

    # ------------------------------------------------------------------ p2p

    def isend(self, buf: Any, dest: int, tag: int = 0) -> OffloadRequest:
        """Nonblocking send; returns immediately after one enqueue."""
        return self._nonblocking(
            K.ISEND, comm=self.inner, buf=buf, peer=dest, tag=tag
        )

    def irecv(
        self, buf: Any, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> OffloadRequest:
        """Nonblocking receive; returns immediately after one enqueue."""
        return self._nonblocking(
            K.IRECV, comm=self.inner, buf=buf, peer=source, tag=tag
        )

    def send(self, buf: Any, dest: int, tag: int = 0) -> None:
        self._blocking(
            Command(kind=K.SEND, comm=self.inner, buf=buf, peer=dest, tag=tag)
        )

    def recv(
        self, buf: Any, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> Status:
        st = self._blocking(
            Command(
                kind=K.RECV, comm=self.inner, buf=buf, peer=source, tag=tag
            )
        )
        assert isinstance(st, Status)
        return st

    def sendrecv(
        self,
        sendbuf: Any,
        dest: int,
        recvbuf: Any,
        source: int,
        sendtag: int = 0,
        recvtag: int = ANY_TAG,
    ) -> Status:
        rreq = self.irecv(recvbuf, source, recvtag)
        sreq = self.isend(sendbuf, dest, sendtag)
        sreq.wait()
        return rreq.wait()

    # ---------------------------------------------------------------- probes

    def iprobe(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> Status | None:
        return self._blocking(
            Command(kind=K.IPROBE, comm=self.inner, peer=source, tag=tag)
        )

    def probe(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        timeout: float | None = None,
    ) -> Status:
        deadline = None if timeout is None else time.perf_counter() + timeout
        while True:
            st = self.iprobe(source, tag)
            if st is not None:
                return st
            if deadline is not None and time.perf_counter() > deadline:
                raise TimeoutError("probe timed out")
            time.sleep(1e-5)

    # ---------------------------------------------------------------- objects

    def send_obj(self, obj: Any, dest: int, tag: int = 0) -> None:
        self.send(datatypes.pack_object(obj), dest, tag)

    def isend_obj(self, obj: Any, dest: int, tag: int = 0) -> OffloadRequest:
        return self.isend(datatypes.pack_object(obj), dest, tag)

    def recv_obj(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        timeout: float | None = None,
    ) -> Any:
        st = self.probe(source, tag, timeout=timeout)
        buf = np.empty(st.count, dtype=np.uint8)
        self.recv(buf, st.source, st.tag)
        return datatypes.unpack_object(buf)

    # ------------------------------------------------------------ collectives

    def barrier(self) -> None:
        self._blocking(Command(kind=K.BARRIER, comm=self.inner))

    def bcast(self, buf: np.ndarray, root: int = 0) -> None:
        self._blocking(
            Command(kind=K.BCAST, comm=self.inner, buf=buf, peer=root)
        )

    def bcast_obj(self, obj: Any = None, root: int = 0) -> Any:
        size_buf = np.zeros(1, dtype=np.int64)
        if self.rank == root:
            payload = datatypes.pack_object(obj)
            size_buf[0] = payload.nbytes
        self.bcast(size_buf, root)
        if self.rank != root:
            payload = np.empty(int(size_buf[0]), dtype=np.uint8)
        self.bcast(payload, root)
        return obj if self.rank == root else datatypes.unpack_object(payload)

    def allreduce(
        self,
        sendbuf: np.ndarray,
        recvbuf: np.ndarray | None = None,
        op: ReduceOp = SUM,
    ) -> np.ndarray:
        if recvbuf is None:
            recvbuf = np.empty_like(sendbuf)
        self._blocking(
            Command(
                kind=K.ALLREDUCE,
                comm=self.inner,
                buf=sendbuf,
                buf2=recvbuf,
                op=op,
            )
        )
        return recvbuf

    def reduce(
        self,
        sendbuf: np.ndarray,
        recvbuf: np.ndarray | None = None,
        op: ReduceOp = SUM,
        root: int = 0,
    ) -> np.ndarray | None:
        if recvbuf is None and self.rank == root:
            recvbuf = np.empty_like(sendbuf)
        return self._blocking(
            Command(
                kind=K.REDUCE,
                comm=self.inner,
                buf=sendbuf,
                buf2=recvbuf,
                op=op,
                peer=root,
            )
        )

    def gather(
        self,
        sendbuf: np.ndarray,
        recvbuf: np.ndarray | None = None,
        root: int = 0,
    ) -> np.ndarray | None:
        if recvbuf is None and self.rank == root:
            recvbuf = np.empty(
                (self.size,) + sendbuf.shape, dtype=sendbuf.dtype
            )
        self._blocking(
            Command(
                kind=K.GATHER,
                comm=self.inner,
                buf=sendbuf,
                buf2=recvbuf,
                peer=root,
            )
        )
        return recvbuf if self.rank == root else None

    def scatter(
        self,
        sendbuf: np.ndarray | None,
        recvbuf: np.ndarray,
        root: int = 0,
    ) -> np.ndarray:
        self._blocking(
            Command(
                kind=K.SCATTER,
                comm=self.inner,
                buf=sendbuf,
                buf2=recvbuf,
                peer=root,
            )
        )
        return recvbuf

    def allgather(
        self, sendbuf: np.ndarray, recvbuf: np.ndarray | None = None
    ) -> np.ndarray:
        if recvbuf is None:
            recvbuf = np.empty(
                (self.size,) + sendbuf.shape, dtype=sendbuf.dtype
            )
        self._blocking(
            Command(
                kind=K.ALLGATHER, comm=self.inner, buf=sendbuf, buf2=recvbuf
            )
        )
        return recvbuf

    def alltoall(
        self, sendbuf: np.ndarray, recvbuf: np.ndarray | None = None
    ) -> np.ndarray:
        if recvbuf is None:
            recvbuf = np.empty_like(sendbuf)
        self._blocking(
            Command(
                kind=K.ALLTOALL, comm=self.inner, buf=sendbuf, buf2=recvbuf
            )
        )
        return recvbuf

    def reduce_scatter(
        self,
        sendbuf: np.ndarray,
        recvbuf: np.ndarray | None = None,
        op: ReduceOp = SUM,
    ) -> np.ndarray:
        if recvbuf is None:
            recvbuf = np.empty(sendbuf.shape[1:], dtype=sendbuf.dtype)
        self._blocking(
            Command(
                kind=K.REDUCE_SCATTER,
                comm=self.inner,
                buf=sendbuf,
                buf2=recvbuf,
                op=op,
            )
        )
        return recvbuf

    def scan(
        self,
        sendbuf: np.ndarray,
        recvbuf: np.ndarray | None = None,
        op: ReduceOp = SUM,
    ) -> np.ndarray:
        if recvbuf is None:
            recvbuf = np.empty_like(sendbuf)
        self._blocking(
            Command(
                kind=K.SCAN, comm=self.inner, buf=sendbuf, buf2=recvbuf, op=op
            )
        )
        return recvbuf

    def gatherv(
        self,
        sendbuf: np.ndarray,
        recvcounts,
        recvbuf: np.ndarray | None = None,
        root: int = 0,
    ) -> np.ndarray | None:
        """Variable-count gather, executed inline on the offload thread
        (no nonblocking equivalent in the substrate — the §3.3 class)."""
        return self._blocking(
            Command(
                kind=K.CALL,
                fn=lambda: self.inner.gatherv(
                    sendbuf, recvcounts, recvbuf, root
                ),
            )
        )

    def scatterv(
        self,
        sendbuf: np.ndarray | None,
        sendcounts,
        recvbuf: np.ndarray,
        root: int = 0,
    ) -> np.ndarray:
        return self._blocking(
            Command(
                kind=K.CALL,
                fn=lambda: self.inner.scatterv(
                    sendbuf, sendcounts, recvbuf, root
                ),
            )
        )

    def alltoallv(
        self,
        sendbuf: np.ndarray,
        sendcounts,
        recvbuf: np.ndarray,
        recvcounts,
    ) -> np.ndarray:
        return self._blocking(
            Command(
                kind=K.CALL,
                fn=lambda: self.inner.alltoallv(
                    sendbuf, sendcounts, recvbuf, recvcounts
                ),
            )
        )

    # -------------------------------------------------- nonblocking collectives

    def ibarrier(self) -> OffloadRequest:
        return self._nonblocking(K.IBARRIER, comm=self.inner)

    def ibcast(self, buf: np.ndarray, root: int = 0) -> OffloadRequest:
        return self._nonblocking(K.IBCAST, comm=self.inner, buf=buf, peer=root)

    def iallreduce(
        self,
        sendbuf: np.ndarray,
        recvbuf: np.ndarray,
        op: ReduceOp = SUM,
    ) -> OffloadRequest:
        return self._nonblocking(
            K.IALLREDUCE, comm=self.inner, buf=sendbuf, buf2=recvbuf, op=op
        )

    def igather(
        self,
        sendbuf: np.ndarray,
        recvbuf: np.ndarray | None = None,
        root: int = 0,
    ) -> OffloadRequest:
        return self._nonblocking(
            K.IGATHER, comm=self.inner, buf=sendbuf, buf2=recvbuf, peer=root
        )

    def ialltoall(
        self, sendbuf: np.ndarray, recvbuf: np.ndarray
    ) -> OffloadRequest:
        return self._nonblocking(
            K.IALLTOALL, comm=self.inner, buf=sendbuf, buf2=recvbuf
        )

    # ------------------------------------------------------ communicator algebra

    def dup(self) -> "OffloadCommunicator":
        """Collective duplicate executed on the offload thread."""
        new_inner = self._blocking(
            Command(kind=K.CALL, fn=self.inner.dup)
        )
        return OffloadCommunicator(new_inner, self.engine)

    def split(
        self, color: int | None, key: int = 0
    ) -> "OffloadCommunicator | None":
        new_inner = self._blocking(
            Command(kind=K.CALL, fn=lambda: self.inner.split(color, key))
        )
        if new_inner is None:
            return None
        return OffloadCommunicator(new_inner, self.engine)

    def flush(self) -> None:
        """Wait until every previously submitted operation completed."""
        self._blocking(Command(kind=K.FLUSH))

    # ------------------------------------------------------------ persistent

    def send_init(self, buf: Any, dest: int, tag: int = 0):
        """Persistent send whose every ``start`` is an offloaded isend."""
        from repro.mpisim.persistent import PersistentSend

        return PersistentSend(self, buf, dest, tag)

    def recv_init(
        self, buf: Any, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ):
        from repro.mpisim.persistent import PersistentRecv

        return PersistentRecv(self, buf, source, tag)

    # ------------------------------------------------------------- one-sided

    def win_create(self, local: np.ndarray):
        """Collectively create an offloaded RMA window (paper §7
        future work; see :mod:`repro.core.rma_offload`)."""
        from repro.core.rma_offload import OffloadWindow

        return OffloadWindow.create(self, local)


def offload_waitall(
    requests: Sequence[OffloadRequest], timeout: float | None = None
) -> list[Status]:
    """Wait on offloaded handles; pure flag checks, no MPI entry."""
    return [r.wait(timeout) for r in requests]


def offload_waitany(
    requests: Sequence[OffloadRequest], timeout: float | None = None
) -> tuple[int, Status]:
    """Wait until one handle completes; returns its index and status."""
    if not requests:
        raise ValueError("offload_waitany on empty list")
    deadline = None if timeout is None else time.perf_counter() + timeout
    while True:
        for i, r in enumerate(requests):
            if r.done:
                return i, r.wait()
        if deadline is not None and time.perf_counter() > deadline:
            raise TimeoutError("offload_waitany: nothing completed")
        time.sleep(1e-6)
