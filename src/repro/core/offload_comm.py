"""Application-facing facade: an MPI interface backed by the offload
engine.

Mirrors :class:`repro.mpisim.communicator.Communicator`'s API so that
application code is *unchanged* — it simply holds this object instead
(see :mod:`repro.core.interpose`).  Every method serializes its
parameters into a :class:`~repro.core.commands.Command` and enqueues it;
the calling thread never enters MPI:

* nonblocking calls allocate a request-pool slot and return an
  :class:`~repro.core.request_pool.OffloadRequest` immediately — the
  paper's constant ~140 ns post cost (Figure 4);
* blocking calls spin on the command's done flag (§3.1);
* many application threads may call concurrently — the queue and pool
  are lock-free, which is the paper's ``MPI_THREAD_MULTIPLE`` story
  (§3.3, Figure 6).
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

from repro.core.commands import Command, CommandKind
from repro.core.engine import OffloadEngine
from repro.core.recovery import EngineWatchdog, RecoveryPolicy
from repro.core.request_pool import (
    OffloadEngineDied,
    OffloadError,
    OffloadRequest,
)
from repro.mpisim import datatypes
from repro.mpisim.constants import (
    ANY_SOURCE,
    ANY_TAG,
    MAX_USER_TAG,
    ThreadLevel,
)
from repro.mpisim.reduce_ops import ReduceOp, SUM
from repro.mpisim.status import Status

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpisim.communicator import Communicator

K = CommandKind


class EagerCoalescer:
    """Decides which drained commands may share one wire message.

    The engine's batched issue loop (see ``OffloadEngine._process_batch``)
    collects *consecutive* eager-sized sends to the same destination
    into a run and ships the run as a single ``COALESCED`` envelope.
    Only stretches this class admits are packed; anything it rejects
    flushes the run and dispatches normally, so argument validation and
    protocol selection never have to fail per-item inside a packed run,
    and per-peer non-overtaking order is preserved by construction
    (runs never span a command to a different peer, a receive, or a
    collective).
    """

    __slots__ = ("limit",)

    def __init__(self, limit: int = 32) -> None:
        #: maximum sends packed into one wire message
        self.limit = limit

    def eligible(self, cmd: Command) -> bool:
        """Could ``cmd`` legally travel inside a coalesced envelope?

        Mirrors every check ``Communicator.isend`` + eager protocol
        selection would apply, so a packed run cannot raise for one
        member after its siblings were issued.
        """
        if cmd.kind is not K.ISEND and cmd.kind is not K.SEND:
            return False
        comm = cmd.comm
        if comm is None:
            return False
        buf = cmd.buf
        if not isinstance(buf, np.ndarray):
            return False
        if not 0 <= cmd.peer < comm.size:
            return False
        if not 0 <= cmd.tag <= MAX_USER_TAG:
            return False
        return buf.nbytes <= comm.engine.eager_threshold

    @staticmethod
    def same_stream(a: Command, b: Command) -> bool:
        """May ``b`` join a run that ``a`` belongs to?"""
        return a.comm is b.comm and a.peer == b.peer


class OffloadCommunicator:
    """Drop-in communicator whose MPI calls run on the offload thread.

    ``op_timeout`` (optional) stamps every command with an absolute
    deadline; the engine terminal-fails commands that miss it with
    :class:`~repro.core.recovery.OffloadTimeout`, so no operation can
    outlive ``op_timeout`` once the engine has seen it.

    When the engine carries a :class:`~repro.core.recovery.RecoveryPolicy`
    with ``degrade=True``, calls issued *after* the engine died run
    inline on the calling thread (the FUNNELED fallback) instead of
    raising — nonblocking calls then return the substrate's own request
    handle, which exposes the same ``done``/``test``/``wait`` surface
    as :class:`~repro.core.request_pool.OffloadRequest`.
    """

    def __init__(
        self,
        comm: "Communicator",
        engine: OffloadEngine,
        op_timeout: float | None = None,
    ) -> None:
        self.inner = comm
        self.engine = engine
        self.op_timeout = op_timeout

    # ------------------------------------------------------------- identity

    @property
    def rank(self) -> int:
        return self.inner.rank

    @property
    def size(self) -> int:
        return self.inner.size

    @property
    def group(self) -> tuple[int, ...]:
        return self.inner.group

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"OffloadCommunicator({self.inner!r})"

    # ------------------------------------------------------------- plumbing

    def _blocking(self, cmd: Command) -> Any:
        # route(cmd) picks the shard that must carry this command (a
        # single engine routes to itself; an EnginePool keys sends by
        # destination, receives/collectives by communicator, etc. so
        # every MPI-ordered stream stays on one ring).
        holder = self.engine
        try:
            engine = holder.route(cmd)
        except OffloadEngineDied:
            # Only an EnginePool raises here, and only with every
            # shard dead — the single-engine "engine died" contract.
            rec = holder.recovery
            if rec is not None and rec.degrade:
                return self._degraded_blocking(self._any_engine(), cmd)
            raise
        return self._blocking_on(engine, cmd)

    def _any_engine(self) -> OffloadEngine:
        """Some engine to account degraded-mode work against."""
        return getattr(self.engine, "engines", [self.engine])[0]

    def _blocking_on(self, engine: OffloadEngine, cmd: Command) -> Any:
        assert cmd.done is not None
        rec = engine.recovery
        if rec is not None and rec.degrade and engine.dead is not None:
            return self._degraded_blocking(engine, cmd)
        if engine.telemetry is not None:
            engine.telemetry.counters.inc("app_blocking_calls")
        if self.op_timeout is not None and cmd.deadline is None:
            cmd.deadline = time.perf_counter() + self.op_timeout
        try:
            engine.submit(cmd)
        except OffloadEngineDied:
            if rec is not None and rec.degrade:
                return self._degraded_blocking(engine, cmd)
            raise
        if rec is None:
            cmd.done.wait()
        else:
            self._watchful_wait(engine, cmd, rec)
        if cmd.error is not None:
            err = cmd.error
            if isinstance(err, OffloadError):
                raise err
            raise OffloadError(str(err)) from err
        return cmd.done.payload

    @staticmethod
    def _watchful_wait(
        engine: OffloadEngine, cmd: Command, rec: RecoveryPolicy
    ) -> None:
        """Wait on ``cmd.done`` while sampling engine health.

        Bounded-hang guarantee: if the engine dies (or the watchdog
        trips it), the waiter fails the command locally — even a
        command the engine can no longer reach (wedged mid-dispatch)
        terminates within ``watchdog_timeout + poll_interval``.
        """
        assert cmd.done is not None
        done = cmd.done
        watchdog = (
            EngineWatchdog(engine, rec.watchdog_timeout)
            if rec.watchdog_timeout is not None
            else None
        )
        while True:
            if done.wait(rec.poll_interval):
                return
            if engine.dead is not None:
                if not done.is_set():
                    cmd.error = OffloadEngineDied(
                        f"offload engine terminated with {cmd.kind.name} "
                        f"pending: {engine.dead}"
                    )
                    done.set(None)
                return
            if watchdog is not None:
                watchdog.check()

    def _nonblocking(self, cmd_kind: K, **fields: Any) -> Any:
        # The request pool is shared across an EnginePool's shards, so
        # the slot can be allocated before the command is routed.
        holder = self.engine
        slot = holder.pool.alloc()
        cmd = Command(kind=cmd_kind, slot=slot, **fields)
        try:
            engine = holder.route(cmd)
        except OffloadEngineDied:
            holder.pool.release(slot)
            rec = holder.recovery
            if rec is not None and rec.degrade:
                return self._degraded_nonblocking(
                    self._any_engine(), cmd_kind, fields
                )
            raise
        rec = engine.recovery
        if rec is not None and rec.degrade and engine.dead is not None:
            holder.pool.release(slot)
            return self._degraded_nonblocking(engine, cmd_kind, fields)
        if engine.telemetry is not None:
            engine.telemetry.counters.inc("app_nonblocking_calls")
        if self.op_timeout is not None:
            cmd.deadline = time.perf_counter() + self.op_timeout
        handle = OffloadRequest(
            engine.pool, slot, engine=engine if rec is not None else None
        )
        try:
            engine.submit(cmd)
        except OffloadEngineDied:
            # The command never reached the engine, so the slot can be
            # recycled safely (no later completion can touch it).
            engine.pool.release(slot)
            if rec is not None and rec.degrade:
                return self._degraded_nonblocking(engine, cmd_kind, fields)
            raise
        return handle

    # --------------------------------------------------- degraded (FUNNELED)

    def _note_degraded(self, engine: OffloadEngine) -> None:
        """Account one inline-fallback command and adopt the funnel.

        Under FUNNELED the dead offload thread still holds the funnel
        designation; the substrate would reject inline calls from this
        thread, so the degraded caller takes the designation over.
        """
        engine.degraded_commands += 1
        if engine.telemetry is not None:
            engine.telemetry.counters.inc("degraded_mode_commands")
        world = self.inner.world
        rank = self.inner.engine.rank
        if world.thread_level is ThreadLevel.FUNNELED:
            if world.funnel_thread(rank) != threading.get_ident():
                world.set_funnel_thread(rank, threading.get_ident())

    def _degraded_blocking(self, engine: OffloadEngine, cmd: Command) -> Any:
        self._note_degraded(engine)
        comm = cmd.comm if cmd.comm is not None else self.inner
        k = cmd.kind
        if k is K.SEND:
            return comm.send(cmd.buf, cmd.peer, cmd.tag)
        if k is K.RECV:
            return comm.recv(cmd.buf, cmd.peer, cmd.tag)
        if k is K.IPROBE:
            return comm.iprobe(cmd.peer, cmd.tag)
        if k is K.BARRIER:
            return comm.barrier()
        if k is K.BCAST:
            return comm.bcast(cmd.buf, cmd.peer)
        if k is K.ALLREDUCE:
            return comm.allreduce(cmd.buf, cmd.buf2, cmd.op)
        if k is K.GATHER:
            return comm.gather(cmd.buf, cmd.buf2, cmd.peer)
        if k is K.ALLTOALL:
            return comm.alltoall(cmd.buf, cmd.buf2)
        if k is K.REDUCE:
            return comm.reduce(cmd.buf, cmd.buf2, cmd.op, cmd.peer)
        if k is K.SCATTER:
            return comm.scatter(cmd.buf, cmd.buf2, cmd.peer)
        if k is K.ALLGATHER:
            return comm.allgather(cmd.buf, cmd.buf2)
        if k is K.REDUCE_SCATTER:
            return comm.reduce_scatter(cmd.buf, cmd.buf2, cmd.op)
        if k is K.SCAN:
            return comm.scan(cmd.buf, cmd.buf2, cmd.op)
        if k is K.CALL:
            return cmd.fn()
        if k is K.FLUSH:
            # Nothing can be in flight on the engine for *this* caller
            # anymore (it is dead and failed its backlog); inline ops
            # complete synchronously, so flush is a no-op.
            return None
        raise OffloadError(
            f"no degraded inline fallback for {k.name}"
        )  # pragma: no cover - all facade kinds handled above

    def _degraded_nonblocking(
        self, engine: OffloadEngine, cmd_kind: K, fields: dict[str, Any]
    ) -> Any:
        self._note_degraded(engine)
        comm = fields.get("comm") or self.inner
        buf = fields.get("buf")
        buf2 = fields.get("buf2")
        peer = fields.get("peer", -1)
        tag = fields.get("tag", 0)
        op = fields.get("op")
        if cmd_kind is K.ISEND:
            return comm.isend(buf, peer, tag)
        if cmd_kind is K.IRECV:
            return comm.irecv(buf, peer, tag)
        if cmd_kind is K.IBARRIER:
            return comm.ibarrier()
        if cmd_kind is K.IBCAST:
            return comm.ibcast(buf, peer)
        if cmd_kind is K.IALLREDUCE:
            return comm.iallreduce(buf, buf2, op)
        if cmd_kind is K.IGATHER:
            return comm.igather(buf, buf2, peer)
        if cmd_kind is K.IALLTOALL:
            return comm.ialltoall(buf, buf2)
        raise OffloadError(
            f"no degraded inline fallback for {cmd_kind.name}"
        )  # pragma: no cover - all facade kinds handled above

    # ------------------------------------------------------------------ p2p

    def isend(self, buf: Any, dest: int, tag: int = 0) -> OffloadRequest:
        """Nonblocking send; returns immediately after one enqueue."""
        return self._nonblocking(
            K.ISEND, comm=self.inner, buf=buf, peer=dest, tag=tag
        )

    def irecv(
        self, buf: Any, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> OffloadRequest:
        """Nonblocking receive; returns immediately after one enqueue."""
        return self._nonblocking(
            K.IRECV, comm=self.inner, buf=buf, peer=source, tag=tag
        )

    def send(self, buf: Any, dest: int, tag: int = 0) -> None:
        self._blocking(
            Command(kind=K.SEND, comm=self.inner, buf=buf, peer=dest, tag=tag)
        )

    def recv(
        self, buf: Any, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> Status:
        st = self._blocking(
            Command(
                kind=K.RECV, comm=self.inner, buf=buf, peer=source, tag=tag
            )
        )
        assert isinstance(st, Status)
        return st

    def sendrecv(
        self,
        sendbuf: Any,
        dest: int,
        recvbuf: Any,
        source: int,
        sendtag: int = 0,
        recvtag: int = ANY_TAG,
    ) -> Status:
        rreq = self.irecv(recvbuf, source, recvtag)
        sreq = self.isend(sendbuf, dest, sendtag)
        sreq.wait()
        return rreq.wait()

    # ---------------------------------------------------------------- probes

    def iprobe(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> Status | None:
        return self._blocking(
            Command(kind=K.IPROBE, comm=self.inner, peer=source, tag=tag)
        )

    def probe(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        timeout: float | None = None,
    ) -> Status:
        deadline = None if timeout is None else time.perf_counter() + timeout
        while True:
            st = self.iprobe(source, tag)
            if st is not None:
                return st
            if deadline is not None and time.perf_counter() > deadline:
                raise TimeoutError("probe timed out")
            time.sleep(1e-5)

    # ---------------------------------------------------------------- objects

    def send_obj(self, obj: Any, dest: int, tag: int = 0) -> None:
        self.send(datatypes.pack_object(obj), dest, tag)

    def isend_obj(self, obj: Any, dest: int, tag: int = 0) -> OffloadRequest:
        return self.isend(datatypes.pack_object(obj), dest, tag)

    def recv_obj(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        timeout: float | None = None,
    ) -> Any:
        st = self.probe(source, tag, timeout=timeout)
        buf = np.empty(st.count, dtype=np.uint8)
        self.recv(buf, st.source, st.tag)
        return datatypes.unpack_object(buf)

    # ------------------------------------------------------------ collectives

    def barrier(self) -> None:
        self._blocking(Command(kind=K.BARRIER, comm=self.inner))

    def bcast(self, buf: np.ndarray, root: int = 0) -> None:
        self._blocking(
            Command(kind=K.BCAST, comm=self.inner, buf=buf, peer=root)
        )

    def bcast_obj(self, obj: Any = None, root: int = 0) -> Any:
        size_buf = np.zeros(1, dtype=np.int64)
        if self.rank == root:
            payload = datatypes.pack_object(obj)
            size_buf[0] = payload.nbytes
        self.bcast(size_buf, root)
        if self.rank != root:
            payload = np.empty(int(size_buf[0]), dtype=np.uint8)
        self.bcast(payload, root)
        return obj if self.rank == root else datatypes.unpack_object(payload)

    def allreduce(
        self,
        sendbuf: np.ndarray,
        recvbuf: np.ndarray | None = None,
        op: ReduceOp = SUM,
    ) -> np.ndarray:
        if recvbuf is None:
            recvbuf = np.empty_like(sendbuf)
        self._blocking(
            Command(
                kind=K.ALLREDUCE,
                comm=self.inner,
                buf=sendbuf,
                buf2=recvbuf,
                op=op,
            )
        )
        return recvbuf

    def reduce(
        self,
        sendbuf: np.ndarray,
        recvbuf: np.ndarray | None = None,
        op: ReduceOp = SUM,
        root: int = 0,
    ) -> np.ndarray | None:
        if recvbuf is None and self.rank == root:
            recvbuf = np.empty_like(sendbuf)
        return self._blocking(
            Command(
                kind=K.REDUCE,
                comm=self.inner,
                buf=sendbuf,
                buf2=recvbuf,
                op=op,
                peer=root,
            )
        )

    def gather(
        self,
        sendbuf: np.ndarray,
        recvbuf: np.ndarray | None = None,
        root: int = 0,
    ) -> np.ndarray | None:
        if recvbuf is None and self.rank == root:
            recvbuf = np.empty(
                (self.size,) + sendbuf.shape, dtype=sendbuf.dtype
            )
        self._blocking(
            Command(
                kind=K.GATHER,
                comm=self.inner,
                buf=sendbuf,
                buf2=recvbuf,
                peer=root,
            )
        )
        return recvbuf if self.rank == root else None

    def scatter(
        self,
        sendbuf: np.ndarray | None,
        recvbuf: np.ndarray,
        root: int = 0,
    ) -> np.ndarray:
        self._blocking(
            Command(
                kind=K.SCATTER,
                comm=self.inner,
                buf=sendbuf,
                buf2=recvbuf,
                peer=root,
            )
        )
        return recvbuf

    def allgather(
        self, sendbuf: np.ndarray, recvbuf: np.ndarray | None = None
    ) -> np.ndarray:
        if recvbuf is None:
            recvbuf = np.empty(
                (self.size,) + sendbuf.shape, dtype=sendbuf.dtype
            )
        self._blocking(
            Command(
                kind=K.ALLGATHER, comm=self.inner, buf=sendbuf, buf2=recvbuf
            )
        )
        return recvbuf

    def alltoall(
        self, sendbuf: np.ndarray, recvbuf: np.ndarray | None = None
    ) -> np.ndarray:
        if recvbuf is None:
            recvbuf = np.empty_like(sendbuf)
        self._blocking(
            Command(
                kind=K.ALLTOALL, comm=self.inner, buf=sendbuf, buf2=recvbuf
            )
        )
        return recvbuf

    def reduce_scatter(
        self,
        sendbuf: np.ndarray,
        recvbuf: np.ndarray | None = None,
        op: ReduceOp = SUM,
    ) -> np.ndarray:
        if recvbuf is None:
            recvbuf = np.empty(sendbuf.shape[1:], dtype=sendbuf.dtype)
        self._blocking(
            Command(
                kind=K.REDUCE_SCATTER,
                comm=self.inner,
                buf=sendbuf,
                buf2=recvbuf,
                op=op,
            )
        )
        return recvbuf

    def scan(
        self,
        sendbuf: np.ndarray,
        recvbuf: np.ndarray | None = None,
        op: ReduceOp = SUM,
    ) -> np.ndarray:
        if recvbuf is None:
            recvbuf = np.empty_like(sendbuf)
        self._blocking(
            Command(
                kind=K.SCAN, comm=self.inner, buf=sendbuf, buf2=recvbuf, op=op
            )
        )
        return recvbuf

    def gatherv(
        self,
        sendbuf: np.ndarray,
        recvcounts,
        recvbuf: np.ndarray | None = None,
        root: int = 0,
    ) -> np.ndarray | None:
        """Variable-count gather, executed inline on the offload thread
        (no nonblocking equivalent in the substrate — the §3.3 class)."""
        return self._blocking(
            Command(
                kind=K.CALL,
                fn=lambda: self.inner.gatherv(
                    sendbuf, recvcounts, recvbuf, root
                ),
            )
        )

    def scatterv(
        self,
        sendbuf: np.ndarray | None,
        sendcounts,
        recvbuf: np.ndarray,
        root: int = 0,
    ) -> np.ndarray:
        return self._blocking(
            Command(
                kind=K.CALL,
                fn=lambda: self.inner.scatterv(
                    sendbuf, sendcounts, recvbuf, root
                ),
            )
        )

    def alltoallv(
        self,
        sendbuf: np.ndarray,
        sendcounts,
        recvbuf: np.ndarray,
        recvcounts,
    ) -> np.ndarray:
        return self._blocking(
            Command(
                kind=K.CALL,
                fn=lambda: self.inner.alltoallv(
                    sendbuf, sendcounts, recvbuf, recvcounts
                ),
            )
        )

    # -------------------------------------------------- nonblocking collectives

    def ibarrier(self) -> OffloadRequest:
        return self._nonblocking(K.IBARRIER, comm=self.inner)

    def ibcast(self, buf: np.ndarray, root: int = 0) -> OffloadRequest:
        return self._nonblocking(K.IBCAST, comm=self.inner, buf=buf, peer=root)

    def iallreduce(
        self,
        sendbuf: np.ndarray,
        recvbuf: np.ndarray,
        op: ReduceOp = SUM,
    ) -> OffloadRequest:
        return self._nonblocking(
            K.IALLREDUCE, comm=self.inner, buf=sendbuf, buf2=recvbuf, op=op
        )

    def igather(
        self,
        sendbuf: np.ndarray,
        recvbuf: np.ndarray | None = None,
        root: int = 0,
    ) -> OffloadRequest:
        return self._nonblocking(
            K.IGATHER, comm=self.inner, buf=sendbuf, buf2=recvbuf, peer=root
        )

    def ialltoall(
        self, sendbuf: np.ndarray, recvbuf: np.ndarray
    ) -> OffloadRequest:
        return self._nonblocking(
            K.IALLTOALL, comm=self.inner, buf=sendbuf, buf2=recvbuf
        )

    # ------------------------------------------------------ communicator algebra

    def dup(self) -> "OffloadCommunicator":
        """Collective duplicate executed on the offload thread."""
        new_inner = self._blocking(
            Command(kind=K.CALL, fn=self.inner.dup)
        )
        return OffloadCommunicator(new_inner, self.engine, self.op_timeout)

    def split(
        self, color: int | None, key: int = 0
    ) -> "OffloadCommunicator | None":
        new_inner = self._blocking(
            Command(kind=K.CALL, fn=lambda: self.inner.split(color, key))
        )
        if new_inner is None:
            return None
        return OffloadCommunicator(new_inner, self.engine, self.op_timeout)

    # ------------------------------------------------------ fault tolerance

    @property
    def revoked(self) -> bool:
        """True once the wrapped communicator has been revoked."""
        return self.inner.revoked

    def revoke(self) -> None:
        """Revoke the wrapped communicator (see ULFM semantics).

        Runs *inline on the calling thread*, never through the offload
        ring: revocation is the fault plane, and it must work exactly
        when the offload path is wedged or poisoned.  The substrate's
        ``revoke`` takes the library lock directly and needs no engine
        cooperation.
        """
        self.inner.revoke()

    def agree(self, flag: int = 1, timeout: float = 60.0) -> int:
        """Fault-tolerant agreement over the survivors (inline).

        Like :meth:`revoke`, this bypasses the offload ring: agreement
        must terminate even when the shards serving this communicator
        are drowning in typed failures.  The protocol pumps the
        substrate progress engine from the calling thread.
        """
        return self.inner.agree(flag, timeout=timeout)

    def shrink(self, timeout: float = 60.0) -> "OffloadCommunicator":
        """Revoke + agree on survivors + rebuild, offload-side.

        Returns a fresh facade over the shrunk substrate communicator
        and releases the revoked communicator's stream pins from the
        pool router, so the survivor's streams get fresh shard
        assignments instead of inheriting dead sticky state.
        """
        new_inner = self.inner.shrink(timeout=timeout)
        remap = getattr(self.engine, "remap_shrunk", None)
        if remap is not None:
            remap(self.inner, new_inner)
        return OffloadCommunicator(new_inner, self.engine, self.op_timeout)

    def flush(self) -> None:
        """Wait until every previously submitted operation completed.

        Against an :class:`~repro.core.engine_pool.EnginePool` the
        fence is broadcast: one FLUSH per live shard, since previously
        submitted work may be spread over every ring.  A shard that
        died needs no fence — its backlog was already terminally
        failed, so there is nothing left to wait for.
        """
        engines = getattr(self.engine, "engines", None)
        if engines is None:
            self._blocking(Command(kind=K.FLUSH))
            return
        while True:
            # Work stealing can move commands from a ring we have not
            # fenced yet into a shard we already fenced, so one pass is
            # only conclusive if no steal committed while it ran.  A
            # steal during the pass means some pre-flush command may
            # have dodged its fence — run another pass (strictly less
            # unfinished work each time, so this converges).
            steals_before = sum(e.queue.steals for e in engines)
            for e in engines:
                if e.dead is not None:
                    continue
                try:
                    self._blocking_on(e, Command(kind=K.FLUSH))
                except OffloadEngineDied:
                    # Raced a shard crash: the crash failed all its
                    # pending work typed, so the fence it would have
                    # provided is vacuous.
                    continue
            if sum(e.queue.steals for e in engines) == steals_before:
                return

    def payload_counters(self) -> tuple[int, int]:
        """``(payload_copies, payload_zero_copy_hits)`` for this rank.

        Reads the substrate progress engine's data-plane accounting
        (DESIGN.md §14): intermediate payload materializations versus
        deliveries satisfied directly from the sender's user buffer.
        The final copy into a posted receive buffer is never counted —
        ``payload_copies == 0`` on the happy path means every byte
        moved exactly once.
        """
        eng = self.inner.engine
        return (
            getattr(eng, "payload_copies", 0),
            getattr(eng, "payload_zero_copy_hits", 0),
        )

    # ------------------------------------------------------------ persistent

    def send_init(self, buf: Any, dest: int, tag: int = 0):
        """Persistent send whose every ``start`` is an offloaded isend."""
        from repro.mpisim.persistent import PersistentSend

        return PersistentSend(self, buf, dest, tag)

    def recv_init(
        self, buf: Any, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ):
        from repro.mpisim.persistent import PersistentRecv

        return PersistentRecv(self, buf, source, tag)

    # ------------------------------------------------------------- one-sided

    def win_create(self, local: np.ndarray):
        """Collectively create an offloaded RMA window (paper §7
        future work; see :mod:`repro.core.rma_offload`)."""
        from repro.core.rma_offload import OffloadWindow

        return OffloadWindow.create(self, local)


def offload_waitall(
    requests: Sequence[OffloadRequest], timeout: float | None = None
) -> list[Status]:
    """Wait on offloaded handles; pure flag checks, no MPI entry.

    ``timeout`` is one overall budget for the whole set — each wait
    gets the *remaining* budget, so N requests cannot stack up to
    ``N * timeout`` of wall clock.

    When an engine dies mid-wait the *engine side* fails the tail:
    ``_fail_pending`` flags every outstanding slot typed, and any
    registered continuations fire from there.  This function then owns
    draining those already-failed tail handles — each one is consumed
    (typed error observed, slot released) instead of being abandoned
    when the first wait raises — so a waitall caller and a
    continuation observer see the same per-request outcomes.  The
    first error is re-raised after the sweep.
    """
    deadline = (
        None if timeout is None else time.perf_counter() + timeout
    )

    def _budget() -> float | None:
        if deadline is None:
            return None
        return max(0.0, deadline - time.perf_counter())

    out: list[Status] = []
    for i, r in enumerate(requests):
        try:
            out.append(r.wait(_budget()))
        except OffloadEngineDied:
            # Sweep the tail: the dead engine's _fail_pending has (or
            # is about to have) flagged every outstanding slot typed,
            # so each remaining handle is consumed — typed error
            # observed, slot released — rather than abandoned.
            # Bounded: a slot whose flag never sets within the grace
            # (a wedged-alive engine holding it) stays pending,
            # exactly as before the sweep.
            for tail in requests[i + 1 :]:
                grace = _budget()
                if grace is None:
                    grace = 1.0
                try:
                    tail.wait(min(grace, 1.0))
                except BaseException:
                    pass
            raise
    return out


def offload_waitany(
    requests: Sequence[OffloadRequest], timeout: float | None = None
) -> tuple[int, Status]:
    """Wait until one handle completes; returns its index and status."""
    if not requests:
        raise ValueError("offload_waitany on empty list")
    deadline = None if timeout is None else time.perf_counter() + timeout
    while True:
        for i, r in enumerate(requests):
            if r.done:
                return i, r.wait()
        if deadline is not None and time.perf_counter() > deadline:
            raise TimeoutError("offload_waitany: nothing completed")
        time.sleep(1e-6)
