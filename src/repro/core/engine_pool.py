"""Sharded offload engine pool: routed, work-stealing, elastic.

The paper dedicates *one* communication thread per rank (§3.1); at
scale that thread is the serialization point for every offloaded
operation.  "MPI Progress For All" and "Asynchronous MPI for the
Masses" map the design space of shared/oversubscribed progress
resources; this module brings that space onto the substrate as an
:class:`EnginePool` — N :class:`~repro.core.engine.OffloadEngine`
shards per rank behind the same ``route()`` facade a bare engine
exposes:

* a pluggable **router** picks the shard at submit time
  (destination-affinity, communicator-affinity, round-robin, or
  thread-sticky — the legacy :class:`OffloadEngineGroup` policy);
* an idle shard **batch-steals** from the deepest sibling ring
  (:meth:`~repro.lockfree.mpsc_queue.MPSCQueue.steal_drain`);
* **dynamic scale-up/down** widens or narrows the set of shards the
  router places *new* streams on, driven by the queue-depth telemetry
  the batching PR introduced.

Ordering invariant (why MPI non-overtaking survives all three):

1. The router is *sticky per stream*: every command of one ordered
   stream — same ``(comm, "send", dest)``, or all receives of one
   communicator (wildcards can match any of them), or all collectives
   of one communicator (collective order is rank-global) — lands on
   the same shard's ring for the stream's lifetime, so a stream is
   totally ordered by ring order.  Scaling only changes where *new*
   streams are placed.
2. The ring hands out at most one batch at a time, in ring order: the
   owner's ``drain`` refuses while a stolen batch is outstanding
   (``steal_pending``), and a thief's ``steal_drain`` refuses while
   the owner is mid-dispatch (``dispatch_busy``) — so batches from one
   ring are *issued* in the order they were enqueued, whoever issues
   them.

Together: per-stream issue order equals program order, which is
exactly the ordering contract MPI gives multithreaded applications.

A dead shard does not kill the pool: its pending work is failed with
typed errors (exactly the single-engine contract) and the router remaps
the dead shard's streams to survivors — safe precisely *because* the
dead shard terminally failed everything it held, so a remapped stream
cannot be reordered against operations that no longer exist.  The pool
as a whole reports ``dead`` only when every shard has died.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Optional

from repro.core.commands import Command, CommandKind
from repro.core.engine import _POOL_CACHE, OffloadEngine
from repro.core.request_pool import (
    OffloadEngineDied,
    OffloadRequestPool,
)
from repro.mpisim.constants import ThreadLevel
from repro.mpisim.exceptions import ThreadLevelError

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpisim.communicator import Communicator

#: Routing policies accepted by :class:`EnginePool`.
ROUTER_POLICIES = ("dest", "comm", "rr", "thread")

#: Default sibling ring depth above which an idle shard steals.
DEFAULT_STEAL_THRESHOLD = 8

#: Route calls between autoscale evaluations (power of two: the
#: throttle is a single AND on the hot path).
_SCALE_EVERY = 64

#: Consecutive all-idle evaluations before the routing width shrinks.
_SCALE_DOWN_EVALS = 8


def _is_control(cmd: Command) -> bool:
    """Control commands must execute on their own engine: SHUTDOWN
    stops exactly the engine it was submitted to, and FLUSH fences
    exactly that engine's prior work.  The steal predicate stops a
    stolen batch *before* either."""
    return (
        cmd.kind is CommandKind.SHUTDOWN
        or cmd.kind is CommandKind.FLUSH
    )


class ShardRouter:
    """Sticky stream-to-shard assignment under a placement policy.

    A *stream* is the unit MPI orders: the router maps every command
    onto a stream key, then pins the key to a shard on first sight.
    The policy only decides where **new** streams go:

    ``dest``
        sends hash by ``(comm, destination)`` — traffic to different
        peers spreads, each peer's send stream stays ordered;
    ``comm``
        everything hashes by communicator — one shard per
        communicator, the coarsest (and safest) spread;
    ``rr``
        new streams round-robin over the active shards;
    ``thread``
        every command keys on the calling thread (the legacy
        engine-group policy: per-thread program order).
    """

    def __init__(self, policy: str) -> None:
        if policy not in ROUTER_POLICIES:
            raise ValueError(
                f"unknown router policy {policy!r}; "
                f"expected one of {ROUTER_POLICIES}"
            )
        self.policy = policy
        self._streams: dict = {}
        self._lock = threading.Lock()
        self._next = 0
        #: routes where the sticky assignment disagreed with where the
        #: policy would place the stream today (stale placement after
        #: scale events — an imbalance signal, not an error)
        self.misroutes = 0
        #: DST-only regression hook: ignore stickiness entirely and
        #: round-robin every command — splits ordered streams across
        #: shards, the reordering bug stickiness exists to prevent.
        self._unsafe_ignore_stickiness = False

    def stream_key(self, cmd: Command | None):
        if cmd is None or self.policy == "thread":
            return ("t", threading.get_ident())
        kind = cmd.kind
        K = CommandKind
        if kind is K.SEND or kind is K.ISEND:
            return (id(cmd.comm), "s", cmd.peer)
        if kind is K.RECV or kind is K.IRECV or kind is K.IPROBE:
            # All receives of a communicator form ONE stream: a
            # wildcard receive may match any posted receive's sender,
            # so splitting them across shards could reorder matching.
            return (id(cmd.comm), "r")
        if kind is K.CALL or kind is K.FLUSH or kind is K.SHUTDOWN:
            return ("t", threading.get_ident())
        # Collectives: rank-global order per communicator.
        return (id(cmd.comm), "c")

    def _hash_pick(self, key, candidates: list[int]) -> int:
        basis = key if self.policy == "dest" else key[0]
        return candidates[hash(basis) % len(candidates)]

    def assign(self, key, candidates: list[int], alive: list[bool]) -> int:
        """Shard index for ``key``; ``candidates`` are the indices the
        policy may place new streams on (live shards in the active
        prefix), ``alive`` covers every shard for sticky validation."""
        if self._unsafe_ignore_stickiness:
            with self._lock:
                self._next += 1
                return candidates[(self._next - 1) % len(candidates)]
        idx = self._streams.get(key)
        if idx is not None and alive[idx]:
            if self.policy in ("dest", "comm"):
                if self._hash_pick(key, candidates) != idx:
                    self.misroutes += 1
            return idx
        with self._lock:
            cur = self._streams.get(key)
            if cur is not None and alive[cur]:
                return cur
            if self.policy in ("rr", "thread"):
                pick = candidates[self._next % len(candidates)]
                self._next += 1
            else:
                pick = self._hash_pick(key, candidates)
            if cur is not None:
                # Dead-shard remap: the dead shard failed everything it
                # held with typed errors, so moving the stream cannot
                # reorder it against surviving operations.
                self.misroutes += 1
            self._streams[key] = pick
            return pick

    def release_comm(self, comm_id: int) -> int:
        """Drop every stream keyed to communicator ``comm_id``.

        Called after a shrink: the revoked communicator failed all of
        its streams' work typed, so their sticky assignments are dead
        weight — releasing them lets the shrunk communicator's streams
        (a different ``id()``) start placement fresh.  Returns how many
        stream pins were dropped.
        """
        with self._lock:
            stale = [
                key
                for key in self._streams
                if isinstance(key, tuple) and key[0] == comm_id
            ]
            for key in stale:
                del self._streams[key]
            return len(stale)


class _PoolCounters:
    """Read-mostly merged view over the shards' telemetry counters."""

    def __init__(self, pool: "EnginePool") -> None:
        self._pool = pool

    def _snapshots(self) -> list[dict]:
        out = []
        for e in self._pool.engines:
            tm = e.telemetry
            if tm is not None:
                out.append(dict(tm.counters.snapshot()))
        return out

    def snapshot(self) -> dict:
        from repro.obs.counters import merge_counters

        return merge_counters(self._snapshots())

    def get(self, name: str, default: int = 0) -> int:
        return self.snapshot().get(name, default)

    # Writes land on shard 0 (facade paths always write through a
    # *routed* engine's counters; this is defensive compatibility).
    def inc(self, name: str, delta: int = 1) -> None:
        tm = self._pool.engines[0].telemetry
        if tm is not None:
            tm.counters.inc(name, delta)

    def record_max(self, name: str, value: int) -> None:
        tm = self._pool.engines[0].telemetry
        if tm is not None:
            tm.counters.record_max(name, value)


class _PoolTelemetry:
    """Pool-level stand-in for an engine's telemetry bundle."""

    trace = None

    def __init__(self, pool: "EnginePool") -> None:
        self.counters = _PoolCounters(pool)


class EnginePool:
    """N offload engines behind one ``route()`` interface.

    Drop-in wherever a single :class:`OffloadEngine` is used; the
    facade calls ``route(cmd)`` to pick the shard for each command.
    See the module docstring for the routing/stealing/scaling design
    and the ordering argument.

    Parameters
    ----------
    pool_size:
        Number of engine shards.  ``pool_size > 1`` requires
        ``MPI_THREAD_MULTIPLE`` (several offload threads enter MPI).
    router:
        Placement policy for new streams; one of
        :data:`ROUTER_POLICIES`.
    steal_threshold:
        Sibling ring depth above which an idle shard batch-steals;
        ``None`` disables stealing.
    autoscale:
        Widen/narrow the active routing prefix from queue depth.  All
        shards are constructed and started up front — scaling moves
        *placement*, never engine lifecycle, so there is no
        submit-versus-stop race to lose commands in.
    """

    def __init__(
        self,
        comm: "Communicator",
        pool_size: int = 2,
        router: str = "dest",
        steal_threshold: Optional[int] = DEFAULT_STEAL_THRESHOLD,
        autoscale: bool = True,
        pool_capacity: int = 4096,
        queue_capacity: int = 4096,
        telemetry: bool | None = None,
        faults=None,
        recovery=None,
        batch_size: int | None = None,
        coalesce_eager: bool = False,
        pool_cache: int | None = None,
        zero_copy: bool | None = None,
    ) -> None:
        if pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        # DST harnesses drive never-started engines through a fake
        # communicator without a world; treat "no world" as MULTIPLE.
        level = getattr(
            getattr(comm, "world", None),
            "thread_level",
            ThreadLevel.MULTIPLE,
        )
        if pool_size > 1 and level < ThreadLevel.MULTIPLE:
            raise ThreadLevelError(
                "multiple offload threads enter MPI concurrently; the "
                "world must be MPI_THREAD_MULTIPLE"
            )
        self.comm = comm
        cache = _POOL_CACHE if pool_cache is None else pool_cache
        #: one request pool shared by every shard: any engine —
        #: including a thief completing a victim's stolen commands —
        #: can terminate any slot, and the facade can allocate a slot
        #: before routing.
        self.request_pool = OffloadRequestPool(
            pool_capacity, cache_size=cache
        )
        engine_kwargs: dict = {"coalesce_eager": coalesce_eager}
        if batch_size is not None:
            engine_kwargs["batch_size"] = batch_size
        if zero_copy is not None:
            # Rank-wide substrate toggle: every shard shares this
            # rank's progress engine, so setting it once per shard is
            # idempotent.
            engine_kwargs["zero_copy"] = zero_copy
        self.engines = [
            OffloadEngine(
                comm,
                pool_capacity=pool_capacity,
                queue_capacity=queue_capacity,
                telemetry=telemetry,
                faults=faults,
                recovery=recovery,
                request_pool=self.request_pool,
                **engine_kwargs,
            )
            for _ in range(pool_size)
        ]
        self.router = ShardRouter(router)
        self.steal_threshold = steal_threshold
        if steal_threshold is not None and pool_size > 1:
            for e in self.engines:
                e.queue.enable_steal()
                e._steal_source = self._steal_for
        self._autoscale = autoscale and pool_size > 1
        #: routing width: new streams go to shards [0, _active).  The
        #: pool starts at full width (all shards earning their keep
        #: immediately); sustained idleness narrows it, queue depth
        #: widens it again.
        self._active = pool_size
        self._scale_lock = threading.Lock()
        self._route_ops = 0
        self._idle_evals = 0
        self.shard_scale_events = 0

    # -- routing ------------------------------------------------------------

    def route(self, cmd: Command | None = None) -> OffloadEngine:
        """The shard that must carry ``cmd`` (sticky per stream).

        With no command, routes by calling thread — the inspection/
        compatibility path (``oc.engine.route().stats()`` etc.).
        Raises :class:`OffloadEngineDied` only when every shard died.
        """
        engines = self.engines
        if len(engines) == 1:
            return engines[0]
        if self._autoscale:
            self._maybe_scale()
        alive = [e._dead is None for e in engines]
        candidates = [i for i in range(self._active) if alive[i]]
        if not candidates:
            candidates = [i for i in range(len(engines)) if alive[i]]
        if not candidates:
            first = next(x for x in engines if x._dead is not None)
            raise OffloadEngineDied(
                f"all {len(engines)} pool shards terminated: "
                f"{first._dead}"
            )
        key = self.router.stream_key(cmd)
        return engines[self.router.assign(key, candidates, alive)]

    def submit(self, cmd: Command) -> None:
        """Route ``cmd`` to its shard and enqueue it there.

        Engine-compatibility surface: callers holding ``oc.engine``
        may submit directly; the router picks the shard at submit
        time, exactly as the facade does."""
        self.route(cmd).submit(cmd)

    def remap_shrunk(self, old_comm, new_comm) -> int:
        """Forget the revoked communicator's stream pins after a shrink.

        ``old_comm`` has been revoked — every command it still owned
        failed typed — and ``new_comm`` is its shrunk replacement.  The
        shrunk communicator is a distinct object, so its streams key
        fresh in the router; all this must do is drop the dead pins so
        the table does not grow across repeated shrinks.  Returns the
        number of released stream pins."""
        return self.router.release_comm(id(old_comm))

    def _maybe_scale(self) -> None:
        self._route_ops += 1
        if self._route_ops & (_SCALE_EVERY - 1):
            return
        with self._scale_lock:
            active = self._active
            depths = [len(e.queue) for e in self.engines[:active]]
            threshold = self.steal_threshold or DEFAULT_STEAL_THRESHOLD
            if active < len(self.engines) and max(depths) >= threshold:
                self._active = active + 1
                self._idle_evals = 0
                self.shard_scale_events += 1
            elif active > 1 and not any(depths):
                self._idle_evals += 1
                if self._idle_evals >= _SCALE_DOWN_EVALS:
                    self._active = active - 1
                    self._idle_evals = 0
                    self.shard_scale_events += 1
            else:
                self._idle_evals = 0

    # -- stealing -----------------------------------------------------------

    def _steal_for(self, thief: OffloadEngine):
        """Pick the deepest sibling ring past the threshold and steal
        one batch from it; installed as every shard's
        ``_steal_source``.  Returns ``(victim_queue, commands)`` or
        ``None``."""
        threshold = self.steal_threshold
        if threshold is None:
            return None
        best: OffloadEngine | None = None
        best_depth = threshold - 1
        for e in self.engines:
            if e is thief or e._dead is not None:
                continue
            depth = len(e.queue)
            if depth > best_depth:
                best, best_depth = e, depth
        if best is None:
            return None
        cmds = best.queue.steal_drain(thief.batch_size, stop=_is_control)
        if not cmds:
            return None
        return best.queue, cmds

    # -- single-engine compatibility surface --------------------------------

    @property
    def dead(self) -> BaseException | None:
        """Typed death only when *every* shard died; one dead shard
        leaves the pool serving (its streams remapped)."""
        first: BaseException | None = None
        for e in self.engines:
            if e._dead is None:
                return None
            if first is None:
                first = e._dead
        return first

    @property
    def recovery(self):
        return self.engines[0].recovery

    @property
    def pool(self) -> OffloadRequestPool:
        return self.request_pool

    @property
    def queue(self):
        return self.route().queue

    @property
    def queue_full_retries(self) -> int:
        return sum(e.queue_full_retries for e in self.engines)

    @property
    def telemetry(self):
        """Merged counters view (``None`` when telemetry is off)."""
        if self.engines[0].telemetry is None:
            return None
        return _PoolTelemetry(self)

    def pending_work(self) -> list[str]:
        out: list[str] = []
        for i, e in enumerate(self.engines):
            out.extend(
                f"shard {i}: {desc}" for desc in e.pending_work()
            )
        return out

    def stats(self) -> dict[str, int]:
        """Aggregated statistics across shards (sums; maxima for
        ``*_hwm``/``max_*``), plus pool-level routing/scaling rows."""
        total: dict[str, int] = {}
        for e in self.engines:
            for k, v in e.stats().items():
                if k.endswith("_hwm") or k.startswith("max_"):
                    total[k] = max(total.get(k, 0), v)
                else:
                    total[k] = total.get(k, 0) + v
        # The request pool is shared: per-shard views each saw the
        # whole pool, so the sum overcounted it.
        total["pool_allocated"] = self.request_pool.allocated
        total["continuation_fires"] = self.request_pool.continuation_fires
        total["continuation_drops"] = self.request_pool.continuation_drops
        total["engines"] = len(self.engines)
        total["active_shards"] = self._active
        total["shard_scale_events"] = self.shard_scale_events
        total["router_misroutes"] = self.router.misroutes
        return total

    def telemetry_snapshot(self, include_trace: bool = False) -> dict:
        """Merged structured snapshot across the pool's shards.

        Note the per-shard balance law intentionally breaks under
        stealing (the victim counts the enqueue, the thief the drain);
        the pool-merged snapshot is the balanced unit of accounting.
        """
        from repro import obs

        merged = obs.merge(
            [
                e.telemetry_snapshot(include_trace=include_trace)
                for e in self.engines
            ]
        )
        # Shared sections: every shard snapshotted the same request
        # pool and the same per-rank progress engine; keep one copy
        # instead of an N-fold sum.
        merged["pool"] = {
            "capacity": self.request_pool.capacity,
            "allocated": self.request_pool.allocated,
        }
        progress = getattr(self.comm, "engine", None)
        if progress is not None and hasattr(progress, "counters"):
            merged["progress"] = progress.counters()
        if merged.get("counters"):
            merged["counters"]["shard_scale_events"] = (
                self.shard_scale_events
            )
            merged["counters"]["router_misroutes"] = self.router.misroutes
        return merged

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "EnginePool":
        started = []
        try:
            for e in self.engines:
                e.start()
                started.append(e)
        except BaseException:
            for e in started:
                e.abort("pool start failed")
            raise
        return self

    def stop(self, timeout: float = 30.0) -> None:
        errors = []
        for e in self.engines:
            try:
                e.stop(timeout=timeout)
            except RuntimeError as exc:  # pragma: no cover - watchdog
                errors.append(exc)
                e.abort("pool stop escalation")
        if errors:  # pragma: no cover
            raise errors[0]

    def __enter__(self) -> "EnginePool":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
