"""Pre-allocated request slots for offloaded nonblocking calls.

Paper §3.1: a nonblocking offloaded call must return an ``MPI_Request``
to the application *before* the offload thread has invoked MPI, so no
real request exists yet.  The library therefore pre-allocates an array
of request objects, managed as an array-based singly linked free list,
and returns the slot *index* as the application-visible request.

Here the application-visible handle is :class:`OffloadRequest`, which
wraps a slot index and exposes ``test``/``wait`` that — per §3.2 —
"only need to check the appropriate *done* flag": the application
thread never pumps MPI progress itself; the offload thread's
``Testany`` loop completes the slot.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Any

from repro.dst import hooks as _dst
from repro.lockfree.atomics import AtomicFlag
from repro.lockfree.freelist import DoubleFree, FreeList, FreeListExhausted

__all__ = [
    "ContinuationError",
    "DoubleFree",
    "OffloadError",
    "OffloadEngineDied",
    "OffloadRequest",
    "OffloadRequestPool",
]
from repro.mpisim.status import EMPTY_STATUS, Status

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import OffloadEngine
    from repro.mpisim.requests import Request


class OffloadError(Exception):
    """An offloaded MPI operation failed; carries the original error."""


class OffloadEngineDied(OffloadError):
    """The offload thread terminated with pending work outstanding."""


class ContinuationError(OffloadError):
    """Invalid continuation registration (already registered / stale)."""


class _Slot:
    """Backing record for one in-flight offloaded request."""

    __slots__ = (
        "flag",
        "inner",
        "error",
        "generation",
        "cont",
        "cont_fired",
        "cont_lock",
    )

    def __init__(self) -> None:
        self.flag = AtomicFlag()
        self.inner: "Request | None" = None
        self.error: BaseException | None = None
        #: bumped on every free; detects use of stale handles
        self.generation = 0
        #: registered continuation (at most one per in-flight op)
        self.cont = None
        #: exactly-once guard: True once a delivery claimed the cont
        self.cont_fired = False
        #: guards cont/cont_fired; never held across a yield point
        self.cont_lock = threading.Lock()

    def reset(self) -> None:
        self.flag.clear()
        self.inner = None
        self.error = None
        self.cont = None
        self.cont_fired = False
        self.generation += 1


class OffloadRequestPool:
    """Fixed-size pool of slots behind a lock-free free list.

    ``cache_size`` enables per-thread slot caching: each application
    thread keeps a private stash of free slot indices, refilled from
    the shared :class:`~repro.lockfree.freelist.FreeList` in chunks of
    ``cache_size`` (one CAS per chunk via ``alloc_batch``) and spilled
    back in chunks once it grows past twice that.  Alloc/free then hit
    the shared head only once per ``cache_size`` operations, cutting
    CAS traffic — and CAS retry storms — when many application threads
    allocate concurrently.  ``cache_size=0`` disables caching.

    Cached slots are accounted *free*: :attr:`allocated` counts only
    slots actually handed to callers, so exhaustion and leak checks
    behave identically with and without caching.
    """

    def __init__(self, capacity: int = 4096, cache_size: int = 8) -> None:
        self._freelist: FreeList[None] = FreeList(capacity)
        self._slots = [_Slot() for _ in range(capacity)]
        self._cache_size = max(0, cache_size)
        self._local = threading.local()
        #: telemetry hook: a :class:`repro.obs.counters.Counters` the
        #: owning engine installs when telemetry is enabled (else None)
        self.telemetry = None
        #: continuation accounting, kept even with telemetry off so the
        #: serving tier can assert exactly-once delivery cheaply
        self.continuation_fires = 0
        self.continuation_drops = 0
        # DST fix-disable hooks (set only by repro.dst.targets): the
        # first drops the fail-path delivery (continuation-vs-crash),
        # the second skips the exactly-once claim under cont_lock
        # (continuation-double-fire).
        self._unsafe_skip_fire_on_fail = False
        self._unsafe_skip_fire_once_guard = False

    @property
    def capacity(self) -> int:
        return self._freelist.capacity

    @property
    def allocated(self) -> int:
        return self._freelist.allocated

    @property
    def cache_size(self) -> int:
        return self._cache_size

    def _cache(self) -> list:
        try:
            return self._local.cache
        except AttributeError:
            cache: list[int] = []
            self._local.cache = cache
            return cache

    def alloc(self) -> int:
        """Claim a slot index; raises :class:`FreeListExhausted`."""
        counters = self.telemetry
        if self._cache_size:
            cache = self._cache()
            if cache:
                idx = cache.pop()
                self._freelist.mark_live(idx)
                if counters is not None:
                    counters.inc("pool_cache_hits")
                    counters.inc("pool_allocs")
                    counters.record_max(
                        "pool_in_use_hwm", self._freelist.allocated
                    )
                return idx
            try:
                got = self._freelist.alloc_batch(self._cache_size)
            except FreeListExhausted:
                if counters is not None:
                    counters.inc("pool_exhausted")
                raise
            idx = got.pop()
            for extra in got:
                # Refill leftovers are parked, not handed out: flip
                # their ownership back so `allocated` stays exact.
                self._freelist.mark_free(extra)
            cache.extend(got)
            if counters is not None:
                counters.inc("pool_cache_misses")
                counters.inc("pool_allocs")
                counters.record_max(
                    "pool_in_use_hwm", self._freelist.allocated
                )
            return idx
        try:
            idx = self._freelist.alloc()
        except FreeListExhausted:
            if counters is not None:
                counters.inc("pool_exhausted")
            raise
        if counters is not None:
            counters.inc("pool_allocs")
            counters.record_max(
                "pool_in_use_hwm", self._freelist.allocated
            )
        return idx

    def slot(self, idx: int) -> _Slot:
        return self._slots[idx]

    def release(self, idx: int) -> None:
        """Recycle a completed slot.

        Raises :class:`~repro.lockfree.freelist.DoubleFree` when the
        slot is not currently allocated — caught here, at the offending
        call site, not when the corruption would have surfaced.
        """
        # Ownership flip first: of two racing releases exactly one
        # passes, the other raises DoubleFree before touching the slot.
        self._freelist.mark_free(idx)
        if self.telemetry is not None:
            self.telemetry.inc("pool_releases")
        slot = self._slots[idx]
        with slot.cont_lock:
            if slot.cont is not None and not slot.cont_fired:
                # A waiter consumed the slot directly (wait/test) while
                # a continuation was still pending: the registration is
                # destroyed undelivered, and must be accounted, not
                # silently lost.
                slot.cont_fired = True
                self._note_drop()
        slot.reset()
        if not self._cache_size:
            self._freelist.push(idx)
            return
        cache = self._cache()
        cache.append(idx)
        if len(cache) > 2 * self._cache_size:
            for _ in range(self._cache_size):
                self._freelist.push(cache.pop())

    # -- engine-side completion ------------------------------------------

    def publish_inner(self, idx: int, inner: "Request") -> None:
        """Engine: the real MPI request for this slot now exists."""
        self._slots[idx].inner = inner

    def complete(self, idx: int, status: Status | None) -> None:
        """Engine: the operation finished; wake any waiter."""
        slot = self._slots[idx]
        generation = slot.generation
        slot.flag.set(status or EMPTY_STATUS)
        if _dst._scheduler is not None:
            _dst.yield_point("pool.cont.complete")
        self._fire(slot, generation)

    def fail(self, idx: int, error: BaseException) -> None:
        slot = self._slots[idx]
        generation = slot.generation
        slot.error = error
        slot.flag.set(None)
        if self._unsafe_skip_fire_on_fail:
            return
        if _dst._scheduler is not None:
            _dst.yield_point("pool.cont.complete")
        self._fire(slot, generation)

    # -- continuations ---------------------------------------------------

    def register_continuation(self, idx: int, generation: int, fn) -> None:
        """Attach ``fn()`` to run exactly once at the slot's terminal
        state — success *or* typed failure (timeout, crash, revoke,
        shrink all funnel through :meth:`fail`).

        At most one continuation per in-flight operation; a second
        registration raises :class:`ContinuationError`.  Registering
        after the operation already completed fires immediately on the
        calling thread; otherwise the completing thread (normally the
        engine) fires it.
        """
        slot = self._slots[idx]
        with slot.cont_lock:
            if slot.generation != generation:
                raise ContinuationError(
                    "continuation registered on a stale request handle"
                )
            if slot.cont is not None:
                raise ContinuationError(
                    "request already has a continuation registered"
                )
            slot.cont = fn
        if _dst._scheduler is not None:
            _dst.yield_point("pool.cont.register")
        if slot.flag.is_set():
            # Completed before (or while) we registered: deliver from
            # here; _fire's claim resolves the race with the completer.
            self._fire(slot, generation)

    def _fire(self, slot: _Slot, generation: int) -> bool:
        """Deliver the slot's continuation exactly once.

        The claim (``cont_fired`` flip under ``cont_lock``) is what
        makes register-vs-complete races safe: both sides may reach
        here, exactly one wins, the loser returns quietly — the
        delivery *did* happen, so nothing is dropped.  (``drops``
        count only deliveries that never happen: see :meth:`release`
        and the bridge's closed-loop path.)  The generation check
        keeps a delayed completer from firing a *new* owner's
        continuation after the slot was recycled.
        """
        with slot.cont_lock:
            fn = slot.cont
            if fn is None or slot.generation != generation:
                return False
            if not self._unsafe_skip_fire_once_guard and slot.cont_fired:
                return False
            slot.cont_fired = True
        if _dst._scheduler is not None:
            _dst.yield_point("pool.cont.fire")
        self.continuation_fires += 1
        if self.telemetry is not None:
            self.telemetry.inc("continuation_fires")
        try:
            fn()
        except BaseException:
            # A continuation must never take down its firing thread
            # (usually the engine loop); the callback owns its errors.
            pass
        return True

    def _note_drop(self) -> None:
        self.continuation_drops += 1
        if self.telemetry is not None:
            self.telemetry.inc("continuation_drops")


class OffloadRequest:
    """Application-visible handle for an offloaded nonblocking call.

    ``test``/``wait`` check only the slot's done flag — O(1), no MPI
    entry, no lock — which is how the offload approach collapses
    ``MPI_Wait*`` cost (paper §3.2 and Table 1's "<1 µs" post/wait
    columns).
    """

    __slots__ = (
        "_pool",
        "_idx",
        "_generation",
        "_released",
        "_lock",
        "_engine",
    )

    def __init__(
        self,
        pool: OffloadRequestPool,
        idx: int,
        engine: "OffloadEngine | None" = None,
    ) -> None:
        self._pool = pool
        self._idx = idx
        self._generation = pool.slot(idx).generation
        self._released = False
        self._lock = threading.Lock()
        #: set only when the engine carries a RecoveryPolicy — enables
        #: the health-sampling wait path (None keeps the fast path)
        self._engine = engine

    @property
    def slot_index(self) -> int:
        return self._idx

    def _check_fresh(self) -> _Slot:
        slot = self._pool.slot(self._idx)
        if self._released or slot.generation != self._generation:
            raise OffloadError("request handle used after completion/free")
        return slot

    @property
    def done(self) -> bool:
        return self._check_fresh().flag.is_set()

    def add_continuation(self, fn) -> None:
        """Run ``fn()`` exactly once when this request reaches a
        terminal state (completion or typed failure).

        The callback receives no arguments and typically calls
        :meth:`test` to collect the status or raise the typed error —
        the continuation, not the registrant, then owns releasing the
        slot.  One continuation per request; re-registration raises
        :class:`ContinuationError`.  If the request already completed,
        ``fn`` runs immediately on the calling thread; otherwise it
        runs on the completing thread (the engine loop, or whichever
        thread delivers the typed failure).
        """
        self._check_fresh()
        self._pool.register_continuation(self._idx, self._generation, fn)

    def test(self) -> tuple[bool, Status | None]:
        """Flag check only; frees the slot on completion."""
        slot = self._check_fresh()
        if not slot.flag.is_set():
            return False, None
        return True, self._finish(slot)

    def wait(self, timeout: float | None = None) -> Status:
        """Spin-then-block on the done flag; frees the slot."""
        slot = self._check_fresh()
        engine = self._engine
        if engine is not None and engine.recovery is not None:
            self._recovery_wait(slot, timeout, engine)
        elif not slot.flag.wait(timeout):
            raise TimeoutError(
                f"offloaded request (slot {self._idx}) pending after "
                f"{timeout}s"
            )
        st = self._finish(slot)
        assert st is not None
        return st

    def _recovery_wait(
        self, slot: _Slot, timeout: float | None, engine: "OffloadEngine"
    ) -> None:
        """Flag wait that samples engine health between slices.

        If the engine dies while this slot is pending, the waiter
        *abandons* the slot (never recycled) and raises — the wedged
        engine thread may still hold a reference and complete it later;
        recycling here could corrupt a fresh allocation.  A dead
        engine's pool is never reused, so the leak is bounded.
        """
        from repro.core.recovery import EngineWatchdog

        rec = engine.recovery
        assert rec is not None
        deadline = None if timeout is None else time.perf_counter() + timeout
        watchdog = (
            EngineWatchdog(engine, rec.watchdog_timeout)
            if rec.watchdog_timeout is not None
            else None
        )
        while True:
            step = rec.poll_interval
            if deadline is not None:
                step = min(step, deadline - time.perf_counter())
                if step <= 0 and not slot.flag.is_set():
                    raise TimeoutError(
                        f"offloaded request (slot {self._idx}) pending "
                        f"after {timeout}s"
                    )
            if slot.flag.wait(max(step, 0.0)):
                return
            if engine.dead is not None and not slot.flag.is_set():
                with self._lock:
                    self._released = True  # abandon, never recycle
                raise OffloadEngineDied(
                    f"offload engine terminated with request "
                    f"(slot {self._idx}) pending: {engine.dead}"
                )
            if watchdog is not None:
                watchdog.check()

    def _finish(self, slot: _Slot) -> Status | None:
        with self._lock:
            if self._released:
                raise OffloadError("request handle completed twice")
            self._released = True
        error = slot.error
        payload: Any = slot.flag.payload
        self._pool.release(self._idx)
        if error is not None:
            if isinstance(error, OffloadError):
                raise error
            raise OffloadError(str(error)) from error
        return payload if isinstance(payload, Status) else EMPTY_STATUS
