"""The offload engine: a dedicated communication thread per rank.

Implements the loop of paper §3.1–§3.3:

1. drain the lock-free command queue, issuing the corresponding MPI
   calls (blocking commands are first converted to their nonblocking
   equivalents so they cannot stall the engine);
2. when the queue is empty, drive asynchronous progress on every
   in-flight request (the ``MPI_Testany()`` sweep of §3.2), completing
   done flags / request-pool slots as operations finish.

The engine designates itself the rank's *funnel thread*, so the
substrate's thread-level enforcement proves the paper's claim that the
MPI library only ever sees a single calling thread — even when many
application threads issue MPI calls concurrently.
"""

from __future__ import annotations

import heapq
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.commands import (
    Command,
    CommandKind,
    IDEMPOTENT_KINDS,
    INLINE_KINDS,
    NONBLOCKING_KINDS,
)
from repro.core.recovery import (
    OffloadStopTimeout,
    OffloadTimeout,
    RecoveryPolicy,
)
from repro.core.request_pool import (
    OffloadEngineDied,
    OffloadRequestPool,
)
from repro.dst import hooks as _dst
from repro.lockfree.atomics import AtomicFlag
from repro.lockfree.mpsc_queue import MPSCQueue, QueueClosed, QueueFull
from repro import obs

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.plan import FaultPlan
    from repro.mpisim.communicator import Communicator
    from repro.mpisim.requests import Request

#: Default commands drained per loop iteration (one ``drain`` call)
#: before the single per-batch progress sweep; override per engine with
#: the ``batch_size`` constructor knob.
_BATCH = 64
#: Default per-thread request-pool cache chunk (``pool_cache`` knob).
_POOL_CACHE = 8
#: Idle sleep when there is nothing to do (lets app threads run; the
#: Python analogue of the offload thread sitting on its own core).
_IDLE_SLEEP = 2e-5
#: Ceiling for the exponential idle backoff: a fully idle engine still
#: pumps progress at this period, bounding the latency of serving
#: incoming RMA/rendezvous traffic while not starving app threads.
_IDLE_SLEEP_MAX = 1e-3


def _is_rank_dead(exc: BaseException) -> bool:
    """Is ``exc`` (or its cause chain) a substrate RankDeadError?"""
    from repro.mpisim.exceptions import RankDeadError

    seen = 0
    while exc is not None and seen < 8:
        if isinstance(exc, RankDeadError):
            return True
        exc = exc.__cause__ or exc.__context__
        seen += 1
    return False


@dataclass(slots=True)
class _InFlight:
    inner: "Request"
    slot: int = -1
    flag: AtomicFlag | None = None
    command: Command | None = None


class OffloadEngine:
    """Dedicated MPI thread for one rank.

    Parameters
    ----------
    comm:
        The rank's communicator on the substrate (typically the world
        communicator).  All offloaded traffic flows through its
        progress engine; commands may nonetheless carry *any*
        communicator that shares the engine (e.g. dup'ed ones).
    pool_capacity / queue_capacity:
        Sizes of the pre-allocated request pool and command ring.
    batch_size:
        Commands drained from the ring per loop iteration; the whole
        batch is issued before the single per-batch progress pump and
        retry/deadline sweep, amortizing per-iteration overhead over
        up to ``batch_size`` commands.
    coalesce_eager:
        Pack consecutive eager-sized sends to the same destination
        (within a batch) into one simulated wire message.  Invisible
        to matching semantics; see
        :class:`repro.core.offload_comm.EagerCoalescer`.
    pool_cache:
        Per-thread request-pool cache chunk (0 disables); see
        :class:`~repro.core.request_pool.OffloadRequestPool`.
    zero_copy:
        ``True``/``False`` switches the *rank's* substrate progress
        engine onto/off the zero-copy data plane (DESIGN.md §14):
        offloaded eager sends of contiguous buffers then ship a
        borrowed view and pay exactly one copy, at match time — the
        paper's "no extra copy out of user buffers" claim.  The flag
        is rank-wide (the progress engine is shared by every shard and
        the app's direct calls); ``None`` leaves the current setting
        untouched.
    request_pool:
        Share an existing :class:`OffloadRequestPool` instead of
        constructing a private one.  An :class:`EnginePool` passes one
        pool to all its shards so any engine (including a thief that
        stole another shard's batch) can complete any slot, and so the
        facade can allocate a slot before routing.
    """

    def __init__(
        self,
        comm: "Communicator",
        pool_capacity: int = 4096,
        queue_capacity: int = 4096,
        telemetry: bool | None = None,
        faults: "FaultPlan | None" = None,
        recovery: RecoveryPolicy | None = None,
        batch_size: int = _BATCH,
        coalesce_eager: bool = False,
        pool_cache: int = _POOL_CACHE,
        request_pool: OffloadRequestPool | None = None,
        zero_copy: bool | None = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.comm = comm
        if zero_copy is not None:
            comm.engine.zero_copy = zero_copy
        self.queue: MPSCQueue[Command] = MPSCQueue(queue_capacity)
        self.pool = (
            request_pool
            if request_pool is not None
            else OffloadRequestPool(pool_capacity, cache_size=pool_cache)
        )
        self.batch_size = batch_size
        if coalesce_eager:
            # Function-level import: offload_comm imports this module.
            from repro.core.offload_comm import EagerCoalescer

            self._coalescer: "EagerCoalescer | None" = EagerCoalescer()
        else:
            self._coalescer = None
        #: commands drained from the ring but not yet dispatched; kept
        #: on the instance (not a loop local) so `_fail_pending` can
        #: fail a partially processed batch after a mid-batch crash
        self._drained: deque[Command] = deque()
        self._thread: threading.Thread | None = None
        self._wake = threading.Event()
        self._dead: BaseException | None = None
        self._in_flight: list[_InFlight] = []
        self._flushes: list[Command] = []
        self._prev_funnel: int | None = None
        # -- fault injection + recovery (both None in normal operation:
        # every hook site is a single `is None` check) --------------------
        if faults is None:
            faults = getattr(comm.world, "fault_plan", None)
        self._faults = faults
        self.recovery = recovery
        #: bumped once per loop iteration; sampled by EngineWatchdog
        self.heartbeat = 0
        #: retry heap: (due_time, seq, command)
        self._retries: list[tuple[float, int, Command]] = []
        self._retry_seq = 0
        self._trip_lock = threading.Lock()
        # -- telemetry (zero-overhead when disabled: every hot path
        # guards on a single `is None` check of self._telem) -------------
        if telemetry is None:
            telemetry = obs.enabled()
        self._telem: obs.Telemetry | None = (
            obs.Telemetry() if telemetry else None
        )
        if self._telem is not None:
            self.queue.track_occupancy = True
            if self.pool.telemetry is None:
                # A shared pool keeps the first shard's counters: pool
                # alloc/release telemetry is pool-global, and wiring it
                # to every shard would double-count each event.
                self.pool.telemetry = self._telem.counters
        # -- statistics ---------------------------------------------------
        self.commands_processed = 0
        self.progress_sweeps = 0
        self.completions = 0
        self.max_in_flight = 0
        self.queue_full_retries = 0
        self.retry_count = 0
        self.deadline_expirations = 0
        self.watchdog_trips = 0
        self.degraded_commands = 0
        self.batch_dequeues = 0
        self.batch_size_hwm = 0
        self.coalesced_messages = 0
        self.steals = 0
        self.steal_batch_hwm = 0
        #: installed by EnginePool: callable(thief) -> (victim_queue,
        #: commands) | None.  When set, an idle engine asks the pool
        #: for a batch stolen from the deepest sibling ring.
        self._steal_source = None
        #: DST-only regression hook: when True, a thief that crashes
        #: while issuing a stolen batch never releases the victim
        #: ring's ``steal_pending`` — the wedged-victim leak the
        #: try/finally in `_try_steal` exists to prevent.
        self._unsafe_steal_leak_on_crash = False
        #: DST-only regression hook: when True, `_fail_pending` drops
        #: the unprocessed tail of a mid-batch crash instead of failing
        #: it — the lost-command bug `self._drained` was introduced to
        #: fix.  Only ever set by the regression corpus
        #: (repro.dst.targets), never by production code.
        self._unsafe_drop_drained_on_fail = False

    # ------------------------------------------------------------ lifecycle

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    @property
    def dead(self) -> BaseException | None:
        return self._dead

    def start(self) -> "OffloadEngine":
        """Spawn the communication thread (paper: at ``MPI_Init``)."""
        if self._thread is not None:
            raise RuntimeError("offload engine already started")
        self._thread = threading.Thread(
            target=self._run,
            name=f"offload-rank-{self.comm.engine.rank}",
            daemon=True,
        )
        started = threading.Event()
        self._started_evt = started
        self._thread.start()
        started.wait()
        return self

    def stop(self, timeout: float = 30.0) -> None:
        """Drain outstanding work, then join the thread.

        Pending operations that can never complete (e.g. receives whose
        sends were never posted) make a clean stop impossible — like
        ``MPI_Finalize`` with outstanding requests.  On timeout expiry
        this raises :class:`~repro.core.recovery.OffloadStopTimeout`
        naming the still-outstanding operations; use :meth:`abort` to
        tear down regardless.
        """
        if _dst._scheduler is not None:
            _dst.yield_point("engine.stop")
        if self._thread is None:
            return
        thread = self._thread
        if self._dead is None:
            try:
                self.submit(Command(CommandKind.SHUTDOWN))
            except OffloadEngineDied:
                pass  # died between the check and the submit
        thread.join(timeout)
        if thread.is_alive():
            pending = self.pending_work()
            raise OffloadStopTimeout(
                f"offload thread failed to stop within {timeout}s; "
                f"{len(pending)} operation(s) outstanding "
                f"({'; '.join(pending) or 'none visible'}); "
                "use abort() to force teardown",
                pending=pending,
            )
        self._thread = None
        if self._telem is not None:
            obs.record_snapshot(self.telemetry_snapshot())

    def abort(
        self, reason: str = "engine aborted", join_timeout: float = 5.0
    ) -> None:
        """Force-stop: fail everything pending and kill the loop."""
        exc = OffloadEngineDied(reason)
        self._dead = exc
        self._wake.set()
        thread = self._thread
        if thread is not None:
            thread.join(join_timeout)
            if thread.is_alive():
                # Wedged mid-operation: the queue is single-consumer, so
                # only the engine thread may drain it.  It fails all
                # pending work itself the moment it wakes and observes
                # `_dead`; recovery-aware waiters observe `dead` and do
                # not block on that.
                return
            self._thread = None
        self._fail_pending(exc)
        if self._telem is not None:
            obs.record_snapshot(self.telemetry_snapshot())

    def watchdog_trip(self, reason: str) -> None:
        """A caller detected a wedged/vanished engine thread.

        Poisons the engine (every subsequent ``submit`` raises and
        every recovery-aware waiter unblocks with
        :class:`OffloadEngineDied`) and, if the thread is already gone,
        fails all pending work immediately.  A wedged-but-alive thread
        fails its own pending work when it next wakes — the command
        queue is single-consumer, so nobody else may drain it.
        """
        with self._trip_lock:
            if self._dead is not None:
                return
            self.watchdog_trips += 1
            if self._telem is not None:
                self._telem.counters.inc("watchdog_trips")
                if self._telem.trace is not None:
                    self._telem.trace.append(
                        "watchdog_trip", rank=self.comm.engine.rank
                    )
            exc = OffloadEngineDied(f"watchdog tripped: {reason}")
            self._dead = exc
        self._wake.set()
        thread = self._thread
        if thread is not None:
            thread.join(0.2)
            if thread.is_alive():
                return
        self._fail_pending(exc)

    def pending_work(self) -> list[str]:
        """Best-effort descriptions of everything not yet terminal.

        Read from the caller's thread without synchronization (the
        engine may be mutating concurrently) — diagnostic only.
        """
        out: list[str] = []
        for entry in list(self._in_flight):
            cmd = entry.command
            if cmd is None:
                out.append("<untracked request>")
                continue
            desc = cmd.kind.name.lower()
            if entry.slot >= 0:
                desc += f"[slot {entry.slot}]"
            if cmd.peer >= 0:
                desc += f" peer={cmd.peer}"
            if cmd.tag:
                desc += f" tag={cmd.tag}"
            out.append(desc)
        queued = len(self.queue)
        if queued:
            out.append(f"{queued} queued command(s)")
        drained = len(self._drained)
        if drained:
            out.append(f"{drained} drained command(s) awaiting dispatch")
        if self._retries:
            out.append(f"{len(self._retries)} scheduled retry(s)")
        return out

    def __enter__(self) -> "OffloadEngine":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def route(self, cmd: Command | None = None) -> "OffloadEngine":
        """Pool/group compatibility: a bare engine routes to itself."""
        return self

    def remap_shrunk(self, old_comm, new_comm) -> int:
        """Pool compatibility: a bare engine keeps no per-communicator
        routing state, so a shrink needs no remap here."""
        return 0

    # ------------------------------------------------------------ submission

    def submit(self, cmd: Command) -> None:
        """Enqueue a command (called from application threads).

        This is the app-side cost of an offloaded call: one lock-free
        enqueue (~140 ns in the paper's C implementation).  On a full
        ring we spin-retry — backpressure, not failure — but only while
        a live engine thread can actually drain the ring: retrying
        against a dead (or never-started) engine raises instead of
        spinning forever.
        """
        tm = self._telem
        if _dst._scheduler is not None:
            _dst.yield_point("engine.submit")
        if self._dead is not None:
            raise OffloadEngineDied(
                f"offload engine terminated: {self._dead}"
            )
        while True:
            try:
                self.queue.enqueue(cmd)
                break
            except QueueClosed as closed:
                # The ring only closes during teardown; the re-check
                # after the enqueue CAS guarantees the command was NOT
                # committed (no completion will ever arrive), so fail
                # it here with a typed error rather than lose it.
                raise OffloadEngineDied(
                    "offload engine is shutting down; command ring is "
                    "closed"
                ) from closed
            except QueueFull:
                self.queue_full_retries += 1
                if tm is not None:
                    tm.counters.inc("queue_full_retries")
                    if tm.trace is not None:
                        tm.trace.append(
                            "queue_full", rank=self.comm.engine.rank
                        )
                if self._dead is not None:
                    raise OffloadEngineDied(
                        f"offload engine terminated with the command "
                        f"ring full: {self._dead}"
                    ) from self._dead
                thread = self._thread
                if thread is None or not thread.is_alive():
                    raise OffloadEngineDied(
                        "command ring full and no offload thread is "
                        "running to drain it (engine not started or "
                        "already stopped)"
                    )
                self._wake.set()
                if _dst.is_virtual_thread():
                    # Under DST a real wait would stall the scheduler;
                    # yield so it can run the draining engine thread.
                    _dst.yield_point("engine.submit.retry")
                else:
                    threading.Event().wait(1e-5)
        if tm is not None:
            tm.counters.inc("enqueues")
        self._wake.set()

    # ------------------------------------------------------------ main loop

    def _run(self) -> None:
        world = self.comm.world
        rank = self.comm.engine.rank
        self._prev_funnel = world.funnel_thread(rank)
        world.set_funnel_thread(rank, threading.get_ident())
        self._started_evt.set()
        shutdown = False
        idle_sleep = _IDLE_SLEEP
        tm = self._telem
        counters = tm.counters if tm is not None else None
        # Mirror engine telemetry into the substrate's progress engine
        # (trace only; the progress engine keeps its own counters).
        progress_engine = self.comm.engine
        attached_trace = False
        if (
            tm is not None
            and tm.trace is not None
            and progress_engine.trace is None
        ):
            progress_engine.trace = tm.trace
            attached_trace = True
        try:
            while self._dead is None:
                self.heartbeat += 1
                did = 0
                # One drain call per iteration pulls a whole batch off
                # the ring; the batch is fully issued before the single
                # progress pump + retry/deadline sweep below, so the
                # per-iteration overhead is paid once per *batch*, not
                # once per command.
                batch = self.queue.drain(self.batch_size)
                if batch:
                    did += len(batch)
                    self._drained.extend(batch)
                    self.batch_dequeues += 1
                    if len(batch) > self.batch_size_hwm:
                        self.batch_size_hwm = len(batch)
                    if counters is not None:
                        counters.inc("commands_drained", len(batch))
                        counters.inc("batch_dequeues")
                        counters.record_max("batch_size_hwm", len(batch))
                    if self._process_batch():
                        shutdown = True
                    # The batch is fully issued (or terminal); with
                    # stealing enabled this re-opens the ring to
                    # thieves.  No-op on a plain ring.
                    self.queue.consume_done()
                did += self._sweep()
                if counters is not None:
                    counters.inc("testany_sweeps")
                if self._retries:
                    did += self._run_due_retries()
                self._check_flushes()
                if (
                    shutdown
                    and self.queue.empty()
                    and not self._in_flight
                    and not self._retries
                ):
                    # Close the ring *before* the final look: a racing
                    # submit either committed before the close (its
                    # command surfaces in drain_closed and is processed
                    # below) or observes the close and fails with a
                    # typed error — nothing is silently lost.
                    self.queue.close()
                    tail = self.queue.drain_closed()
                    if not tail:
                        break
                    self._drained.extend(tail)
                    if counters is not None:
                        counters.inc("commands_drained", len(tail))
                    if self._process_batch():
                        shutdown = True
                if (
                    did == 0
                    and not shutdown
                    and not self._in_flight
                    and self._steal_source is not None
                ):
                    # Fully idle with siblings possibly backed up:
                    # batch-steal from the deepest sibling ring.
                    did += self._try_steal()
                if did == 0:
                    if self._in_flight:
                        # Work in flight: keep pumping progress, just
                        # yield the GIL briefly so app threads run —
                        # the Python stand-in for spinning on a
                        # dedicated core.
                        time.sleep(0)
                    else:
                        # Fully idle: block cheaply with exponential
                        # backoff (still pumping progress each wake so
                        # incoming RMA/rendezvous traffic is served),
                        # wake immediately on a new command.
                        if counters is not None:
                            counters.inc("idle_backoff_entries")
                        wait_for = idle_sleep
                        if self._retries:
                            wait_for = min(
                                wait_for,
                                max(
                                    1e-5,
                                    self._retries[0][0]
                                    - time.perf_counter(),
                                ),
                            )
                        self._wake.wait(wait_for)
                        self._wake.clear()
                        idle_sleep = min(idle_sleep * 2, _IDLE_SLEEP_MAX)
                else:
                    idle_sleep = _IDLE_SLEEP
            if self._dead is not None:
                # Poisoned while running (abort/watchdog on a wedged
                # loop): we are the only legal queue consumer, so fail
                # everything pending from here.
                self._fail_pending(self._dead)
        except BaseException as exc:  # noqa: BLE001 - reported via slots
            if isinstance(exc, OffloadEngineDied):
                died = exc
            else:
                died = OffloadEngineDied(
                    f"offload thread crashed: {exc!r}"
                )
                died.__cause__ = exc
            self._dead = died
            self._fail_pending(died)
        finally:
            if attached_trace:
                progress_engine.trace = None
            # Restore the funnel designation only if we still hold it —
            # a degraded facade may have re-pointed it at an app thread.
            if world.funnel_thread(rank) == threading.get_ident():
                world.set_funnel_thread(rank, self._prev_funnel)

    # ------------------------------------------------------------ processing

    def _process_batch(self) -> bool:
        """Dispatch every command in ``self._drained``; True on SHUTDOWN.

        When coalescing is enabled, consecutive eager-sized sends to
        the same destination are collected into a run and issued as one
        wire message (``_flush_run``); any other command — a receive, a
        collective, a send to a different peer — flushes the pending
        run first, so per-peer program order is preserved exactly.

        Commands still held locally (the unprocessed tail of the batch
        and any pending run) are pushed back onto ``self._drained``
        before a crash propagates, so ``_fail_pending`` fails them with
        typed errors just like still-queued commands.
        """
        counters = (
            self._telem.counters if self._telem is not None else None
        )
        coalescer = self._coalescer
        shutdown = False
        run: list[Command] = []
        try:
            while self._drained:
                cmd = self._drained.popleft()
                if cmd.kind is CommandKind.SHUTDOWN:
                    if counters is not None:
                        counters.inc("control_commands")
                    shutdown = True
                    continue
                if coalescer is not None and coalescer.eligible(cmd):
                    if run and not (
                        coalescer.same_stream(run[-1], cmd)
                        and len(run) < coalescer.limit
                    ):
                        # hand off before the call: `_flush_run` owns
                        # the list (including on raise), so we must not
                        # still hold it in our except clause
                        handoff, run = run, []
                        self._flush_run(handoff)
                    run.append(cmd)
                    continue
                if run:
                    handoff, run = run, []
                    self._flush_run(handoff)
                self._process(cmd)
            if run:
                handoff, run = run, []
                self._flush_run(handoff)
        except BaseException:
            # `_process`/`_flush_run` guarantee the command(s) they
            # were handed are terminal (or already restored) when they
            # raise; restore everything *we* still hold.
            self._drained.extendleft(reversed(run))
            raise
        return shutdown

    def _try_steal(self) -> int:
        """Steal and issue one batch from a sibling ring (pool mode).

        The stolen commands are appended to *our* ``_drained`` and
        issued through the normal ``_process_batch`` path, so crash
        handling, retries, coalescing and telemetry treat them exactly
        like locally drained commands (the thief's counters absorb
        them: per-engine balance intentionally breaks under stealing,
        pool-merged balance holds).  The victim ring's ``steal_pending``
        is released even when dispatch crashes this engine — otherwise
        the surviving victim could never hand out batches again.
        """
        source = self._steal_source
        if source is None or self._dead is not None:
            return 0
        picked = source(self)
        if picked is None:
            return 0
        victim_queue, cmds = picked
        if not cmds:
            return 0
        self.steals += 1
        if len(cmds) > self.steal_batch_hwm:
            self.steal_batch_hwm = len(cmds)
        counters = (
            self._telem.counters if self._telem is not None else None
        )
        if counters is not None:
            counters.inc("steals")
            counters.record_max("steal_batch_hwm", len(cmds))
            counters.inc("commands_drained", len(cmds))
        self._drained.extend(cmds)
        try:
            self._process_batch()
        except BaseException:
            if not self._unsafe_steal_leak_on_crash:
                victim_queue.steal_done()
            raise
        victim_queue.steal_done()
        return len(cmds)

    def _flush_run(self, run: list[Command]) -> None:
        """Issue a run of coalescible sends as one wire message.

        Owns ``run``: when this returns or raises, every member is
        terminal, in flight, or back on ``self._drained`` — never held
        anywhere a crash could lose it.
        """
        if len(run) == 1:
            self._process(run[0])
            return
        tm = self._telem
        rank = self.comm.engine.rank
        live: list[Command] = []
        idx = 0
        try:
            for idx, cmd in enumerate(run):
                # Per-command admission mirrors `_process` exactly:
                # deadline check and fault hook run individually, so
                # injection and expiry semantics are batch-invisible.
                self.commands_processed += 1
                if tm is not None and tm.trace is not None:
                    tm.trace.append(
                        f"dispatch:{cmd.kind.name.lower()}",
                        rank=rank,
                        slot=cmd.slot,
                    )
                if (
                    cmd.deadline is not None
                    and time.perf_counter() > cmd.deadline
                ):
                    self._expire(cmd, slot=cmd.slot)
                    continue
                if self._faults is not None:
                    fault = self._faults.on_command(self, cmd)
                    if fault is not None:
                        self._command_failed(cmd, fault)
                        continue
                live.append(cmd)
        except BaseException as crash:
            # Crash injection mid-run: terminal-fail the command that
            # crashed, restore the rest for `_fail_pending`.
            self._command_failed(cmd, crash)
            self._drained.extendleft(reversed(live + run[idx + 1 :]))
            raise
        if not live:
            return
        if len(live) == 1:
            cmd = live[0]
            try:
                self._dispatch(cmd)
            except BaseException as exc:  # noqa: BLE001 - surfaced to caller
                self._command_failed(cmd, exc)
            return
        comm = live[0].comm
        assert comm is not None
        try:
            inners = comm.isend_coalesced(
                [(cmd.buf, cmd.tag) for cmd in live], live[0].peer
            )
        except BaseException as exc:  # noqa: BLE001 - surfaced to caller
            # Whole-message failures only (per-command validity was
            # established by `EagerCoalescer.eligible`): e.g. the
            # destination rank died.  Fail — or retry, sends are
            # idempotent — each member individually.
            for cmd in live:
                self._command_failed(cmd, exc)
            return
        self.coalesced_messages += 1
        if tm is not None:
            tm.counters.inc("coalesced_messages")
        for cmd, inner in zip(live, inners):
            if cmd.kind is CommandKind.SEND:
                self._track(inner, cmd, flag=cmd.done)
            else:
                self._track(inner, cmd, slot=cmd.slot)

    def _process(self, cmd: Command) -> None:
        self.commands_processed += 1
        tm = self._telem
        if tm is not None and tm.trace is not None:
            tm.trace.append(
                f"dispatch:{cmd.kind.name.lower()}",
                rank=self.comm.engine.rank,
                slot=cmd.slot,
            )
        if (
            cmd.deadline is not None
            and time.perf_counter() > cmd.deadline
        ):
            # Sat in the queue (or the retry heap) past its deadline.
            self._expire(cmd, slot=cmd.slot)
            return
        if self._faults is not None:
            try:
                fault = self._faults.on_command(self, cmd)
            except BaseException as crash:
                # Crash injection: this command was already drained, so
                # terminal-fail it first (its waiter gets a typed error
                # and the telemetry balance law stays intact), *then*
                # let the crash kill the engine loop.
                self._command_failed(cmd, crash)
                raise
            if fault is not None:
                self._command_failed(cmd, fault)
                return
        if _dst._scheduler is not None and _dst.crash_point("engine.dispatch"):
            # DST crash injection takes the same path as a FaultPlan
            # crash: the drained command is terminal-failed first, then
            # the exception kills the engine loop (whose `_fail_pending`
            # covers everything still queued or drained).
            crash = _dst.ScheduledCrash(
                "DST crash injected at engine.dispatch"
            )
            self._command_failed(cmd, crash)
            raise crash
        try:
            self._dispatch(cmd)
        except BaseException as exc:  # noqa: BLE001 - surfaced to caller
            self._command_failed(cmd, exc)

    def _command_failed(self, cmd: Command, exc: BaseException) -> None:
        """A dispatch attempt failed: retry per policy or fail."""
        rec = self.recovery
        if (
            rec is not None
            and getattr(rec, "rank_failure", "fail") == "shrink"
            and cmd.comm is not None
            and _is_rank_dead(exc)
        ):
            # ULFM recovery mode: a peer death surfaced through this
            # command — revoke its communicator so every survivor's
            # operations on it fail typed *now* (locally, remotely via
            # REVOKE notices), unblocking the revoke→agree→shrink
            # driver instead of leaving siblings to time out one by
            # one.  Idempotent; the command itself still fails below.
            try:
                cmd.comm.revoke()
            except Exception:  # noqa: BLE001 - revoke is best-effort
                pass
        if (
            rec is not None
            and rec.retry is not None
            and cmd.kind in IDEMPOTENT_KINDS
            and cmd.attempts < rec.retry.max_retries
            and isinstance(exc, rec.retry.retry_on)
        ):
            cmd.attempts += 1
            self.retry_count += 1
            if self._telem is not None:
                self._telem.counters.inc("retries")
            due = time.perf_counter() + rec.retry.backoff(cmd.attempts)
            self._retry_seq += 1
            heapq.heappush(self._retries, (due, self._retry_seq, cmd))
            return
        if self._telem is not None:
            self._telem.counters.inc("completions")
        if cmd.kind in NONBLOCKING_KINDS:
            self.pool.fail(cmd.slot, exc)
        else:
            cmd.error = exc
            if cmd.done is not None:
                cmd.done.set(None)

    def _run_due_retries(self) -> int:
        """Re-drive retry-scheduled commands whose backoff elapsed."""
        now = time.perf_counter()
        n = 0
        while self._retries and self._retries[0][0] <= now:
            _, _, cmd = heapq.heappop(self._retries)
            n += 1
            self._process(cmd)
        return n

    def _expire(self, cmd: Command, slot: int = -1) -> None:
        """Terminal-fail a command that missed its deadline."""
        self.deadline_expirations += 1
        tm = self._telem
        if tm is not None:
            tm.counters.inc("deadline_expirations")
            tm.counters.inc("completions")
            if tm.trace is not None:
                tm.trace.append(
                    "deadline_expired",
                    rank=self.comm.engine.rank,
                    slot=slot,
                )
        exc = OffloadTimeout(
            f"offloaded {cmd.kind.name.lower()} missed its deadline "
            f"(after {cmd.attempts} retr{'y' if cmd.attempts == 1 else 'ies'})"
            if cmd.attempts
            else f"offloaded {cmd.kind.name.lower()} missed its deadline"
        )
        if cmd.kind in NONBLOCKING_KINDS:
            self.pool.fail(cmd.slot, exc)
        else:
            cmd.error = exc
            if cmd.done is not None:
                cmd.done.set(None)

    def _dispatch(self, cmd: Command) -> None:
        comm = cmd.comm
        kind = cmd.kind
        K = CommandKind
        if kind is K.ISEND:
            assert comm is not None
            inner = comm.isend(cmd.buf, cmd.peer, cmd.tag)
            self._track(inner, cmd, slot=cmd.slot)
        elif kind is K.IRECV:
            assert comm is not None
            inner = comm.irecv(cmd.buf, cmd.peer, cmd.tag)
            self._track(inner, cmd, slot=cmd.slot)
        elif kind is K.SEND:
            # §3.3: blocking calls become nonblocking + completion flag
            # so they cannot stall the engine.
            assert comm is not None
            inner = comm.isend(cmd.buf, cmd.peer, cmd.tag)
            self._track(inner, cmd, flag=cmd.done)
        elif kind is K.RECV:
            assert comm is not None
            inner = comm.irecv(cmd.buf, cmd.peer, cmd.tag)
            self._track(inner, cmd, flag=cmd.done)
        elif kind is K.IPROBE:
            assert comm is not None
            cmd.result = comm.iprobe(cmd.peer, cmd.tag)
            assert cmd.done is not None
            if self._telem is not None:
                self._telem.counters.inc("completions")
            cmd.done.set(cmd.result)
        elif kind is K.BARRIER:
            assert comm is not None
            self._track(comm.ibarrier(), cmd, flag=cmd.done)
        elif kind is K.BCAST:
            assert comm is not None
            self._track(comm.ibcast(cmd.buf, cmd.peer), cmd, flag=cmd.done)
        elif kind is K.ALLREDUCE:
            assert comm is not None and cmd.op is not None
            self._track(
                comm.iallreduce(cmd.buf, cmd.buf2, cmd.op),
                cmd,
                flag=cmd.done,
            )
        elif kind is K.GATHER:
            assert comm is not None
            self._track(
                comm.igather(cmd.buf, cmd.buf2, cmd.peer),
                cmd,
                flag=cmd.done,
            )
        elif kind is K.ALLTOALL:
            assert comm is not None
            self._track(
                comm.ialltoall(cmd.buf, cmd.buf2), cmd, flag=cmd.done
            )
        elif kind in INLINE_KINDS:
            self._run_inline(cmd)
        elif kind is K.IBARRIER:
            assert comm is not None
            self._track(comm.ibarrier(), cmd, slot=cmd.slot)
        elif kind is K.IBCAST:
            assert comm is not None
            self._track(comm.ibcast(cmd.buf, cmd.peer), cmd, slot=cmd.slot)
        elif kind is K.IALLREDUCE:
            assert comm is not None and cmd.op is not None
            self._track(
                comm.iallreduce(cmd.buf, cmd.buf2, cmd.op),
                cmd,
                slot=cmd.slot,
            )
        elif kind is K.IGATHER:
            assert comm is not None
            self._track(
                comm.igather(cmd.buf, cmd.buf2, cmd.peer),
                cmd,
                slot=cmd.slot,
            )
        elif kind is K.IALLTOALL:
            assert comm is not None
            self._track(
                comm.ialltoall(cmd.buf, cmd.buf2), cmd, slot=cmd.slot
            )
        elif kind is K.CALL:
            cmd.result = cmd.fn()
            assert cmd.done is not None
            if self._telem is not None:
                self._telem.counters.inc("completions")
            cmd.done.set(cmd.result)
        elif kind is K.FLUSH:
            self._flushes.append(cmd)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unhandled command kind {kind}")

    def _run_inline(self, cmd: Command) -> None:
        """Collectives with no nonblocking equivalent run in place.

        Their blocking wait pumps the same progress engine, so other
        in-flight operations still advance; only command *dequeueing*
        pauses (the paper's acknowledged limitation for calls like
        ``MPI_WIN_FENCE``).
        """
        comm = cmd.comm
        assert comm is not None
        K = CommandKind
        if cmd.kind is K.REDUCE:
            assert cmd.op is not None
            cmd.result = comm.reduce(cmd.buf, cmd.buf2, cmd.op, cmd.peer)
        elif cmd.kind is K.SCATTER:
            cmd.result = comm.scatter(cmd.buf, cmd.buf2, cmd.peer)
        elif cmd.kind is K.ALLGATHER:
            cmd.result = comm.allgather(cmd.buf, cmd.buf2)
        elif cmd.kind is K.REDUCE_SCATTER:
            assert cmd.op is not None
            cmd.result = comm.reduce_scatter(cmd.buf, cmd.buf2, cmd.op)
        elif cmd.kind is K.SCAN:
            assert cmd.op is not None
            cmd.result = comm.scan(cmd.buf, cmd.buf2, cmd.op)
        else:  # pragma: no cover - defensive
            raise ValueError(f"not an inline kind: {cmd.kind}")
        assert cmd.done is not None
        if self._telem is not None:
            self._telem.counters.inc("completions")
        cmd.done.set(cmd.result)

    def _track(
        self,
        inner: "Request",
        cmd: Command,
        slot: int = -1,
        flag: AtomicFlag | None = None,
    ) -> None:
        if slot >= 0:
            self.pool.publish_inner(slot, inner)
        if flag is not None and self._telem is not None:
            # A done-flag (not a pool slot) means this was a blocking
            # call the engine converted to its nonblocking form (§3.3).
            self._telem.counters.inc("blocking_conversions")
        entry = _InFlight(inner=inner, slot=slot, flag=flag, command=cmd)
        if inner.done:
            self._finish(entry)
            return
        self._in_flight.append(entry)
        self.max_in_flight = max(self.max_in_flight, len(self._in_flight))
        if self._telem is not None:
            self._telem.counters.record_max(
                "in_flight_hwm", len(self._in_flight)
            )

    # ------------------------------------------------------------ progress

    def _sweep(self) -> int:
        """One ``Testany``-style pass over all in-flight operations.

        The progress pump runs even with nothing locally in flight:
        this rank may be the *target* of one-sided operations or
        rendezvous handshakes that need servicing (the offload thread
        doubles as the RMA asynchronous-progress agent, §7).
        """
        self.comm.engine.progress()
        if self._dead is not None:
            # Poisoned while pumping (watchdog trip during an injected
            # stall): stop touching completion state — the loop exit
            # path fails everything pending exactly once.
            return 0
        if not self._in_flight:
            return 0
        self.progress_sweeps += 1
        still: list[_InFlight] = []
        done = 0
        now = -1.0
        for entry in self._in_flight:
            if entry.inner.done:
                self._finish(entry)
                done += 1
                continue
            cmd = entry.command
            if cmd is not None and cmd.deadline is not None:
                if now < 0.0:
                    now = time.perf_counter()
                if now > cmd.deadline:
                    self._expire_entry(entry)
                    done += 1
                    continue
            still.append(entry)
        self._in_flight = still
        return done

    def _expire_entry(self, entry: _InFlight) -> None:
        """An in-flight operation missed its deadline: cancel what can
        be cancelled, then fail the waiter with OffloadTimeout."""
        try:
            entry.inner.cancel()
        except Exception:  # noqa: BLE001 - only receives are cancellable
            pass
        cmd = entry.command
        if cmd is not None:
            self._expire(cmd, slot=entry.slot)
            return
        # Untracked entry (defensive): fail the raw slot/flag.
        self.deadline_expirations += 1
        exc = OffloadTimeout("offloaded request missed its deadline")
        if self._telem is not None:
            self._telem.counters.inc("deadline_expirations")
            self._telem.counters.inc("completions")
        if entry.slot >= 0:
            self.pool.fail(entry.slot, exc)
        elif entry.flag is not None:
            entry.flag.set(None)

    def _finish(self, entry: _InFlight) -> None:
        self.completions += 1
        tm = self._telem
        if tm is not None:
            tm.counters.inc("completions")
            if tm.trace is not None:
                tm.trace.append(
                    "complete",
                    rank=self.comm.engine.rank,
                    slot=entry.slot,
                )
        inner = entry.inner
        status = inner.status
        rec = self.recovery
        if (
            inner.error is not None
            and rec is not None
            and getattr(rec, "rank_failure", "fail") == "shrink"
            and entry.command is not None
            and entry.command.comm is not None
            and _is_rank_dead(inner.error)
        ):
            # An in-flight operation (e.g. a posted receive) failed
            # because its peer died after dispatch: same ULFM response
            # as a dispatch-time death (see _command_failed).
            try:
                entry.command.comm.revoke()
            except Exception:  # noqa: BLE001 - revoke is best-effort
                pass
        # Engine-level statuses carry global ranks; convert to the
        # command's communicator-local numbering before publishing.
        if (
            status is not None
            and status.source >= 0
            and entry.command is not None
            and entry.command.comm is not None
        ):
            status = entry.command.comm._localize_status(status)
        if entry.slot >= 0:
            if inner.error is not None:
                self.pool.fail(entry.slot, inner.error)
            else:
                self.pool.complete(entry.slot, status)
        elif entry.flag is not None:
            if inner.error is not None and entry.command is not None:
                entry.command.error = inner.error
            entry.flag.set(status)

    def _check_flushes(self) -> None:
        if not self._flushes or self._in_flight or not self.queue.empty():
            return
        for cmd in self._flushes:
            assert cmd.done is not None
            if self._telem is not None:
                self._telem.counters.inc("completions")
            cmd.done.set(None)
        self._flushes.clear()

    def _fail_pending(self, exc: BaseException) -> None:
        """Engine died: fail everything in flight, drained and queued.

        Closes the command ring first, so a submit racing this teardown
        either commits its command before the final drain snapshot
        (failed here, below) or gets a typed :class:`OffloadEngineDied`
        from ``submit`` — the close/enqueue race can no longer lose a
        command.
        """
        counters = (
            self._telem.counters if self._telem is not None else None
        )
        self.queue.close()
        for entry in self._in_flight:
            if counters is not None:
                counters.inc("completions")
            if entry.slot >= 0:
                self.pool.fail(entry.slot, exc)
            elif entry.flag is not None:
                if entry.command is not None:
                    entry.command.error = exc
                entry.flag.set(None)
        self._in_flight.clear()
        # A mid-batch crash leaves the unprocessed tail of the batch in
        # `_drained` (already counted as drained); append everything
        # still committed to the ring behind it.
        backlog = [] if self._unsafe_drop_drained_on_fail else list(
            self._drained
        )
        self._drained.clear()
        for cmd in self.queue.drain_closed():
            if counters is not None:
                counters.inc("commands_drained")
            backlog.append(cmd)
        for cmd in backlog:
            if cmd.kind in NONBLOCKING_KINDS:
                if counters is not None:
                    counters.inc("completions")
                self.pool.fail(cmd.slot, exc)
            elif cmd.done is not None:
                if counters is not None:
                    counters.inc("completions")
                cmd.error = exc
                cmd.done.set(None)
            elif counters is not None:
                # SHUTDOWN (and any other flagless control command)
                counters.inc("control_commands")
        for cmd in self._flushes:
            if counters is not None:
                counters.inc("completions")
            cmd.error = exc
            assert cmd.done is not None
            cmd.done.set(None)
        self._flushes.clear()

    # ------------------------------------------------------------ stats

    @property
    def telemetry(self) -> "obs.Telemetry | None":
        """This engine's telemetry bundle (``None`` when disabled)."""
        return self._telem

    def stats(self) -> dict[str, int]:
        """Flat counter dict (always available; telemetry counters are
        merged in when telemetry is enabled)."""
        s = {
            "commands_processed": self.commands_processed,
            "progress_sweeps": self.progress_sweeps,
            "completions": self.completions,
            "max_in_flight": self.max_in_flight,
            "queue_cas_failures": self.queue.cas_failures,
            "queue_full_retries": self.queue_full_retries,
            "pool_allocated": self.pool.allocated,
            "retries": self.retry_count,
            "deadline_expirations": self.deadline_expirations,
            "watchdog_trips": self.watchdog_trips,
            "degraded_mode_commands": self.degraded_commands,
            "batch_dequeues": self.batch_dequeues,
            "batch_size_hwm": self.batch_size_hwm,
            "coalesced_messages": self.coalesced_messages,
            "steals": self.steals,
            "steal_batch_hwm": self.steal_batch_hwm,
            "continuation_fires": self.pool.continuation_fires,
            "continuation_drops": self.pool.continuation_drops,
            # Data-plane copy accounting lives on the substrate's
            # progress engine (rank-wide, shared by every shard).
            # getattr: DST harness targets drive the engine with a
            # stub communicator that has no progress engine behind it.
            "payload_copies": getattr(self.comm.engine, "payload_copies", 0),
            "payload_zero_copy_hits": getattr(
                self.comm.engine, "payload_zero_copy_hits", 0
            ),
        }
        if self._telem is not None:
            for name, value in self._telem.counters.snapshot().items():
                # telemetry's exact per-thread counts win over the
                # legacy best-effort shared-int counters on collisions
                s[name] = value
        return s

    def telemetry_snapshot(self, include_trace: bool = False) -> dict:
        """Structured snapshot (counters + queue/pool/progress state).

        See :func:`repro.obs.report.snapshot_engine`; valid whether or
        not telemetry is enabled (counters are empty when disabled).
        """
        return obs.snapshot_engine(self, include_trace=include_trace)
