"""Command records: the wire format between app threads and the
offload thread.

Paper §3.1: "our library serializes the call parameters into a
call-specific structure and inserts this information into the command
queue."  Ranks share an address space, so buffers travel by reference —
no extra copies (also §3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.lockfree.atomics import AtomicFlag

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpisim.communicator import Communicator
    from repro.mpisim.reduce_ops import ReduceOp


class CommandKind(Enum):
    """Every MPI operation the offload engine accepts."""

    ISEND = auto()
    IRECV = auto()
    # blocking p2p (converted to nonblocking by the engine, §3.3)
    SEND = auto()
    RECV = auto()
    IPROBE = auto()
    # collectives with nonblocking equivalents: engine issues the
    # I-variant and tracks it like any other in-flight request
    BARRIER = auto()
    BCAST = auto()
    ALLREDUCE = auto()
    GATHER = auto()
    ALLTOALL = auto()
    # collectives lacking a nonblocking equivalent in the substrate:
    # the engine runs these inline (the paper's acknowledged
    # MPI_WIN_FENCE-style shortcoming, §3.3).  Progress on other
    # in-flight operations still occurs because the blocking wait pumps
    # the same progress engine.
    REDUCE = auto()
    SCATTER = auto()
    ALLGATHER = auto()
    REDUCE_SCATTER = auto()
    SCAN = auto()
    # nonblocking collectives requested by the app
    IBARRIER = auto()
    IBCAST = auto()
    IALLREDUCE = auto()
    IGATHER = auto()
    IALLTOALL = auto()
    # generic inline call on the offload thread (dup/split/teardown);
    # the functional analogue of offloading any remaining MPI entry point
    CALL = auto()
    # engine control
    FLUSH = auto()
    SHUTDOWN = auto()


#: Command kinds that return an OffloadRequest handle to the caller.
NONBLOCKING_KINDS = frozenset(
    {
        CommandKind.ISEND,
        CommandKind.IRECV,
        CommandKind.IBARRIER,
        CommandKind.IBCAST,
        CommandKind.IALLREDUCE,
        CommandKind.IGATHER,
        CommandKind.IALLTOALL,
    }
)

#: Collectives the engine must execute inline (no I-variant available).
INLINE_KINDS = frozenset(
    {
        CommandKind.REDUCE,
        CommandKind.SCATTER,
        CommandKind.ALLGATHER,
        CommandKind.REDUCE_SCATTER,
        CommandKind.SCAN,
    }
)

#: Kinds safe to re-drive after a failed dispatch *attempt*.  A retry
#: only ever happens for transient errors raised before the substrate
#: was entered (see :class:`repro.core.recovery.RetryPolicy`), so
#: anything that merely posts an operation is idempotent.  CALL runs
#: arbitrary user code and the inline collectives execute in place, so
#: neither may be re-driven.
IDEMPOTENT_KINDS = frozenset(
    {
        CommandKind.ISEND,
        CommandKind.IRECV,
        CommandKind.SEND,
        CommandKind.RECV,
        CommandKind.IPROBE,
        CommandKind.BARRIER,
        CommandKind.BCAST,
        CommandKind.ALLREDUCE,
        CommandKind.GATHER,
        CommandKind.ALLTOALL,
        CommandKind.IBARRIER,
        CommandKind.IBCAST,
        CommandKind.IALLREDUCE,
        CommandKind.IGATHER,
        CommandKind.IALLTOALL,
    }
)


@dataclass(slots=True)
class Command:
    """One serialized MPI call.

    ``done`` is the completion flag the issuing thread may spin on
    (blocking calls); ``slot`` is the request-pool index for
    nonblocking calls (so the engine can publish the inner request and
    completion there instead).
    """

    kind: CommandKind
    comm: "Communicator | None" = None
    buf: np.ndarray | None = None
    buf2: np.ndarray | None = None  # recv side of collectives
    peer: int = -1  # dest/source/root
    tag: int = 0
    op: "ReduceOp | None" = None
    slot: int = -1  # request-pool slot for nonblocking commands
    done: AtomicFlag | None = None  # completion flag for blocking commands
    result: Any = None  # e.g. iprobe Status, CALL return value
    error: BaseException | None = None
    fn: Any = None  # CALL payload: zero-argument callable
    #: absolute perf_counter() time by which the command must reach a
    #: terminal state; the engine expires it with OffloadTimeout after
    deadline: float | None = None
    #: dispatch attempts so far (bumped by the engine's retry path)
    attempts: int = 0

    def __post_init__(self) -> None:
        if self.kind in NONBLOCKING_KINDS:
            if self.slot < 0:
                raise ValueError(f"{self.kind.name} command needs a slot")
        elif self.done is None and self.kind is not CommandKind.SHUTDOWN:
            self.done = AtomicFlag()
