"""Transparent interposition: unmodified applications gain offload.

Paper §3.4 uses ``LD_PRELOAD`` to slide the offload library between the
application and MPI with zero code changes.  The Python analogue is
object substitution: application code written against the communicator
interface receives an :class:`~repro.core.offload_comm.OffloadCommunicator`
whose surface is identical — every call silently becomes an enqueued
command.

Typical use::

    from repro.core import offloaded

    def app(comm):              # written for plain MPI, never edited
        comm.send(...); comm.allreduce(...)

    def rank_program(comm):
        with offloaded(comm) as ocomm:
            app(ocomm)          # now runs with software offload
"""

from __future__ import annotations

import contextlib
from typing import TYPE_CHECKING, Iterator

from repro.core.engine import OffloadEngine
from repro.core.offload_comm import OffloadCommunicator

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpisim.communicator import Communicator

#: Default shard count when ``offloaded`` is called without an explicit
#: ``pool_size``.  The test suite's pool-parametrized conftest fixture
#: overrides this to run the whole matrix against a sharded pool.
DEFAULT_POOL_SIZE = 1


def interpose(
    comm: "Communicator", engine: OffloadEngine
) -> OffloadCommunicator:
    """Wrap ``comm`` so its MPI calls route through ``engine``.

    The engine must already be running and must share ``comm``'s rank.
    """
    if engine.comm.engine.rank != comm.engine.rank:
        raise ValueError(
            "offload engine and communicator belong to different ranks"
        )
    return OffloadCommunicator(comm, engine)


@contextlib.contextmanager
def offloaded(
    comm: "Communicator",
    pool_capacity: int = 4096,
    queue_capacity: int = 4096,
    nthreads: int = 1,
    telemetry: bool | None = None,
    faults=None,
    recovery=None,
    op_timeout: float | None = None,
    batch_size: int | None = None,
    coalesce_eager: bool = False,
    pool_cache: int | None = None,
    pool_size: int | None = None,
    router: str | None = None,
    steal_threshold: int | None = None,
    zero_copy: bool | None = None,
) -> Iterator[OffloadCommunicator]:
    """Context manager: spawn offload thread(s) for ``comm``'s rank,
    yield the interposed communicator, and tear them down on exit (the
    paper's intercept-at-``MPI_Init``/``MPI_Finalize`` lifecycle).

    ``nthreads > 1`` enables the §7 multi-offload-thread extension
    (requires ``MPI_THREAD_MULTIPLE``; see
    :mod:`repro.core.engine_group`).  ``telemetry`` overrides the
    global :func:`repro.obs.enabled` default for these engines.

    ``faults`` installs a :class:`repro.faults.plan.FaultPlan` on the
    engines, ``recovery`` a :class:`repro.core.recovery.RecoveryPolicy`,
    and ``op_timeout`` stamps every offloaded call with a deadline —
    all three default to off (zero overhead).  Teardown tolerates a
    dead engine: pending work has already been failed with typed
    errors, so exit does not raise on top of the application's own
    handling.

    ``batch_size``, ``coalesce_eager`` and ``pool_cache`` are the
    engine's performance knobs (batched drain size, small-message
    coalescing, per-thread request-pool caching); ``None`` keeps the
    engine defaults.

    ``pool_size``/``router``/``steal_threshold`` configure the sharded
    :class:`~repro.core.engine_pool.EnginePool` (N routed,
    work-stealing engines per rank).  An *explicit* ``pool_size > 1``
    requires ``MPI_THREAD_MULTIPLE`` and raises otherwise; when
    ``pool_size`` is None the module default
    (:data:`DEFAULT_POOL_SIZE`) applies but is silently clamped to 1
    below ``MPI_THREAD_MULTIPLE`` so single-threaded worlds keep
    working when the suite-wide default is raised.  ``nthreads > 1``
    (the legacy thread-sticky group) takes precedence over
    ``pool_size``.

    ``zero_copy`` toggles the substrate's zero-copy data plane
    (DESIGN.md §14) for this rank's progress engine for the duration
    of the context, restoring the previous setting on exit.  The
    toggle is rank-wide: it affects every send posted by this rank
    while the context is active, including ones made outside the
    offloaded communicator.  ``None`` (default) leaves the world's
    setting untouched."""
    restore_zero_copy: bool | None = None
    if zero_copy is not None:
        restore_zero_copy = comm.engine.zero_copy
        comm.engine.zero_copy = zero_copy
    try:
        yield from _offloaded_body(
            comm,
            pool_capacity=pool_capacity,
            queue_capacity=queue_capacity,
            nthreads=nthreads,
            telemetry=telemetry,
            faults=faults,
            recovery=recovery,
            op_timeout=op_timeout,
            batch_size=batch_size,
            coalesce_eager=coalesce_eager,
            pool_cache=pool_cache,
            pool_size=pool_size,
            router=router,
            steal_threshold=steal_threshold,
        )
    finally:
        if restore_zero_copy is not None:
            comm.engine.zero_copy = restore_zero_copy


def _offloaded_body(
    comm: "Communicator",
    pool_capacity: int,
    queue_capacity: int,
    nthreads: int,
    telemetry: bool | None,
    faults,
    recovery,
    op_timeout: float | None,
    batch_size: int | None,
    coalesce_eager: bool,
    pool_cache: int | None,
    pool_size: int | None,
    router: str | None,
    steal_threshold: int | None,
) -> Iterator[OffloadCommunicator]:
    perf_kwargs: dict = {"coalesce_eager": coalesce_eager}
    if batch_size is not None:
        perf_kwargs["batch_size"] = batch_size
    if pool_cache is not None:
        perf_kwargs["pool_cache"] = pool_cache
    if nthreads > 1:
        from repro.core.engine_group import OffloadEngineGroup

        group = OffloadEngineGroup(
            comm,
            nthreads=nthreads,
            pool_capacity=pool_capacity,
            queue_capacity=queue_capacity,
            telemetry=telemetry,
            faults=faults,
            recovery=recovery,
            batch_size=batch_size,
            coalesce_eager=coalesce_eager,
            pool_cache=pool_cache,
        )
        group.start()
        try:
            yield OffloadCommunicator(comm, group, op_timeout)
        finally:
            _teardown(group)
        return
    effective_pool = pool_size if pool_size is not None else DEFAULT_POOL_SIZE
    if pool_size is None and effective_pool > 1:
        # Default-derived width: clamp rather than raise so the
        # pool-parametrized suite can still exercise FUNNELED worlds.
        from repro.mpisim.constants import ThreadLevel

        level = getattr(
            getattr(comm, "world", None),
            "thread_level",
            ThreadLevel.MULTIPLE,
        )
        if level < ThreadLevel.MULTIPLE:
            effective_pool = 1
    if effective_pool > 1:
        from repro.core.engine_pool import EnginePool

        pool_kwargs: dict = {}
        if router is not None:
            pool_kwargs["router"] = router
        if steal_threshold is not None:
            pool_kwargs["steal_threshold"] = steal_threshold
        pool = EnginePool(
            comm,
            pool_size=effective_pool,
            pool_capacity=pool_capacity,
            queue_capacity=queue_capacity,
            telemetry=telemetry,
            faults=faults,
            recovery=recovery,
            batch_size=batch_size,
            coalesce_eager=coalesce_eager,
            pool_cache=pool_cache,
            **pool_kwargs,
        )
        pool.start()
        try:
            yield OffloadCommunicator(comm, pool, op_timeout)
        finally:
            _teardown(pool)
        return
    engine = OffloadEngine(
        comm,
        pool_capacity=pool_capacity,
        queue_capacity=queue_capacity,
        telemetry=telemetry,
        faults=faults,
        recovery=recovery,
        **perf_kwargs,
    )
    engine.start()
    try:
        yield OffloadCommunicator(comm, engine, op_timeout)
    finally:
        _teardown(engine)


def _teardown(engine) -> None:
    """Stop an engine/group, absorbing death it already reported.

    A dead engine failed all its pending work with typed exceptions at
    death time; raising again out of the ``finally`` would mask the
    application's own exception handling.  A *live* engine that cannot
    stop still raises (stuck work is a real error)."""
    from repro.core.request_pool import OffloadEngineDied

    dead = getattr(engine, "dead", None)
    if dead is None and hasattr(engine, "engines"):
        if any(e.dead is not None for e in engine.engines):
            dead = True
    try:
        engine.stop()
    except OffloadEngineDied:
        pass
    except RuntimeError:
        if dead is None:
            raise
