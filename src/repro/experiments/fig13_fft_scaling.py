"""Figure 13 — 1-D FFT weak scaling on Intel Xeon (a; 2²⁹ points/node)
and Intel Xeon Phi (b; 2²⁵ points/node).

Paper claims:

* Xeon: ~20 % offload gain at small/medium scale, eroding to ~10 % at
  128 nodes and marginal at 256 as the all-to-all becomes
  bandwidth-bound; comm-self also performs well there;
* Phi: 43 % gain at small scale, 26 % at 64 nodes — larger than on
  Xeon because the slow cores make every software overhead costlier —
  and no comm-self (``MPI_THREAD_MULTIPLE`` unsupported, §5.2).
"""

from __future__ import annotations

from repro.simtime.machine import ENDEAVOR_PHI, ENDEAVOR_XEON
from repro.simtime.workloads.fft import fft_gflops
from repro.util.tables import Table

XEON_POINTS_PER_RANK = 2**28  # 2^29 per dual-socket node
PHI_POINTS = 2**25
XEON_NODES = (4, 16, 64, 128, 256)
PHI_NODES = (2, 4, 16, 64)
FAST_XEON = (16, 256)
FAST_PHI = (2, 64)


def run(fast: bool = False) -> Table:
    table = Table(
        headers=("machine", "nodes", "approach", "gflops"),
        title="Figure 13: 1-D FFT weak scaling (GFLOP/s)",
    )
    for nodes in FAST_XEON if fast else XEON_NODES:
        for approach in ("baseline", "comm-self", "offload"):
            table.add_row(
                "endeavor-xeon",
                nodes,
                approach,
                round(
                    fft_gflops(
                        ENDEAVOR_XEON,
                        approach,
                        XEON_POINTS_PER_RANK,
                        nodes,
                        ranks_per_node=2,
                    ),
                    1,
                ),
            )
    for nodes in FAST_PHI if fast else PHI_NODES:
        # comm-self unavailable on the paper's Phi platform
        for approach in ("baseline", "offload"):
            table.add_row(
                "endeavor-phi",
                nodes,
                approach,
                round(fft_gflops(ENDEAVOR_PHI, approach, PHI_POINTS, nodes), 1),
            )
    return table


def check(table: Table) -> None:
    rows = {(m, n, a): g for m, n, a, g in table.rows}
    xeon_nodes = sorted(
        {n for m, n, _a, _ in table.rows if m == "endeavor-xeon"}
    )
    phi_nodes = sorted(
        {n for m, n, _a, _ in table.rows if m == "endeavor-phi"}
    )
    # offload >= baseline everywhere
    for (m, n, a), g in rows.items():
        if a == "offload":
            assert g >= rows[(m, n, "baseline")], (m, n)
    # Xeon benefit erodes at the largest scale vs the sweet spot
    gains = [
        rows[("endeavor-xeon", n, "offload")]
        / rows[("endeavor-xeon", n, "baseline")]
        for n in xeon_nodes
    ]
    assert gains[-1] <= max(gains) + 1e-9
    # Phi gains are substantial and shrink with node count
    phi_gains = [
        rows[("endeavor-phi", n, "offload")]
        / rows[("endeavor-phi", n, "baseline")]
        for n in phi_nodes
    ]
    assert phi_gains[0] > 1.2
    assert phi_gains[-1] > 1.05
    assert phi_gains[0] >= phi_gains[-1]


def main() -> None:  # pragma: no cover - CLI
    table = run()
    print(table.render())
    check(table)
    print("\nqualitative checks: PASS")


if __name__ == "__main__":  # pragma: no cover
    main()
