"""Figure 5 — nonblocking collective call issue latency at 8 B (a) and
8 KB (b) on 16 Endeavor Xeon nodes.

Paper claim: issuing an ``MPI_Icollective`` costs the calling thread
real time under baseline/comm-self (schedule building + eager copies
+ TM overhead for comm-self), while offload remains a flat enqueue —
"further justifying the need to decouple application computation and
MPI communication".
"""

from __future__ import annotations

from repro.simtime.machine import ENDEAVOR_XEON
from repro.simtime.workloads.micro import icollective_overhead
from repro.util.tables import Table
from repro.util.units import KIB, format_bytes

APPROACHES = ("baseline", "comm-self", "offload")
COLLECTIVES = ("iallreduce", "ibcast", "igather", "ialltoall", "ibarrier")
SIZES = (8, 8 * KIB)
NRANKS = 32  # 16 dual-socket nodes


def run(fast: bool = False) -> Table:
    ops = COLLECTIVES[:3] if fast else COLLECTIVES
    table = Table(
        headers=("size", "collective", "approach", "issue_us"),
        title="Figure 5: nonblocking collective issue latency "
        "(us, 16 Endeavor nodes)",
    )
    for nbytes in SIZES:
        for op in ops:
            for approach in APPROACHES:
                t = icollective_overhead(
                    ENDEAVOR_XEON, approach, op, nbytes, nranks=NRANKS
                )
                table.add_row(
                    format_bytes(nbytes), op, approach, round(t * 1e6, 3)
                )
    return table


def check(table: Table) -> None:
    rows = {(s, op, a): t for s, op, a, t in table.rows}
    for (s, op, a), t in rows.items():
        if a == "offload":
            # flat enqueue cost, far below the direct approaches
            assert t < 0.2, (s, op, t)
            assert t <= rows[(s, op, "baseline")]
        if a == "comm-self":
            # TM overhead on top of baseline
            assert t > rows[(s, op, "baseline")]


def main() -> None:  # pragma: no cover - CLI
    table = run()
    print(table.render())
    check(table)
    print("\nqualitative checks: PASS")


if __name__ == "__main__":  # pragma: no cover
    main()
