"""Figure 9 — Wilson-Dslash strong scaling on Endeavor (a) and NERSC
Edison (b), for 32³×256 and 48³×512 lattices.

Paper claims:

* approaches perform similarly up to ~16 nodes; beyond that offload
  pulls ahead, peaking at ~2X over baseline at 256 nodes (32³×256);
* comm-self helps at small scale but *degrades sharply at 256 nodes*
  on the small lattice (48 KB messages: TM overhead beats the overlap
  win), yet recovers on the larger 48³×512 lattice;
* super-linear scaling appears when the local lattice drops into
  cache;
* on Edison, core specialization helps but offload remains best.
"""

from __future__ import annotations

from repro.simtime.machine import EDISON, ENDEAVOR_XEON
from repro.simtime.workloads.qcd import dslash_tflops
from repro.util.tables import Table

SMALL_LATTICE = (32, 32, 32, 256)
LARGE_LATTICE = (48, 48, 48, 512)
FULL_NODES = (16, 32, 64, 128, 256)
FAST_NODES = (32, 256)
EDISON_NODES = (128, 256, 512, 1024)
EDISON_FAST = (256, 1024)


def run(fast: bool = False) -> Table:
    table = Table(
        headers=("machine", "lattice", "nodes", "approach", "tflops"),
        title="Figure 9: Wilson-Dslash strong scaling (TFLOP/s)",
    )
    xeon_nodes = FAST_NODES if fast else FULL_NODES
    for nodes in xeon_nodes:
        for approach in ("baseline", "iprobe", "comm-self", "offload"):
            table.add_row(
                "endeavor-xeon",
                "32^3x256",
                nodes,
                approach,
                round(
                    dslash_tflops(
                        ENDEAVOR_XEON, approach, SMALL_LATTICE, nodes
                    ),
                    2,
                ),
            )
    large_nodes = (256,) if fast else (64, 128, 256)
    for nodes in large_nodes:
        for approach in ("baseline", "comm-self", "offload"):
            table.add_row(
                "endeavor-xeon",
                "48^3x512",
                nodes,
                approach,
                round(
                    dslash_tflops(
                        ENDEAVOR_XEON, approach, LARGE_LATTICE, nodes
                    ),
                    2,
                ),
            )
    edison_nodes = EDISON_FAST if fast else EDISON_NODES
    for nodes in edison_nodes:
        for approach in ("baseline", "comm-self", "corespec", "offload"):
            table.add_row(
                "edison",
                "48^3x512",
                nodes,
                approach,
                round(
                    dslash_tflops(EDISON, approach, LARGE_LATTICE, nodes),
                    2,
                ),
            )
    return table


def check(table: Table) -> None:
    rows = {
        (m, lat, n, a): tf for m, lat, n, a, tf in table.rows
    }
    small_nodes = sorted(
        {n for m, lat, n, _a, _ in table.rows if lat == "32^3x256"}
    )
    top = small_nodes[-1]
    # offload wins at the largest scale on the small lattice ...
    off = rows[("endeavor-xeon", "32^3x256", top, "offload")]
    base = rows[("endeavor-xeon", "32^3x256", top, "baseline")]
    assert off > base * 1.15, (off, base)
    # ... and comm-self degrades there (48 KB messages)
    cs = rows[("endeavor-xeon", "32^3x256", top, "comm-self")]
    assert cs < base, (cs, base)
    # comm-self recovers on the large lattice
    cs_l = rows[("endeavor-xeon", "48^3x512", 256, "comm-self")]
    base_l = rows[("endeavor-xeon", "48^3x512", 256, "baseline")]
    assert cs_l > base_l
    # offload best on the large lattice too
    assert rows[("endeavor-xeon", "48^3x512", 256, "offload")] >= cs_l
    # super-linear scaling from the cache effect appears somewhere in
    # the sweep (the paper sees it at 32 nodes for this lattice)
    if len(small_nodes) >= 2:
        superlinear = []
        for n0, n1 in zip(small_nodes, small_nodes[1:]):
            speedup = rows[("endeavor-xeon", "32^3x256", n1, "offload")] / (
                rows[("endeavor-xeon", "32^3x256", n0, "offload")]
            )
            superlinear.append(speedup > (n1 / n0) * 0.95)
        assert any(superlinear), rows
    # Edison: offload >= corespec >= baseline at the largest scale
    e_nodes = sorted({n for m, _l, n, _a, _ in table.rows if m == "edison"})
    etop = e_nodes[-1]
    assert (
        rows[("edison", "48^3x512", etop, "offload")]
        >= rows[("edison", "48^3x512", etop, "corespec")]
        > rows[("edison", "48^3x512", etop, "baseline")]
    )


def main() -> None:  # pragma: no cover - CLI
    table = run()
    print(table.render())
    check(table)
    print("\nqualitative checks: PASS")


if __name__ == "__main__":  # pragma: no cover
    main()
