"""Figure 7 — OSU latency (a) and bandwidth (b) on Endeavor Xeon.

Paper claims:

* offload adds ~0.3 µs one-way latency over baseline (the command
  round trip) and loses essentially no bandwidth;
* comm-self adds ~11 µs latency and loses ~50 % bandwidth between
  4 KB and 256 KB (``MPI_THREAD_MULTIPLE`` overheads).
"""

from __future__ import annotations

from repro.simtime.machine import ENDEAVOR_XEON, MachineConfig
from repro.simtime.workloads.micro import osu_bandwidth, osu_latency
from repro.util.tables import Table
from repro.util.units import KIB, MIB, format_bytes, pow2_sizes

APPROACHES = ("baseline", "comm-self", "offload")
FULL_SIZES = pow2_sizes(8, 4 * MIB)
FAST_SIZES = [8, 8 * KIB, 64 * KIB, 1 * MIB]


def run(
    fast: bool = False, machine: MachineConfig = ENDEAVOR_XEON
) -> Table:
    sizes = FAST_SIZES if fast else FULL_SIZES
    table = Table(
        headers=("size", "approach", "latency_us", "bandwidth_gbs"),
        title=f"Figure 7: OSU latency/bandwidth ({machine.name})",
    )
    for nbytes in sizes:
        for approach in APPROACHES:
            lat = osu_latency(machine, approach, nbytes)
            bw = osu_bandwidth(machine, approach, nbytes)
            table.add_row(
                format_bytes(nbytes),
                approach,
                round(lat * 1e6, 2),
                round(bw / 1e9, 3),
            )
    return table


def _offload_latency_band() -> tuple[float, float]:
    """Expected offload-minus-baseline one-way latency (paper: ~0.3us)."""
    return (0.1, 1.0)


def check(table: Table) -> None:
    rows = {(s, a): (lat, bw) for s, a, lat, bw in table.rows}
    small = format_bytes(8)
    lo, hi = _offload_latency_band()
    # offload adds a small constant latency
    delta = rows[(small, "offload")][0] - rows[(small, "baseline")][0]
    assert lo < delta < hi, delta
    # comm-self adds an order of magnitude more
    delta_cs = rows[(small, "comm-self")][0] - rows[(small, "baseline")][0]
    assert delta_cs > 5 * delta, (delta_cs, delta)
    # bandwidth: comm-self dips ~50% in the 4KB-256KB window
    mid = format_bytes(64 * KIB)
    if (mid, "comm-self") in rows:
        assert (
            rows[(mid, "comm-self")][1] < rows[(mid, "baseline")][1] * 0.7
        )
    # offload keeps baseline's large-message bandwidth
    big = format_bytes(1 * MIB)
    assert rows[(big, "offload")][1] > rows[(big, "baseline")][1] * 0.9


def main() -> None:  # pragma: no cover - CLI
    table = run()
    print(table.render())
    check(table)
    print("\nqualitative checks: PASS")


if __name__ == "__main__":  # pragma: no cover
    main()
