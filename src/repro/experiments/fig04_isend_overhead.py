"""Figure 4 — time spent issuing ``MPI_Isend`` (OSU ping-pong, 2
Endeavor Xeon nodes).

Paper claims:

* baseline cost grows with message size up to the 128 KB eager
  threshold (the internal copy), then drops for rendezvous messages;
* comm-self tracks baseline plus ~2.5 µs of ``MPI_THREAD_MULTIPLE``
  overhead;
* offload is a flat ~140 ns regardless of size.
"""

from __future__ import annotations

from repro.simtime.machine import ENDEAVOR_XEON
from repro.simtime.workloads.micro import isend_overhead
from repro.util.tables import Table
from repro.util.units import KIB, MIB, format_bytes, pow2_sizes

APPROACHES = ("baseline", "comm-self", "offload")
FULL_SIZES = pow2_sizes(8, 4 * MIB)
FAST_SIZES = [8, 8 * KIB, 128 * KIB, 256 * KIB, 2 * MIB]


def run(fast: bool = False) -> Table:
    sizes = FAST_SIZES if fast else FULL_SIZES
    table = Table(
        headers=("size", "approach", "isend_us"),
        title="Figure 4: MPI_Isend issue time (us, Endeavor Xeon)",
    )
    for nbytes in sizes:
        for approach in APPROACHES:
            t = isend_overhead(ENDEAVOR_XEON, approach, nbytes)
            table.add_row(format_bytes(nbytes), approach, round(t * 1e6, 3))
    return table


def check(table: Table) -> None:
    rows = {(size, app): t for size, app, t in table.rows}
    sizes = list(dict.fromkeys(r[0] for r in table.rows))
    at_threshold = format_bytes(128 * KIB)
    past = format_bytes(256 * KIB)
    # the eager copy makes baseline cost grow toward 128 KB ...
    assert rows[(at_threshold, "baseline")] > 5.0
    # ... then the rendezvous switch collapses it
    assert rows[(past, "baseline")] < rows[(at_threshold, "baseline")] / 5
    # comm-self = baseline + ~2.5 us
    for size in sizes:
        delta = rows[(size, "comm-self")] - rows[(size, "baseline")]
        assert 1.5 < delta < 4.0, (size, delta)
    # offload: flat ~140 ns independent of size
    offload = [rows[(size, "offload")] for size in sizes]
    assert max(offload) - min(offload) < 0.05
    assert all(0.1 < t < 0.2 for t in offload)


def main() -> None:  # pragma: no cover - CLI
    table = run()
    print(table.render())
    check(table)
    print("\nqualitative checks: PASS")


if __name__ == "__main__":  # pragma: no cover
    main()
