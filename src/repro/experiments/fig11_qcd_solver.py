"""Figure 11 — full QCD solver performance (CG/BiCGStab around
Dslash), Endeavor Xeon.

Paper claims: the solver's ``MPI_Allreduce`` reductions and
memory-bound BLAS-1 kernels drag achieved TFLOP/s below bare Dslash
(their peak drops from 67 to 34 TFLOP/s), with offload still the best
approach.
"""

from __future__ import annotations

from repro.simtime.machine import ENDEAVOR_XEON
from repro.simtime.workloads.qcd import dslash_tflops, solver_tflops
from repro.util.tables import Table

LATTICE = (32, 32, 32, 256)
FULL_NODES = (16, 32, 64, 128, 256)
FAST_NODES = (64, 256)


def run(fast: bool = False) -> Table:
    nodes_list = FAST_NODES if fast else FULL_NODES
    table = Table(
        headers=("nodes", "approach", "solver_tflops", "dslash_tflops"),
        title="Figure 11: QCD solver performance (TFLOP/s, Endeavor "
        "Xeon, 32^3x256)",
    )
    for nodes in nodes_list:
        for approach in ("baseline", "iprobe", "comm-self", "offload"):
            table.add_row(
                nodes,
                approach,
                round(solver_tflops(ENDEAVOR_XEON, approach, LATTICE, nodes), 2),
                round(dslash_tflops(ENDEAVOR_XEON, approach, LATTICE, nodes), 2),
            )
    return table


def check(table: Table) -> None:
    rows = {(n, a): (s, d) for n, a, s, d in table.rows}
    nodes = sorted({r[0] for r in table.rows})
    top = nodes[-1]
    for (n, a), (s, d) in rows.items():
        # the solver always achieves less than bare Dslash
        assert s < d, (n, a, s, d)
    # offload is the best solver performer at scale
    off = rows[(top, "offload")][0]
    for a in ("baseline", "comm-self"):
        assert off >= rows[(top, a)][0], (a, off, rows[(top, a)][0])


def main() -> None:  # pragma: no cover - CLI
    table = run()
    print(table.render())
    check(table)
    print("\nqualitative checks: PASS")


if __name__ == "__main__":  # pragma: no cover
    main()
