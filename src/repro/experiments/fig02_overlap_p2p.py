"""Figure 2 — compute/communication overlap for nonblocking
point-to-point calls.

Paper claims reproduced here:

* baseline: "reasonable overlap" for small messages, dropping
  "drastically to 1 % for large messages (2 MB)" once the rendezvous
  protocol needs progress nobody provides;
* comm-self: reduced overlap (~20–30 %) for small messages (the
  ``MPI_THREAD_MULTIPLE`` tax), but up to ~80 % for large ones;
* offload: consistently high (paper: ≥85 %, up to 99 %).
"""

from __future__ import annotations

from repro.simtime.machine import ENDEAVOR_XEON
from repro.simtime.workloads.micro import overlap_p2p
from repro.util.tables import Table
from repro.util.units import KIB, MIB, format_bytes, pow2_sizes

APPROACHES = ("baseline", "comm-self", "offload")

FULL_SIZES = pow2_sizes(8, 2 * MIB)
FAST_SIZES = [8, 4 * KIB, 128 * KIB, 512 * KIB, 2 * MIB]


def run(fast: bool = False) -> Table:
    sizes = FAST_SIZES if fast else FULL_SIZES
    table = Table(
        headers=(
            "size",
            "approach",
            "post_pct",
            "overlap_pct",
            "wait_pct",
        ),
        title="Figure 2: p2p compute-communication overlap "
        "(% of communication time, Endeavor Xeon)",
    )
    for nbytes in sizes:
        for approach in APPROACHES:
            r = overlap_p2p(ENDEAVOR_XEON, approach, nbytes)
            table.add_row(
                format_bytes(nbytes),
                approach,
                round(r.post_pct, 1),
                round(r.overlap_pct, 1),
                round(r.wait_pct, 1),
            )
    return table


def check(table: Table) -> None:
    """Assert the paper's qualitative Figure-2 claims."""
    rows = {
        (size, app): (post, ov, wait)
        for size, app, post, ov, wait in table.rows
    }
    two_mb = format_bytes(2 * MIB)
    small = format_bytes(8)
    # baseline collapses for rendezvous-sized messages
    assert rows[(two_mb, "baseline")][1] < 10.0
    # comm-self recovers for large messages
    assert rows[(two_mb, "comm-self")][1] > 70.0
    # offload is consistently high
    for size, app in rows:
        if app == "offload":
            assert rows[(size, app)][1] > 80.0, (size, rows[(size, app)])
    # offload beats baseline everywhere
    for size, app in list(rows):
        if app == "baseline":
            assert rows[(size, "offload")][1] >= rows[(size, app)][1]
    # comm-self small-message overlap is depressed vs offload
    assert rows[(small, "comm-self")][1] < rows[(small, "offload")][1]


def main() -> None:  # pragma: no cover - CLI
    table = run()
    print(table.render())
    check(table)
    print("\nqualitative checks: PASS")


if __name__ == "__main__":  # pragma: no cover
    main()
