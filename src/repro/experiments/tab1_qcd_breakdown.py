"""Table 1 — QCD Dslash per-iteration time split, 32³×256 lattice on
the Endeavor Xeon cluster, baseline vs offload.

Paper claims:

* offload internal-compute slowdown of 1–5 % (one core lost);
* >99 % post-time reduction at every node count;
* large wait-time reductions that shrink at scale (99 % at 8 nodes
  down to 33 % at 256);
* at 256 nodes the baseline post time balloons (~50 µs) because the
  48 KB messages drop below the rendezvous threshold and pay eager
  copies inline.
"""

from __future__ import annotations

from repro.simtime.machine import ENDEAVOR_XEON
from repro.simtime.workloads.qcd import dslash_iteration
from repro.util.tables import Table

LATTICE = (32, 32, 32, 256)
FULL_NODES = (8, 16, 32, 64, 128, 256)
FAST_NODES = (8, 64, 256)


def run(fast: bool = False) -> Table:
    nodes_list = FAST_NODES if fast else FULL_NODES
    table = Table(
        headers=(
            "nodes",
            "approach",
            "internal_us",
            "post_us",
            "wait_us",
            "misc_us",
            "total_us",
        ),
        title="Table 1: QCD Dslash time per iteration, 32^3x256 "
        "(Endeavor Xeon)",
    )
    for nodes in nodes_list:
        for approach in ("baseline", "offload"):
            t = dslash_iteration(ENDEAVOR_XEON, approach, LATTICE, nodes)
            table.add_row(
                nodes,
                approach,
                round(t.internal_compute * 1e6, 1),
                round(t.post * 1e6, 2),
                round(t.wait * 1e6, 1),
                round(t.misc * 1e6, 1),
                round(t.total * 1e6, 1),
            )
    return table


def check(table: Table) -> None:
    rows = {(n, a): tuple(rest) for n, a, *rest in table.rows}
    nodes = sorted({r[0] for r in table.rows})
    for n in nodes:
        ic_b, post_b, wait_b, _misc_b, tot_b = rows[(n, "baseline")]
        ic_o, post_o, wait_o, _misc_o, tot_o = rows[(n, "offload")]
        # internal compute slowdown from losing a core: a few percent
        slowdown = ic_o / ic_b - 1.0
        assert 0.0 < slowdown < 0.12, (n, slowdown)
        # >90% post-time reduction (paper: >99%)
        assert post_o < post_b * 0.6, (n, post_b, post_o)
        # offload never slower overall
        assert tot_o <= tot_b * 1.02, (n, tot_b, tot_o)
    # eager-copy post blow-up at 256 nodes for baseline
    if (256, "baseline") in rows:
        assert rows[(256, "baseline")][1] > 20.0
        assert rows[(256, "offload")][1] < 5.0


def main() -> None:  # pragma: no cover - CLI
    table = run()
    print(table.render())
    check(table)
    print("\nqualitative checks: PASS")


if __name__ == "__main__":  # pragma: no cover
    main()
