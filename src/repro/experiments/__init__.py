"""Experiment modules: one per table/figure of the paper.

Every module exposes

* ``run(fast=False)`` — compute the artifact's rows/series and return a
  :class:`repro.util.tables.Table` (``fast=True`` trims the sweep for
  CI-speed runs without changing the qualitative shape);
* ``check(table)`` — assert the paper's qualitative claims on the
  produced numbers (who wins, rough factors, crossovers); used by the
  test suite and the benchmark harness;
* a ``__main__`` hook, so ``python -m repro.experiments.fig02_overlap_p2p``
  prints the same rows the paper plots.

See DESIGN.md §4 for the experiment index and EXPERIMENTS.md for
paper-vs-measured records.
"""

from importlib import import_module

#: experiment id -> module path (relative to this package)
REGISTRY: dict[str, str] = {
    "fig02": "repro.experiments.fig02_overlap_p2p",
    "fig03": "repro.experiments.fig03_overlap_collectives",
    "fig04": "repro.experiments.fig04_isend_overhead",
    "fig05": "repro.experiments.fig05_icollective_overhead",
    "tab1": "repro.experiments.tab1_qcd_breakdown",
    "tab2": "repro.experiments.tab2_fft_breakdown",
    "fig06": "repro.experiments.fig06_mt_latency",
    "fig07": "repro.experiments.fig07_osu_xeon",
    "fig08": "repro.experiments.fig08_osu_phi",
    "fig09": "repro.experiments.fig09_qcd_scaling",
    "fig10": "repro.experiments.fig10_dslash_splitup",
    "fig11": "repro.experiments.fig11_qcd_solver",
    "fig12": "repro.experiments.fig12_qcd_thread_multiple",
    "fig13": "repro.experiments.fig13_fft_scaling",
    "fig14": "repro.experiments.fig14_cnn_scaling",
}


def load(exp_id: str):
    """Import and return the experiment module for ``exp_id``."""
    try:
        path = REGISTRY[exp_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {exp_id!r}; choose from {sorted(REGISTRY)}"
        ) from None
    return import_module(path)


def run_all(fast: bool = True) -> dict[str, object]:
    """Run every experiment; returns ``{exp_id: Table}``."""
    return {eid: load(eid).run(fast=fast) for eid in REGISTRY}
