"""Figure 12 — Wilson-Dslash with ``MPI_THREAD_MULTIPLE`` via the
thread-groups library, performance *relative to* the same approach
with ``MPI_THREAD_FUNNELED``.

Paper claims: offload benefits from concurrent MPI calls (up to +15 %
over its funneled self) because the lock-free queue makes concurrent
issue essentially free, while approaches that enter MPI concurrently
pay for it.

Known deviation (recorded in EXPERIMENTS.md): in our model comm-self's
*relative* gain can exceed offload's at some node counts because its
funneled variant is burdened by eager-copy post costs that thread
groups then hide; the paper's *absolute* ordering — offload fastest
with thread groups — always holds and is what ``check`` asserts.
"""

from __future__ import annotations

from repro.simtime.machine import ENDEAVOR_XEON
from repro.simtime.workloads.qcd import dslash_tflops
from repro.util.tables import Table

LATTICE = (32, 32, 32, 256)
FULL_NODES = (16, 64, 128, 256)
FAST_NODES = (64, 128)
THREAD_GROUPS = 4


def run(fast: bool = False) -> Table:
    nodes_list = FAST_NODES if fast else FULL_NODES
    table = Table(
        headers=(
            "nodes",
            "approach",
            "funneled_tflops",
            "thread_multiple_tflops",
            "relative",
        ),
        title="Figure 12: Dslash with MPI_THREAD_MULTIPLE thread "
        "groups, relative to MPI_THREAD_FUNNELED",
    )
    for nodes in nodes_list:
        for approach in ("baseline", "iprobe", "comm-self", "offload"):
            funneled = dslash_tflops(
                ENDEAVOR_XEON, approach, LATTICE, nodes, comm_threads=1
            )
            tm = dslash_tflops(
                ENDEAVOR_XEON,
                approach,
                LATTICE,
                nodes,
                comm_threads=THREAD_GROUPS,
            )
            table.add_row(
                nodes,
                approach,
                round(funneled, 2),
                round(tm, 2),
                round(tm / funneled, 3),
            )
    return table


def check(table: Table) -> None:
    rows = {(n, a): (f, t, rel) for n, a, f, t, rel in table.rows}
    nodes = sorted({r[0] for r in table.rows})
    for n in nodes:
        # absolute: offload with thread groups beats every other
        # approach with thread groups
        off = rows[(n, "offload")][1]
        for a in ("baseline", "iprobe", "comm-self"):
            assert off >= rows[(n, a)][1], (n, a)
        # offload's thread-multiple variant never loses badly to its
        # funneled self (paper: it gains up to 15%)
        assert rows[(n, "offload")][2] > 0.95, (n, rows[(n, "offload")])
    # somewhere in the sweep offload gains from concurrency
    assert any(rows[(n, "offload")][2] > 1.0 for n in nodes)


def main() -> None:  # pragma: no cover - CLI
    table = run()
    print(table.render())
    check(table)
    print("\nqualitative checks: PASS")


if __name__ == "__main__":  # pragma: no cover
    main()
