"""Figure 6 — OSU multithreaded latency with 2/4/8 thread pairs
(``MPI_THREAD_MULTIPLE``), Endeavor Xeon.

Paper claims:

* baseline and comm-self latency grows severely with thread count
  (~30 µs one-way at 8 threads) due to library-lock contention;
* offload stays flat-ish thanks to the lock-free command queue,
  cutting latency "by up to 6X" versus comm-self.
"""

from __future__ import annotations

from repro.simtime.machine import ENDEAVOR_XEON
from repro.simtime.workloads.micro import osu_mt_latency
from repro.util.tables import Table
from repro.util.units import KIB, format_bytes

APPROACHES = ("baseline", "comm-self", "offload")
THREADS = (2, 4, 8)
FULL_SIZES = (8, 256, 1 * KIB, 4 * KIB, 16 * KIB)
FAST_SIZES = (8, 4 * KIB)


def run(fast: bool = False) -> Table:
    sizes = FAST_SIZES if fast else FULL_SIZES
    table = Table(
        headers=("threads", "size", "approach", "latency_us"),
        title="Figure 6: OSU multithreaded one-way latency (us)",
    )
    for nthreads in THREADS:
        for nbytes in sizes:
            for approach in APPROACHES:
                t = osu_mt_latency(
                    ENDEAVOR_XEON, approach, nbytes, nthreads
                )
                table.add_row(
                    nthreads,
                    format_bytes(nbytes),
                    approach,
                    round(t * 1e6, 2),
                )
    return table


def check(table: Table) -> None:
    rows = {(th, s, a): t for th, s, a, t in table.rows}
    small = format_bytes(8)
    # contention grows with thread count for TM approaches
    for app in ("baseline", "comm-self"):
        assert rows[(8, small, app)] > rows[(2, small, app)] * 2
    # paper: ~30us at 8 threads for the TM approaches (small messages)
    assert rows[(8, small, "baseline")] > 20.0
    # offload stays far lower; paper: up to 6X better than comm-self
    ratio = rows[(8, small, "comm-self")] / rows[(8, small, "offload")]
    assert ratio > 4.0, ratio
    for th in (2, 4, 8):
        assert rows[(th, small, "offload")] < rows[(th, small, "baseline")]


def main() -> None:  # pragma: no cover - CLI
    table = run()
    print(table.render())
    check(table)
    print("\nqualitative checks: PASS")


if __name__ == "__main__":  # pragma: no cover
    main()
