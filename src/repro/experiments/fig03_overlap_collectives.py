"""Figure 3 — compute/communication overlap for nonblocking MPI
collectives at 8 bytes (a) and 16 KB (b).

Paper claim: the same ordering as Figure 2 carries over to NBC —
baseline schedules stall without progress, offload overlaps almost
fully.
"""

from __future__ import annotations

from repro.simtime.machine import ENDEAVOR_XEON
from repro.simtime.workloads.micro import overlap_collective
from repro.util.tables import Table
from repro.util.units import KIB, format_bytes

APPROACHES = ("baseline", "comm-self", "offload")
COLLECTIVES = ("iallreduce", "ibcast", "igather", "ialltoall")
SIZES = (8, 16 * KIB)
#: 16 Endeavor nodes, one rank per socket
NRANKS = 32


def run(fast: bool = False) -> Table:
    ops = COLLECTIVES[:2] if fast else COLLECTIVES
    table = Table(
        headers=("size", "collective", "approach", "overlap_pct"),
        title="Figure 3: NBC overlap (% of communication time, "
        "16 Endeavor nodes)",
    )
    for nbytes in SIZES:
        for op in ops:
            for approach in APPROACHES:
                r = overlap_collective(
                    ENDEAVOR_XEON, approach, op, nbytes, nranks=NRANKS
                )
                table.add_row(
                    format_bytes(nbytes),
                    op,
                    approach,
                    round(r.overlap_pct, 1),
                )
    return table


def check(table: Table) -> None:
    rows = {
        (size, op, app): ov for size, op, app, ov in table.rows
    }
    for (size, op, app), ov in rows.items():
        if app == "offload":
            assert ov > 85.0, (size, op, ov)
            # offload >= baseline for every op/size
            assert ov >= rows[(size, op, "baseline")]
    # multi-round collectives show the baseline stall clearly
    for size in {r[0] for r in table.rows}:
        for op in ("iallreduce", "ibcast"):
            if (size, op, "baseline") in rows:
                assert rows[(size, op, "baseline")] < 50.0


def main() -> None:  # pragma: no cover - CLI
    table = run()
    print(table.render())
    check(table)
    print("\nqualitative checks: PASS")


if __name__ == "__main__":  # pragma: no cover
    main()
