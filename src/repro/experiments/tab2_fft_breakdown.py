"""Table 2 — 1-D FFT per-iteration time split on the Endeavor Xeon Phi
coprocessor cluster (2²⁵ double-complex points per node, weak scaling).

Paper claims:

* offload post-time reduction of 90–96 %;
* wait-time reduction shrinking with scale (87 % at 2 nodes down to
  22 % at 32 as the all-to-all becomes bandwidth-bound);
* internal-compute slowdown of only 2–5 %.
"""

from __future__ import annotations

from repro.simtime.machine import ENDEAVOR_PHI
from repro.simtime.workloads.fft import fft_iteration
from repro.util.tables import Table

ELEMENTS_PER_NODE = 2**25
FULL_NODES = (2, 4, 8, 16, 32)
FAST_NODES = (2, 8, 32)


def run(fast: bool = False) -> Table:
    nodes_list = FAST_NODES if fast else FULL_NODES
    table = Table(
        headers=(
            "nodes",
            "approach",
            "internal_ms",
            "post_ms",
            "wait_ms",
            "misc_ms",
            "total_ms",
        ),
        title="Table 2: FFT time per iteration, 2^25 points/node "
        "(Endeavor Xeon Phi)",
    )
    for nodes in nodes_list:
        for approach in ("baseline", "offload"):
            t = fft_iteration(
                ENDEAVOR_PHI, approach, ELEMENTS_PER_NODE, nodes
            )
            table.add_row(
                nodes,
                approach,
                round(t.internal_compute * 1e3, 1),
                round(t.post * 1e3, 3),
                round(t.wait * 1e3, 1),
                round(t.misc * 1e3, 1),
                round(t.total * 1e3, 1),
            )
    return table


def check(table: Table) -> None:
    rows = {(n, a): tuple(rest) for n, a, *rest in table.rows}
    nodes = sorted({r[0] for r in table.rows})
    wait_reductions = []
    for n in nodes:
        ic_b, post_b, wait_b, _m, tot_b = rows[(n, "baseline")]
        ic_o, post_o, wait_o, _m2, tot_o = rows[(n, "offload")]
        # post-time reduction (paper: 90-96%)
        assert post_o < post_b * 0.5, (n, post_b, post_o)
        # offload strictly faster overall
        assert tot_o < tot_b, (n, tot_b, tot_o)
        # small internal-compute slowdown
        assert 0.0 < ic_o / ic_b - 1.0 < 0.08, n
        wait_reductions.append(
            (wait_b - wait_o) / wait_b if wait_b else 0.0
        )
    # wait-time benefit shrinks as all-to-all saturates (87% -> 22%)
    assert wait_reductions[0] > wait_reductions[-1]
    assert wait_reductions[0] > 0.5


def main() -> None:  # pragma: no cover - CLI
    table = run()
    print(table.render())
    check(table)
    print("\nqualitative checks: PASS")


if __name__ == "__main__":  # pragma: no cover
    main()
