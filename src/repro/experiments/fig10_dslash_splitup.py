"""Figure 10 — Wilson-Dslash timing split-up (stacked bars) for the
32³×256 lattice on Xeon and Xeon Phi, baseline vs offload.

Paper claim: thanks to overlap, the fraction of time waiting for
communication is much lower with offload — "especially evident at 64
Intel Xeon nodes, where wait time is less than 5 % for the offload
approach whereas the baseline approach shows about 25 %".
"""

from __future__ import annotations

from repro.simtime.machine import ENDEAVOR_PHI, ENDEAVOR_XEON
from repro.simtime.workloads.qcd import dslash_iteration
from repro.util.tables import Table

LATTICE = (32, 32, 32, 256)
XEON_NODES = (16, 32, 64, 128)
PHI_NODES = (16, 32, 64)
FAST_XEON = (64,)
FAST_PHI = (32,)


def run(fast: bool = False) -> Table:
    table = Table(
        headers=(
            "machine",
            "nodes",
            "approach",
            "compute_pct",
            "post_pct",
            "wait_pct",
            "misc_pct",
        ),
        title="Figure 10: Wilson-Dslash timing split-up "
        "(% of iteration time)",
    )
    cases = [
        (ENDEAVOR_XEON, FAST_XEON if fast else XEON_NODES),
        (ENDEAVOR_PHI, FAST_PHI if fast else PHI_NODES),
    ]
    for machine, nodes_list in cases:
        for nodes in nodes_list:
            for approach in ("baseline", "offload"):
                t = dslash_iteration(machine, approach, LATTICE, nodes)
                total = t.total
                table.add_row(
                    machine.name,
                    nodes,
                    approach,
                    round(100 * t.internal_compute / total, 1),
                    round(100 * t.post / total, 1),
                    round(100 * t.wait / total, 1),
                    round(100 * t.misc / total, 1),
                )
    return table


def check(table: Table) -> None:
    rows = {(m, n, a): tuple(rest) for m, n, a, *rest in table.rows}
    for (m, n, a), (comp, post, wait, misc) in rows.items():
        if a == "offload":
            base_wait = rows[(m, n, "baseline")][2]
            # offload's wait share is always lower than baseline's
            assert wait <= base_wait, (m, n, wait, base_wait)
    # the headline 64-Xeon-node comparison
    if ("endeavor-xeon", 64, "offload") in rows:
        assert rows[("endeavor-xeon", 64, "offload")][2] < 8.0
        assert rows[("endeavor-xeon", 64, "baseline")][2] > 18.0


def main() -> None:  # pragma: no cover - CLI
    table = run()
    print(table.render())
    check(table)
    print("\nqualitative checks: PASS")


if __name__ == "__main__":  # pragma: no cover
    main()
