"""Figure 8 — OSU latency (a) and bandwidth (b) on Intel Xeon Phi.

Same protocol as Figure 7; the paper's claim specific to the manycore
platform is that the offload overhead grows to ~1.7 µs "due to lower
single thread performance" — which falls straight out of the Phi
machine model's slower per-call costs.
"""

from __future__ import annotations

from repro.experiments import fig07_osu_xeon as fig07
from repro.simtime.machine import ENDEAVOR_PHI
from repro.util.tables import Table
from repro.util.units import MIB, format_bytes


def run(fast: bool = False) -> Table:
    table = fig07.run(fast=fast, machine=ENDEAVOR_PHI)
    table.title = "Figure 8: OSU latency/bandwidth (endeavor-phi)"
    return table


def check(table: Table) -> None:
    rows = {(s, a): (lat, bw) for s, a, lat, bw in table.rows}
    small = format_bytes(8)
    # offload overhead larger than on Xeon (paper: ~1.7 us)
    delta = rows[(small, "offload")][0] - rows[(small, "baseline")][0]
    assert 1.0 < delta < 4.0, delta
    big = format_bytes(1 * MIB)
    assert rows[(big, "offload")][1] > rows[(big, "baseline")][1] * 0.9


def main() -> None:  # pragma: no cover - CLI
    table = run()
    print(table.render())
    check(table)
    print("\nqualitative checks: PASS")


if __name__ == "__main__":  # pragma: no cover
    main()
