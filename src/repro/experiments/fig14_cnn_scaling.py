"""Figure 14 — hybrid-parallel deep-learning CNN training throughput,
Endeavor Xeon, 1–64 nodes.

Paper claims:

* performance roughly equal up to 8 nodes (compute-dominated);
* at 64 nodes comm-self and offload both clearly beat baseline (the
  paper reports 2X; our synthetic layer inventory reaches ~1.3X —
  recorded in EXPERIMENTS.md), with offload ahead of comm-self
  (paper: by 15 %).
"""

from __future__ import annotations

from repro.simtime.machine import ENDEAVOR_XEON
from repro.simtime.workloads.cnn import cnn_images_per_sec
from repro.util.tables import Table

FULL_NODES = (1, 2, 4, 8, 16, 32, 64)
FAST_NODES = (1, 8, 64)


def run(fast: bool = False) -> Table:
    nodes_list = FAST_NODES if fast else FULL_NODES
    table = Table(
        headers=("nodes", "approach", "images_per_sec", "vs_baseline"),
        title="Figure 14: CNN hybrid-parallel training throughput "
        "(Endeavor Xeon)",
    )
    for nodes in nodes_list:
        base = cnn_images_per_sec(ENDEAVOR_XEON, "baseline", nodes)
        for approach in ("baseline", "comm-self", "offload"):
            ips = cnn_images_per_sec(ENDEAVOR_XEON, approach, nodes)
            table.add_row(
                nodes, approach, round(ips, 1), round(ips / base, 3)
            )
    return table


def check(table: Table) -> None:
    rows = {(n, a): (ips, rel) for n, a, ips, rel in table.rows}
    nodes = sorted({r[0] for r in table.rows})
    # roughly equal at small scale (within ~8%)
    for n in [n for n in nodes if n <= 8]:
        for a in ("comm-self", "offload"):
            assert 0.9 < rows[(n, a)][1] < 1.1, (n, a, rows[(n, a)])
    # both async approaches clearly ahead at the largest scale
    top = nodes[-1]
    assert rows[(top, "offload")][1] > 1.15
    assert rows[(top, "comm-self")][1] > 1.1
    # offload beats comm-self at scale (paper: by 15%)
    assert rows[(top, "offload")][0] > rows[(top, "comm-self")][0]


def main() -> None:  # pragma: no cover - CLI
    table = run()
    print(table.render())
    check(table)
    print("\nqualitative checks: PASS")


if __name__ == "__main__":  # pragma: no cover
    main()
