"""Command-line entry point: ``python -m repro``.

Subcommands:

* ``list`` — show every reproducible paper artifact;
* ``run <artifact>...`` — regenerate artifacts (``--full`` for
  paper-scale sweeps); no names = all 15; ``--telemetry`` enables
  engine telemetry and prints counter snapshots for any offload
  engines the artifacts spin up;
* ``report [--full] [-o FILE]`` — regenerate everything and write a
  markdown reproduction report;
* ``telemetry`` — run the functional Figure-2 overlap exchange with
  engine telemetry enabled and print the counter snapshot (the quick
  way to see Testany sweeps / queue counters for a real engine run);
* ``chaos`` — run a seeded fault-injection storm over the offloaded
  stack and verify the robustness contract (no hang, no lost
  completion, telemetry balance law); exits nonzero on violation;
* ``dst`` — deterministic-simulation self-check: explore the
  regression corpus (known races with their fixes disabled must be
  rediscovered; with fixes enabled the schedule budget must pass
  clean; linearizability oracles must hold); exits nonzero on any
  wrong outcome and prints a single-seed replay token per finding;
* ``info`` — version and layer summary.
"""

from __future__ import annotations

import argparse
import sys
import time


def _cmd_list() -> int:
    from repro.experiments import REGISTRY, load

    print(f"{len(REGISTRY)} reproducible artifacts:\n")
    for exp_id, path in REGISTRY.items():
        doc = (load(exp_id).__doc__ or "").strip().splitlines()[0]
        print(f"  {exp_id:6s} {doc}")
    print("\nregenerate with: python -m repro run <id> [--full]")
    return 0


def _cmd_run(names: list[str], full: bool, telemetry: bool = False) -> int:
    from repro.experiments import REGISTRY, load

    wanted = names or list(REGISTRY)
    unknown = [n for n in wanted if n not in REGISTRY]
    if unknown:
        print(f"unknown artifact(s): {unknown}; try 'python -m repro list'")
        return 2
    if telemetry:
        from repro import obs

        obs.set_enabled(True)
        obs.drain_snapshots()
    failures = []
    for exp_id in wanted:
        mod = load(exp_id)
        t0 = time.perf_counter()
        table = mod.run(fast=not full)
        print(table.render())
        if telemetry:
            from repro import obs

            snaps = obs.drain_snapshots()
            if snaps:
                print()
                print(obs.render(obs.merge(snaps),
                                 title=f"{exp_id} engine telemetry"))
            else:
                print(f"[{exp_id}: analytic artifact — no offload "
                      "engines ran; try 'python -m repro telemetry']")
        try:
            mod.check(table)
            print(f"-> {exp_id}: checks PASS "
                  f"({time.perf_counter() - t0:.1f}s)\n")
        except AssertionError as exc:
            failures.append(exp_id)
            print(f"-> {exp_id}: CHECK FAILED: {exc}\n")
    if failures:
        print(f"failed: {failures}")
        return 1
    return 0


def _cmd_telemetry(nbytes: int, nranks: int) -> int:
    """Functional Figure-2 analogue with engine counters.

    Runs the rendezvous-sized overlap exchange on real offload engines
    with telemetry enabled, then prints the merged counter snapshot and
    verifies the paper's §3.2 signature: Testany sweeps happened during
    the compute phase and every enqueued command was accounted for.
    """
    from repro import obs
    from repro.bench.overlap import overlap_benchmark

    obs.drain_snapshots()
    with obs.telemetry(True):
        sample = overlap_benchmark("offload", nbytes, nranks=nranks)
    snaps = obs.drain_snapshots()
    merged = obs.merge(snaps)
    print(f"functional overlap exchange: {nranks} ranks, "
          f"{nbytes} B messages (rendezvous), offload approach")
    print(f"  overlap achieved: {sample.overlap_fraction * 100:.0f}% "
          f"(transfer done before wait: {sample.done_before_wait})\n")
    print(obs.render(merged))
    sweeps = merged["counters"].get("testany_sweeps", 0)
    balanced, detail = obs.check_balance(merged)
    ok = sweeps > 0 and balanced
    print(f"\nTestany sweeps during run: {sweeps} "
          f"({'OK' if sweeps > 0 else 'MISSING'})")
    print(f"command accounting balanced: {balanced} ({detail})")
    return 0 if ok else 1


def _cmd_chaos(
    nranks: int,
    rounds: int,
    seed: int,
    profile: str,
    op_timeout: float,
    run_timeout: float,
    as_json: bool,
    pool_size: int = 1,
    router: str | None = None,
    workload: str = "ring",
) -> int:
    """Seeded chaos run; nonzero exit on any contract violation."""
    from repro.faults.chaos import render_report, run_chaos

    report = run_chaos(
        nranks=nranks,
        rounds=rounds,
        seed=seed,
        profile=profile,
        op_timeout=op_timeout,
        run_timeout=run_timeout,
        pool_size=pool_size,
        router=router,
        workload=workload,
    )
    if as_json:
        import json

        print(json.dumps(report, indent=2, default=str))
    else:
        print(render_report(report))
    return 0 if report["ok"] else 1


def _cmd_serve(
    requests: int,
    concurrency: int,
    mode: str,
    seed: int,
    pool_size: int,
    as_json: bool,
) -> int:
    """One seeded loadgen run; nonzero exit on lost completions or a
    balance violation."""
    from dataclasses import asdict

    from repro.serve import LoadgenConfig, run_loadgen

    config = LoadgenConfig(
        seed=seed,
        mode=mode,
        requests=requests,
        concurrency=concurrency,
        pool_size=pool_size,
    )
    report = run_loadgen(config)
    if as_json:
        import json

        payload = asdict(report)
        payload["lost"] = report.lost
        payload["ok"] = report.ok
        print(json.dumps(payload, indent=2, default=str))
    else:
        print(report.render())
    return 0 if report.ok else 1


def _cmd_dst(
    targets: list[str],
    seed: int,
    schedules: int | None,
    strategy: str | None,
    as_json: bool,
) -> int:
    """DST corpus self-check; nonzero exit on any wrong outcome."""
    from repro.dst.targets import CORPUS, run_corpus, run_target
    from repro.obs.counters import Counters

    unknown = [t for t in targets if t not in CORPUS]
    if unknown:
        print(f"unknown target(s): {unknown}; available: {list(CORPUS)}")
        return 2
    counters = Counters()
    t0 = time.perf_counter()
    if targets:
        outcomes = []
        for name in targets:
            if CORPUS[name].regression:
                outcomes.append(
                    run_target(
                        name, fix_disabled=True, seed=seed,
                        schedules=schedules, strategy=strategy,
                        counters=counters,
                    )
                )
            outcomes.append(
                run_target(
                    name, fix_disabled=False, seed=seed,
                    schedules=schedules, strategy=strategy,
                    counters=counters,
                )
            )
    else:
        outcomes = run_corpus(
            seed=seed, schedules=schedules, strategy=strategy,
            counters=counters,
        )
    elapsed = time.perf_counter() - t0
    rows = []
    ok = True
    for o in outcomes:
        ok = ok and o.expected
        rows.append(
            {
                "target": o.target,
                "fix_disabled": o.fix_disabled,
                "found": o.result.found,
                "runs": o.result.runs,
                "exhausted": o.result.exhausted,
                "replay_token": (
                    list(o.result.failure.token)
                    if o.result.failure is not None
                    else None
                ),
                "expected": o.expected,
            }
        )
    if as_json:
        import json

        print(
            json.dumps(
                {
                    "ok": ok,
                    "seed": seed,
                    "elapsed_s": round(elapsed, 3),
                    "outcomes": rows,
                    "counters": counters.snapshot(),
                },
                indent=2,
            )
        )
        return 0 if ok else 1
    print(f"DST corpus self-check (seed={seed}):\n")
    for row in rows:
        mode = "fix OFF" if row["fix_disabled"] else "fix ON " \
            if any(r["target"] == row["target"] and r["fix_disabled"]
                   for r in rows) else "oracle "
        verdict = "ok" if row["expected"] else "WRONG OUTCOME"
        found = (
            f"found in {row['runs']} schedule(s)"
            if row["found"]
            else f"clean over {row['runs']} schedule(s)"
            + (" [tree exhausted]" if row["exhausted"] else "")
        )
        print(f"  {row['target']:28s} {mode} {found:42s} {verdict}")
    snap = counters.snapshot()
    print(
        f"\n{snap.get('schedules_explored', 0)} schedules, "
        f"{snap.get('yields', 0)} yield points, "
        f"{snap.get('lin_histories_checked', 0)} histories checked "
        f"in {elapsed:.1f}s"
    )
    if not ok:
        print("\nDST SELF-CHECK FAILED: see 'DST:' lines above for "
              "replay tokens")
        return 1
    print("all targets behaved as expected")
    return 0


def _cmd_report(out_path: str | None, full: bool) -> int:
    from repro.experiments.report import generate_report

    text = generate_report(fast=not full)
    if out_path:
        with open(out_path, "w") as fh:
            fh.write(text)
        print(f"report written to {out_path}")
    else:
        print(text)
    return 0 if "FAILED" not in text else 1


def _cmd_info() -> int:
    import repro

    print(f"repro {repro.__version__}")
    print((repro.__doc__ or "").strip())
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="SC'15 MPI software-offloading reproduction",
    )
    sub = parser.add_subparsers(dest="cmd")
    sub.add_parser("list", help="list reproducible paper artifacts")
    runp = sub.add_parser("run", help="regenerate artifacts")
    runp.add_argument("names", nargs="*", help="artifact ids (default all)")
    runp.add_argument(
        "--full", action="store_true", help="paper-scale sweeps"
    )
    runp.add_argument(
        "--telemetry",
        action="store_true",
        help="enable engine telemetry and print counter snapshots",
    )
    rep = sub.add_parser("report", help="write a markdown report")
    rep.add_argument("-o", "--output", default=None)
    rep.add_argument("--full", action="store_true")
    tel = sub.add_parser(
        "telemetry",
        help="run a functional overlap exchange and print engine counters",
    )
    tel.add_argument(
        "--nbytes", type=int, default=1 << 21,
        help="message size in bytes (default 2 MiB, rendezvous)",
    )
    tel.add_argument("--nranks", type=int, default=2)
    cha = sub.add_parser(
        "chaos",
        help="seeded fault-injection storm; nonzero exit on hang / "
        "lost completion / balance violation",
    )
    cha.add_argument("--nranks", type=int, default=4)
    cha.add_argument("--rounds", type=int, default=40)
    cha.add_argument("--seed", type=int, default=0)
    cha.add_argument(
        "--profile",
        default="mixed",
        choices=[
            "messages",
            "stragglers",
            "transient",
            "crash",
            "shard-crash",
            "mixed",
            "rank-crash-survive",
        ],
    )
    cha.add_argument(
        "--pool-size", type=int, default=1,
        help="engine shards per rank (shard-crash defaults to 4)",
    )
    cha.add_argument(
        "--workload", default="ring", choices=["ring", "serve"],
        help="ring point-to-point storm, or the serving front-end's "
        "loadgen (concurrent awaiters over the asyncio bridge)",
    )
    cha.add_argument(
        "--router", default=None,
        choices=["dest", "comm", "rr", "thread"],
        help="pool routing policy (default: dest affinity)",
    )
    cha.add_argument(
        "--op-timeout", type=float, default=1.0,
        help="per-operation deadline in seconds",
    )
    cha.add_argument(
        "--run-timeout", type=float, default=120.0,
        help="hard wall-clock bound for the whole run",
    )
    cha.add_argument("--json", action="store_true")
    srv = sub.add_parser(
        "serve",
        help="seeded serving loadgen over the asyncio bridge; nonzero "
        "exit on lost completions or a balance violation",
    )
    srv.add_argument("--requests", type=int, default=200)
    srv.add_argument("--concurrency", type=int, default=32)
    srv.add_argument(
        "--mode", default="closed", choices=["closed", "open"]
    )
    srv.add_argument("--seed", type=int, default=0)
    srv.add_argument(
        "--pool-size", type=int, default=2,
        help="engine shards serving the loop",
    )
    srv.add_argument("--json", action="store_true")
    dst = sub.add_parser(
        "dst",
        help="deterministic-simulation self-check over the regression "
        "corpus; nonzero exit on any wrong outcome",
    )
    dst.add_argument(
        "targets", nargs="*",
        help="corpus target names (default: whole corpus)",
    )
    dst.add_argument("--seed", type=int, default=0)
    dst.add_argument(
        "--schedules", type=int, default=None,
        help="override the per-target schedule budget",
    )
    dst.add_argument(
        "--strategy", default=None,
        choices=["random", "pct", "exhaustive"],
        help="override the per-target exploration strategy",
    )
    dst.add_argument("--json", action="store_true")
    sub.add_parser("info", help="version and layout")
    args = parser.parse_args(argv)
    if args.cmd == "list":
        return _cmd_list()
    if args.cmd == "run":
        return _cmd_run(args.names, args.full, args.telemetry)
    if args.cmd == "telemetry":
        return _cmd_telemetry(args.nbytes, args.nranks)
    if args.cmd == "chaos":
        return _cmd_chaos(
            args.nranks,
            args.rounds,
            args.seed,
            args.profile,
            args.op_timeout,
            args.run_timeout,
            args.json,
            args.pool_size,
            args.router,
            args.workload,
        )
    if args.cmd == "serve":
        return _cmd_serve(
            args.requests,
            args.concurrency,
            args.mode,
            args.seed,
            args.pool_size,
            args.json,
        )
    if args.cmd == "dst":
        return _cmd_dst(
            args.targets,
            args.seed,
            args.schedules,
            args.strategy,
            args.json,
        )
    if args.cmd == "report":
        return _cmd_report(args.output, args.full)
    if args.cmd == "info":
        return _cmd_info()
    parser.print_help()
    return 0


if __name__ == "__main__":
    sys.exit(main())
