"""repro — reproduction of "Improving concurrency and asynchrony in
multithreaded MPI applications using software offloading" (SC '15).

Layers (see DESIGN.md for the full inventory):

* :mod:`repro.lockfree` — the CAS-based command queue and request-slot
  free list of the paper's Section 3.
* :mod:`repro.mpisim` — a functional in-process MPI (ranks as threads)
  with real eager/rendezvous protocols and an explicit progress engine.
* :mod:`repro.core` — **the paper's contribution**: the offload engine,
  the interposed communicator, and the comparison approaches
  (comm-self, iprobe, thread groups).
* :mod:`repro.simtime` — a discrete-event performance simulator that
  regenerates every table and figure of the paper's evaluation.
* :mod:`repro.apps` — the three evaluation applications (QCD
  Wilson-Dslash + solvers, distributed FFT, hybrid-parallel CNN).
* :mod:`repro.bench` / :mod:`repro.experiments` — microbenchmarks and
  per-artifact experiment drivers.

Quickstart::

    import numpy as np
    from repro.mpisim import World
    from repro.core import offloaded

    def program(comm):
        with offloaded(comm) as oc:       # the paper's offload, §3
            total = oc.allreduce(np.array([float(oc.rank)]))
            return float(total[0])

    print(World(4).run(program))          # [6.0, 6.0, 6.0, 6.0]
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
