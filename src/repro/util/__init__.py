"""Shared low-level utilities used across the reproduction.

This package intentionally has no dependencies on the rest of
:mod:`repro` so every other subpackage may import it freely.
"""

from repro.util.units import (
    format_bytes,
    format_time,
    parse_bytes,
    KIB,
    MIB,
    GIB,
)
from repro.util.timing import Stopwatch, TimeBreakdown, busy_spin
from repro.util.tables import Table, format_table
from repro.util.rng import seeded_rng, derive_seed

__all__ = [
    "format_bytes",
    "format_time",
    "parse_bytes",
    "KIB",
    "MIB",
    "GIB",
    "Stopwatch",
    "TimeBreakdown",
    "busy_spin",
    "Table",
    "format_table",
    "seeded_rng",
    "derive_seed",
]
