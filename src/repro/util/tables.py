"""Plain-text table rendering for experiment output.

Every experiment module prints the same rows/series as the paper's
tables and figures; this renderer keeps that output aligned and
machine-greppable without any third-party dependency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence


def _cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render rows as an aligned monospace table."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


@dataclass
class Table:
    """Accumulating table with the column set fixed at construction."""

    headers: tuple[str, ...]
    title: str | None = None
    rows: list[tuple[Any, ...]] = field(default_factory=list)

    def add_row(self, *cells: Any) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        self.rows.append(tuple(cells))

    def column(self, name: str) -> list[Any]:
        try:
            idx = self.headers.index(name)
        except ValueError:
            raise KeyError(f"no column named {name!r}") from None
        return [row[idx] for row in self.rows]

    def render(self) -> str:
        return format_table(self.headers, self.rows, title=self.title)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
