"""Byte-size and time formatting/parsing helpers.

Message sizes in the paper's figures are reported in powers of two
(8 B ... 2 MB), so all helpers here use binary units.
"""

from __future__ import annotations

import re

KIB: int = 1024
MIB: int = 1024 * KIB
GIB: int = 1024 * MIB

_SUFFIXES = (
    ("GB", GIB),
    ("MB", MIB),
    ("KB", KIB),
    ("B", 1),
)

_PARSE_RE = re.compile(
    r"^\s*(?P<num>\d+(?:\.\d+)?)\s*(?P<unit>[KMG]?i?B?)\s*$", re.IGNORECASE
)

_UNIT_FACTORS = {
    "": 1,
    "B": 1,
    "K": KIB,
    "KB": KIB,
    "KIB": KIB,
    "M": MIB,
    "MB": MIB,
    "MIB": MIB,
    "G": GIB,
    "GB": GIB,
    "GIB": GIB,
}


def parse_bytes(text: str | int) -> int:
    """Parse a human-readable byte size like ``"128KB"`` into an int.

    Integers pass through unchanged.  Binary units are assumed
    (``1KB == 1024`` bytes), matching MPI benchmark conventions.

    >>> parse_bytes("128KB")
    131072
    >>> parse_bytes(42)
    42
    """
    if isinstance(text, int):
        return text
    m = _PARSE_RE.match(text)
    if m is None:
        raise ValueError(f"unparseable byte size: {text!r}")
    unit = m.group("unit").upper()
    if unit not in _UNIT_FACTORS:
        raise ValueError(f"unknown unit in byte size: {text!r}")
    value = float(m.group("num")) * _UNIT_FACTORS[unit]
    return int(round(value))


def format_bytes(n: int) -> str:
    """Format a byte count the way OSU benchmark tables do.

    >>> format_bytes(131072)
    '128KB'
    >>> format_bytes(8)
    '8B'
    """
    if n < 0:
        raise ValueError("byte count must be nonnegative")
    for suffix, factor in _SUFFIXES:
        if factor == 1:
            break
        if n >= factor and n % factor == 0:
            return f"{n // factor}{suffix}"
    if n < KIB:
        return f"{n}B"
    for suffix, factor in _SUFFIXES:
        if n >= factor:
            return f"{n / factor:.1f}{suffix}"
    return f"{n}B"  # pragma: no cover - unreachable


def format_time(seconds: float) -> str:
    """Format a duration with an auto-selected unit.

    >>> format_time(1.4e-7)
    '140.0ns'
    >>> format_time(2.5e-6)
    '2.5us'
    """
    if seconds < 0:
        raise ValueError("duration must be nonnegative")
    if seconds == 0:
        return "0s"
    if seconds < 1e-6:
        return f"{seconds * 1e9:.1f}ns"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.3f}ms"
    return f"{seconds:.3f}s"


def pow2_sizes(lo: int, hi: int) -> list[int]:
    """Inclusive list of power-of-two message sizes between ``lo`` and ``hi``.

    Both endpoints must themselves be powers of two, as in the OSU
    benchmark sweeps.

    >>> pow2_sizes(8, 64)
    [8, 16, 32, 64]
    """
    for v in (lo, hi):
        if v <= 0 or v & (v - 1):
            raise ValueError(f"{v} is not a positive power of two")
    if lo > hi:
        raise ValueError("lo must not exceed hi")
    out = []
    v = lo
    while v <= hi:
        out.append(v)
        v <<= 1
    return out
