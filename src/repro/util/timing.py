"""Timing primitives for the functional (wall-clock) benchmark paths.

The discrete-event simulator (:mod:`repro.simtime`) keeps its own virtual
clock; the helpers here serve the in-process functional benchmarks that
measure real elapsed time on the threaded MPI substrate.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


def busy_spin(duration: float) -> None:
    """Burn CPU for ``duration`` seconds without releasing long sleeps.

    Used by the overlap microbenchmark to emulate "internal volume
    compute": unlike :func:`time.sleep`, short spins keep the thread
    runnable, matching how an OpenMP compute loop behaves with respect
    to MPI progress (i.e. it makes none).
    """
    if duration <= 0:
        return
    deadline = time.perf_counter() + duration
    while time.perf_counter() < deadline:
        pass


class Stopwatch:
    """Accumulating stopwatch with split support.

    >>> sw = Stopwatch()
    >>> sw.start(); sw.stop() >= 0.0
    True
    """

    __slots__ = ("_t0", "elapsed", "laps")

    def __init__(self) -> None:
        self._t0: float | None = None
        self.elapsed: float = 0.0
        self.laps: list[float] = []

    def start(self) -> None:
        if self._t0 is not None:
            raise RuntimeError("stopwatch already running")
        self._t0 = time.perf_counter()

    def stop(self) -> float:
        if self._t0 is None:
            raise RuntimeError("stopwatch not running")
        lap = time.perf_counter() - self._t0
        self._t0 = None
        self.elapsed += lap
        self.laps.append(lap)
        return lap

    def reset(self) -> None:
        self._t0 = None
        self.elapsed = 0.0
        self.laps.clear()

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


@dataclass
class TimeBreakdown:
    """Per-phase time accumulator matching the paper's Tables 1 and 2.

    The paper splits each application iteration into *internal compute*,
    *post*, *wait* and *misc* time.  Phases here are free-form strings so
    the same accumulator serves microbenchmarks too.
    """

    phases: dict[str, float] = field(default_factory=dict)

    def add(self, phase: str, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("negative phase time")
        self.phases[phase] = self.phases.get(phase, 0.0) + seconds

    def get(self, phase: str) -> float:
        return self.phases.get(phase, 0.0)

    @property
    def total(self) -> float:
        return sum(self.phases.values())

    def merge(self, other: "TimeBreakdown") -> "TimeBreakdown":
        out = TimeBreakdown(dict(self.phases))
        for k, v in other.phases.items():
            out.add(k, v)
        return out

    def scaled(self, factor: float) -> "TimeBreakdown":
        """Return a copy with every phase multiplied by ``factor``.

        Used to convert a summed multi-iteration breakdown into a
        per-iteration one.
        """
        if factor < 0:
            raise ValueError("negative scale factor")
        return TimeBreakdown({k: v * factor for k, v in self.phases.items()})

    def as_row(self, order: tuple[str, ...]) -> list[float]:
        return [self.get(p) for p in order]
