"""Deterministic random-number helpers.

All stochastic pieces of the reproduction (workload generators, CNN
weight init, property-test data) draw from :func:`seeded_rng` so runs
are reproducible end to end.
"""

from __future__ import annotations

import hashlib

import numpy as np

DEFAULT_SEED = 0x5C15  # "SC15"


def derive_seed(*parts: object, base: int = DEFAULT_SEED) -> int:
    """Derive a stable 63-bit seed from arbitrary labelled parts.

    Uses SHA-256 over the repr of the parts so the same labels always
    yield the same stream, independent of Python hash randomization.

    >>> derive_seed("qcd", 8) == derive_seed("qcd", 8)
    True
    >>> derive_seed("qcd", 8) != derive_seed("qcd", 16)
    True
    """
    h = hashlib.sha256()
    h.update(str(base).encode())
    for p in parts:
        h.update(b"\x00")
        h.update(repr(p).encode())
    return int.from_bytes(h.digest()[:8], "little") & (2**63 - 1)


def seeded_rng(*parts: object, base: int = DEFAULT_SEED) -> np.random.Generator:
    """Return a NumPy Generator seeded deterministically from ``parts``."""
    return np.random.default_rng(derive_seed(*parts, base=base))
