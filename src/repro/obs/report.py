"""Snapshot / merge / render helpers for engine telemetry.

A *snapshot* is a plain dict (JSON-serializable) capturing one offload
engine's telemetry counters plus the state of its command ring, request
pool, and the underlying per-rank progress engine.  Snapshots from many
engines/ranks merge into one aggregate; ``render`` turns either into a
human-readable block for examples and benchmark logs.

A process-global *registry* collects the final snapshot of every
telemetry-enabled engine at shutdown, so harnesses (benchmarks, the
CLI) can report counters for engines that lived and died inside a
``World`` run they did not construct themselves.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.obs.counters import COUNTER_GLOSSARY, merge_counters

#: snapshot keys whose values are counter dicts (merged element-wise)
_DICT_SECTIONS = ("counters", "queue", "pool", "progress")


def snapshot_engine(engine: Any, include_trace: bool = False) -> dict:
    """Capture one :class:`~repro.core.engine.OffloadEngine`'s state.

    Works on any object with the engine's surface (``telemetry``,
    ``queue``, ``pool``, ``comm``, ``_in_flight``); the duck typing
    keeps this module free of imports from :mod:`repro.core`.
    """
    tm = engine.telemetry
    queue = engine.queue
    pool = engine.pool
    progress = engine.comm.engine
    snap: dict = {
        "rank": progress.rank,
        "ranks": [progress.rank],
        "counters": dict(tm.counters.snapshot()) if tm else {},
        "in_flight": len(engine._in_flight),
        "queue": {
            "capacity": queue.capacity,
            "occupancy": len(queue),
            "enqueued": queue.enqueue_count.load(),
            "dequeued": queue.dequeue_count,
            "cas_failures": queue.cas_failures,
            "occupancy_hwm": getattr(queue, "occupancy_hwm", 0),
        },
        "pool": {
            "capacity": pool.capacity,
            "allocated": pool.allocated,
        },
        "progress": progress.counters(),
    }
    if include_trace and tm is not None and tm.trace is not None:
        snap["trace"] = tm.trace.to_dicts()
    return snap


def merge(snapshots: "list[dict]") -> dict:
    """Merge per-engine snapshots into one aggregate.

    Counter-like sections merge element-wise (sum, max for ``*_hwm``);
    capacities sum (they are per-engine resources); rank lists union.
    """
    if not snapshots:
        return {
            "ranks": [],
            "counters": {},
            "in_flight": 0,
            "queue": {},
            "pool": {},
            "progress": {},
            "engines": 0,
        }
    out: dict = {
        "ranks": sorted(
            {r for s in snapshots for r in s.get("ranks", [])}
        ),
        "in_flight": sum(s.get("in_flight", 0) for s in snapshots),
        "engines": len(snapshots),
    }
    for section in _DICT_SECTIONS:
        out[section] = merge_counters(
            [s.get(section, {}) for s in snapshots]
        )
    return out


def check_balance(snapshot: dict) -> tuple[bool, dict[str, int]]:
    """The stress-test conservation law for a (merged) snapshot.

    At any quiescent point::

        enqueued == drained == completions + control + in_flight

    i.e. every command ever enqueued was drained, and every drained
    command either reached a terminal state, was an engine-control
    command, or is still in flight.
    """
    c = snapshot.get("counters", {})
    detail = {
        "enqueued": c.get("enqueues", 0),
        "drained": c.get("commands_drained", 0),
        "completions": c.get("completions", 0),
        "control": c.get("control_commands", 0),
        "in_flight": snapshot.get("in_flight", 0),
    }
    ok = (
        detail["enqueued"] == detail["drained"]
        and detail["drained"]
        == detail["completions"] + detail["control"] + detail["in_flight"]
    )
    return ok, detail


def render(snapshot: dict, title: str = "engine telemetry") -> str:
    """Human-readable block for examples and benchmark logs."""
    lines = [f"{title}:"]
    ranks = snapshot.get("ranks")
    if ranks:
        engines = snapshot.get("engines", len(ranks))
        lines.append(f"  ranks={ranks} engines={engines}")
    counters = snapshot.get("counters", {})
    known = [n for n in COUNTER_GLOSSARY if n in counters]
    extra = sorted(set(counters) - set(known))
    for name in known + extra:
        lines.append(f"  {name:24s} {counters[name]}")
    for section in ("queue", "pool", "progress"):
        d = snapshot.get(section, {})
        if d:
            body = " ".join(f"{k}={v}" for k, v in sorted(d.items()))
            lines.append(f"  [{section}] {body}")
    ok, detail = check_balance(snapshot)
    lines.append(
        "  balance: enqueued={enqueued} drained={drained} "
        "completions={completions} control={control} "
        "in_flight={in_flight}".format(**detail)
        + (" OK" if ok else " IMBALANCED")
    )
    return "\n".join(lines)


# -- process-global snapshot registry ------------------------------------

_registry: list[dict] = []
_registry_lock = threading.Lock()


def record_snapshot(snapshot: dict) -> None:
    """Engines push their final snapshot here at stop()/abort()."""
    with _registry_lock:
        _registry.append(snapshot)


def drain_snapshots() -> list[dict]:
    """Remove and return everything recorded so far."""
    with _registry_lock:
        out = list(_registry)
        _registry.clear()
    return out


def peek_snapshots() -> list[dict]:
    with _registry_lock:
        return list(_registry)
