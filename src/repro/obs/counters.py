"""Per-thread telemetry counters for the offload engine.

The engine's hot paths (one enqueue per MPI call, one loop iteration
per Testany sweep) cannot afford a shared lock per increment, and a
single shared integer would drop updates under free-threaded builds.
So — following the :mod:`repro.lockfree.atomics` idiom of "no lock on
the hot path, locks only where they cannot race" — every thread owns a
private counter dict:

* ``inc``/``record_max`` touch only the calling thread's dict (plain
  int stores, GIL-atomic, no contention);
* the one-time registration of a new thread's dict takes a lock, but
  never while counting;
* ``snapshot`` merges all per-thread dicts: sums for event counters,
  max for high-water marks (names ending in ``_hwm``).

Dicts of threads that have exited stay registered, so their counts are
never lost.
"""

from __future__ import annotations

import threading

#: Counter names ending in this suffix are merged with ``max`` instead
#: of ``+`` (they are high-water marks, not event counts).
HWM_SUFFIX = "_hwm"

#: Glossary of every counter the offload stack emits (name -> meaning).
#: ``report.render`` and the docs table are generated from this, so a
#: counter added to the engine should be added here too.
COUNTER_GLOSSARY: dict[str, str] = {
    "enqueues": "commands successfully enqueued on the command ring",
    "queue_full_retries": "enqueue attempts bounced by a full ring "
    "(backpressure events)",
    "commands_drained": "commands dequeued by the engine loop",
    "blocking_conversions": "blocking calls converted to nonblocking + "
    "done-flag (paper §3.3)",
    "testany_sweeps": "engine loop passes pumping progress over "
    "in-flight requests (the §3.2 Testany loop)",
    "completions": "commands that reached a terminal state (completed, "
    "failed, or flushed)",
    "idle_backoff_entries": "times the idle engine entered a timed "
    "backoff wait",
    "control_commands": "engine-control commands (SHUTDOWN)",
    "app_blocking_calls": "blocking MPI calls issued by application "
    "threads through the facade",
    "app_nonblocking_calls": "nonblocking MPI calls issued by "
    "application threads through the facade",
    "pool_allocs": "request-pool slots claimed",
    "pool_releases": "request-pool slots recycled",
    "pool_exhausted": "request-pool allocation failures (pool empty)",
    "in_flight_hwm": "peak number of simultaneously in-flight requests",
    "pool_in_use_hwm": "peak number of simultaneously allocated "
    "request-pool slots",
    "queue_occupancy_hwm": "peak command-ring occupancy",
    # -- fault injection + recovery (repro.faults / core.recovery) ------
    "faults_injected": "faults fired by the installed FaultPlan "
    "(all scopes; per-action detail in fault_<action> counters)",
    "retries": "idempotent commands re-driven after a transient "
    "failure (RetryPolicy)",
    "deadline_expirations": "commands terminal-failed with "
    "OffloadTimeout for missing their deadline",
    "watchdog_trips": "times a caller-side watchdog declared the "
    "engine wedged and poisoned it",
    "degraded_mode_commands": "facade calls executed inline on the "
    "calling thread after engine death (FUNNELED fallback)",
    # -- batched issue + coalescing (PR 4 hot-loop work) ----------------
    "batch_dequeues": "non-empty batch drains of the command ring "
    "(one per engine loop iteration that found work)",
    "batch_size_hwm": "largest single batch drained from the ring",
    "coalesced_messages": "wire messages carrying a packed run of "
    "eager sends (each saves run-1 deliveries)",
    "pool_cache_hits": "request-pool allocations served from the "
    "calling thread's slot cache (no shared-list CAS)",
    "pool_cache_misses": "request-pool allocations that refilled the "
    "thread cache from the shared free list (one CAS per chunk)",
    # -- sharded engine pool (core.engine_pool) -------------------------
    "steals": "batches an idle shard stole from the deepest sibling "
    "command ring (work-stealing events)",
    "steal_batch_hwm": "largest single batch of commands taken in one "
    "steal",
    "shard_scale_events": "autoscale transitions of the pool's active "
    "routing width (grow on queue depth, shrink on sustained idleness)",
    "router_misroutes": "routes where the sticky stream-to-shard "
    "assignment disagreed with the policy's current placement (stale "
    "placement after scale events or dead-shard remaps)",
    # -- deterministic simulation testing (repro.dst) -------------------
    "schedules_explored": "DST schedules executed by the explorer "
    "(one seeded interleaving each)",
    "yields": "DST yield points taken across explored schedules "
    "(scheduler choice points hit in the lockfree/engine hot paths)",
    "lin_histories_checked": "operation histories checked for "
    "linearizability against a sequential model spec",
    "dst_violations": "explored schedules that violated an invariant, "
    "deadlocked, or produced a non-linearizable history",
    # -- zero-copy data plane (DESIGN.md §14) ---------------------------
    "payload_copies": "intermediate payload materializations (eager "
    "copy-at-post, RMA origin packing, fault-plan duplicate deep "
    "copies); the final copy into a posted receive buffer is never "
    "counted, so 0 on the zero-copy happy path means each byte moved "
    "exactly once",
    "payload_zero_copy_hits": "deliveries satisfied directly from the "
    "sender's live user buffer into the receiver's posted buffer "
    "(counted on the receiving/target rank)",
    "duplicate_deep_copies": "borrowed zero-copy payloads a fault "
    "plan's DUPLICATE action had to materialize so the duplicate "
    "cannot alias the sender's buffer",
    # -- fault tolerance: ULFM + checkpoint/restart (repro.ft) ----------
    "comm_revokes": "communicators revoked on this rank (first local "
    "application of each revoke; ULFM MPI_Comm_revoke analogue)",
    "agree_rounds": "candidate-exchange rounds run by the "
    "fault-tolerant agreement protocol (Communicator.agree); grows "
    "when participants die mid-protocol and survivors re-round",
    "shrink_epochs": "communicator shrinks completed on this rank "
    "(orphaned queue entries drained, surviving membership renumbered)",
    "checkpoint_bytes": "bytes committed to the checkpoint store by "
    "the run_resilient driver (one consistent snapshot per epoch "
    "boundary)",
    "restarts": "recovery events where survivors shrank the world and "
    "resumed from the last consistent checkpoint (one count per "
    "revoke→agree→shrink→restore cycle, not per rank)",
    # -- continuation completion + serving front-end (repro.serve) -----
    "continuation_fires": "continuations delivered exactly once at a "
    "request's terminal state (success and every typed failure path: "
    "timeout, crash, revoke, shrink)",
    "continuation_drops": "continuation deliveries abandoned "
    "undelivered — a direct waiter consumed the slot before the "
    "continuation could fire, or the asyncio loop had already closed "
    "when the completion landed (lost register-vs-complete race "
    "attempts are silent: the winning side delivered)",
    "serve_accepted": "serving requests admitted past admission "
    "control into a tenant queue",
    "serve_rejected": "serving requests refused with a typed "
    "backpressure error (global in-flight cap or tenant queue full)",
    "serve_completed": "serving requests that finished successfully "
    "and recorded a latency sample",
    "serve_failed": "serving requests that terminated with a typed "
    "offload/MPI error (a terminal outcome: accepted = completed + "
    "failed + still-in-flight, so nothing is ever silently lost)",
}


class Counters:
    """A set of named counters, sharded per thread, merged on read."""

    __slots__ = ("_local", "_shards", "_register_lock")

    def __init__(self) -> None:
        self._local = threading.local()
        self._shards: list[dict[str, int]] = []
        self._register_lock = threading.Lock()

    # -- hot path ---------------------------------------------------------

    def _mine(self) -> dict[str, int]:
        try:
            return self._local.shard
        except AttributeError:
            shard: dict[str, int] = {}
            with self._register_lock:
                self._shards.append(shard)
            self._local.shard = shard
            return shard

    def inc(self, name: str, n: int = 1) -> None:
        """Add ``n`` to this thread's shard of counter ``name``."""
        shard = self._mine()
        shard[name] = shard.get(name, 0) + n

    def record_max(self, name: str, value: int) -> None:
        """Raise this thread's shard of high-water mark ``name``."""
        shard = self._mine()
        if value > shard.get(name, 0):
            shard[name] = value

    # -- aggregation ------------------------------------------------------

    def snapshot(self) -> dict[str, int]:
        """Merged view across all threads (sum; max for ``*_hwm``)."""
        with self._register_lock:
            shards = list(self._shards)
        out: dict[str, int] = {}
        for shard in shards:
            # copy: the owning thread may be mutating concurrently
            for name, value in list(shard.items()):
                if name.endswith(HWM_SUFFIX):
                    if value > out.get(name, 0):
                        out[name] = value
                else:
                    out[name] = out.get(name, 0) + value
        return out

    def get(self, name: str) -> int:
        """Merged value of one counter (0 if never incremented)."""
        return self.snapshot().get(name, 0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counters({self.snapshot()!r})"


def merge_counters(dicts: "list[dict[str, int]]") -> dict[str, int]:
    """Merge counter dicts: sum event counts, max high-water marks."""
    out: dict[str, int] = {}
    for d in dicts:
        for name, value in d.items():
            if name.endswith(HWM_SUFFIX):
                if value > out.get(name, 0):
                    out[name] = value
            else:
                out[name] = out.get(name, 0) + value
    return out
