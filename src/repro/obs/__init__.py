"""Observability for the offload stack (counters, traces, reports).

The paper's claims are statements about *internal engine behavior* —
queue occupancy, Testany sweep frequency, rendezvous progress during
compute — that timings alone cannot verify.  This package makes that
behavior observable:

* :mod:`repro.obs.counters` — per-thread counter sets merged on read
  (the lock-free idiom of :mod:`repro.lockfree.atomics`: no lock on
  the hot path);
* :mod:`repro.obs.trace` — a bounded ring of structured trace events
  with JSON export;
* :mod:`repro.obs.report` — snapshot / merge / render helpers plus the
  process-global registry benchmarks drain.

Telemetry is **off by default and zero-overhead when off**: engines
consult :func:`enabled` once at construction, and every instrumented
hot path is guarded by a single ``is None`` check.  Enable it globally
with :func:`set_enabled` (or the ``REPRO_TELEMETRY`` environment
variable), per scope with :func:`telemetry`, or per engine with the
``telemetry=`` keyword on :class:`~repro.core.engine.OffloadEngine` /
:func:`~repro.core.interpose.offloaded`.
"""

from __future__ import annotations

import contextlib
import os
from typing import Iterator

from repro.obs.counters import COUNTER_GLOSSARY, Counters, merge_counters
from repro.obs.trace import DEFAULT_TRACE_CAPACITY, TraceBuffer, TraceEvent
from repro.obs.report import (
    check_balance,
    drain_snapshots,
    merge,
    peek_snapshots,
    record_snapshot,
    render,
    snapshot_engine,
)

_TRUTHY = {"1", "true", "yes", "on"}

_enabled = os.environ.get("REPRO_TELEMETRY", "").strip().lower() in _TRUTHY


def enabled() -> bool:
    """Is telemetry globally enabled (default for new engines)?"""
    return _enabled


def set_enabled(on: bool) -> None:
    """Set the global default consulted at engine construction."""
    global _enabled
    _enabled = bool(on)


@contextlib.contextmanager
def telemetry(on: bool = True) -> Iterator[None]:
    """Scope the global telemetry default; restores it on exit."""
    global _enabled
    prev = _enabled
    _enabled = bool(on)
    try:
        yield
    finally:
        _enabled = prev


class Telemetry:
    """One engine's telemetry bundle: counters plus a trace ring."""

    __slots__ = ("counters", "trace")

    def __init__(
        self, trace_capacity: int = DEFAULT_TRACE_CAPACITY
    ) -> None:
        self.counters = Counters()
        self.trace: TraceBuffer | None = (
            TraceBuffer(trace_capacity) if trace_capacity > 0 else None
        )


__all__ = [
    "COUNTER_GLOSSARY",
    "Counters",
    "DEFAULT_TRACE_CAPACITY",
    "Telemetry",
    "TraceBuffer",
    "TraceEvent",
    "check_balance",
    "drain_snapshots",
    "enabled",
    "merge",
    "merge_counters",
    "peek_snapshots",
    "record_snapshot",
    "render",
    "set_enabled",
    "snapshot_engine",
    "telemetry",
]
