"""Bounded structured trace ring for the offload engine.

A fixed-capacity ring buffer of :class:`TraceEvent` records.  Appends
claim a ticket with a fetch-and-add (the :mod:`repro.lockfree.atomics`
idiom) and write into ``ticket % capacity``, so many threads can trace
concurrently without a shared lock; the oldest events are overwritten
when the ring wraps, and the number of overwritten events is reported
as ``dropped``.

The ring is diagnostic, not a transcript: a reader racing with writers
may observe a torn *window* (an event overwritten mid-read is skipped),
never a torn *event* (records are immutable once constructed).
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass

from repro.lockfree.atomics import AtomicCounter

DEFAULT_TRACE_CAPACITY = 2048


@dataclass(slots=True, frozen=True)
class TraceEvent:
    """One structured trace record."""

    #: event kind, e.g. ``dispatch:isend``, ``complete``, ``queue_full``
    kind: str
    #: MPI rank the event happened on (-1 when not rank-specific)
    rank: int
    #: request-pool slot involved (-1 when none)
    slot: int
    #: monotonic timestamp (``time.perf_counter`` seconds)
    t: float


class TraceBuffer:
    """Lock-free-style bounded ring of :class:`TraceEvent` records."""

    __slots__ = ("_buf", "_capacity", "_ticket")

    def __init__(self, capacity: int = DEFAULT_TRACE_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError("trace capacity must be positive")
        self._capacity = capacity
        self._buf: list[TraceEvent | None] = [None] * capacity
        self._ticket = AtomicCounter(0)

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def recorded(self) -> int:
        """Total events ever appended (including overwritten ones)."""
        return self._ticket.load()

    @property
    def dropped(self) -> int:
        """Events overwritten because the ring wrapped."""
        return max(0, self._ticket.load() - self._capacity)

    def append(self, kind: str, rank: int = -1, slot: int = -1) -> None:
        """Record an event; O(1), overwrites the oldest on wrap."""
        ticket = self._ticket.fetch_add(1)
        self._buf[ticket % self._capacity] = TraceEvent(
            kind=kind, rank=rank, slot=slot, t=time.perf_counter()
        )

    def events(self) -> list[TraceEvent]:
        """Surviving events, oldest first (best-effort under writers)."""
        end = self._ticket.load()
        start = max(0, end - self._capacity)
        out: list[TraceEvent] = []
        for ticket in range(start, end):
            ev = self._buf[ticket % self._capacity]
            if ev is not None:
                out.append(ev)
        out.sort(key=lambda ev: ev.t)
        return out

    def clear(self) -> None:
        self._buf = [None] * self._capacity
        self._ticket.store(0)

    def __len__(self) -> int:
        return min(self._ticket.load(), self._capacity)

    # -- export -----------------------------------------------------------

    def to_dicts(self) -> list[dict]:
        return [asdict(ev) for ev in self.events()]

    def to_json(self, indent: int | None = None) -> str:
        """JSON document: events plus drop accounting."""
        return json.dumps(
            {
                "capacity": self._capacity,
                "recorded": self.recorded,
                "dropped": self.dropped,
                "events": self.to_dicts(),
            },
            indent=indent,
        )

    def export(self, path: str, indent: int | None = 2) -> None:
        """Write :meth:`to_json` to ``path``."""
        with open(path, "w") as fh:
            fh.write(self.to_json(indent=indent))
