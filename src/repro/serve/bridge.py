"""asyncio bridge: offloaded nonblocking calls as awaitables.

The continuation registry fires on the engine thread (or whichever
thread delivers a typed failure); an event loop must never be touched
from there.  The bridge therefore registers a continuation that does
exactly one thing — ``loop.call_soon_threadsafe(resolve)`` — and the
loop thread itself consumes the handle (:meth:`OffloadRequest.test`),
collecting the status or raising the typed error into the future.
This is the loop-handoff boundary the ``continuation-double-fire``
DST target pins down: the engine-side fire and the loop-side consume
are different threads, serialized only by the exactly-once claim.

If the loop is already closed when the completion lands, the delivery
is abandoned and counted as a ``continuation_drop`` — never an
unhandled exception on the engine thread.
"""

from __future__ import annotations

import asyncio
from typing import Any

from repro.mpisim.constants import ANY_SOURCE, ANY_TAG
from repro.mpisim.status import Status

__all__ = ["AsyncOffloadEngine"]


class AsyncOffloadEngine:
    """Awaitable facade over an :class:`OffloadCommunicator`.

    ``await engine.offload_isend(buf, dest)`` submits the nonblocking
    command (one ring enqueue, same as the sync facade) and suspends
    the coroutine until the continuation fires; no thread ever spins
    on a done flag.  Completion cost for the waiter is one
    ``call_soon_threadsafe`` wakeup.
    """

    def __init__(
        self,
        ocomm,
        loop: asyncio.AbstractEventLoop | None = None,
    ) -> None:
        self.ocomm = ocomm
        self._loop = loop

    @property
    def rank(self) -> int:
        return self.ocomm.rank

    @property
    def size(self) -> int:
        return self.ocomm.size

    def awaitable(self, req) -> "asyncio.Future[Status]":
        """Wrap an already-submitted :class:`OffloadRequest`.

        Must be called on the loop thread (it captures the running
        loop when none was pinned at construction).
        """
        loop = self._loop or asyncio.get_running_loop()
        fut: "asyncio.Future[Status]" = loop.create_future()

        def resolve() -> None:
            # Loop thread: consume the handle exactly once.
            if fut.cancelled():
                # The awaiter gave up; still consume the slot so it is
                # released, and absorb the typed error if any.
                try:
                    req.test()
                except BaseException:
                    pass
                return
            try:
                done, status = req.test()
            except BaseException as exc:
                fut.set_exception(exc)
            else:
                # The continuation only fires at a terminal state, so
                # test() cannot report pending here.
                assert done
                fut.set_result(status)

        def fire() -> None:
            # Engine thread (or typed-failure deliverer).
            try:
                loop.call_soon_threadsafe(resolve)
            except RuntimeError:
                # Loop closed: the completion has nowhere to land.
                pool = getattr(req, "_pool", None)
                if pool is not None:
                    pool._note_drop()

        req.add_continuation(fire)
        return fut

    async def offload_isend(
        self, buf: Any, dest: int, tag: int = 0
    ) -> Status:
        return await self.awaitable(self.ocomm.isend(buf, dest, tag))

    async def offload_irecv(
        self, buf: Any, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> Status:
        return await self.awaitable(self.ocomm.irecv(buf, source, tag))

    async def offload_isend_obj(
        self, obj: Any, dest: int, tag: int = 0
    ) -> Status:
        return await self.awaitable(self.ocomm.isend_obj(obj, dest, tag))

    def telemetry_snapshot(self) -> dict:
        """Merged engine snapshot (pool-merged when sharded)."""
        return self.ocomm.engine.telemetry_snapshot()

    def stats(self) -> dict:
        return self.ocomm.engine.stats()
