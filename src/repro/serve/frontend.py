"""Serving front-end: admission control, fair queuing, SLO reports.

The front-end sits between many concurrent awaiters and one (possibly
sharded) offload engine.  Its contract:

- **Admission control / backpressure.**  Every request is either
  admitted into its tenant's bounded queue or refused *immediately*
  with a typed error (:class:`TenantQueueFull` for a full tenant
  queue, :class:`ServeOverloadError` for the global backlog cap) —
  callers never block on admission, mirroring the command ring's
  typed ``QueueFull`` backpressure one layer down.
- **Per-tenant fair queuing.**  A round-robin dispatcher drains one
  request per non-empty tenant queue per turn, so a flood from one
  tenant cannot starve the others; the global concurrency cap
  (``max_in_flight``) bounds how many operations are outstanding on
  the engine at once.
- **Accounting.**  ``accepted == completed + failed + in_flight +
  queued`` at all times — nothing is silently lost; the loadgen and
  stress tiers assert this to zero after a drain.
- **SLOs.**  :meth:`ServingFrontend.slo_report` folds the recorded
  latency reservoir into p50/p99 and attaches the engine's telemetry
  snapshot counters, so one report carries both the user-visible
  percentiles and the engine-side evidence (continuation fires/drops,
  pool/queue behavior) behind them.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable

from repro.core.request_pool import OffloadError
from repro.serve.bridge import AsyncOffloadEngine

__all__ = [
    "SLOReport",
    "ServeOverloadError",
    "ServingFrontend",
    "TenantQueueFull",
]


class ServeOverloadError(OffloadError):
    """Typed backpressure: refused at admission (global backlog cap,
    or the front-end is stopped)."""


class TenantQueueFull(ServeOverloadError):
    """Typed backpressure: the requesting tenant's queue is full."""


def percentile(sorted_vals: list[float], q: float) -> float:
    """Nearest-rank percentile over an already-sorted sample."""
    if not sorted_vals:
        return 0.0
    rank = max(0, min(len(sorted_vals) - 1, int(q * len(sorted_vals))))
    return sorted_vals[rank]


@dataclass
class SLOReport:
    """p50/p99 service latency vs. targets, with engine evidence."""

    count: int
    p50_ms: float
    p99_ms: float
    target_p50_ms: float | None
    target_p99_ms: float | None
    met: bool
    #: engine-side counters from the telemetry snapshot at report time
    counters: dict = field(default_factory=dict)

    def render(self) -> str:
        def tgt(v: float | None) -> str:
            return "-" if v is None else f"{v:.1f}"

        return (
            f"slo: n={self.count} p50={self.p50_ms:.2f}ms "
            f"(target {tgt(self.target_p50_ms)}) "
            f"p99={self.p99_ms:.2f}ms (target {tgt(self.target_p99_ms)}) "
            f"fires={self.counters.get('continuation_fires', 0)} "
            f"drops={self.counters.get('continuation_drops', 0)} "
            + ("MET" if self.met else "MISSED")
        )


class _TenantState:
    __slots__ = ("queue", "accepted", "completed", "failed", "rejected")

    def __init__(self) -> None:
        self.queue: deque = deque()
        self.accepted = 0
        self.completed = 0
        self.failed = 0
        self.rejected = 0


class ServingFrontend:
    """Single-loop serving front-end over an :class:`AsyncOffloadEngine`.

    All methods must be called on the event-loop thread; the only
    cross-thread traffic is the engine-side continuation handoff
    inside the bridge.
    """

    def __init__(
        self,
        engine: AsyncOffloadEngine,
        *,
        max_in_flight: int = 64,
        tenant_queue_depth: int = 128,
        global_queue_depth: int | None = None,
        slo_p50_ms: float | None = None,
        slo_p99_ms: float | None = None,
    ) -> None:
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        self.engine = engine
        self.max_in_flight = max_in_flight
        self.tenant_queue_depth = tenant_queue_depth
        self.global_queue_depth = global_queue_depth
        self.slo_p50_ms = slo_p50_ms
        self.slo_p99_ms = slo_p99_ms
        self._tenants: dict[str, _TenantState] = {}
        self._rr: deque[str] = deque()
        self._queued = 0
        self._in_flight = 0
        self._wake = asyncio.Event()
        self._dispatcher: asyncio.Task | None = None
        #: strong refs: tasks with no other reference may be collected
        self._active: set = set()
        self._closed = False
        self.accepted = 0
        self.completed = 0
        self.rejected = 0
        self.failed: dict[str, int] = {}
        self.latencies_s: list[float] = []
        # serve_* telemetry lands on the engine's counter set so the
        # front-end shows up in the same snapshot as the engine.
        holder = getattr(engine.ocomm, "engine", None)
        pool = getattr(holder, "pool", None)
        self._counters = getattr(pool, "telemetry", None)

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        if self._dispatcher is None:
            self._dispatcher = asyncio.ensure_future(self._run())

    async def stop(self) -> None:
        """Drain: dispatch everything queued, wait for in-flight."""
        self._closed = True
        self._wake.set()
        if self._dispatcher is not None:
            await self._dispatcher
            self._dispatcher = None

    # -- admission -------------------------------------------------------

    def _tenant(self, tenant: str) -> _TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            state = self._tenants[tenant] = _TenantState()
            self._rr.append(tenant)
        return state

    def submit(
        self, tenant: str, op: Callable[[], Awaitable[Any]]
    ) -> "asyncio.Future[Any]":
        """Admit ``op`` or raise typed backpressure; never blocks."""
        state = self._tenant(tenant)
        if self._closed:
            state.rejected += 1
            self._note_reject()
            raise ServeOverloadError("serving front-end is stopped")
        if (
            self.global_queue_depth is not None
            and self._queued >= self.global_queue_depth
        ):
            state.rejected += 1
            self._note_reject()
            raise ServeOverloadError(
                f"global backlog full ({self._queued} queued)"
            )
        if len(state.queue) >= self.tenant_queue_depth:
            state.rejected += 1
            self._note_reject()
            raise TenantQueueFull(
                f"tenant {tenant!r} queue full "
                f"({self.tenant_queue_depth} deep)"
            )
        fut: "asyncio.Future[Any]" = (
            asyncio.get_running_loop().create_future()
        )
        state.queue.append((op, fut, time.perf_counter(), tenant))
        state.accepted += 1
        self._queued += 1
        self.accepted += 1
        if self._counters is not None:
            self._counters.inc("serve_accepted")
        self._wake.set()
        return fut

    async def request(
        self, tenant: str, op: Callable[[], Awaitable[Any]]
    ) -> Any:
        return await self.submit(tenant, op)

    def _note_reject(self) -> None:
        self.rejected += 1
        if self._counters is not None:
            self._counters.inc("serve_rejected")

    # -- dispatch --------------------------------------------------------

    def _next_tenant(self) -> str | None:
        for _ in range(len(self._rr)):
            tenant = self._rr[0]
            self._rr.rotate(-1)
            if self._tenants[tenant].queue:
                return tenant
        return None

    async def _run(self) -> None:
        while True:
            while self._in_flight < self.max_in_flight and self._queued:
                tenant = self._next_tenant()
                assert tenant is not None
                op, fut, t0, tenant = self._tenants[
                    tenant
                ].queue.popleft()
                self._queued -= 1
                self._in_flight += 1
                task = asyncio.ensure_future(
                    self._serve_one(op, fut, t0, tenant)
                )
                self._active.add(task)
                task.add_done_callback(self._active.discard)
            if self._closed and not self._queued and not self._in_flight:
                return
            self._wake.clear()
            # Re-check after clear: a _serve_one completion between the
            # checks above and the clear would otherwise be lost.
            if self._queued and self._in_flight < self.max_in_flight:
                continue
            if self._closed and not self._queued and not self._in_flight:
                return
            await self._wake.wait()

    async def _serve_one(self, op, fut, t0: float, tenant: str) -> None:
        state = self._tenants[tenant]
        try:
            result = await op()
        except BaseException as exc:
            state.failed += 1
            name = type(exc).__name__
            self.failed[name] = self.failed.get(name, 0) + 1
            if self._counters is not None:
                self._counters.inc("serve_failed")
            if not fut.cancelled():
                fut.set_exception(exc)
            else:  # pragma: no cover - awaiter bailed first
                pass
        else:
            state.completed += 1
            self.completed += 1
            self.latencies_s.append(time.perf_counter() - t0)
            if self._counters is not None:
                self._counters.inc("serve_completed")
            if not fut.cancelled():
                fut.set_result(result)
        finally:
            self._in_flight -= 1
            self._wake.set()

    # -- reporting -------------------------------------------------------

    @property
    def in_flight(self) -> int:
        return self._in_flight

    @property
    def queued(self) -> int:
        return self._queued

    def per_tenant(self) -> dict[str, dict[str, int]]:
        return {
            t: {
                "accepted": s.accepted,
                "completed": s.completed,
                "failed": s.failed,
                "rejected": s.rejected,
            }
            for t, s in self._tenants.items()
        }

    def lost(self) -> int:
        """Accepted requests with no terminal outcome and no place in
        line — must be zero always; the stress tier asserts it."""
        failed = sum(self.failed.values())
        return self.accepted - (
            self.completed + failed + self._in_flight + self._queued
        )

    def slo_report(self) -> SLOReport:
        snap = self.engine.telemetry_snapshot()
        counters = dict(snap.get("counters") or {})
        lat = sorted(self.latencies_s)
        p50_ms = percentile(lat, 0.50) * 1e3
        p99_ms = percentile(lat, 0.99) * 1e3
        met = (
            self.slo_p50_ms is None or p50_ms <= self.slo_p50_ms
        ) and (self.slo_p99_ms is None or p99_ms <= self.slo_p99_ms)
        return SLOReport(
            count=len(lat),
            p50_ms=p50_ms,
            p99_ms=p99_ms,
            target_p50_ms=self.slo_p50_ms,
            target_p99_ms=self.slo_p99_ms,
            met=met,
            counters=counters,
        )
