"""Seeded traffic generator for the serving front-end.

One seed fixes the whole request schedule — per-request tenant,
payload size, and (open-loop) arrival offset are all drawn up front
from ``random.Random(seed)`` — so a run is replayable even though the
*service order* under asyncio is not deterministic.  The report's
accounting is exact either way:

    issued == completed + failed + rejected        (zero lost)

Two arrival processes:

- **closed loop** — ``concurrency`` workers issue back-to-back, the
  classic closed system; concurrency *is* the offered load.
- **open loop** — Poisson arrivals at ``rate``/s regardless of
  completions, the paper-serving scenario where backpressure (typed
  rejections) is the only relief valve.

Each request is a loopback echo on the local rank: post ``irecv``,
post ``isend`` with a unique tag, await both — two offloaded commands
and two continuation fires per request, driven across the sharded
pool when ``pool_size > 1``.  The chaos harness reuses this module as
its "realistic workload" (``run_chaos(workload="serve")``).
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro import obs
from repro.core import offloaded
from repro.core.recovery import RecoveryPolicy, RetryPolicy
from repro.core.request_pool import OffloadError
from repro.mpisim.exceptions import MPIError
from repro.mpisim.world import World
from repro.serve.bridge import AsyncOffloadEngine
from repro.serve.frontend import (
    ServeOverloadError,
    ServingFrontend,
    SLOReport,
)

__all__ = ["LoadgenConfig", "LoadgenReport", "run_loadgen"]


@dataclass
class LoadgenConfig:
    """One seeded traffic mix; every field has a short-smoke default."""

    seed: int = 0
    #: "closed" (worker loop) or "open" (Poisson arrivals)
    mode: str = "closed"
    requests: int = 200
    #: closed-loop concurrent awaiters
    concurrency: int = 32
    #: open-loop mean arrival rate, requests/second
    rate: float = 2000.0
    #: tenant -> weight (schedule draws are weight-proportional)
    tenants: dict[str, float] = field(
        default_factory=lambda: {"gold": 3.0, "silver": 2.0, "bronze": 1.0}
    )
    #: ("fixed", n) | ("uniform", lo, hi) | ("bimodal", small, large, p_large)
    size_dist: tuple = ("bimodal", 64, 4096, 0.1)
    #: engine shards serving the loop
    pool_size: int = 2
    max_in_flight: int = 64
    tenant_queue_depth: int = 128
    slo_p50_ms: float | None = 50.0
    slo_p99_ms: float | None = 500.0
    op_timeout: float | None = 5.0
    run_timeout: float = 120.0


@dataclass
class LoadgenReport:
    issued: int
    completed: int
    failed: dict[str, int]
    rejected: int
    per_tenant: dict[str, dict[str, int]]
    slo: SLOReport
    balance_ok: bool
    balance_detail: dict
    continuation_fires: int
    continuation_drops: int

    @property
    def lost(self) -> int:
        """Issued requests with no terminal outcome; the contract is 0."""
        return self.issued - (
            self.completed + sum(self.failed.values()) + self.rejected
        )

    @property
    def ok(self) -> bool:
        return self.lost == 0 and self.balance_ok

    def render(self) -> str:
        lines = [
            f"loadgen: issued={self.issued} completed={self.completed} "
            f"failed={self.failed or '{}'} rejected={self.rejected} "
            f"lost={self.lost}",
            "  " + self.slo.render(),
            f"  fires={self.continuation_fires} "
            f"drops={self.continuation_drops} "
            f"balance={'OK' if self.balance_ok else 'IMBALANCED'}",
        ]
        for tenant, row in sorted(self.per_tenant.items()):
            lines.append(f"  tenant[{tenant}]: {row}")
        lines.append(
            "  verdict: " + ("PASS" if self.ok else "FAIL")
        )
        return "\n".join(lines)


def _draw_size(rng: random.Random, dist: tuple) -> int:
    kind = dist[0]
    if kind == "fixed":
        return int(dist[1])
    if kind == "uniform":
        return rng.randint(int(dist[1]), int(dist[2]))
    if kind == "bimodal":
        small, large, p_large = dist[1], dist[2], dist[3]
        return int(large if rng.random() < p_large else small)
    raise ValueError(f"unknown size distribution {dist!r}")


def build_schedule(config: LoadgenConfig) -> list[tuple[str, int, float]]:
    """The seeded request schedule: (tenant, payload_bytes, arrival_s).

    Drawn eagerly so the schedule depends only on the seed, never on
    completion timing."""
    rng = random.Random(f"loadgen:{config.seed}")
    names = sorted(config.tenants)
    weights = [config.tenants[t] for t in names]
    arrival = 0.0
    schedule = []
    for _ in range(config.requests):
        tenant = rng.choices(names, weights=weights, k=1)[0]
        size = _draw_size(rng, config.size_dist)
        if config.mode == "open":
            arrival += rng.expovariate(config.rate)
        schedule.append((tenant, size, arrival))
    return schedule


async def _drive(
    config: LoadgenConfig,
    frontend: ServingFrontend,
    engine: AsyncOffloadEngine,
    schedule: list[tuple[str, int, float]],
) -> int:
    """Issue the schedule through the front-end; returns issued count."""

    def echo_op(rid: int, size: int):
        async def op() -> Any:
            rbuf = np.empty(size, dtype=np.uint8)
            sbuf = np.full(size, rid % 251, dtype=np.uint8)
            # Unique tag per request: concurrent echoes never
            # cross-match even with thousands in flight.
            await asyncio.gather(
                engine.offload_irecv(rbuf, engine.rank, tag=rid),
                engine.offload_isend(sbuf, engine.rank, tag=rid),
            )
            return rbuf

        return op

    async def issue(rid: int, tenant: str, size: int) -> None:
        try:
            await frontend.request(tenant, echo_op(rid, size))
        except ServeOverloadError:
            pass  # typed rejection: terminal, counted by the frontend
        except (OffloadError, MPIError, TimeoutError):
            pass  # typed failure: terminal, counted by the frontend

    await frontend.start()
    if config.mode == "closed":
        pending = list(enumerate(schedule))
        pending.reverse()

        async def worker() -> None:
            while pending:
                rid, (tenant, size, _) = pending.pop()
                await issue(rid, tenant, size)

        await asyncio.gather(
            *(worker() for _ in range(max(1, config.concurrency)))
        )
    elif config.mode == "open":
        loop = asyncio.get_running_loop()
        t0 = loop.time()
        tasks = []
        for rid, (tenant, size, arrival) in enumerate(schedule):
            delay = (t0 + arrival) - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            tasks.append(
                asyncio.ensure_future(issue(rid, tenant, size))
            )
        await asyncio.gather(*tasks)
    else:
        raise ValueError(f"unknown loadgen mode {config.mode!r}")
    await frontend.stop()
    return len(schedule)


def run_loadgen(
    config: LoadgenConfig,
    faults: "Any | None" = None,
    recovery: "RecoveryPolicy | bool | None" = None,
) -> LoadgenReport:
    """One seeded loadgen run on a private single-rank world.

    ``faults`` installs a :class:`~repro.faults.plan.FaultPlan` on the
    world (the chaos harness passes its profile plan); ``recovery``
    may be a policy, ``True`` for a sensible default, or ``None``.
    """
    from repro.mpisim.constants import ThreadLevel

    if recovery is True:
        recovery = RecoveryPolicy(
            retry=RetryPolicy(max_retries=2, base_backoff=1e-4),
            watchdog_timeout=max(10.0, 4 * (config.op_timeout or 1.0)),
            degrade=True,
            poll_interval=2e-3,
        )
    world = World(1, thread_level=ThreadLevel.MULTIPLE)
    if faults is not None:
        world.install_faults(faults)
    schedule = build_schedule(config)
    out: list[LoadgenReport] = []

    def program(comm) -> None:
        with offloaded(
            comm,
            telemetry=True,
            pool_size=config.pool_size if config.pool_size > 1 else None,
            op_timeout=config.op_timeout,
            recovery=recovery if recovery else None,
        ) as oc:
            engine = AsyncOffloadEngine(oc)
            frontend = ServingFrontend(
                engine,
                max_in_flight=config.max_in_flight,
                tenant_queue_depth=config.tenant_queue_depth,
                slo_p50_ms=config.slo_p50_ms,
                slo_p99_ms=config.slo_p99_ms,
            )
            issued = asyncio.run(
                _drive(config, frontend, engine, schedule)
            )
            try:
                oc.flush()
            except (OffloadError, MPIError):
                pass
            slo = frontend.slo_report()
            snap = engine.telemetry_snapshot()
            balance_ok, detail = obs.check_balance(snap)
            stats = engine.stats()
            assert frontend.lost() == 0, frontend.lost()
            out.append(
                LoadgenReport(
                    issued=issued,
                    completed=frontend.completed,
                    failed=dict(frontend.failed),
                    rejected=frontend.rejected,
                    per_tenant=frontend.per_tenant(),
                    slo=slo,
                    balance_ok=balance_ok,
                    balance_detail=detail,
                    continuation_fires=stats.get("continuation_fires", 0),
                    continuation_drops=stats.get("continuation_drops", 0),
                )
            )

    world.run(program, timeout=config.run_timeout)
    assert out, "loadgen program produced no report"
    return out[0]
