"""Serving front-end over the offload engine (DESIGN.md §16).

The paper's completion model is a done flag the application thread
spins on; that caps how many concurrent waiters a rank can serve.
This package layers the continuation registry
(:meth:`repro.core.request_pool.OffloadRequest.add_continuation`) up
to ``asyncio``:

- :class:`~repro.serve.bridge.AsyncOffloadEngine` — awaitable
  ``offload_isend``/``offload_irecv``/``offload_isend_obj`` whose
  futures are resolved from the engine thread via
  ``loop.call_soon_threadsafe``;
- :class:`~repro.serve.frontend.ServingFrontend` — admission control,
  typed queue-full backpressure, per-tenant fair queuing, and p50/p99
  latency SLO reports derived from the telemetry snapshot;
- :mod:`~repro.serve.loadgen` — a seeded traffic generator
  (open/closed-loop arrivals, tenant mixes, message-size
  distributions) driving thousands of concurrent awaiters across the
  sharded pool, reused by the stress tier and the chaos harness.
"""

from repro.serve.bridge import AsyncOffloadEngine
from repro.serve.frontend import (
    ServeOverloadError,
    ServingFrontend,
    SLOReport,
    TenantQueueFull,
)
from repro.serve.loadgen import (
    LoadgenConfig,
    LoadgenReport,
    run_loadgen,
)

__all__ = [
    "AsyncOffloadEngine",
    "LoadgenConfig",
    "LoadgenReport",
    "SLOReport",
    "ServeOverloadError",
    "ServingFrontend",
    "TenantQueueFull",
    "run_loadgen",
]
