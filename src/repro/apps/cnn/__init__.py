"""CNN training with data-, model-, and hybrid-parallel exchange
(paper §5.3).

A small-but-real convolutional network (conv / relu / pool / dense /
softmax with exact backprop, finite-difference-checked) trained with
minibatch SGD.  Three distribution strategies mirror the paper:

* **data parallel** — the minibatch is sharded across ranks; weight
  gradients are allreduced, one nonblocking allreduce per layer posted
  as backpropagation produces it (the overlap opportunity the paper
  exploits for convolutional layers);
* **model parallel** — fully connected layers are partitioned by
  output neuron; activations/gradients are exchanged between stages
  with synchronized collectives;
* **hybrid** — data parallelism for conv layers + model parallelism
  for dense layers, with the batch-gathering boundary exchange
  between them (Krizhevsky's scheme [22], which the paper studies).
"""

from repro.apps.cnn.layers import (
    Conv2D,
    Dense,
    Flatten,
    MaxPool2,
    ReLU,
    SoftmaxCrossEntropy,
)
from repro.apps.cnn.network import Sequential, sgd_step
from repro.apps.cnn.data import synthetic_batch
from repro.apps.cnn.parallel import (
    DataParallelTrainer,
    HybridParallelTrainer,
)

__all__ = [
    "Conv2D",
    "Dense",
    "Flatten",
    "MaxPool2",
    "ReLU",
    "SoftmaxCrossEntropy",
    "Sequential",
    "sgd_step",
    "synthetic_batch",
    "DataParallelTrainer",
    "HybridParallelTrainer",
]
