"""Synthetic, deterministic image-classification data.

The paper trains on ImageNet-scale data we cannot ship; this generator
produces a learnable surrogate: each class has a fixed random template
and samples are noisy copies, so the loss decreases under SGD and tests
can assert learning actually happens.
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import seeded_rng


def synthetic_batch(
    batch: int,
    channels: int = 1,
    size: int = 8,
    classes: int = 4,
    noise: float = 0.3,
    seed: object = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(images, labels)``: noisy class templates.

    Deterministic in ``seed`` so every rank can regenerate the same
    global batch and shard it consistently.
    """
    tmpl_rng = seeded_rng("cnn-templates", channels, size, classes)
    templates = tmpl_rng.standard_normal((classes, channels, size, size))
    rng = seeded_rng("cnn-batch", seed)
    labels = rng.integers(0, classes, size=batch)
    images = templates[labels] + noise * rng.standard_normal(
        (batch, channels, size, size)
    )
    return images, labels
