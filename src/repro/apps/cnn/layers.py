"""Neural-network layers with exact backpropagation.

All layers implement ``forward(x)`` and ``backward(grad_out)`` (which
must be called after ``forward``; it returns the gradient with respect
to the input and fills ``grads`` for parameters).  Data layout is
``(B, C, H, W)`` for images and ``(B, F)`` for features.  Convolutions
use im2col + matmul — the vectorized formulation the HPC guides
recommend over site loops.
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import seeded_rng


class Layer:
    """Base layer: stateless unless it has ``params``/``grads``."""

    #: parameter name -> array; subclasses fill these
    params: dict[str, np.ndarray]
    grads: dict[str, np.ndarray]

    def __init__(self) -> None:
        self.params = {}
        self.grads = {}

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def param_count(self) -> int:
        return sum(p.size for p in self.params.values())


class ReLU(Layer):
    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out * self._mask


class Flatten(Layer):
    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out.reshape(self._shape)


def _im2col(x: np.ndarray, k: int, pad: int) -> np.ndarray:
    """(B,C,H,W) -> (B, H*W, C*k*k) patch matrix (stride 1)."""
    b, c, h, w = x.shape
    xp = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    # Gather k*k shifted views; stack along a new patch axis.
    cols = np.empty((b, c, k * k, h, w), dtype=x.dtype)
    for i in range(k):
        for j in range(k):
            cols[:, :, i * k + j] = xp[:, :, i : i + h, j : j + w]
    # -> (B, H*W, C*k*k)
    return (
        cols.transpose(0, 3, 4, 1, 2).reshape(b, h * w, c * k * k)
    )


def _col2im(
    cols: np.ndarray, shape: tuple[int, int, int, int], k: int, pad: int
) -> np.ndarray:
    """Adjoint of :func:`_im2col` (scatter-add patches back)."""
    b, c, h, w = shape
    grad = np.zeros((b, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    cols = cols.reshape(b, h, w, c, k * k).transpose(0, 3, 4, 1, 2)
    for i in range(k):
        for j in range(k):
            grad[:, :, i : i + h, j : j + w] += cols[:, :, i * k + j]
    if pad:
        grad = grad[:, :, pad:-pad, pad:-pad]
    return grad


class Conv2D(Layer):
    """k×k stride-1 same-padding convolution."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int = 3,
        seed: object = "conv",
    ) -> None:
        super().__init__()
        if kernel % 2 == 0:
            raise ValueError("kernel must be odd (same padding)")
        self.cin = in_channels
        self.cout = out_channels
        self.k = kernel
        self.pad = kernel // 2
        rng = seeded_rng("cnn", seed, in_channels, out_channels)
        fan_in = in_channels * kernel * kernel
        self.params["w"] = rng.standard_normal(
            (out_channels, fan_in)
        ) * np.sqrt(2.0 / fan_in)
        self.params["b"] = np.zeros(out_channels)

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._xshape = x.shape
        b, c, h, w = x.shape
        if c != self.cin:
            raise ValueError(f"expected {self.cin} channels, got {c}")
        self._cols = _im2col(x, self.k, self.pad)
        out = self._cols @ self.params["w"].T + self.params["b"]
        return out.reshape(b, h, w, self.cout).transpose(0, 3, 1, 2)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        b, _, h, w = self._xshape
        g = grad_out.transpose(0, 2, 3, 1).reshape(b, h * w, self.cout)
        self.grads["w"] = np.einsum("bpo,bpf->of", g, self._cols)
        self.grads["b"] = g.sum(axis=(0, 1))
        gcols = g @ self.params["w"]
        return _col2im(gcols, self._xshape, self.k, self.pad)

    def flops(self, h: int, w: int, batch: int) -> float:
        """Forward multiply-add count (used by the performance model)."""
        return 2.0 * batch * h * w * self.cout * self.cin * self.k**2


class MaxPool2(Layer):
    """2×2 max pooling with stride 2."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        b, c, h, w = x.shape
        if h % 2 or w % 2:
            raise ValueError("spatial dims must be even for 2x2 pooling")
        self._xshape = x.shape
        xr = x.reshape(b, c, h // 2, 2, w // 2, 2)
        windows = xr.transpose(0, 1, 2, 4, 3, 5).reshape(
            b, c, h // 2, w // 2, 4
        )
        self._argmax = windows.argmax(axis=-1)
        return windows.max(axis=-1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        b, c, h, w = self._xshape
        grad_windows = np.zeros(
            (b, c, h // 2, w // 2, 4), dtype=grad_out.dtype
        )
        np.put_along_axis(
            grad_windows, self._argmax[..., None], grad_out[..., None], -1
        )
        return (
            grad_windows.reshape(b, c, h // 2, w // 2, 2, 2)
            .transpose(0, 1, 2, 4, 3, 5)
            .reshape(b, c, h, w)
        )


class Dense(Layer):
    """Fully connected layer ``y = x W^T + b``."""

    def __init__(
        self, in_features: int, out_features: int, seed: object = "dense"
    ) -> None:
        super().__init__()
        self.fin = in_features
        self.fout = out_features
        rng = seeded_rng("cnn", seed, in_features, out_features)
        self.params["w"] = rng.standard_normal(
            (out_features, in_features)
        ) * np.sqrt(2.0 / in_features)
        self.params["b"] = np.zeros(out_features)

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return x @ self.params["w"].T + self.params["b"]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        self.grads["w"] = grad_out.T @ self._x
        self.grads["b"] = grad_out.sum(axis=0)
        return grad_out @ self.params["w"]


class SoftmaxCrossEntropy:
    """Fused softmax + cross-entropy loss (mean over the batch)."""

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        self._probs = exp / exp.sum(axis=1, keepdims=True)
        self._labels = labels
        b = logits.shape[0]
        nll = -np.log(self._probs[np.arange(b), labels] + 1e-300)
        return float(nll.mean())

    def backward(self) -> np.ndarray:
        """d(loss)/d(logits); already divided by the batch size."""
        b = self._probs.shape[0]
        grad = self._probs.copy()
        grad[np.arange(b), self._labels] -= 1.0
        return grad / b
