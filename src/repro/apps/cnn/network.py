"""Sequential network container and the SGD update."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.apps.cnn.layers import Layer, SoftmaxCrossEntropy


class Sequential:
    """A stack of layers with a softmax cross-entropy head."""

    def __init__(self, layers: Iterable[Layer]) -> None:
        self.layers = list(layers)
        self.loss_fn = SoftmaxCrossEntropy()

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def loss(self, x: np.ndarray, labels: np.ndarray) -> float:
        return self.loss_fn.forward(self.forward(x), labels)

    def backward(self) -> np.ndarray:
        """Full backward pass after :meth:`loss`; returns input grad."""
        grad = self.loss_fn.backward()
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def backward_layers(self):
        """Generator yielding ``(layer, grad_in)`` from last to first.

        Lets a data-parallel trainer post each layer's gradient
        allreduce *while earlier layers are still backpropagating* —
        the paper's conv-layer overlap opportunity (§5.3).
        """
        grad = self.loss_fn.backward()
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
            yield layer, grad

    def parameters(self):
        """Iterate ``(layer, name, param)`` triples."""
        for layer in self.layers:
            for name, p in layer.params.items():
                yield layer, name, p

    def param_count(self) -> int:
        return sum(layer.param_count() for layer in self.layers)

    def state(self) -> list[np.ndarray]:
        return [p.copy() for _, _, p in self.parameters()]

    def load_state(self, state: list[np.ndarray]) -> None:
        for (layer, name, p), saved in zip(self.parameters(), state):
            layer.params[name] = saved.copy()


def sgd_step(model: Sequential, lr: float) -> None:
    """In-place vanilla SGD using each layer's stored ``grads``."""
    for layer in model.layers:
        for name in layer.params:
            layer.params[name] -= lr * layer.grads[name]


class MomentumSGD:
    """SGD with classical momentum (the optimizer CNN training of the
    paper's era actually used)."""

    def __init__(self, model: Sequential, lr: float, momentum: float = 0.9):
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.model = model
        self.lr = lr
        self.momentum = momentum
        self._velocity: dict[tuple[int, str], np.ndarray] = {}

    def step(self) -> None:
        """Apply one update from each layer's stored ``grads``."""
        for i, layer in enumerate(self.model.layers):
            for name in layer.params:
                key = (i, name)
                v = self._velocity.get(key)
                if v is None:
                    v = np.zeros_like(layer.params[name])
                v *= self.momentum
                v -= self.lr * layer.grads[name]
                self._velocity[key] = v
                layer.params[name] += v


def accuracy(model: Sequential, x: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of correctly classified samples."""
    logits = model.forward(x)
    return float((logits.argmax(axis=1) == labels).mean())
