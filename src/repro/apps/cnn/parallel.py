"""Distributed CNN training strategies (paper §5.3).

Both trainers consume the *global* minibatch on every rank (the
synthetic generator is deterministic) and shard it internally, so a
P-rank run is numerically identical to the serial run — which the test
suite asserts.  Communication maps one-to-one onto the paper's
description:

* data parallel: per-layer weight-gradient allreduce, posted layer by
  layer during backpropagation (overlappable);
* hybrid: conv layers data-parallel; dense layers model-parallel with
  batch-allgather at the conv/fc boundary, activation allgathers
  forward and activation-gradient allreduces backward (the
  "synchronized all-to-all exchanges" of §5.3).
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.apps.cnn.layers import Dense, Layer, ReLU, SoftmaxCrossEntropy
from repro.apps.cnn.network import Sequential, sgd_step


def _contig(a: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(a)


class DataParallelTrainer:
    """Replicated model; sharded batch; allreduced gradients."""

    def __init__(
        self,
        comm: Any,
        model: Sequential,
        lr: float = 0.05,
        overlap: bool = True,
    ) -> None:
        self.comm = comm
        self.model = model
        self.lr = lr
        #: post per-layer nonblocking allreduces during backprop
        self.overlap = overlap

    def _shard(self, arr: np.ndarray) -> np.ndarray:
        b = arr.shape[0]
        p = self.comm.size
        if b % p:
            raise ValueError(f"batch {b} not divisible by {p} ranks")
        bs = b // p
        return _contig(arr[self.comm.rank * bs : (self.comm.rank + 1) * bs])

    def train_step(
        self, images: np.ndarray, labels: np.ndarray
    ) -> float:
        """One SGD step on the global batch; returns the global loss."""
        x = self._shard(images)
        y = self._shard(labels)
        local_loss = self.model.loss(x, y)
        p = self.comm.size
        if self.overlap:
            handles = []
            # Backprop layer by layer; each layer's gradient reduction is
            # in flight while earlier layers still compute (Listing-1
            # style overlap; with software offload this truly overlaps).
            for layer, _ in self.model.backward_layers():
                for name, g in layer.grads.items():
                    recv = np.empty_like(g)
                    h = self.comm.iallreduce(_contig(g), recv)
                    handles.append((layer, name, recv, h))
            for layer, name, recv, h in handles:
                h.wait()
                layer.grads[name] = recv / p
        else:
            self.model.backward()
            for layer in self.model.layers:
                for name, g in layer.grads.items():
                    layer.grads[name] = self.comm.allreduce(_contig(g)) / p
        sgd_step(self.model, self.lr)
        out = self.comm.allreduce(np.array([local_loss]))
        return float(out[0]) / p


class HybridParallelTrainer:
    """Data-parallel conv stack + model-parallel dense stack.

    ``fc_dims`` is the full dense spec ``[F, H1, ..., classes]``; every
    hidden/output width must be divisible by the rank count.  Each rank
    holds the full conv weights and a row slice of every dense weight
    matrix, positioned so that the concatenation across ranks equals
    the serial model with the same seeds.
    """

    def __init__(
        self,
        comm: Any,
        conv_layers: Sequence[Layer],
        fc_dims: Sequence[int],
        lr: float = 0.05,
        seed: object = "hybrid",
    ) -> None:
        if len(fc_dims) < 2:
            raise ValueError("fc_dims needs at least input and output")
        self.comm = comm
        self.lr = lr
        self.conv = list(conv_layers)
        p = comm.size
        self.fc_slices: list[Dense] = []
        self.relus: list[ReLU] = []
        for i in range(len(fc_dims) - 1):
            fin, fout = fc_dims[i], fc_dims[i + 1]
            if fout % p:
                raise ValueError(
                    f"dense width {fout} not divisible by {p} ranks"
                )
            # Build the *full* layer deterministically, keep our slice —
            # guarantees P-rank == serial numerics.
            full = Dense(fin, fout, seed=(seed, i))
            sl = slice(comm.rank * (fout // p), (comm.rank + 1) * (fout // p))
            mine = Dense(fin, fout // p, seed=(seed, i))
            mine.params["w"] = full.params["w"][sl].copy()
            mine.params["b"] = full.params["b"][sl].copy()
            self.fc_slices.append(mine)
            if i < len(fc_dims) - 2:
                self.relus.append(ReLU())
        self.loss_fn = SoftmaxCrossEntropy()
        self.fc_dims = tuple(fc_dims)

    # -- collective helpers ------------------------------------------------

    def _allgather_batch(self, shard: np.ndarray) -> np.ndarray:
        """(bs, F) shards -> (B, F) full batch (conv/fc boundary)."""
        got = self.comm.allgather(_contig(shard))
        return got.reshape(-1, shard.shape[1])

    def _allgather_cols(self, local: np.ndarray) -> np.ndarray:
        """(B, out/P) neuron slices -> (B, out) full activations."""
        got = self.comm.allgather(_contig(local))  # (P, B, out/P)
        return _contig(got.transpose(1, 0, 2).reshape(local.shape[0], -1))

    # -- training ---------------------------------------------------------------

    def train_step(
        self, images: np.ndarray, labels: np.ndarray
    ) -> float:
        comm = self.comm
        p = comm.size
        b = images.shape[0]
        if b % p:
            raise ValueError(f"batch {b} not divisible by {p} ranks")
        bs = b // p
        r = comm.rank
        x = _contig(images[r * bs : (r + 1) * bs])

        # ---- forward: conv (data parallel, shard) -------------------------
        a = x
        for layer in self.conv:
            a = layer.forward(a)
        if a.ndim != 2:
            raise ValueError("conv stack must end flattened (B, F)")
        # ---- boundary: gather the full batch of features ------------------
        feats = self._allgather_batch(a)
        # ---- forward: dense (model parallel, full batch) ------------------
        act = feats
        for i, dense in enumerate(self.fc_slices):
            out_full = self._allgather_cols(dense.forward(act))
            if i < len(self.relus):
                out_full = self.relus[i].forward(out_full)
            act = out_full
        loss = self.loss_fn.forward(act, labels)

        # ---- backward: dense ------------------------------------------------
        g = self.loss_fn.backward()  # (B, classes), replicated
        for i in reversed(range(len(self.fc_slices))):
            dense = self.fc_slices[i]
            out_p = dense.fout
            g_loc = _contig(g[:, r * out_p : (r + 1) * out_p])
            g_partial = dense.backward(g_loc)
            # activation-gradient exchange: sum partial input grads
            g = comm.allreduce(_contig(g_partial))
            if i > 0:
                g = self.relus[i - 1].backward(g)

        # ---- boundary backward: my shard's feature gradients ---------------
        g_shard = _contig(g[r * bs : (r + 1) * bs])
        # ---- backward: conv + gradient allreduce (data parallel) ------------
        handles = []
        grad = g_shard
        for layer in reversed(self.conv):
            grad = layer.backward(grad)
            for name, gv in layer.grads.items():
                recv = np.empty_like(gv)
                h = comm.iallreduce(_contig(gv), recv)
                handles.append((layer, name, recv, h))
        for layer, name, recv, h in handles:
            h.wait()
            # shard losses are already /B, so partial grads just SUM.
            layer.grads[name] = recv

        # ---- update ------------------------------------------------------------
        for layer in self.conv:
            for name in layer.params:
                layer.params[name] -= self.lr * layer.grads[name]
        for dense in self.fc_slices:
            for name in dense.params:
                dense.params[name] -= self.lr * dense.grads[name]
        return loss

    # -- test/inspection helpers ---------------------------------------------

    def gather_fc_weights(self, index: int) -> np.ndarray:
        """Reassemble the full weight matrix of dense layer ``index``."""
        mine = self.fc_slices[index].params["w"]
        got = self.comm.allgather(_contig(mine))
        return got.reshape(-1, mine.shape[1])
