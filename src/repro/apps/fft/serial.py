"""Vectorized radix-2 FFT building blocks (no ``numpy.fft`` inside).

The distributed algorithms call these for their local transforms; the
test suite validates them against ``numpy.fft`` over random inputs and
checks linearity and Parseval's identity by property-based testing.
"""

from __future__ import annotations

import numpy as np


def _bit_reverse_indices(n: int) -> np.ndarray:
    """Permutation indices for radix-2 decimation in time."""
    bits = n.bit_length() - 1
    idx = np.arange(n, dtype=np.int64)
    rev = np.zeros_like(idx)
    for _ in range(bits):
        rev = (rev << 1) | (idx & 1)
        idx >>= 1
    return rev


def fft1d(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Radix-2 iterative FFT along ``axis`` (length must be a power of
    two).  Batched: all other axes are transformed independently."""
    x = np.asarray(x, dtype=np.complex128)
    x = np.moveaxis(x, axis, -1)
    n = x.shape[-1]
    if n == 0 or n & (n - 1):
        raise ValueError(f"FFT length {n} is not a power of two")
    y = x[..., _bit_reverse_indices(n)].copy()
    m = 2
    while m <= n:
        half = m // 2
        w = np.exp(-2j * np.pi * np.arange(half) / m)
        y = y.reshape(x.shape[:-1] + (n // m, m))
        even = y[..., :half]
        odd = y[..., half:] * w
        y = np.concatenate([even + odd, even - odd], axis=-1)
        m *= 2
    y = y.reshape(x.shape)
    return np.moveaxis(y, -1, axis)


def ifft1d(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Inverse FFT via the conjugation identity."""
    x = np.asarray(x, dtype=np.complex128)
    n = x.shape[axis]
    return np.conj(fft1d(np.conj(x), axis=axis)) / n


def dft_matrix(p: int) -> np.ndarray:
    """Dense DFT matrix W[d, q] = exp(-2πi d q / p).

    Used for the short cross-rank transform in the low-communication
    algorithm (its "more computation" trade-off)."""
    d = np.arange(p)
    return np.exp(-2j * np.pi * np.outer(d, d) / p)


def fft_flops(n: int) -> float:
    """Standard operation-count model: 5 n log2 n."""
    if n <= 1:
        return 0.0
    return 5.0 * n * np.log2(n)
