"""Distributed 1-D FFT (paper §5.2).

Two algorithms over the substrate:

* :func:`transpose_fft` — the classic Cooley-Tukey factorization with
  **three all-to-all exchanges** (block-distributed, ordered output);
  "used by virtually all high-performance FFT implementations" per the
  paper.
* :func:`lowcomm_fft` — a low-communication variant with **one**
  all-to-all, more local computation, and segmented pipelining of
  compute with communication — the structural role SOI FFT [32] plays
  in the paper (output in a documented permuted layout).

Local transforms use this package's own vectorized radix-2 kernel
(:func:`fft1d`), validated against ``numpy.fft``.
"""

from repro.apps.fft.serial import fft1d, ifft1d, fft_flops
from repro.apps.fft.distributed import (
    transpose_fft,
    lowcomm_fft,
    FFTWorkspace,
    LowCommLayout,
    block_to_cyclic,
    local_block,
    gather_lowcomm_output,
)

__all__ = [
    "fft1d",
    "ifft1d",
    "fft_flops",
    "transpose_fft",
    "lowcomm_fft",
    "FFTWorkspace",
    "LowCommLayout",
    "block_to_cyclic",
    "local_block",
    "gather_lowcomm_output",
]
