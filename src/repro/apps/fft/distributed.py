"""Distributed 1-D FFT algorithms over the substrate.

Definitions (P ranks, L elements per rank, N = P·L, P must divide L):

* **block** layout — rank p holds x[pL : (p+1)L];
* **cyclic** layout — rank q holds x[q], x[q+P], x[q+2P], …;
* **lowcomm** output layout — see :class:`LowCommLayout`.

:func:`transpose_fft` is the classic three-all-to-all algorithm
(block in, ordered block out).  :func:`lowcomm_fft` performs one
all-to-all plus a short dense cross-rank DFT (more local computation),
with that single exchange *segmented and pipelined* against the
computation — the communication structure the paper's SOI FFT [32]
uses to overlap all-to-all with compute.

Both work with plain and offloaded communicators: they only call
``alltoall`` / ``ialltoall`` and request ``wait``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.apps.fft.serial import dft_matrix, fft1d


def _check(comm: Any, local_len: int) -> tuple[int, int]:
    p = comm.size
    if local_len % p:
        raise ValueError(
            f"local length {local_len} must be divisible by {p} ranks"
        )
    n = p * local_len
    if n & (n - 1):
        raise ValueError(f"global length {n} must be a power of two")
    return p, local_len


def local_block(x_global: np.ndarray, rank: int, nranks: int) -> np.ndarray:
    """Rank ``rank``'s block of a (test-side) global array."""
    n = x_global.shape[0]
    l = n // nranks
    return np.ascontiguousarray(x_global[rank * l : (rank + 1) * l])


def block_to_cyclic(comm: Any, x_local: np.ndarray) -> np.ndarray:
    """First transpose: block layout -> cyclic layout (one all-to-all)."""
    p, l = _check(comm, x_local.shape[0])
    if p == 1:
        return x_local.copy()
    send = np.ascontiguousarray(x_local.reshape(l // p, p).T)
    recv = np.empty_like(send)
    comm.alltoall(send, recv)
    return recv.reshape(l)


def _twiddle(q: int, l: int, n: int) -> np.ndarray:
    return np.exp(-2j * np.pi * q * np.arange(l) / n)


@dataclass(frozen=True)
class LowCommLayout:
    """Output layout of :func:`lowcomm_fft`.

    Rank ``m`` holds a ``(P, L//P)`` array ``G`` with
    ``G[d, c'] == X[d*L + m*(L//P) + c']``.
    """

    nranks: int
    local_len: int

    def global_index(self, rank: int, d: int, c_prime: int) -> int:
        chunk = self.local_len // self.nranks
        return d * self.local_len + rank * chunk + c_prime

    def scatter_indices(self, rank: int) -> np.ndarray:
        """Global spectrum indices of rank ``rank``'s flattened output."""
        chunk = self.local_len // self.nranks
        d = np.repeat(np.arange(self.nranks), chunk)
        c = np.tile(np.arange(chunk), self.nranks)
        return d * self.local_len + rank * chunk + c


def lowcomm_fft(
    comm: Any,
    x_cyclic: np.ndarray,
    segments: int = 1,
) -> tuple[np.ndarray, LowCommLayout]:
    """Single-transpose FFT with segmented, pipelined exchange.

    Input in cyclic layout; returns ``(G, layout)`` where ``G`` is the
    rank's ``(P, L//P)`` output tile (see :class:`LowCommLayout`).

    The all-to-all is split into ``segments`` column chunks; segment
    ``s+1``'s exchange is posted before segment ``s``'s short DFT runs,
    so with asynchronous progress the exchange hides behind compute —
    the paper's SOI pipelining (§5.2).
    """
    p, l = _check(comm, x_cyclic.shape[0])
    n = p * l
    q = comm.rank
    # Step 1: one local FFT of length L over this rank's cyclic samples.
    z = fft1d(x_cyclic)
    # Step 2: twiddle.
    z *= _twiddle(q, l, n)
    if p == 1:
        return z.reshape(1, l).copy(), LowCommLayout(1, l)
    cols = l // p
    if not 1 <= segments <= cols:
        raise ValueError(f"segments must be in [1, {cols}]")
    z_mat = z.reshape(p, cols)  # row m = chunk destined for rank m
    w = dft_matrix(p)
    g = np.empty((p, cols), dtype=np.complex128)
    # Segment boundaries over the c' columns.
    edges = np.linspace(0, cols, segments + 1, dtype=int)
    sends: list[np.ndarray] = []
    recvs: list[np.ndarray] = []
    reqs: list[Any] = []
    for s in range(segments):
        lo, hi = edges[s], edges[s + 1]
        sends.append(np.ascontiguousarray(z_mat[:, lo:hi]))
        recvs.append(np.empty((p, hi - lo), dtype=np.complex128))
        reqs.append(None)

    def post(s: int) -> None:
        reqs[s] = comm.ialltoall(sends[s], recvs[s])

    post(0)
    for s in range(segments):
        if s + 1 < segments:
            post(s + 1)  # exchange of next segment overlaps this DFT
        reqs[s].wait()
        lo, hi = edges[s], edges[s + 1]
        # Step 3: short cross-rank DFT (the extra computation).
        g[:, lo:hi] = w @ recvs[s]
    return g, LowCommLayout(p, l)


def transpose_fft(comm: Any, x_block: np.ndarray) -> np.ndarray:
    """Ordered distributed FFT: three all-to-all exchanges.

    Block layout in, block layout out (rank p returns X[pL:(p+1)L]).
    """
    p, l = _check(comm, x_block.shape[0])
    if p == 1:
        return fft1d(x_block)
    # Exchange 1: block -> cyclic.
    x_cyc = block_to_cyclic(comm, x_block)
    # Exchange 2 (inside): single-transpose core, unsegmented.
    g, _layout = lowcomm_fft(comm, x_cyc, segments=1)
    # Exchange 3: lowcomm layout -> ordered block layout.
    recv = np.empty_like(g)
    comm.alltoall(np.ascontiguousarray(g), recv)
    # recv[m, c'] = X[rank*L + m*(L//P) + c']  ->  flatten in (m, c').
    return recv.reshape(l)


def gather_lowcomm_output(
    comm: Any, g: np.ndarray, layout: LowCommLayout, root: int = 0
) -> np.ndarray | None:
    """Assemble the full ordered spectrum at ``root`` (test helper)."""
    flat = np.ascontiguousarray(g.reshape(-1))
    gathered = comm.gather(flat, root=root)
    if comm.rank != root:
        return None
    n = layout.nranks * layout.local_len
    out = np.empty(n, dtype=np.complex128)
    for r in range(comm.size):
        out[layout.scatter_indices(r)] = gathered[r]
    return out
