"""Distributed 1-D FFT algorithms over the substrate.

Definitions (P ranks, L elements per rank, N = P·L, P must divide L):

* **block** layout — rank p holds x[pL : (p+1)L];
* **cyclic** layout — rank q holds x[q], x[q+P], x[q+2P], …;
* **lowcomm** output layout — see :class:`LowCommLayout`.

:func:`transpose_fft` is the classic three-all-to-all algorithm
(block in, ordered block out).  :func:`lowcomm_fft` performs one
all-to-all plus a short dense cross-rank DFT (more local computation),
with that single exchange *segmented and pipelined* against the
computation — the communication structure the paper's SOI FFT [32]
uses to overlap all-to-all with compute.

Both work with plain and offloaded communicators: they only call
``alltoall`` / ``ialltoall`` and request ``wait``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.apps.fft.serial import dft_matrix, fft1d


def _check(comm: Any, local_len: int) -> tuple[int, int]:
    p = comm.size
    if local_len % p:
        raise ValueError(
            f"local length {local_len} must be divisible by {p} ranks"
        )
    n = p * local_len
    if n & (n - 1):
        raise ValueError(f"global length {n} must be a power of two")
    return p, local_len


def local_block(x_global: np.ndarray, rank: int, nranks: int) -> np.ndarray:
    """Rank ``rank``'s block of a (test-side) global array."""
    n = x_global.shape[0]
    l = n // nranks
    return np.ascontiguousarray(x_global[rank * l : (rank + 1) * l])


class FFTWorkspace:
    """Persistent staging buffers for the distributed FFT transposes.

    Without a workspace every call to :func:`block_to_cyclic`,
    :func:`lowcomm_fft`, or :func:`transpose_fft` materializes its
    pack/exchange buffers with ``np.ascontiguousarray``/``np.empty`` —
    an allocation per segment per call, right inside the window the
    all-to-all is supposed to hide compute in.  A workspace keeps one
    keyed buffer per staging role and gathers the strided views into
    it with ``np.copyto``, so steady-state iterations (FFT solvers
    call these in a loop) allocate only their returned result.

    Contract: returned arrays never alias workspace storage (they stay
    valid after the next call), and a workspace belongs to a single
    rank — staging buffers are reused in place, so sharing one across
    concurrently executing ranks races the exchanges.  Buffers are
    lazily (re)allocated when a key is first seen or its shape/dtype
    changes, so one workspace can serve differently sized problems,
    just not with reuse across the size change.
    """

    def __init__(self) -> None:
        self._bufs: dict[Any, np.ndarray] = {}

    def buf(
        self, key: Any, shape: tuple[int, ...], dtype: Any = np.complex128
    ) -> np.ndarray:
        """The persistent buffer for ``key``, allocated on first use."""
        b = self._bufs.get(key)
        if b is None or b.shape != shape or b.dtype != np.dtype(dtype):
            b = np.empty(shape, dtype=dtype)
            self._bufs[key] = b
        return b


def block_to_cyclic(
    comm: Any, x_local: np.ndarray, workspace: FFTWorkspace | None = None
) -> np.ndarray:
    """First transpose: block layout -> cyclic layout (one all-to-all).

    With a ``workspace`` the send/recv staging comes from persistent
    buffers (strided gather via ``np.copyto``) instead of fresh
    allocations; the returned array is always freshly owned.
    """
    p, l = _check(comm, x_local.shape[0])
    if p == 1:
        return x_local.copy()
    if workspace is None:
        send = np.ascontiguousarray(x_local.reshape(l // p, p).T)
        recv = np.empty_like(send)
        comm.alltoall(send, recv)
        return recv.reshape(l)
    send = workspace.buf("b2c_send", (p, l // p), x_local.dtype)
    np.copyto(send, x_local.reshape(l // p, p).T)
    recv = workspace.buf("b2c_recv", (p, l // p), x_local.dtype)
    comm.alltoall(send, recv)
    return recv.reshape(l).copy()


def _twiddle(q: int, l: int, n: int) -> np.ndarray:
    return np.exp(-2j * np.pi * q * np.arange(l) / n)


@dataclass(frozen=True)
class LowCommLayout:
    """Output layout of :func:`lowcomm_fft`.

    Rank ``m`` holds a ``(P, L//P)`` array ``G`` with
    ``G[d, c'] == X[d*L + m*(L//P) + c']``.
    """

    nranks: int
    local_len: int

    def global_index(self, rank: int, d: int, c_prime: int) -> int:
        chunk = self.local_len // self.nranks
        return d * self.local_len + rank * chunk + c_prime

    def scatter_indices(self, rank: int) -> np.ndarray:
        """Global spectrum indices of rank ``rank``'s flattened output."""
        chunk = self.local_len // self.nranks
        d = np.repeat(np.arange(self.nranks), chunk)
        c = np.tile(np.arange(chunk), self.nranks)
        return d * self.local_len + rank * chunk + c


def lowcomm_fft(
    comm: Any,
    x_cyclic: np.ndarray,
    segments: int = 1,
    workspace: FFTWorkspace | None = None,
) -> tuple[np.ndarray, LowCommLayout]:
    """Single-transpose FFT with segmented, pipelined exchange.

    Input in cyclic layout; returns ``(G, layout)`` where ``G`` is the
    rank's ``(P, L//P)`` output tile (see :class:`LowCommLayout`).

    The all-to-all is split into ``segments`` column chunks; segment
    ``s+1``'s exchange is posted before segment ``s``'s short DFT runs,
    so with asynchronous progress the exchange hides behind compute —
    the paper's SOI pipelining (§5.2).

    A ``workspace`` (see :class:`FFTWorkspace`) makes the per-segment
    send/recv staging persistent across calls: each segment's columns
    are gathered into a reused buffer instead of a fresh
    ``ascontiguousarray`` copy.  The returned tile ``G`` is always
    freshly allocated.
    """
    p, l = _check(comm, x_cyclic.shape[0])
    n = p * l
    q = comm.rank
    # Step 1: one local FFT of length L over this rank's cyclic samples.
    z = fft1d(x_cyclic)
    # Step 2: twiddle.
    z *= _twiddle(q, l, n)
    if p == 1:
        return z.reshape(1, l).copy(), LowCommLayout(1, l)
    cols = l // p
    if not 1 <= segments <= cols:
        raise ValueError(f"segments must be in [1, {cols}]")
    z_mat = z.reshape(p, cols)  # row m = chunk destined for rank m
    w = dft_matrix(p)
    g = np.empty((p, cols), dtype=np.complex128)
    # Segment boundaries over the c' columns.
    edges = np.linspace(0, cols, segments + 1, dtype=int)
    sends: list[np.ndarray] = []
    recvs: list[np.ndarray] = []
    reqs: list[Any] = []
    for s in range(segments):
        lo, hi = edges[s], edges[s + 1]
        if workspace is None:
            send = np.ascontiguousarray(z_mat[:, lo:hi])
            recv = np.empty((p, hi - lo), dtype=np.complex128)
        else:
            send = workspace.buf(("lc_send", s), (p, hi - lo))
            np.copyto(send, z_mat[:, lo:hi])
            recv = workspace.buf(("lc_recv", s), (p, hi - lo))
        sends.append(send)
        recvs.append(recv)
        reqs.append(None)

    def post(s: int) -> None:
        reqs[s] = comm.ialltoall(sends[s], recvs[s])

    post(0)
    for s in range(segments):
        if s + 1 < segments:
            post(s + 1)  # exchange of next segment overlaps this DFT
        reqs[s].wait()
        lo, hi = edges[s], edges[s + 1]
        # Step 3: short cross-rank DFT (the extra computation).
        g[:, lo:hi] = w @ recvs[s]
    return g, LowCommLayout(p, l)


def transpose_fft(
    comm: Any, x_block: np.ndarray, workspace: FFTWorkspace | None = None
) -> np.ndarray:
    """Ordered distributed FFT: three all-to-all exchanges.

    Block layout in, block layout out (rank p returns X[pL:(p+1)L]).
    ``workspace`` threads persistent staging through all three
    exchanges; the returned spectrum is always freshly owned.
    """
    p, l = _check(comm, x_block.shape[0])
    if p == 1:
        return fft1d(x_block)
    # Exchange 1: block -> cyclic.
    x_cyc = block_to_cyclic(comm, x_block, workspace=workspace)
    # Exchange 2 (inside): single-transpose core, unsegmented.
    g, _layout = lowcomm_fft(comm, x_cyc, segments=1, workspace=workspace)
    # Exchange 3: lowcomm layout -> ordered block layout.  ``g`` is a
    # fresh contiguous tile, so it is sent in place.
    if workspace is None:
        recv = np.empty_like(g)
        comm.alltoall(g, recv)
        # recv[m, c'] = X[rank*L + m*(L//P) + c']  ->  flatten in (m, c').
        return recv.reshape(l)
    recv = workspace.buf("tf_recv", g.shape)
    comm.alltoall(g, recv)
    return recv.reshape(l).copy()


def gather_lowcomm_output(
    comm: Any, g: np.ndarray, layout: LowCommLayout, root: int = 0
) -> np.ndarray | None:
    """Assemble the full ordered spectrum at ``root`` (test helper)."""
    flat = np.ascontiguousarray(g.reshape(-1))
    gathered = comm.gather(flat, root=root)
    if comm.rank != root:
        return None
    n = layout.nranks * layout.local_len
    out = np.empty(n, dtype=np.complex128)
    for r in range(comm.size):
        out[layout.scatter_indices(r)] = gathered[r]
    return out
