"""The paper's three evaluation applications, reimplemented.

* :mod:`repro.apps.qcd` — Lattice QCD: a 4-D Wilson-Dslash operator
  with halo exchange, plus CG and BiCGStab solvers (paper §5.1).
* :mod:`repro.apps.fft` — distributed 1-D FFT: the classic
  three-transpose algorithm and a low-communication single-transpose
  pipeline in the spirit of SOI FFT (paper §5.2).
* :mod:`repro.apps.cnn` — convolutional-network training with data-,
  model- and hybrid-parallel gradient/activation exchange (paper §5.3).

Each runs *functionally* on :mod:`repro.mpisim` (numerics validated in
the test suite) and has a matching performance driver in
:mod:`repro.simtime.workloads`.
"""
