"""4-D lattice geometry and domain decomposition.

Paper §5.1: "we consider the set of MPI processes as running on a four
dimensional virtual processor grid (Px, Py, Pz, Pt) ... MPI ranks run
lexicographically through our virtual processor grid, partitioning on
the largest dimension followed by the other three (first T, then Z,
followed by Y and finally X)."
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import reduce
import operator

#: dimension order used for partitioning preference (paper: T,Z,Y,X)
_PARTITION_ORDER = (3, 2, 1, 0)  # indices into (X, Y, Z, T)

DIM_NAMES = ("x", "y", "z", "t")


def _prod(values) -> int:
    return reduce(operator.mul, values, 1)


@dataclass(frozen=True)
class LatticeGeometry:
    """Global lattice, process grid, and this rank's place in it."""

    global_dims: tuple[int, int, int, int]
    proc_grid: tuple[int, int, int, int]

    def __post_init__(self) -> None:
        if len(self.global_dims) != 4 or len(self.proc_grid) != 4:
            raise ValueError("lattice and grid must be 4-dimensional")
        for g, p in zip(self.global_dims, self.proc_grid):
            if p <= 0 or g <= 0:
                raise ValueError("dimensions must be positive")
            if g % p:
                raise ValueError(
                    f"global extent {g} not divisible by grid extent {p}"
                )
            if g // p < 2 and p > 1:
                raise ValueError(
                    "local extent along a decomposed dimension must be >= 2 "
                    "(halo exchange needs distinct faces)"
                )

    # ------------------------------------------------------------ construction

    @classmethod
    def partition(
        cls, global_dims: tuple[int, int, int, int], nranks: int
    ) -> "LatticeGeometry":
        """Choose a process grid for ``nranks`` (a power of two).

        Factors of two are assigned greedily to the dimension with the
        largest current *local* extent, preferring T, then Z, Y, X on
        ties — the paper's partitioning rule.
        """
        if nranks <= 0 or nranks & (nranks - 1):
            raise ValueError("nranks must be a positive power of two")
        grid = [1, 1, 1, 1]
        local = list(global_dims)
        remaining = nranks
        while remaining > 1:
            best = None
            for d in _PARTITION_ORDER:
                if local[d] % 2 == 0 and local[d] >= 4:
                    if best is None or local[d] > local[best]:
                        best = d
            if best is None:
                raise ValueError(
                    f"cannot partition lattice {global_dims} over "
                    f"{nranks} ranks"
                )
            grid[best] *= 2
            local[best] //= 2
            remaining //= 2
        return cls(tuple(global_dims), tuple(grid))

    # ------------------------------------------------------------- volumes

    @property
    def nranks(self) -> int:
        return _prod(self.proc_grid)

    @property
    def local_dims(self) -> tuple[int, int, int, int]:
        return tuple(
            g // p for g, p in zip(self.global_dims, self.proc_grid)
        )

    @property
    def global_volume(self) -> int:
        return _prod(self.global_dims)

    @property
    def local_volume(self) -> int:
        return _prod(self.local_dims)

    def face_sites(self, dim: int) -> int:
        """Sites on one face perpendicular to ``dim``."""
        return self.local_volume // self.local_dims[dim]

    def decomposed_dims(self) -> tuple[int, ...]:
        """Dimensions actually split across ranks (needing halo
        exchange; the others wrap locally)."""
        return tuple(d for d in range(4) if self.proc_grid[d] > 1)

    def halo_bytes(self, dim: int, itemsize: int = 16) -> int:
        """Bytes in one direction's face message.

        The paper's implementation exchanges *projected* half-spinors:
        2 spin × 3 color complex values per site.
        """
        return self.face_sites(dim) * 2 * 3 * itemsize

    # ------------------------------------------------------------ rank algebra

    def coords_of(self, rank: int) -> tuple[int, int, int, int]:
        """Process-grid coordinates of ``rank`` (X fastest)."""
        if not 0 <= rank < self.nranks:
            raise ValueError(f"rank {rank} outside grid")
        px = rank % self.proc_grid[0]
        rest = rank // self.proc_grid[0]
        py = rest % self.proc_grid[1]
        rest //= self.proc_grid[1]
        pz = rest % self.proc_grid[2]
        pt = rest // self.proc_grid[2]
        return (px, py, pz, pt)

    def rank_of(self, coords: tuple[int, int, int, int]) -> int:
        px, py, pz, pt = (
            c % p for c, p in zip(coords, self.proc_grid)
        )
        return ((pt * self.proc_grid[2] + pz) * self.proc_grid[1] + py) * (
            self.proc_grid[0]
        ) + px

    def neighbor(self, rank: int, dim: int, direction: int) -> int:
        """Rank of the periodic neighbor along ``dim`` (+1/-1)."""
        if direction not in (1, -1):
            raise ValueError("direction must be +1 or -1")
        coords = list(self.coords_of(rank))
        coords[dim] += direction
        return self.rank_of(tuple(coords))

    def local_origin(self, rank: int) -> tuple[int, int, int, int]:
        """Global coordinates of this rank's first local site."""
        return tuple(
            c * l for c, l in zip(self.coords_of(rank), self.local_dims)
        )

    # ------------------------------------------------------------ descriptions

    def __str__(self) -> str:  # pragma: no cover - display helper
        g = "x".join(map(str, self.global_dims))
        p = "x".join(map(str, self.proc_grid))
        l = "x".join(map(str, self.local_dims))
        return f"lattice {g} on grid {p} (local {l})"
