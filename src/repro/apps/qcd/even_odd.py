"""Even-odd (red-black) preconditioning for the Wilson solver.

Production lattice-QCD codes (including the paper's QPhiX lineage)
rarely solve ``M x = b`` directly: they exploit that Wilson-Dslash only
couples sites of opposite parity, so in the even/odd ordering

.. math::

   M = \\begin{pmatrix} I & -\\kappa D_{eo} \\\\
                        -\\kappa D_{oe} & I \\end{pmatrix},

and the Schur complement

.. math::

   \\hat M \\;=\\; I - \\kappa^2 D_{eo} D_{oe}

acts on even sites only, is far better conditioned (eigenvalues are
squared toward 1), and halves the solve's iteration count.  After
solving :math:`\\hat M x_e = b_e + \\kappa D_{eo} b_o`, the odd half is
reconstructed directly: :math:`x_o = b_o + \\kappa D_{oe} x_e`.

The parity of a site uses *global* coordinates, so the decomposition is
parity-consistent across ranks.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.apps.qcd.dslash import DslashOperator
from repro.apps.qcd.fields import spinor_dot, spinor_norm2
from repro.apps.qcd.lattice import LatticeGeometry
from repro.apps.qcd.solvers import SolverResult
from repro.util.timing import TimeBreakdown


def parity_mask(
    geom: LatticeGeometry, rank: int, parity: int
) -> np.ndarray:
    """Boolean mask of local sites with global parity ``parity``.

    Shape ``local_dims + (1, 1)`` so it broadcasts over spin/color.
    """
    if parity not in (0, 1):
        raise ValueError("parity must be 0 (even) or 1 (odd)")
    origin = geom.local_origin(rank)
    grids = np.meshgrid(
        *[np.arange(o, o + l) for o, l in zip(origin, geom.local_dims)],
        indexing="ij",
    )
    total = sum(grids)
    return ((total % 2) == parity)[..., None, None]


class EvenOddWilsonOperator:
    """Schur-preconditioned Wilson operator ``M̂ = I − κ² D_eo D_oe``."""

    def __init__(
        self,
        geom: LatticeGeometry,
        comm: Any,
        gauge: np.ndarray,
        kappa: float = 0.1,
    ) -> None:
        if not 0 < kappa < 0.125:
            raise ValueError("kappa must be in (0, 1/8)")
        self.geom = geom
        self.comm = comm
        self.kappa = kappa
        self.dslash = DslashOperator(geom, comm, gauge)
        self.even = parity_mask(geom, comm.rank, 0)
        self.odd = parity_mask(geom, comm.rank, 1)

    # -- parity-restricted hops --------------------------------------------

    def _d_oe(self, x_even: np.ndarray, sign: int = 1) -> np.ndarray:
        """Odd result of D applied to an even-supported field."""
        return self.dslash.apply(x_even, sign=sign) * self.odd

    def _d_eo(self, x_odd: np.ndarray, sign: int = 1) -> np.ndarray:
        """Even result of D applied to an odd-supported field."""
        return self.dslash.apply(x_odd, sign=sign) * self.even

    # -- the preconditioned operator ------------------------------------------

    def apply_hat(self, x_even: np.ndarray) -> np.ndarray:
        """M̂ x on the even sublattice."""
        return x_even - self.kappa**2 * self._d_eo(self._d_oe(x_even))

    def apply_hat_dagger(self, x_even: np.ndarray) -> np.ndarray:
        """M̂† x (adjoint of the hop chain, built from D†)."""
        inner = self.dslash.apply(x_even, sign=-1) * self.odd
        outer = self.dslash.apply(inner, sign=-1) * self.even
        return x_even - self.kappa**2 * outer

    # -- full solve ---------------------------------------------------------------

    def solve(
        self,
        b: np.ndarray,
        tol: float = 1e-8,
        max_iter: int = 500,
    ) -> SolverResult:
        """Solve the *full* system ``M x = b`` via the Schur complement.

        CG on the normal equations of M̂ (even sites), then direct
        reconstruction of the odd sites.  The returned residual is for
        the original full-lattice system.
        """
        comm = self.comm
        timings = TimeBreakdown()
        kappa = self.kappa
        b_e = b * self.even
        b_o = b * self.odd
        # preconditioned right-hand side (even support)
        rhs_hat = b_e + kappa * self._d_eo(b_o)
        # CGNE on M̂: M̂† M̂ x_e = M̂† rhs
        matvecs = 2  # the two hops in rhs construction count one apply..
        rhs = self.apply_hat_dagger(rhs_hat)
        matvecs += 2
        x_e = np.zeros_like(b)
        r = rhs.copy()
        p = r.copy()
        rr = spinor_norm2(comm, r)
        target = tol * tol * max(spinor_norm2(comm, rhs), 1e-300)
        converged = rr <= target
        it = 0
        while not converged and it < max_iter:
            it += 1
            ap = self.apply_hat_dagger(self.apply_hat(p))
            matvecs += 4
            p_ap = spinor_dot(comm, p, ap).real
            if p_ap <= 0:
                break
            alpha = rr / p_ap
            x_e += alpha * p
            r -= alpha * ap
            rr_new = spinor_norm2(comm, r)
            if rr_new <= target:
                converged = True
                break
            p *= rr_new / rr
            p += r
            rr = rr_new
        # reconstruct the odd half
        x_o = b_o + kappa * self._d_oe(x_e)
        x = x_e + x_o
        # full-system residual
        mx = x - kappa * self.dslash.apply(x, timings=timings)
        matvecs += 1
        resid = np.sqrt(
            spinor_norm2(comm, mx - b) / max(spinor_norm2(comm, b), 1e-300)
        )
        return SolverResult(
            x, it, float(resid), converged and resid < 10 * tol, matvecs,
            timings,
        )
