"""Lattice QCD: Wilson-Dslash and Krylov solvers (paper §5.1).

The Wilson-Dslash operator is a 9-point stencil in 4 dimensions acting
on *spinor* fields (4 spin × 3 color complex components per site) with
SU(3) *gauge* matrices (3×3 complex) on the links.  Multi-rank
execution decomposes the lattice over a 4-D process grid and overlaps
interior computation with nonblocking halo exchange — the exact
pattern of the paper's Listing 1.
"""

from repro.apps.qcd.lattice import LatticeGeometry
from repro.apps.qcd.fields import (
    random_gauge_field,
    random_spinor_field,
    unit_gauge_field,
    spinor_dot,
    spinor_norm2,
)
from repro.apps.qcd.dslash import (
    DslashOperator,
    WilsonOperator,
    dslash_flops_per_site,
)
from repro.apps.qcd.solvers import cg_solve, bicgstab_solve, SolverResult
from repro.apps.qcd.even_odd import EvenOddWilsonOperator, parity_mask

__all__ = [
    "LatticeGeometry",
    "random_gauge_field",
    "random_spinor_field",
    "unit_gauge_field",
    "spinor_dot",
    "spinor_norm2",
    "DslashOperator",
    "WilsonOperator",
    "dslash_flops_per_site",
    "cg_solve",
    "bicgstab_solve",
    "SolverResult",
    "EvenOddWilsonOperator",
    "parity_mask",
]
