"""The Wilson-Dslash operator with overlapped halo exchange.

Structure mirrors the paper's Listing 1:

1. *pack* boundary faces into contiguous buffers;
2. *post* nonblocking receives and sends for every decomposed
   dimension, forward and backward;
3. *interior* — apply the full 8-term stencil using local wraps
   (boundary slices get provisional values);
4. *wait* for the halo exchange;
5. *boundary* — correct the face slices with the received data.

The operator works identically over a plain
:class:`~repro.mpisim.communicator.Communicator` or an
:class:`~repro.core.offload_comm.OffloadCommunicator` (both expose
``isend``/``irecv``/``wait``), which is exactly how the paper compares
approaches on an unmodified application.

Note on message sizes: this functional implementation exchanges full
spinor faces (4 spin × 3 color) for clarity; the paper's production
code sends spin-projected half faces (2 × 3).  The performance model
(:mod:`repro.simtime.workloads.qcd`) uses the half-spinor sizes, which
is what puts 256-node messages at ~48 KB as §4.3 reports.
"""

from __future__ import annotations

import time
from typing import Any

import numpy as np

from repro.apps.qcd.lattice import LatticeGeometry
from repro.util.timing import TimeBreakdown

# DeGrand-Rossi basis gamma matrices; {γμ, γν} = 2δμν (verified in the
# test suite).
_i = 1j
GAMMA = np.array(
    [
        # γx
        [[0, 0, 0, _i], [0, 0, _i, 0], [0, -_i, 0, 0], [-_i, 0, 0, 0]],
        # γy
        [[0, 0, 0, -1], [0, 0, 1, 0], [0, 1, 0, 0], [-1, 0, 0, 0]],
        # γz
        [[0, 0, _i, 0], [0, 0, 0, -_i], [-_i, 0, 0, 0], [0, _i, 0, 0]],
        # γt
        [[0, 0, 1, 0], [0, 0, 0, 1], [1, 0, 0, 0], [0, 1, 0, 0]],
    ],
    dtype=np.complex128,
)

_I4 = np.eye(4, dtype=np.complex128)

#: Standard flop count per lattice site for Wilson-Dslash (Joó et al.).
_DSLASH_FLOPS_PER_SITE = 1320


def dslash_flops_per_site() -> int:
    return _DSLASH_FLOPS_PER_SITE


def _sl(dim: int, index: Any) -> tuple:
    """Build a slicing tuple selecting ``index`` along lattice ``dim``."""
    out: list[Any] = [slice(None)] * 4
    out[dim] = index
    return tuple(out)


def _roll_into(dst: np.ndarray, src: np.ndarray, shift: int, axis: int) -> np.ndarray:
    """``np.roll(src, shift, axis)`` into a preallocated ``dst``.

    Two strided-slice scatters instead of ``np.roll``'s fresh
    allocation per call — the interior stencil rolls the full spinor
    field eight times per application, so reusing one scratch buffer
    per direction removes the dominant allocator traffic from the
    overlap window (the compute the halo exchange hides behind).
    """
    n = src.shape[axis]
    s = shift % n
    if s == 0:
        dst[...] = src
        return dst
    dst[_sl(axis, slice(0, s))] = src[_sl(axis, slice(n - s, n))]
    dst[_sl(axis, slice(s, n))] = src[_sl(axis, slice(0, n - s))]
    return dst


def _spin(P: np.ndarray, psi: np.ndarray) -> np.ndarray:
    """Apply a 4×4 spin matrix: P[a,b] ψ[...,b,c]."""
    return np.einsum("ab,...bc->...ac", P, psi)


def _color(U: np.ndarray, h: np.ndarray) -> np.ndarray:
    """Apply link matrices: U[...,i,j] h[...,a,j]."""
    return np.einsum("...ij,...aj->...ai", U, h)


def _color_dag(U: np.ndarray, h: np.ndarray) -> np.ndarray:
    """Apply daggered links: conj(U)[...,j,i] h[...,a,j]."""
    return np.einsum("...ji,...aj->...ai", np.conj(U), h)


class DslashOperator:
    """Hopping term D of the Wilson operator on a decomposed lattice.

    ``apply(psi, sign=+1)`` computes

    .. math::

       (D\\psi)(x) = \\sum_\\mu U_\\mu(x)(1 - s\\gamma_\\mu)\\psi(x+\\hat\\mu)
                    + U^\\dagger_\\mu(x-\\hat\\mu)(1 + s\\gamma_\\mu)\\psi(x-\\hat\\mu)

    with ``s = sign``; ``sign=-1`` gives the adjoint :math:`D^\\dagger`.
    """

    def __init__(
        self,
        geom: LatticeGeometry,
        comm: Any,
        gauge: np.ndarray,
        persistent: bool = False,
    ) -> None:
        """``persistent=True`` sets the halo exchange up once with
        persistent requests (``MPI_Send_init`` style) and fires it with
        start-all each application — how production stencil codes run
        this pattern."""
        self.geom = geom
        self.comm = comm
        self.rank = comm.rank
        self.persistent = persistent
        expect = geom.local_dims + (4, 3, 3)
        if gauge.shape != expect:
            raise ValueError(
                f"gauge field shape {gauge.shape}, expected {expect}"
            )
        self.u = gauge
        self.u_bwd = self._exchange_gauge_halo(gauge)
        self._dims = geom.decomposed_dims()
        # Pre-allocated halo buffers (persistent across applications).
        self._recv_fwd = {}
        self._recv_bwd = {}
        self._send_lo = {}
        self._send_hi = {}
        for d in self._dims:
            face = self._face_shape(d)
            self._recv_fwd[d] = np.empty(face, dtype=np.complex128)
            self._recv_bwd[d] = np.empty(face, dtype=np.complex128)
            self._send_lo[d] = np.empty(face, dtype=np.complex128)
            self._send_hi[d] = np.empty(face, dtype=np.complex128)
        # Roll scratch, reused across every dimension and application:
        # the interior stencil needs ψ shifted ±1 along each axis, and
        # materializing those shifts via np.roll would allocate a full
        # spinor field eight times per apply.
        spinor = geom.local_dims + (4, 3)
        self._roll_fwd = np.empty(spinor, dtype=np.complex128)
        self._roll_bwd = np.empty(spinor, dtype=np.complex128)
        self._preqs: list[Any] = []
        if persistent:
            for d in self._dims:
                nb_fwd = geom.neighbor(self.rank, d, +1)
                nb_bwd = geom.neighbor(self.rank, d, -1)
                self._preqs += [
                    comm.recv_init(self._recv_fwd[d], nb_fwd, tag=2 * d),
                    comm.recv_init(self._recv_bwd[d], nb_bwd, tag=2 * d + 1),
                    comm.send_init(self._send_lo[d], nb_bwd, tag=2 * d),
                    comm.send_init(self._send_hi[d], nb_fwd, tag=2 * d + 1),
                ]
        self.applications = 0

    def _face_shape(self, dim: int) -> tuple[int, ...]:
        dims = list(self.geom.local_dims)
        dims[dim] = 1
        return tuple(dims) + (4, 3)

    def _exchange_gauge_halo(self, gauge: np.ndarray) -> np.ndarray:
        """Build U_μ(x−μ̂) for every local site (one-time setup).

        Locally a roll; along decomposed dimensions the first slice
        needs the backward neighbor's last slice of U_μ.
        """
        u_bwd = np.empty_like(gauge)
        for d in range(4):
            u_bwd[..., d, :, :] = np.roll(gauge[..., d, :, :], 1, axis=d)
        for d in self.geom.decomposed_dims():
            nb_bwd = self.geom.neighbor(self.rank, d, -1)
            nb_fwd = self.geom.neighbor(self.rank, d, +1)
            send = np.ascontiguousarray(
                gauge[_sl(d, slice(-1, None))][..., d, :, :]
            )
            recv = np.empty_like(send)
            rreq = self.comm.irecv(recv, nb_bwd, tag=100 + d)
            sreq = self.comm.isend(send, nb_fwd, tag=100 + d)
            rreq.wait()
            sreq.wait()
            u_bwd[_sl(d, slice(0, 1)) + (d,)] = recv
        return u_bwd

    # ----------------------------------------------------------------- apply

    def apply(
        self,
        psi: np.ndarray,
        out: np.ndarray | None = None,
        sign: int = 1,
        timings: TimeBreakdown | None = None,
    ) -> np.ndarray:
        """Apply D (or D† with ``sign=-1``) with overlap, as Listing 1."""
        if sign not in (1, -1):
            raise ValueError("sign must be +1 or -1")
        if psi.shape != self.geom.local_dims + (4, 3):
            raise ValueError(f"spinor shape {psi.shape} mismatch")
        if out is None:
            out = np.zeros_like(psi)
        else:
            out.fill(0)
        t = time.perf_counter
        self.applications += 1

        # -- pack --------------------------------------------------------
        # Strided-view gather straight into the persistent send faces:
        # np.copyto on a face-shaped view is a single vectorized
        # scatter, and the buffers' stable identity is what lets the
        # persistent-request and zero-copy paths borrow them safely.
        t0 = t()
        for d in self._dims:
            np.copyto(self._send_lo[d], psi[_sl(d, slice(0, 1))])
            np.copyto(self._send_hi[d], psi[_sl(d, slice(-1, None))])
        t1 = t()

        # -- post nonblocking halo exchange --------------------------------
        if self.persistent:
            # fire the pre-built exchange (MPI_Startall)
            reqs = self._preqs
            for r in reqs:
                r.start()
        else:
            reqs = []
            for d in self._dims:
                nb_fwd = self.geom.neighbor(self.rank, d, +1)
                nb_bwd = self.geom.neighbor(self.rank, d, -1)
                # forward halo: neighbor(+1)'s first slice
                reqs.append(
                    self.comm.irecv(self._recv_fwd[d], nb_fwd, tag=2 * d)
                )
                # backward halo: neighbor(-1)'s last slice
                reqs.append(
                    self.comm.irecv(self._recv_bwd[d], nb_bwd, tag=2 * d + 1)
                )
                reqs.append(
                    self.comm.isend(self._send_lo[d], nb_bwd, tag=2 * d)
                )
                reqs.append(
                    self.comm.isend(self._send_hi[d], nb_fwd, tag=2 * d + 1)
                )
        t2 = t()

        # -- interior (provisional values on the faces) ----------------------
        for d in range(4):
            P_m = _I4 - sign * GAMMA[d]
            P_p = _I4 + sign * GAMMA[d]
            psi_fwd = _roll_into(self._roll_fwd, psi, -1, d)
            psi_bwd = _roll_into(self._roll_bwd, psi, 1, d)
            out += _color(self.u[..., d, :, :], _spin(P_m, psi_fwd))
            out += _color_dag(
                self.u_bwd[..., d, :, :], _spin(P_p, psi_bwd)
            )
        t3 = t()

        # -- wait -----------------------------------------------------------
        for r in reqs:
            r.wait()
        t4 = t()

        # -- boundary corrections ---------------------------------------------
        for d in self._dims:
            P_m = _I4 - sign * GAMMA[d]
            P_p = _I4 + sign * GAMMA[d]
            hi = _sl(d, slice(-1, None))
            lo = _sl(d, slice(0, 1))
            # forward term at the last slice used psi[0]; fix it.
            delta = self._recv_fwd[d] - psi[lo]
            out[hi] += _color(
                self.u[hi][..., d, :, :], _spin(P_m, delta)
            )
            # backward term at the first slice used psi[-1]; fix it.
            delta = self._recv_bwd[d] - psi[hi]
            out[lo] += _color_dag(
                self.u_bwd[lo][..., d, :, :], _spin(P_p, delta)
            )
        t5 = t()

        if timings is not None:
            timings.add("pack", t1 - t0)
            timings.add("post", t2 - t1)
            timings.add("interior", t3 - t2)
            timings.add("wait", t4 - t3)
            timings.add("boundary", t5 - t4)
        return out

    def flops(self) -> int:
        """FLOPs of one application on this rank."""
        return self.geom.local_volume * _DSLASH_FLOPS_PER_SITE


class WilsonOperator:
    """The Wilson fermion matrix ``M = I - κ·D``.

    For ``κ < 1/8`` the operator is diagonally dominant, so CG on the
    normal equations and BiCGStab both converge — the same regime the
    paper's solvers run in.
    """

    def __init__(
        self,
        geom: LatticeGeometry,
        comm: Any,
        gauge: np.ndarray,
        kappa: float = 0.1,
    ) -> None:
        if not 0 < kappa < 0.125:
            raise ValueError("kappa must be in (0, 1/8) for convergence")
        self.dslash = DslashOperator(geom, comm, gauge)
        self.kappa = kappa
        self.comm = comm
        self.geom = geom

    def apply(
        self,
        psi: np.ndarray,
        out: np.ndarray | None = None,
        timings: TimeBreakdown | None = None,
    ) -> np.ndarray:
        d = self.dslash.apply(psi, out=out, sign=1, timings=timings)
        d *= -self.kappa
        d += psi
        return d

    def apply_dagger(
        self,
        psi: np.ndarray,
        out: np.ndarray | None = None,
        timings: TimeBreakdown | None = None,
    ) -> np.ndarray:
        d = self.dslash.apply(psi, out=out, sign=-1, timings=timings)
        d *= -self.kappa
        d += psi
        return d

    def apply_normal(
        self,
        psi: np.ndarray,
        timings: TimeBreakdown | None = None,
    ) -> np.ndarray:
        """M†M ψ — the Hermitian positive-definite operator CG needs."""
        return self.apply_dagger(self.apply(psi, timings=timings), timings=timings)

    def flops_per_apply(self) -> int:
        return self.dslash.flops() + 4 * self.geom.local_volume * 24
