"""Krylov solvers for the Wilson operator (paper §5.1).

The paper's QCD solver performance (Figure 11) comes from CG [19] and
BiCGStab [34] built on Dslash applications, level-1 BLAS, and global
reductions (``MPI_Allreduce``) — the reductions being the extra
communication that drags solver TFLOPs below bare-Dslash TFLOPs.

* :func:`cg_solve` — conjugate gradients on the normal equations
  ``M†M x = M† b`` (Wilson's M is not Hermitian);
* :func:`bicgstab_solve` — BiCGStab directly on ``M``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.apps.qcd.fields import spinor_dot, spinor_norm2
from repro.util.timing import TimeBreakdown


@dataclass
class SolverResult:
    """Outcome of a Krylov solve."""

    x: np.ndarray
    iterations: int
    residual: float
    converged: bool
    matvecs: int
    timings: TimeBreakdown


def cg_solve(
    op: Any,
    b: np.ndarray,
    comm: Any,
    tol: float = 1e-8,
    max_iter: int = 500,
) -> SolverResult:
    """Solve ``M x = b`` via CG on the normal equations.

    ``op`` must expose ``apply``, ``apply_dagger`` (e.g.
    :class:`~repro.apps.qcd.dslash.WilsonOperator`).
    """
    timings = TimeBreakdown()
    matvecs = 0

    def normal(v: np.ndarray) -> np.ndarray:
        nonlocal matvecs
        matvecs += 2
        return op.apply_dagger(op.apply(v, timings=timings), timings=timings)

    rhs = op.apply_dagger(b, timings=timings)
    matvecs += 1
    x = np.zeros_like(b)
    r = rhs.copy()
    p = r.copy()
    rr = spinor_norm2(comm, r)
    b_norm2 = spinor_norm2(comm, rhs)
    if b_norm2 == 0.0:
        return SolverResult(x, 0, 0.0, True, matvecs, timings)
    target = tol * tol * b_norm2
    converged = False
    it = 0
    for it in range(1, max_iter + 1):
        ap = normal(p)
        p_ap = spinor_dot(comm, p, ap).real
        if p_ap <= 0:
            break  # loss of positive-definiteness (numerical breakdown)
        alpha = rr / p_ap
        x += alpha * p
        r -= alpha * ap
        rr_new = spinor_norm2(comm, r)
        if rr_new <= target:
            converged = True
            break
        p *= rr_new / rr
        p += r
        rr = rr_new
    # Residual of the *original* system for reporting.
    true_r = b - op.apply(x, timings=timings)
    matvecs += 1
    resid = np.sqrt(spinor_norm2(comm, true_r) / max(spinor_norm2(comm, b), 1e-300))
    return SolverResult(x, it, float(resid), converged, matvecs, timings)


def bicgstab_solve(
    op: Any,
    b: np.ndarray,
    comm: Any,
    tol: float = 1e-8,
    max_iter: int = 500,
) -> SolverResult:
    """Solve ``M x = b`` via BiCGStab (van der Vorst 1992)."""
    timings = TimeBreakdown()
    matvecs = 0

    def mv(v: np.ndarray) -> np.ndarray:
        nonlocal matvecs
        matvecs += 1
        return op.apply(v, timings=timings)

    x = np.zeros_like(b)
    r = b.copy()
    r_hat = r.copy()
    rho = alpha = omega = 1.0 + 0j
    v = np.zeros_like(b)
    p = np.zeros_like(b)
    b_norm = np.sqrt(spinor_norm2(comm, b))
    if b_norm == 0.0:
        return SolverResult(x, 0, 0.0, True, matvecs, timings)
    converged = False
    it = 0
    for it in range(1, max_iter + 1):
        rho_new = spinor_dot(comm, r_hat, r)
        if rho_new == 0:
            break  # breakdown
        beta = (rho_new / rho) * (alpha / omega)
        rho = rho_new
        p = r + beta * (p - omega * v)
        v = mv(p)
        denom = spinor_dot(comm, r_hat, v)
        if denom == 0:
            break
        alpha = rho / denom
        s = r - alpha * v
        s_norm = np.sqrt(spinor_norm2(comm, s))
        if s_norm <= tol * b_norm:
            x += alpha * p
            converged = True
            break
        t = mv(s)
        tt = spinor_norm2(comm, t)
        if tt == 0:
            break
        omega = spinor_dot(comm, t, s) / tt
        x += alpha * p + omega * s
        r = s - omega * t
        r_norm = np.sqrt(spinor_norm2(comm, r))
        if r_norm <= tol * b_norm:
            converged = True
            break
        if omega == 0:
            break
    true_r = b - op.apply(x, timings=timings)
    matvecs += 1
    resid = np.sqrt(spinor_norm2(comm, true_r)) / b_norm
    return SolverResult(x, it, float(resid), converged, matvecs, timings)
