"""Spinor and gauge fields on the local sublattice.

Layouts (C-contiguous, axes x,y,z,t leading):

* spinor:  ``(lx, ly, lz, lt, 4, 3)`` complex — 4 spin, 3 color;
* gauge:   ``(lx, ly, lz, lt, 4, 3, 3)`` complex — one 3×3 link matrix
  per site per direction μ ∈ {x,y,z,t}.

Random gauge links are drawn as Haar-ish unitary matrices (QR of a
complex Gaussian); unitarity is what the Dslash adjoint identity needs,
and tests verify it.
"""

from __future__ import annotations

import numpy as np

from repro.apps.qcd.lattice import LatticeGeometry
from repro.util.rng import seeded_rng


def spinor_shape(geom: LatticeGeometry) -> tuple[int, ...]:
    return geom.local_dims + (4, 3)


def gauge_shape(geom: LatticeGeometry) -> tuple[int, ...]:
    return geom.local_dims + (4, 3, 3)


def random_spinor_field(
    geom: LatticeGeometry, rank: int, seed: object = "spinor"
) -> np.ndarray:
    """Deterministic per-rank random spinor field."""
    rng = seeded_rng("qcd", seed, rank)
    shape = spinor_shape(geom)
    return (
        rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
    ) / np.sqrt(2.0)


def random_gauge_field(
    geom: LatticeGeometry, rank: int, seed: object = "gauge"
) -> np.ndarray:
    """Unitary random links (U(3); the SU(3) phase is irrelevant to the
    operator structure being reproduced)."""
    rng = seeded_rng("qcd", seed, rank)
    shape = gauge_shape(geom)
    z = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
    flat = z.reshape(-1, 3, 3)
    q, r = np.linalg.qr(flat)
    # Fix the QR phase ambiguity so the distribution is uniform.
    d = np.diagonal(r, axis1=-2, axis2=-1).copy()
    d /= np.abs(d)
    q = q * d[:, None, :]
    return np.ascontiguousarray(q.reshape(shape))


def unit_gauge_field(geom: LatticeGeometry) -> np.ndarray:
    """Free-field links (identity matrices); Dslash then reduces to a
    pure finite-difference stencil — handy for exact tests."""
    u = np.zeros(gauge_shape(geom), dtype=np.complex128)
    u[..., 0, 0] = 1.0
    u[..., 1, 1] = 1.0
    u[..., 2, 2] = 1.0
    return u


def spinor_dot(comm, a: np.ndarray, b: np.ndarray) -> complex:
    """Global inner product ⟨a, b⟩ = Σ conj(a)·b (allreduce)."""
    local = np.vdot(a, b)
    buf = np.array([local], dtype=np.complex128)
    out = comm.allreduce(buf)
    return complex(out[0])


def spinor_norm2(comm, a: np.ndarray) -> float:
    """Global squared 2-norm (allreduce)."""
    local = float(np.vdot(a, a).real)
    buf = np.array([local])
    out = comm.allreduce(buf)
    return float(out[0])


def axpy(alpha: complex, x: np.ndarray, y: np.ndarray) -> None:
    """y += alpha * x, in place (level-1 BLAS of the solvers)."""
    y += alpha * x
