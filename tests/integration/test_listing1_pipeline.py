"""End-to-end integration: the paper's Listing 1 stencil program.

One application function, structured exactly like the paper's sample
code (boundary pack → master posts nonblocking exchange → internal
volume processing [with the approach's PROGRESS hook where relevant] →
waitall → boundary processing), executed unmodified under every
approach.  All approaches must produce bit-identical results; the
approaches differ only in *when* communication progressed.
"""

import numpy as np
import pytest

from repro.bench.harness import APPROACH_NAMES, run_on_approach
from repro.core import progress_hook
from repro.mpisim.requests import Request
from repro.util.rng import seeded_rng
from repro.util.units import KIB


def listing1_stencil(comm, steps: int = 3, interior: int = 512):
    """A 1-D ghost-cell stencil in the paper's Listing-1 shape."""
    n = comm.size
    right, left = (comm.rank + 1) % n, (comm.rank - 1) % n
    rng = seeded_rng("listing1", comm.rank)
    # interior + one ghost cell on each side
    u = np.zeros(interior + 2)
    u[1:-1] = rng.standard_normal(interior)
    send_lo = np.empty(1)
    send_hi = np.empty(1)
    recv_lo = np.empty(1)
    recv_hi = np.empty(1)
    for _ in range(steps):
        # 4: boundary pack
        send_lo[0] = u[1]
        send_hi[0] = u[-2]
        # 6: master posts the nonblocking exchange
        reqs = [
            comm.irecv(recv_lo, left, tag=0),
            comm.irecv(recv_hi, right, tag=1),
            comm.isend(send_lo, left, tag=1),
            comm.isend(send_hi, right, tag=0),
        ]
        # 7-17: internal volume processing
        new = u.copy()
        new[2:-2] = 0.25 * (u[1:-3] + 2 * u[2:-2] + u[3:-1])
        # 18: waitall
        for r in reqs:
            r.wait(timeout=60)
        # 20: boundary processing with the received ghosts
        new[1] = 0.25 * (recv_lo[0] + 2 * u[1] + u[2])
        new[-2] = 0.25 * (u[-3] + 2 * u[-2] + recv_hi[0])
        u = new
    return u[1:-1]


class TestListing1:
    def test_identical_results_across_approaches(self):
        results = {}
        for approach in APPROACH_NAMES:
            out = run_on_approach(approach, 3, listing1_stencil)
            results[approach] = out
        base = results["baseline"]
        for approach in ("comm-self", "offload"):
            for r in range(3):
                np.testing.assert_allclose(
                    results[approach][r], base[r], atol=1e-15
                )

    def test_iprobe_variant_with_progress_hook(self):
        """The Listing-1 *iprobe* variant: PROGRESS calls inside the
        compute loop, correctness unchanged."""

        def prog(comm):
            hook = progress_hook(comm, every=1)
            n = comm.size
            right, left = (comm.rank + 1) % n, (comm.rank - 1) % n
            big = np.full(256 * KIB, float(comm.rank), dtype=np.float64)
            out = np.empty_like(big)
            rreq = comm.irecv(out, left, tag=3)
            sreq = comm.isend(big, right, tag=3)
            for _chunk in range(16):
                # x/y loop body ...
                hook()  # 9/11: PROGRESS
            rreq.wait(timeout=60)
            sreq.wait(timeout=60)
            assert hook.probes() == 16
            return out[0]

        res = run_on_approach("baseline", 2, prog)
        assert res == [1.0, 0.0]

    def test_stencil_converges_to_mean(self):
        """Physics sanity: repeated smoothing flattens the field, and
        the global mean is conserved across the distributed runs."""

        def prog(comm):
            out = listing1_stencil(comm, steps=40, interior=64)
            local = np.array([out.sum(), float(out.size)])
            total = comm.allreduce(local)
            return float(total[0] / total[1]), float(np.ptp(out))

        res = run_on_approach("offload", 2, prog)
        means = [m for m, _ in res]
        spreads = [s for _, s in res]
        assert np.allclose(means, means[0])
        # smoothing shrinks the spread
        assert all(s < 1.0 for s in spreads)


class TestMixedTraffic:
    def test_all_op_types_interleaved_under_offload(self):
        """p2p + collectives + NBC + RMA + persistent, all in flight on
        one offload engine at once."""
        from repro.core import offloaded
        from repro.mpisim import start_all, wait_all_persistent

        def prog(comm):
            with offloaded(comm) as oc:
                n = oc.size
                peer = (oc.rank + 1) % n
                src = (oc.rank - 1) % n
                # persistent pair
                pbuf = np.zeros(2)
                prbuf = np.empty(2)
                ps = oc.send_init(pbuf, peer, tag=50)
                pr = oc.recv_init(prbuf, src, tag=50)
                # RMA window
                mem = np.zeros(4, dtype=np.float64)
                win = oc.win_create(mem)
                # interleave everything
                nb_out = np.empty(1)
                nb = oc.iallreduce(np.array([1.0]), nb_out)
                pbuf[:] = oc.rank
                start_all([pr, ps])
                win.put(np.array([float(oc.rank)]), 0, target_offset=oc.rank)
                big = np.zeros(256 * KIB, dtype=np.uint8)
                big_out = np.empty_like(big)
                r1 = oc.irecv(big_out, src, tag=60)
                r2 = oc.isend(big, peer, tag=60)
                # complete in a scrambled order
                nb.wait(timeout=60)
                wait_all_persistent([pr, ps], timeout=60)
                r1.wait(timeout=60)
                r2.wait(timeout=60)
                win.fence()
                ok = nb_out[0] == n and prbuf[0] == src
                if oc.rank == 0:
                    ok = ok and list(mem[:n]) == [float(i) for i in range(n)]
                win.free()
                return ok

        from tests.conftest import run_world_mt

        assert all(run_world_mt(3, prog))
