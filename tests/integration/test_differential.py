"""Differential testing: offload must be observationally equivalent.

Hypothesis generates arbitrary sequences of MPI operations; each
sequence runs once over the plain communicator and once through the
offload engine.  Every user-visible result must match exactly — the
strongest form of the paper's "no modification to the application"
claim.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import offloaded
from repro.mpisim import MAX, SUM, THREAD_MULTIPLE, World
from repro.util.rng import seeded_rng

NRANKS = 3

OPS = (
    "ring_small",
    "ring_big",
    "allreduce",
    "bcast",
    "gather",
    "alltoall",
    "barrier",
    "scan",
    "iallreduce",
    "sendrecv_obj",
)


def _run_sequence(comm, ops: list[str], seed: int) -> list:
    """Execute the op sequence; returns a list of comparable results."""
    n = comm.size
    rank = comm.rank
    right, left = (rank + 1) % n, (rank - 1) % n
    rng = seeded_rng("diff", seed, rank)
    out: list = []
    for i, op in enumerate(ops):
        if op == "ring_small":
            send = rng.standard_normal(4)
            recv = np.empty(4)
            comm.sendrecv(send, right, recv, left, sendtag=i)
            out.append(recv.copy())
        elif op == "ring_big":
            send = np.full(200_000, float(rank), dtype=np.float64)
            recv = np.empty_like(send)  # 1.6 MB: rendezvous
            comm.sendrecv(send, right, recv, left, sendtag=i)
            out.append(recv[::50_000].copy())
        elif op == "allreduce":
            out.append(comm.allreduce(rng.standard_normal(3)).copy())
        elif op == "bcast":
            buf = (
                rng.standard_normal(3)
                if rank == i % n
                else np.zeros(3)
            )
            comm.bcast(buf, root=i % n)
            out.append(buf.copy())
        elif op == "gather":
            g = comm.gather(np.array([float(rank + i)]), root=0)
            out.append(None if g is None else g.copy())
        elif op == "alltoall":
            a = comm.alltoall(
                np.arange(n * 2, dtype=np.float64).reshape(n, 2)
                * (rank + 1)
            )
            out.append(a.copy())
        elif op == "barrier":
            comm.barrier()
            out.append("barrier")
        elif op == "scan":
            out.append(comm.scan(np.array([float(rank)]), op=MAX).copy())
        elif op == "iallreduce":
            res = np.empty(2)
            comm.iallreduce(rng.standard_normal(2), res, op=SUM).wait(
                timeout=60
            )
            out.append(res.copy())
        elif op == "sendrecv_obj":
            comm.isend_obj({"r": rank, "i": i}, right, tag=100 + i)
            got = comm.recv_obj(source=left, tag=100 + i, timeout=60)
            out.append(got)
    return out


def _results_for(mode: str, ops: list[str], seed: int):
    def prog(comm):
        if mode == "plain":
            return _run_sequence(comm, ops, seed)
        with offloaded(comm) as oc:
            return _run_sequence(oc, ops, seed)

    world = World(NRANKS, thread_level=THREAD_MULTIPLE)
    return world.run(prog, timeout=120)


def _assert_equal(a, b, ctx):
    assert type(a) is type(b) or (
        isinstance(a, np.ndarray) and isinstance(b, np.ndarray)
    ), ctx
    if isinstance(a, np.ndarray):
        np.testing.assert_allclose(a, b, atol=1e-12, err_msg=str(ctx))
    else:
        assert a == b, ctx


@settings(max_examples=12, deadline=None)
@given(
    ops=st.lists(st.sampled_from(OPS), min_size=1, max_size=5),
    seed=st.integers(0, 10**6),
)
def test_offload_is_observationally_equivalent(ops, seed):
    plain = _results_for("plain", ops, seed)
    offl = _results_for("offload", ops, seed)
    for rank in range(NRANKS):
        for j, (a, b) in enumerate(zip(plain[rank], offl[rank])):
            _assert_equal(a, b, (rank, j, ops[j]))


def test_long_mixed_sequence_smoke():
    """One long deterministic sequence touching every op type."""
    ops = list(OPS) * 2
    plain = _results_for("plain", ops, seed=7)
    offl = _results_for("offload", ops, seed=7)
    for rank in range(NRANKS):
        for j, (a, b) in enumerate(zip(plain[rank], offl[rank])):
            _assert_equal(a, b, (rank, j, ops[j]))
