"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import sys

import numpy as np
import pytest

from repro.mpisim.constants import THREAD_FUNNELED, THREAD_MULTIPLE
from repro.mpisim.world import World
from repro.util.rng import seeded_rng


@pytest.fixture(autouse=True, scope="session")
def fine_gil_slices():
    """Dedicated progress threads need finer GIL slices than CPython's
    5 ms default to act like the extra hardware thread they model."""
    prev = sys.getswitchinterval()
    sys.setswitchinterval(1e-4)
    yield
    sys.setswitchinterval(prev)


@pytest.fixture
def rng() -> np.random.Generator:
    return seeded_rng("tests")


def run_world(nranks, fn, *args, thread_level=THREAD_FUNNELED, **kwargs):
    """Run an SPMD function with a bounded timeout (deadlock safety)."""
    timeout = kwargs.pop("timeout", 60.0)
    world = World(nranks, thread_level=thread_level, **kwargs)
    return world.run(fn, *args, timeout=timeout)


def run_world_mt(nranks, fn, *args, **kwargs):
    return run_world(
        nranks, fn, *args, thread_level=THREAD_MULTIPLE, **kwargs
    )
