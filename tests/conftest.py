"""Shared fixtures and helpers for the test suite.

Concurrency-test infrastructure (see TESTING.md):

* ``test_seed`` — the canonical seed fixture for randomized tests.
  Parametrize it indirectly (``@pytest.mark.parametrize("test_seed",
  [0, 1], indirect=True)``); a failing test prints a one-line
  ``REPRO_TEST_SEED=<seed> ...`` replay command, and setting that
  environment variable re-runs every seeded test with exactly that
  seed.
* ``@pytest.mark.deadline(seconds)`` — per-test wall-clock watchdog
  for tests that drive real threads (pytest-timeout is not available
  in this environment).  On expiry it dumps every thread's stack to
  stderr and hard-exits, so a wedged interleaving produces a
  diagnosable CI failure instead of a silent hang.
* ``deadline(seconds, label)`` — the same watchdog as a *nestable*
  context manager: a marked stress test can bound individual phases
  with tighter inner deadlines; frames stack, the earliest expiry is
  always armed, and any pre-existing ``faulthandler`` state is
  restored when the last frame pops.
"""

from __future__ import annotations

import contextlib
import faulthandler
import os
import sys
import threading
import time

import numpy as np
import pytest

from repro.mpisim.constants import THREAD_FUNNELED, THREAD_MULTIPLE
from repro.mpisim.world import World
from repro.util.rng import seeded_rng

#: exit code for deadline kills (distinct from pytest's own 1/2/3/4)
DEADLINE_EXIT_CODE = 70


@pytest.fixture(autouse=True, scope="session")
def fine_gil_slices():
    """Dedicated progress threads need finer GIL slices than CPython's
    5 ms default to act like the extra hardware thread they model."""
    prev = sys.getswitchinterval()
    sys.setswitchinterval(1e-4)
    yield
    sys.setswitchinterval(prev)


@pytest.fixture
def rng() -> np.random.Generator:
    return seeded_rng("tests")


# ---------------------------------------------------------------------------
# seed replay: every randomized test takes `test_seed` and fails loudly
# with the command that reproduces it
# ---------------------------------------------------------------------------


@pytest.fixture
def test_seed(request) -> int:
    """Seed for randomized tests, replayable from the environment.

    ``REPRO_TEST_SEED`` overrides any parametrized value, so the
    replay line printed on failure reproduces the exact run even for
    tests parametrized over several seeds.
    """
    env = os.environ.get("REPRO_TEST_SEED")
    if env is not None:
        return int(env)
    return int(getattr(request, "param", 0))


#: (nodeid, seed) of every failed test that used a seed this session
_failed_seeds: list[tuple[str, int]] = []

#: fixture/parameter names recognized as "the seed of this test"
_SEED_ARGS = ("test_seed", "seed", "seed_round")


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    if report.when != "call" or not report.failed:
        return
    funcargs = getattr(item, "funcargs", None) or {}
    for name in _SEED_ARGS:
        seed = funcargs.get(name)
        if isinstance(seed, int):
            _failed_seeds.append((item.nodeid, seed))
            report.sections.append(
                (
                    "seed replay",
                    f"replay this exact run with:\n"
                    f"  REPRO_TEST_SEED={seed} python -m pytest "
                    f"'{item.nodeid}'",
                )
            )
            break


def pytest_terminal_summary(terminalreporter):
    if not _failed_seeds:
        return
    terminalreporter.section("randomized-test seed replay")
    for nodeid, seed in _failed_seeds:
        terminalreporter.line(
            f"REPRO_TEST_SEED={seed} python -m pytest '{nodeid}'"
        )


# ---------------------------------------------------------------------------
# per-test deadlines: @pytest.mark.deadline(seconds) / nestable deadline()
# ---------------------------------------------------------------------------

#: active deadline frames: (absolute monotonic expiry, label, capman).
#: A stack rather than a single timer so deadlines *compose*: a stress
#: test marked ``@pytest.mark.deadline(120)`` can wrap an individual
#: phase in ``with deadline(10, "pool drain")`` and each bound stays
#: armed — popping the inner frame re-arms the outer one's remaining
#: time instead of cancelling the watchdog outright.
_deadline_frames: list[tuple[float, str, object]] = []
_deadline_timer: threading.Timer | None = None
#: ``faulthandler.is_enabled()`` before the first frame was pushed;
#: restored (not unconditionally cleared) when the last frame pops, so
#: a suite run under ``-X faulthandler`` keeps its crash dumps.
_deadline_prev_faulthandler: bool | None = None
_deadline_lock = threading.Lock()


def _deadline_expire(frame) -> None:  # pragma: no cover - fires on hang
    """Dump every thread's stack and hard-exit.

    A wedged thread interleaving cannot be unwound from Python (the
    stuck threads hold no cooperative cancellation point), so expiry
    terminates the process with :data:`DEADLINE_EXIT_CODE` — CI then
    shows exactly where every thread was stuck instead of timing the
    whole job out with no diagnostics.
    """
    expiry, label, capman = frame
    # fd-level capture would swallow the dump (and discard it at
    # os._exit), so stop capturing before writing anything
    if capman is not None:
        try:
            capman.stop_global_capturing()
        except Exception:
            pass
    sys.stderr.write(
        f"\n\nFATAL: {label} exceeded its deadline; "
        "thread stacks follow.\n"
    )
    faulthandler.dump_traceback(file=sys.stderr)
    sys.stderr.flush()
    os._exit(DEADLINE_EXIT_CODE)


def _deadline_rearm_locked() -> None:
    """(Re)arm the shared timer for the earliest remaining expiry."""
    global _deadline_timer, _deadline_prev_faulthandler
    if _deadline_timer is not None:
        _deadline_timer.cancel()
        _deadline_timer = None
    if not _deadline_frames:
        # last frame popped: restore the pre-existing faulthandler
        # state rather than unconditionally disabling dumps
        if _deadline_prev_faulthandler is not None:
            if _deadline_prev_faulthandler:
                faulthandler.enable()
            else:
                faulthandler.disable()
            _deadline_prev_faulthandler = None
        return
    if _deadline_prev_faulthandler is None:
        # first frame pushed: C-level crashes inside the bounded
        # window should dump too
        _deadline_prev_faulthandler = faulthandler.is_enabled()
        faulthandler.enable()
    frame = min(_deadline_frames, key=lambda f: f[0])
    delay = max(frame[0] - time.monotonic(), 0.0)
    _deadline_timer = threading.Timer(delay, _deadline_expire, args=(frame,))
    _deadline_timer.daemon = True
    _deadline_timer.start()


@contextlib.contextmanager
def deadline(seconds: float, label: str = "deadline block", capman=None):
    """Nestable hard wall-clock bound; dumps all stacks on expiry.

    Frames stack: the shared watchdog timer always tracks the earliest
    remaining expiry, and leaving an inner frame re-arms the enclosing
    one.  ``faulthandler`` is enabled while any frame is armed and its
    prior enabled-state is restored when the last frame pops.
    """
    frame = (time.monotonic() + seconds, label, capman)
    with _deadline_lock:
        _deadline_frames.append(frame)
        _deadline_rearm_locked()
    try:
        yield
    finally:
        with _deadline_lock:
            _deadline_frames.remove(frame)
            _deadline_rearm_locked()


@pytest.fixture(autouse=True)
def _deadline_watchdog(request):
    """Arm :func:`deadline` for tests marked ``@pytest.mark.deadline``."""
    marker = request.node.get_closest_marker("deadline")
    if marker is None:
        yield
        return
    seconds = float(marker.args[0]) if marker.args else 120.0
    capman = request.config.pluginmanager.getplugin("capturemanager")
    with deadline(
        seconds, label=f"{request.node.nodeid} ({seconds:g}s)",
        capman=capman,
    ):
        yield


def run_world(nranks, fn, *args, thread_level=THREAD_FUNNELED, **kwargs):
    """Run an SPMD function with a bounded timeout (deadlock safety)."""
    timeout = kwargs.pop("timeout", 60.0)
    world = World(nranks, thread_level=thread_level, **kwargs)
    return world.run(fn, *args, timeout=timeout)


def run_world_mt(nranks, fn, *args, **kwargs):
    return run_world(
        nranks, fn, *args, thread_level=THREAD_MULTIPLE, **kwargs
    )
