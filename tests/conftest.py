"""Shared fixtures and helpers for the test suite.

Concurrency-test infrastructure (see TESTING.md):

* ``test_seed`` — the canonical seed fixture for randomized tests.
  Parametrize it indirectly (``@pytest.mark.parametrize("test_seed",
  [0, 1], indirect=True)``); a failing test prints a one-line
  ``REPRO_TEST_SEED=<seed> ...`` replay command, and setting that
  environment variable re-runs every seeded test with exactly that
  seed.
* ``@pytest.mark.deadline(seconds)`` — per-test wall-clock watchdog
  for tests that drive real threads (pytest-timeout is not available
  in this environment).  On expiry it dumps every thread's stack to
  stderr and hard-exits, so a wedged interleaving produces a
  diagnosable CI failure instead of a silent hang.
"""

from __future__ import annotations

import faulthandler
import os
import sys
import threading

import numpy as np
import pytest

from repro.mpisim.constants import THREAD_FUNNELED, THREAD_MULTIPLE
from repro.mpisim.world import World
from repro.util.rng import seeded_rng

#: exit code for deadline kills (distinct from pytest's own 1/2/3/4)
DEADLINE_EXIT_CODE = 70


@pytest.fixture(autouse=True, scope="session")
def fine_gil_slices():
    """Dedicated progress threads need finer GIL slices than CPython's
    5 ms default to act like the extra hardware thread they model."""
    prev = sys.getswitchinterval()
    sys.setswitchinterval(1e-4)
    yield
    sys.setswitchinterval(prev)


@pytest.fixture
def rng() -> np.random.Generator:
    return seeded_rng("tests")


# ---------------------------------------------------------------------------
# seed replay: every randomized test takes `test_seed` and fails loudly
# with the command that reproduces it
# ---------------------------------------------------------------------------


@pytest.fixture
def test_seed(request) -> int:
    """Seed for randomized tests, replayable from the environment.

    ``REPRO_TEST_SEED`` overrides any parametrized value, so the
    replay line printed on failure reproduces the exact run even for
    tests parametrized over several seeds.
    """
    env = os.environ.get("REPRO_TEST_SEED")
    if env is not None:
        return int(env)
    return int(getattr(request, "param", 0))


#: (nodeid, seed) of every failed test that used a seed this session
_failed_seeds: list[tuple[str, int]] = []

#: fixture/parameter names recognized as "the seed of this test"
_SEED_ARGS = ("test_seed", "seed", "seed_round")


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    if report.when != "call" or not report.failed:
        return
    funcargs = getattr(item, "funcargs", None) or {}
    for name in _SEED_ARGS:
        seed = funcargs.get(name)
        if isinstance(seed, int):
            _failed_seeds.append((item.nodeid, seed))
            report.sections.append(
                (
                    "seed replay",
                    f"replay this exact run with:\n"
                    f"  REPRO_TEST_SEED={seed} python -m pytest "
                    f"'{item.nodeid}'",
                )
            )
            break


def pytest_terminal_summary(terminalreporter):
    if not _failed_seeds:
        return
    terminalreporter.section("randomized-test seed replay")
    for nodeid, seed in _failed_seeds:
        terminalreporter.line(
            f"REPRO_TEST_SEED={seed} python -m pytest '{nodeid}'"
        )


# ---------------------------------------------------------------------------
# per-test deadlines: @pytest.mark.deadline(seconds)
# ---------------------------------------------------------------------------


@pytest.fixture(autouse=True)
def _deadline_watchdog(request):
    """Hard wall-clock bound for tests marked ``@pytest.mark.deadline``.

    A wedged thread interleaving cannot be unwound from Python (the
    stuck threads hold no cooperative cancellation point), so on expiry
    the watchdog dumps **all** thread stacks via :mod:`faulthandler`
    and terminates the process with :data:`DEADLINE_EXIT_CODE` — CI
    then shows exactly where every thread was stuck instead of timing
    the whole job out with no diagnostics.
    """
    marker = request.node.get_closest_marker("deadline")
    if marker is None:
        yield
        return
    seconds = float(marker.args[0]) if marker.args else 120.0
    capman = request.config.pluginmanager.getplugin("capturemanager")

    def _expire() -> None:  # pragma: no cover - only fires on a hang
        # fd-level capture would swallow the dump (and discard it at
        # os._exit), so stop capturing before writing anything
        if capman is not None:
            try:
                capman.stop_global_capturing()
            except Exception:
                pass
        sys.stderr.write(
            f"\n\nFATAL: {request.node.nodeid} exceeded its "
            f"{seconds:g}s deadline; thread stacks follow.\n"
        )
        faulthandler.dump_traceback(file=sys.stderr)
        sys.stderr.flush()
        os._exit(DEADLINE_EXIT_CODE)

    timer = threading.Timer(seconds, _expire)
    timer.daemon = True
    timer.start()
    try:
        yield
    finally:
        timer.cancel()


def run_world(nranks, fn, *args, thread_level=THREAD_FUNNELED, **kwargs):
    """Run an SPMD function with a bounded timeout (deadlock safety)."""
    timeout = kwargs.pop("timeout", 60.0)
    world = World(nranks, thread_level=thread_level, **kwargs)
    return world.run(fn, *args, timeout=timeout)


def run_world_mt(nranks, fn, *args, **kwargs):
    return run_world(
        nranks, fn, *args, thread_level=THREAD_MULTIPLE, **kwargs
    )
