"""Chaos harness: seeded fault storms must never hang, never lose a
completion, and never surface an untyped error."""

import pytest

from repro.faults import FaultAction, FaultPlan, FaultRule
from repro.faults.chaos import (
    PROFILES,
    default_plan,
    render_report,
    run_chaos,
)

pytestmark = pytest.mark.deadline(150)


class TestDefaultPlan:
    def test_every_profile_builds(self):
        for profile in PROFILES:
            plan = default_plan(4, seed=1, profile=profile)
            assert plan.rules, profile
            assert plan.seed == 1

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            default_plan(4, profile="meteor")

    def test_message_rules_target_eager_only(self):
        plan = default_plan(4, profile="messages")
        assert all(r.kind == "eager" for r in plan.rules)

    def test_rules_are_bounded(self):
        # every default rule is windowed, so the storm is finite
        for profile in PROFILES:
            for rule in default_plan(4, profile=profile).rules:
                assert rule.count is not None


@pytest.mark.chaos
class TestChaosContract:
    @pytest.mark.parametrize("test_seed", [1], indirect=True)
    def test_transient_profile(self, test_seed):
        report = run_chaos(
            nranks=2,
            rounds=10,
            seed=test_seed,
            profile="transient",
            op_timeout=0.5,
            run_timeout=60.0,
        )
        assert report["ok"], render_report(report)
        assert report["hangs"] == []
        assert report["wait_timeouts"] == 0
        assert report["unexpected_errors"] == {}
        assert report["balance"]["ok"]

    @pytest.mark.parametrize("test_seed", [2], indirect=True)
    def test_messages_profile(self, test_seed):
        report = run_chaos(
            nranks=2,
            rounds=8,
            seed=test_seed,
            profile="messages",
            op_timeout=0.4,
            run_timeout=60.0,
        )
        assert report["ok"], render_report(report)

    @pytest.mark.parametrize("test_seed", [3], indirect=True)
    def test_messages_profile_zero_copy(self, test_seed):
        # same storm over the zero-copy data plane: DROP must complete
        # borrowed-buffer sends, DUPLICATE must deep-copy them — any
        # miss surfaces as a hang or an untyped error here
        report = run_chaos(
            nranks=2,
            rounds=8,
            seed=test_seed,
            profile="messages",
            op_timeout=0.4,
            run_timeout=60.0,
            zero_copy=True,
        )
        assert report["ok"], render_report(report)

    def test_crash_degrades_not_hangs(self):
        # deterministic: no probability rules — rank 1's engine dies on
        # its 7th command and the facade degrades to inline issuance
        plan = FaultPlan(
            [FaultRule(FaultAction.ENGINE_CRASH, rank=1, after=6, count=1)],
            seed=5,
        )
        report = run_chaos(
            nranks=2,
            rounds=10,
            seed=5,
            op_timeout=0.5,
            run_timeout=60.0,
            plan=plan,
        )
        assert report["ok"], render_report(report)
        assert report["degraded_exits"] == [1]
        assert report["faults"]["fault_engine_crash"] == 1

    @pytest.mark.parametrize("test_seed", [0], indirect=True)
    def test_mixed_profile(self, test_seed):
        report = run_chaos(
            nranks=3,
            rounds=12,
            seed=test_seed,
            profile="mixed",
            op_timeout=0.5,
            run_timeout=90.0,
        )
        assert report["ok"], render_report(report)

    @pytest.mark.parametrize("test_seed", [4], indirect=True)
    def test_shard_crash_profile(self, test_seed):
        # one shard of each rank's 4-wide pool dies under load; the
        # pool must reroute around it with no hang, no lost
        # completion, and the pool-merged balance law intact
        report = run_chaos(
            nranks=2,
            rounds=10,
            seed=test_seed,
            profile="shard-crash",
            op_timeout=0.5,
            run_timeout=90.0,
        )
        assert report["ok"], render_report(report)
        assert report["hangs"] == []
        assert report["unexpected_errors"] == {}
        assert report["balance"]["ok"]
        assert report["pool_size"] == 4
        assert report["faults"]["fault_engine_crash"] >= 1
        # the crash killed shards, not ranks: nobody degraded to
        # inline issuance and at least one shard is recorded dead
        assert report["pool"]["dead_shards"] >= 1

    def test_shard_crash_cli_exit_code(self):
        from repro.__main__ import main

        argv = [
            "chaos",
            "--nranks", "2",
            "--rounds", "6",
            "--seed", "7",
            "--profile", "shard-crash",
            "--op-timeout", "0.5",
        ]
        assert main(argv) == 0

    def test_cli_exit_code(self):
        from repro.__main__ import main

        argv = [
            "chaos",
            "--nranks", "2",
            "--rounds", "6",
            "--seed", "3",
            "--profile", "transient",
            "--op-timeout", "0.5",
        ]
        assert main(argv) == 0


@pytest.mark.chaos
class TestCrashSurviveContract:
    """The ``rank-crash-survive`` profile: rank deaths mid-run must
    end in completion, not fail-fast — with the survivors' final
    state bitwise-identical to the fault-free reference."""

    @pytest.mark.parametrize("test_seed", [0], indirect=True)
    def test_rank_crash_survive_profile(self, test_seed):
        report = run_chaos(
            nranks=4,
            seed=test_seed,
            profile="rank-crash-survive",
            run_timeout=120.0,
        )
        assert report["ok"], render_report(report)
        for name, ft in report["ft"].items():
            assert ft["bitwise"], (name, ft)
            assert ft["restarts"] >= 1, (name, ft)
            assert ft["dead"], (name, ft)
