"""Seeded fault-injection plan: rule windows, determinism, and the
three hook scopes (message delivery / progress / command dispatch)."""

from random import Random

import numpy as np
import pytest

from repro.core import OffloadEngine, OffloadError, offloaded
from repro.faults import (
    FaultAction,
    FaultPlan,
    FaultRule,
    TransientFaultError,
)
from repro.mpisim import THREAD_MULTIPLE, World

from tests.conftest import run_world, run_world_mt


class TestFaultRule:
    def test_after_and_count_window(self):
        rule = FaultRule(FaultAction.DROP, after=2, count=2)
        rng = Random(0)
        fires = [rule._fire(rng) for _ in range(6)]
        # skips events 1-2, injects on 3-4, then the count is exhausted
        assert fires == [False, False, True, True, False, False]

    def test_probability_is_seed_deterministic(self):
        rule_a = FaultRule(FaultAction.DROP, probability=0.5, count=None)
        rule_b = FaultRule(FaultAction.DROP, probability=0.5, count=None)
        rng_a, rng_b = Random(7), Random(7)
        seq_a = [rule_a._fire(rng_a) for _ in range(32)]
        seq_b = [rule_b._fire(rng_b) for _ in range(32)]
        assert seq_a == seq_b
        assert any(seq_a) and not all(seq_a)

    def test_scope_matching(self):
        rule = FaultRule(
            FaultAction.DROP, rank=1, peer=0, kind="eager", tag=7
        )
        assert rule._matches_scope(1, 0, "eager", 7)
        assert not rule._matches_scope(2, 0, "eager", 7)
        assert not rule._matches_scope(1, 1, "eager", 7)
        assert not rule._matches_scope(1, 0, "rts", 7)
        assert not rule._matches_scope(1, 0, "eager", 8)
        wildcard = FaultRule(FaultAction.DROP)
        assert wildcard._matches_scope(3, 9, "rts", 123)

    def test_string_action_coerced(self):
        assert FaultRule("drop").action is FaultAction.DROP

    def test_make_error(self):
        default = FaultRule(FaultAction.COMMAND_ERROR).make_error()
        assert isinstance(default, TransientFaultError)
        custom = FaultRule(
            FaultAction.COMMAND_ERROR, error=lambda: ValueError("boom")
        ).make_error()
        assert isinstance(custom, ValueError)


class TestMessageScope:
    def test_drop_loses_eager_message(self):
        plan = FaultPlan(
            [FaultRule(FaultAction.DROP, rank=1, kind="eager", tag=7)]
        )

        def prog(comm):
            if comm.rank == 0:
                comm.send(np.ones(4), 1, tag=7)  # eager: completes at post
                return True
            r = comm.irecv(np.empty(4), 0, tag=7)
            with pytest.raises(TimeoutError):
                r.wait(timeout=0.3)
            return True

        world = World(2, thread_level=THREAD_MULTIPLE)
        world.install_faults(plan)
        assert all(world.run(prog, timeout=30))
        assert plan.faults_injected == 1
        assert plan.stats()["fault_drop"] == 1

    def test_delay_holds_then_delivers(self):
        plan = FaultPlan(
            [
                FaultRule(
                    FaultAction.DELAY,
                    rank=1,
                    kind="eager",
                    tag=3,
                    delay=0.05,
                )
            ]
        )

        def prog(comm):
            if comm.rank == 0:
                comm.send(np.full(4, 5.0), 1, tag=3)
                return True
            buf = np.empty(4)
            comm.recv(buf, 0, tag=3)  # pumps progress → matured delivery
            return buf[0] == 5.0

        world = World(2, thread_level=THREAD_MULTIPLE)
        world.install_faults(plan)
        assert all(world.run(prog, timeout=30))
        assert plan.stats()["fault_delay"] == 1
        assert plan.pending_delayed() == 0

    def test_duplicate_delivers_twice(self):
        plan = FaultPlan(
            [FaultRule(FaultAction.DUPLICATE, rank=1, kind="eager", tag=5)]
        )

        def prog(comm):
            if comm.rank == 0:
                comm.send(np.full(2, 9.0), 1, tag=5)
                return True
            a, b = np.empty(2), np.empty(2)
            r1 = comm.irecv(a, 0, tag=5)
            r2 = comm.irecv(b, 0, tag=5)
            r1.wait(timeout=10)
            r2.wait(timeout=10)
            return a[0] == 9.0 and b[0] == 9.0

        world = World(2, thread_level=THREAD_MULTIPLE)
        world.install_faults(plan)
        assert all(world.run(prog, timeout=30))
        assert plan.stats()["fault_duplicate"] == 1

    def test_duplicate_never_touches_control_envelopes(self):
        """Rendezvous control traffic carries request references whose
        duplication would double-complete them — a wildcard DUPLICATE
        rule must pass every non-EAGER envelope through untouched."""
        plan = FaultPlan([FaultRule(FaultAction.DUPLICATE, count=None)])
        nbytes = 1 << 18  # 256 KiB > eager threshold → rendezvous

        def prog(comm):
            if comm.rank == 0:
                comm.send(np.ones(nbytes, dtype=np.uint8), 1, tag=2)
                return True
            buf = np.empty(nbytes, dtype=np.uint8)
            comm.recv(buf, 0, tag=2)
            return int(buf[0]) == 1

        world = World(2, thread_level=THREAD_MULTIPLE)
        world.install_faults(plan)
        assert all(world.run(prog, timeout=30))
        assert plan.stats().get("fault_duplicate", 0) == 0


class TestZeroCopyMessageFaults:
    """Message-scope faults over the zero-copy data plane: borrowed
    payloads and live send requests must survive DROP and DUPLICATE."""

    def test_duplicate_cannot_alias_senders_buffer(self):
        """The duplicate is deep-copied at delivery time, so the
        sender's post-completion scribble can never leak into the
        second receive (plan.py would otherwise hand both matches a
        view of the same live user buffer)."""
        plan = FaultPlan(
            [FaultRule(FaultAction.DUPLICATE, rank=1, kind="eager", tag=5)]
        )

        def prog(comm):
            if comm.rank == 0:
                buf = np.full(4, 9.0)
                req = comm.isend(buf, 1, tag=5)
                req.wait(timeout=10)
                # MPI contract: completed send -> buffer is reusable.
                buf[:] = -1.0
                return True
            a, b = np.empty(4), np.empty(4)
            r1 = comm.irecv(a, 0, tag=5)
            r2 = comm.irecv(b, 0, tag=5)
            r1.wait(timeout=10)
            r2.wait(timeout=10)
            return a[0] == 9.0 and b[0] == 9.0

        world = World(2, thread_level=THREAD_MULTIPLE, zero_copy=True)
        world.install_faults(plan)
        assert all(world.run(prog, timeout=30))
        assert plan.stats()["fault_duplicate"] == 1
        assert plan.stats()["duplicate_deep_copies"] == 1
        # exactly one materialization total: the duplicate's
        assert world.total_payload_copies() == 0

    def test_duplicate_of_classic_eager_still_shares(self):
        """Pre-zero-copy behavior preserved: an owned (copy-at-post)
        payload needs no deep copy to be duplicated."""
        plan = FaultPlan(
            [FaultRule(FaultAction.DUPLICATE, rank=1, kind="eager", tag=5)]
        )

        def prog(comm):
            if comm.rank == 0:
                comm.send(np.full(2, 3.0), 1, tag=5)
                return True
            a, b = np.empty(2), np.empty(2)
            comm.irecv(a, 0, tag=5).wait(timeout=10)
            comm.irecv(b, 0, tag=5).wait(timeout=10)
            return a[0] == 3.0 and b[0] == 3.0

        world = World(2, thread_level=THREAD_MULTIPLE)
        world.install_faults(plan)
        assert all(world.run(prog, timeout=30))
        assert plan.stats().get("duplicate_deep_copies", 0) == 0

    def test_drop_completes_pending_zero_copy_send(self):
        """Data lost in transit must still complete the sender —
        otherwise a dropped zero-copy eager send waits forever for a
        match that can never happen."""
        plan = FaultPlan(
            [FaultRule(FaultAction.DROP, rank=1, kind="eager", tag=7)]
        )

        def prog(comm):
            if comm.rank == 0:
                req = comm.isend(np.arange(8, dtype=np.uint8), 1, tag=7)
                req.wait(timeout=10)  # must not hang
                return req.done
            return True  # receiver never posts: the data is gone

        world = World(2, thread_level=THREAD_MULTIPLE, zero_copy=True)
        world.install_faults(plan)
        assert all(world.run(prog, timeout=30))
        assert plan.stats()["fault_drop"] == 1


class TestCommandScope:
    def test_command_error_surfaces_typed_and_engine_survives(self):
        plan = FaultPlan(
            [FaultRule(FaultAction.COMMAND_ERROR, kind="isend", count=1)]
        )

        def prog(comm):
            comm.world.install_faults(plan)
            with offloaded(comm) as oc:
                h = oc.isend(np.ones(1), 0, tag=1)
                with pytest.raises(OffloadError):
                    h.wait(timeout=10)
                # the fault was transient and pre-dispatch: the engine
                # keeps serving
                return oc.allreduce(np.array([2.0]))[0]

        assert run_world_mt(1, prog) == [2.0]
        assert plan.stats()["fault_command_error"] == 1


class TestZeroOverhead:
    def test_no_plan_means_no_hooks(self):
        def prog(comm):
            engine = OffloadEngine(comm)
            return (
                engine._faults is None
                and comm.world.fault_plan is None
                and comm.engine.faults is None
            )

        assert all(run_world(1, prog))

    def test_engine_adopts_world_plan(self):
        plan = FaultPlan()

        def prog(comm):
            comm.world.install_faults(plan)
            engine = OffloadEngine(comm)
            return engine._faults is plan and comm.engine.faults is plan

        assert all(run_world(1, prog))
