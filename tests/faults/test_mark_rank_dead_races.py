"""``World.mark_rank_dead`` under concurrency: idempotent, and losers
of the marking race block until the winner's sweep finished."""

import threading
import time

import pytest

from repro.dst.explorer import Explorer
from repro.dst.scheduler import Scheduler
from repro.mpisim import World

pytestmark = pytest.mark.deadline(90)


class TestConcurrentMarking:
    def test_first_exception_wins_exactly_once(self):
        for trial in range(20):
            world = World(4)
            excs = [RuntimeError(f"death #{i}") for i in range(8)]
            barrier = threading.Barrier(len(excs))

            def marker(e):
                barrier.wait()
                world.mark_rank_dead(2, e)

            threads = [
                threading.Thread(target=marker, args=(e,)) for e in excs
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(30)
            assert not any(t.is_alive() for t in threads)
            recorded = world.dead_ranks
            assert set(recorded) == {2}
            assert recorded[2] in excs

    def test_losers_wait_for_winner_sweep(self, monkeypatch):
        """A losing caller must not return before the winner finished
        failing pending operations — callers rely on "nothing is still
        parked on the dead rank" as a postcondition."""
        world = World(3)
        sweep_done = threading.Event()
        orig = world.engines[1].fail_pending_on_death

        def slow_sweep(exc):
            time.sleep(0.2)
            orig(exc)
            sweep_done.set()

        monkeypatch.setattr(
            world.engines[1], "fail_pending_on_death", slow_sweep
        )
        started = threading.Barrier(2)
        observed_done = []

        def winner():
            started.wait()
            world.mark_rank_dead(1, RuntimeError("winner"))

        def loser():
            started.wait()
            time.sleep(0.05)  # lose the race into the critical section
            world.mark_rank_dead(1, RuntimeError("loser"))
            observed_done.append(sweep_done.is_set())

        tw = threading.Thread(target=winner)
        tl = threading.Thread(target=loser)
        tw.start()
        tl.start()
        tw.join(10)
        tl.join(10)
        assert not tw.is_alive() and not tl.is_alive()
        assert observed_done == [True]
        assert str(world.dead_ranks[1]) == "winner"

    def test_distinct_ranks_do_not_interfere(self):
        world = World(4)
        barrier = threading.Barrier(3)

        def marker(rank):
            barrier.wait()
            world.mark_rank_dead(rank, RuntimeError(f"rank {rank} down"))

        threads = [
            threading.Thread(target=marker, args=(r,)) for r in (1, 2, 3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
        assert set(world.dead_ranks) == {1, 2, 3}


class _MarkDeadRaceProgram:
    """Two virtual threads race to mark the same rank dead.

    Exercises the ``world.mark_rank_dead`` yield point: the explorer
    can park the winner inside the insert-vs-sweep window and let the
    loser run — the loser must still block until the sweep finished.
    """

    def __init__(self):
        self.world = World(3)
        self.recorded = []
        self.swept = False
        orig = self.world.engines[2].fail_pending_on_death

        def traced_sweep(exc):
            orig(exc)
            self.swept = True

        self.world.engines[2].fail_pending_on_death = traced_sweep
        self.post_sweep_observed = []

    def setup(self, sched: Scheduler) -> None:
        def mark(label):
            self.world.mark_rank_dead(2, RuntimeError(label))
            # postcondition every caller may rely on
            self.post_sweep_observed.append(self.swept)
            self.recorded.append(label)

        sched.spawn(mark, "a", name="marker-a")
        sched.spawn(mark, "b", name="marker-b")

    def check(self) -> None:
        from repro.dst.explorer import InvariantViolation

        if len(self.recorded) != 2:
            return  # incomplete schedule; nothing to assert
        if set(self.world.dead_ranks) != {2}:
            raise InvariantViolation(
                f"dead set wrong: {set(self.world.dead_ranks)}"
            )
        if str(self.world.dead_ranks[2]) not in ("a", "b"):
            raise InvariantViolation("recorded exception is neither racer's")
        if not all(self.post_sweep_observed):
            raise InvariantViolation(
                "a mark_rank_dead caller returned before the sweep ran"
            )


@pytest.mark.dst
class TestMarkDeadDST:
    def test_race_window_clean_under_exploration(self):
        result = Explorer(
            _MarkDeadRaceProgram, strategy="random", schedules=120
        ).run()
        assert not result.found, result.failure
