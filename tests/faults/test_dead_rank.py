"""World-level dead-rank detection (fail-stop model, ULFM-style):
peers' operations naming a dead rank fail fast with RankDeadError
instead of hanging."""

import threading

import numpy as np
import pytest

from repro.core import OffloadError, offloaded
from repro.faults import FaultAction, FaultPlan, FaultRule, InjectedCrash
from repro.mpisim import THREAD_MULTIPLE, World
from repro.mpisim.exceptions import RankDeadError, WorldError


def _run_expecting_dead_rank(world, prog, *args, dead_rank=1):
    """RANK_CRASH records the rank dead, so World.run reports it in a
    WorldError even when every rank program returned; unwrap that."""
    with pytest.raises(WorldError) as ei:
        world.run(prog, *args, timeout=60)
    failures = ei.value.failures
    assert set(failures) == {dead_rank}
    assert isinstance(failures[dead_rank], InjectedCrash)


class TestRankCrash:
    def test_peers_fail_fast_after_death(self):
        plan = FaultPlan(
            [FaultRule(FaultAction.RANK_CRASH, rank=1, count=1)]
        )
        dead_evt = threading.Event()

        def prog(comm):
            if comm.rank == 1:
                with offloaded(comm) as oc:
                    # first command crashes the whole rank
                    with pytest.raises(OffloadError):
                        oc.iprobe(0, tag=0)
                dead_evt.set()
                return True
            assert dead_evt.wait(10)
            assert 1 in comm.world.dead_ranks
            with pytest.raises(RankDeadError):
                comm.send(np.ones(1), 1, tag=0)
            with pytest.raises(RankDeadError):
                comm.recv(np.empty(1), 1, tag=0)
            return True

        world = World(2, thread_level=THREAD_MULTIPLE)
        world.install_faults(plan)
        _run_expecting_dead_rank(world, prog)
        assert plan.stats()["fault_rank_crash"] == 1

    def test_pending_recv_unblocks_on_rank_death(self):
        plan = FaultPlan(
            [FaultRule(FaultAction.RANK_CRASH, rank=1, count=1)]
        )
        posted = threading.Event()
        dead = threading.Event()

        def prog(comm):
            if comm.rank == 0:
                r = comm.irecv(np.empty(1), 1, tag=2)
                posted.set()
                assert dead.wait(10)
                # notify_rank_death failed the posted receive
                with pytest.raises(RankDeadError):
                    r.wait(timeout=10)
                return True
            assert posted.wait(10)
            with offloaded(comm) as oc:
                with pytest.raises(OffloadError):
                    oc.iprobe(0, tag=0)
            dead.set()
            return True

        world = World(2, thread_level=THREAD_MULTIPLE)
        world.install_faults(plan)
        _run_expecting_dead_rank(world, prog)

    def test_mark_rank_dead_is_idempotent(self):
        world = World(2, thread_level=THREAD_MULTIPLE)
        first = InjectedCrash("first")
        world.mark_rank_dead(1, first)
        world.mark_rank_dead(1, InjectedCrash("second"))
        assert world.dead_ranks[1] is first

    def test_world_run_reports_silently_dead_rank(self):
        """A rank marked dead whose program nonetheless returned still
        surfaces in WorldError — deaths are never swallowed."""

        def prog(comm):
            if comm.rank == 1:
                comm.world.mark_rank_dead(1, InjectedCrash("poof"))
            return True

        world = World(2, thread_level=THREAD_MULTIPLE)
        with pytest.raises(WorldError) as ei:
            world.run(prog, timeout=30)
        assert isinstance(ei.value.failures[1], InjectedCrash)
