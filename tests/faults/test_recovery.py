"""Recovery machinery: deadlines, retry/backoff, watchdog, graceful
degradation, and typed stop timeouts."""

import threading
import time

import numpy as np
import pytest

from repro.core import (
    OffloadEngine,
    OffloadError,
    OffloadStopTimeout,
    OffloadTimeout,
    RecoveryPolicy,
    RetryPolicy,
    offloaded,
)
from repro.core.commands import Command, CommandKind
from repro.core.offload_comm import OffloadCommunicator
from repro.core.request_pool import OffloadEngineDied
from repro.faults import FaultAction, FaultPlan, FaultRule

from tests.conftest import run_world, run_world_mt


def _await_dead(engine, budget=5.0):
    """The crash is observed on the engine thread; give it a moment."""
    deadline = time.perf_counter() + budget
    while engine.dead is None and time.perf_counter() < deadline:
        time.sleep(0.002)
    assert engine.dead is not None


class TestRetryPolicy:
    def test_backoff_is_exponential_and_capped(self):
        pol = RetryPolicy(base_backoff=0.01, multiplier=2.0, max_backoff=0.05)
        assert pol.backoff(1) == pytest.approx(0.01)
        assert pol.backoff(2) == pytest.approx(0.02)
        assert pol.backoff(3) == pytest.approx(0.04)
        assert pol.backoff(4) == pytest.approx(0.05)  # capped
        assert pol.backoff(10) == pytest.approx(0.05)


class TestDeadlines:
    def test_inflight_deadline_expires_typed(self):
        def prog(comm):
            with offloaded(comm, op_timeout=0.2) as oc:
                h = oc.irecv(np.empty(1), 0, tag=404)  # never sent
                t0 = time.perf_counter()
                with pytest.raises(OffloadTimeout):
                    h.wait(timeout=10)
                assert time.perf_counter() - t0 < 2.0
                engine = oc.engine.route()
                assert engine.stats()["deadline_expirations"] >= 1
                # the engine survives an expiry and keeps serving
                return oc.allreduce(np.array([1.0]))[0]

        assert run_world_mt(1, prog) == [1.0]

    def test_blocking_deadline_expires_typed(self):
        def prog(comm):
            with offloaded(comm, op_timeout=0.2) as oc:
                with pytest.raises(OffloadTimeout):
                    oc.recv(np.empty(1), 0, tag=404)
                return True

        assert all(run_world_mt(1, prog))

    def test_no_op_timeout_means_no_deadline_stamping(self):
        def prog(comm):
            with offloaded(comm) as oc:
                buf = np.empty(1)
                r = oc.irecv(buf, 0, tag=1)
                oc.isend(np.array([3.0]), 0, tag=1)
                r.wait(timeout=10)
                assert oc.engine.route().stats()["deadline_expirations"] == 0
                return buf[0]

        assert run_world_mt(1, prog) == [3.0]


class TestRetry:
    def test_transient_errors_retried_to_success(self):
        plan = FaultPlan(
            [FaultRule(FaultAction.COMMAND_ERROR, kind="isend", count=2)]
        )
        rec = RecoveryPolicy(
            retry=RetryPolicy(max_retries=3, base_backoff=1e-4,
                              max_backoff=1e-3)
        )

        def prog(comm):
            comm.world.install_faults(plan)
            with offloaded(comm, recovery=rec) as oc:
                buf = np.empty(1)
                r = oc.irecv(buf, 0, tag=1)
                s = oc.isend(np.array([4.0]), 0, tag=1)
                s.wait(timeout=10)
                r.wait(timeout=10)
                assert oc.engine.route().stats()["retries"] == 2
                return buf[0]

        assert run_world_mt(1, prog) == [4.0]
        assert plan.stats()["fault_command_error"] == 2

    def test_retry_exhaustion_fails_typed(self):
        plan = FaultPlan(
            [
                FaultRule(
                    FaultAction.COMMAND_ERROR, kind="isend", count=None
                )
            ]
        )
        rec = RecoveryPolicy(
            retry=RetryPolicy(max_retries=2, base_backoff=1e-4,
                              max_backoff=1e-3)
        )

        def prog(comm):
            comm.world.install_faults(plan)
            with offloaded(comm, recovery=rec) as oc:
                s = oc.isend(np.ones(1), 0, tag=1)
                with pytest.raises(OffloadError):
                    s.wait(timeout=10)
                assert oc.engine.route().stats()["retries"] == 2
                return True

        assert all(run_world_mt(1, prog))

    def test_no_retry_without_policy(self):
        plan = FaultPlan(
            [FaultRule(FaultAction.COMMAND_ERROR, kind="isend", count=1)]
        )

        def prog(comm):
            comm.world.install_faults(plan)
            with offloaded(comm) as oc:
                s = oc.isend(np.ones(1), 0, tag=1)
                with pytest.raises(OffloadError):
                    s.wait(timeout=10)
                assert oc.engine.route().stats()["retries"] == 0
                return True

        assert all(run_world_mt(1, prog))

    def test_non_idempotent_commands_never_retried(self):
        plan = FaultPlan(
            [FaultRule(FaultAction.COMMAND_ERROR, kind="call", count=1)]
        )
        rec = RecoveryPolicy(retry=RetryPolicy(base_backoff=1e-4))

        def prog(comm):
            comm.world.install_faults(plan)
            with offloaded(comm, recovery=rec) as oc:
                cmd = Command(kind=CommandKind.CALL, fn=lambda: 42)
                with pytest.raises(OffloadError):
                    oc._blocking(cmd)
                assert oc.engine.route().stats()["retries"] == 0
                return True

        assert all(run_world_mt(1, prog))


class TestWatchdog:
    def test_watchdog_unblocks_caller_on_stalled_engine(self):
        # The stall fires inside progress() under the library lock — the
        # engine thread wedges exactly like a stuck progress engine.
        plan = FaultPlan(
            [FaultRule(FaultAction.STALL, rank=0, duration=1.5, count=1)]
        )
        rec = RecoveryPolicy(watchdog_timeout=0.2, poll_interval=0.01)

        def prog(comm):
            comm.world.install_faults(plan)
            with offloaded(comm, recovery=rec) as oc:
                t0 = time.perf_counter()
                with pytest.raises(OffloadEngineDied):
                    oc.recv(np.empty(1), 0, tag=9)
                # unblocked by the watchdog bound, not the stall length
                assert time.perf_counter() - t0 < 1.0
                engine = oc.engine.route()
                assert engine.stats()["watchdog_trips"] == 1
                assert engine.dead is not None
            return True

        assert all(run_world_mt(1, prog, timeout=60))


class TestDegradedMode:
    def test_collective_survives_one_dead_engine(self):
        plan = FaultPlan(
            [FaultRule(FaultAction.ENGINE_CRASH, rank=1, count=1)]
        )
        rec = RecoveryPolicy(degrade=True, poll_interval=5e-3)

        def prog(comm):
            if comm.rank == 0:
                comm.world.install_faults(plan)
            comm.barrier()  # plan installed before any engine starts
            with offloaded(comm, recovery=rec) as oc:
                if comm.rank == 1:
                    with pytest.raises(OffloadError):
                        oc.iprobe(0, tag=1)  # first command → crash
                    _await_dead(oc.engine.route())
                # rank 0 offloaded, rank 1 inline: same collective
                out = oc.allreduce(np.ones(1))
                if comm.rank == 1:
                    stats = oc.engine.route().stats()
                    assert stats["degraded_mode_commands"] >= 1
                return out[0]

        assert run_world_mt(2, prog, timeout=60) == [2.0, 2.0]

    def test_degraded_facade_takes_over_funnel(self):
        plan = FaultPlan(
            [FaultRule(FaultAction.ENGINE_CRASH, rank=0, count=1)]
        )
        rec = RecoveryPolicy(degrade=True, poll_interval=5e-3)

        def prog(comm):
            comm.world.install_faults(plan)
            with offloaded(comm, recovery=rec) as oc:
                with pytest.raises(OffloadError):
                    oc.iprobe(0, tag=0)
                engine = oc.engine.route()
                _await_dead(engine)
                # inline issuance under FUNNELED: the calling thread must
                # now hold the funnel designation the dead engine held
                assert oc.allreduce(np.array([3.0]))[0] == 3.0
                assert (
                    comm.world.funnel_thread(comm.engine.rank)
                    == threading.get_ident()
                )
                assert engine.stats()["degraded_mode_commands"] >= 1
            return True

        assert all(run_world(1, prog, timeout=60))

    def test_without_degrade_new_calls_raise(self):
        plan = FaultPlan(
            [FaultRule(FaultAction.ENGINE_CRASH, rank=0, count=1)]
        )
        rec = RecoveryPolicy(degrade=False, poll_interval=5e-3)

        def prog(comm):
            comm.world.install_faults(plan)
            with offloaded(comm, recovery=rec) as oc:
                with pytest.raises(OffloadError):
                    oc.iprobe(0, tag=0)
                _await_dead(oc.engine.route())
                with pytest.raises(OffloadEngineDied):
                    oc.allreduce(np.ones(1))
            return True

        assert all(run_world_mt(1, prog, timeout=60))


class TestPoolRecovery:
    """One wedged shard is a shard-local failure: its pending work
    fails typed while sibling shards keep completing."""

    def test_wedged_shard_fails_pending_typed_siblings_survive(self):
        rec = RecoveryPolicy(watchdog_timeout=0.2, poll_interval=0.01)

        def prog(comm):
            gate = threading.Event()
            try:
                with offloaded(comm, pool_size=4, recovery=rec) as oc:
                    pool = oc.engine
                    shard0 = pool.engines[0]
                    # wedge shard 0 on a blocking CALL, then queue a
                    # victim behind it on the same ring
                    shard0.submit(
                        Command(
                            kind=CommandKind.CALL,
                            fn=lambda: gate.wait(30),
                        )
                    )
                    time.sleep(0.05)  # shard 0 dequeues the wedge
                    victim = Command(
                        kind=CommandKind.CALL, fn=lambda: None
                    )
                    shard0.submit(victim)
                    t0 = time.perf_counter()
                    OffloadCommunicator._watchful_wait(shard0, victim, rec)
                    # unblocked by the watchdog bound, not the wedge
                    assert time.perf_counter() - t0 < 1.0
                    assert isinstance(victim.error, OffloadEngineDied)
                    assert shard0.dead is not None
                    assert shard0.stats()["watchdog_trips"] == 1
                    # the pool survives: only every-shard-dead is dead
                    assert pool.dead is None
                    # siblings keep completing routed work
                    assert oc.allreduce(np.ones(1))[0] == 1.0
                    gate.set()
            finally:
                gate.set()
            return True

        assert all(run_world_mt(1, prog, timeout=60))

    def test_pool_watchdog_monitors_every_shard(self):
        from repro.core.recovery import EngineWatchdog

        def prog(comm):
            gate = threading.Event()
            try:
                with offloaded(comm, pool_size=2) as oc:
                    pool = oc.engine
                    shard0, shard1 = pool.engines
                    shard0.submit(
                        Command(
                            kind=CommandKind.CALL,
                            fn=lambda: gate.wait(30),
                        )
                    )
                    time.sleep(0.05)
                    # a watchdog holding the *pool* samples all shards
                    wd = EngineWatchdog(pool, timeout=0.15)
                    assert wd.engines == list(pool.engines)
                    stop_at = time.perf_counter() + 5.0
                    tripped = False
                    while not tripped and time.perf_counter() < stop_at:
                        time.sleep(0.02)
                        tripped = wd.check()
                    assert tripped, "pool watchdog never tripped"
                    # only the wedged shard was poisoned
                    assert shard0.dead is not None
                    assert shard1.dead is None
                    gate.set()
                    assert oc.allreduce(np.ones(1))[0] == 1.0
            finally:
                gate.set()
            return True

        assert all(run_world_mt(1, prog, timeout=60))


class TestStopTimeout:
    def test_stop_timeout_names_pending_work(self):
        def prog(comm):
            engine = OffloadEngine(comm).start()
            oc = OffloadCommunicator(comm, engine)
            stuck = oc.irecv(np.empty(1), 0, tag=404)  # never sent
            with pytest.raises(OffloadStopTimeout) as ei:
                engine.stop(timeout=0.3)
            assert ei.value.pending
            assert any("irecv" in p for p in ei.value.pending)
            engine.abort("test teardown")
            with pytest.raises(OffloadError):
                stuck.wait(timeout=5)
            return True

        assert all(run_world_mt(1, prog))

    def test_clean_stop_within_small_timeout(self):
        def prog(comm):
            engine = OffloadEngine(comm).start()
            oc = OffloadCommunicator(comm, engine)
            buf = np.empty(1)
            r = oc.irecv(buf, 0, tag=1)
            oc.isend(np.array([8.0]), 0, tag=1)
            r.wait(timeout=10)
            engine.stop(timeout=5.0)
            return buf[0]

        assert run_world_mt(1, prog) == [8.0]
