"""Unit tests for table rendering."""

import pytest

from repro.util.tables import Table, format_table


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        # all rows share one width
        assert len({len(l) for l in lines}) == 1

    def test_title(self):
        out = format_table(["x"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        out = format_table(["v"], [[0.000123], [1234.5], [3.14159]])
        assert "0.000123" in out
        assert "1,235" in out or "1,234" in out
        assert "3.14" in out


class TestTable:
    def test_add_and_render(self):
        t = Table(headers=("n", "v"))
        t.add_row(1, 2.0)
        t.add_row(2, 3.0)
        assert "1" in t.render()
        assert len(t.rows) == 2

    def test_wrong_arity_rejected(self):
        t = Table(headers=("n", "v"))
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_column(self):
        t = Table(headers=("n", "v"))
        t.add_row(1, 10)
        t.add_row(2, 20)
        assert t.column("v") == [10, 20]
        with pytest.raises(KeyError):
            t.column("missing")
