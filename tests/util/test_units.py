"""Unit tests for byte/time formatting helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.units import (
    GIB,
    KIB,
    MIB,
    format_bytes,
    format_time,
    parse_bytes,
    pow2_sizes,
)


class TestParseBytes:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("8B", 8),
            ("8", 8),
            ("1KB", KIB),
            ("128KB", 128 * KIB),
            ("2MB", 2 * MIB),
            ("1GB", GIB),
            ("1.5KB", 1536),
            ("1kib", KIB),
        ],
    )
    def test_valid(self, text, expected):
        assert parse_bytes(text) == expected

    def test_int_passthrough(self):
        assert parse_bytes(42) == 42

    @pytest.mark.parametrize("text", ["", "abc", "12XB", "-5B"])
    def test_invalid(self, text):
        with pytest.raises(ValueError):
            parse_bytes(text)


class TestFormatBytes:
    @pytest.mark.parametrize(
        "n,expected",
        [
            (8, "8B"),
            (KIB, "1KB"),
            (128 * KIB, "128KB"),
            (2 * MIB, "2MB"),
            (3 * GIB, "3GB"),
        ],
    )
    def test_exact(self, n, expected):
        assert format_bytes(n) == expected

    def test_inexact_uses_decimal(self):
        assert format_bytes(1536) == "1.5KB"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_bytes(-1)

    @given(st.integers(min_value=0, max_value=2**40))
    def test_roundtrip_when_exact(self, n):
        text = format_bytes(n)
        # exact representations round-trip
        if "." not in text:
            assert parse_bytes(text) == n


class TestFormatTime:
    @pytest.mark.parametrize(
        "t,expected",
        [
            (0.0, "0s"),
            (140e-9, "140.0ns"),
            (2.5e-6, "2.5us"),
            (3.25e-3, "3.250ms"),
            (2.0, "2.000s"),
        ],
    )
    def test_values(self, t, expected):
        assert format_time(t) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_time(-1.0)


class TestPow2Sizes:
    def test_basic(self):
        assert pow2_sizes(8, 64) == [8, 16, 32, 64]

    def test_single(self):
        assert pow2_sizes(16, 16) == [16]

    @pytest.mark.parametrize("lo,hi", [(3, 8), (8, 12), (0, 8), (16, 8)])
    def test_invalid(self, lo, hi):
        with pytest.raises(ValueError):
            pow2_sizes(lo, hi)
