"""Unit tests for deterministic RNG helpers."""

from repro.util.rng import derive_seed, seeded_rng


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed("a", 1) == derive_seed("a", 1)

    def test_distinct_labels(self):
        assert derive_seed("a") != derive_seed("b")
        assert derive_seed("a", 1) != derive_seed("a", 2)

    def test_base_changes_stream(self):
        assert derive_seed("a", base=1) != derive_seed("a", base=2)

    def test_range(self):
        s = derive_seed("anything", 123, "x")
        assert 0 <= s < 2**63


class TestSeededRng:
    def test_reproducible_draws(self):
        a = seeded_rng("k").standard_normal(8)
        b = seeded_rng("k").standard_normal(8)
        assert (a == b).all()

    def test_label_isolation(self):
        a = seeded_rng("k1").standard_normal(8)
        b = seeded_rng("k2").standard_normal(8)
        assert not (a == b).all()
