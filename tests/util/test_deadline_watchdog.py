"""The nestable ``deadline()`` watchdog composes and restores state.

The watchdog kills the process on expiry, so these tests only exercise
the *arming* logic: frame stacking, earliest-expiry selection, re-arm
on inner pop, and faulthandler state restoration.  Expiry itself is
covered by the chaos/stress tiers actually relying on it.
"""

import faulthandler

import pytest

import tests.conftest as conftest
from tests.conftest import deadline


def _armed_delay() -> float:
    timer = conftest._deadline_timer
    assert timer is not None, "watchdog timer should be armed"
    return timer.interval


class TestDeadlineNesting:
    def test_frames_stack_and_earliest_expiry_wins(self):
        base = len(conftest._deadline_frames)
        with deadline(60.0, "outer"):
            assert len(conftest._deadline_frames) == base + 1
            outer_delay = _armed_delay()
            assert outer_delay > 30.0
            with deadline(5.0, "inner"):
                # the tighter inner bound takes over the shared timer
                assert len(conftest._deadline_frames) == base + 2
                assert _armed_delay() < 6.0
            # popping the inner frame re-arms the outer one's
            # *remaining* time instead of cancelling the watchdog
            assert len(conftest._deadline_frames) == base + 1
            assert 30.0 < _armed_delay() <= 60.0
        assert len(conftest._deadline_frames) == base

    def test_inner_longer_than_outer_keeps_outer_armed(self):
        with deadline(5.0, "outer"):
            with deadline(60.0, "inner"):
                # earliest expiry is still the outer frame
                assert _armed_delay() < 6.0

    def test_faulthandler_state_restored_after_last_pop(self):
        was_enabled = faulthandler.is_enabled()
        if conftest._deadline_frames:
            pytest.skip("another deadline frame is active")
        try:
            faulthandler.disable()
            with deadline(30.0, "outer"):
                assert faulthandler.is_enabled()
                with deadline(10.0, "inner"):
                    assert faulthandler.is_enabled()
                # still inside a frame: state must NOT be restored yet
                assert faulthandler.is_enabled()
            assert not faulthandler.is_enabled()
            faulthandler.enable()
            with deadline(30.0, "outer"):
                pass
            assert faulthandler.is_enabled()
        finally:
            if was_enabled:
                faulthandler.enable()
            else:
                faulthandler.disable()

    @pytest.mark.deadline(120)
    def test_marker_and_context_manager_compose(self):
        # the autouse fixture holds the outer frame for this test
        assert conftest._deadline_frames
        depth = len(conftest._deadline_frames)
        with deadline(3.0, "phase"):
            assert len(conftest._deadline_frames) == depth + 1
            assert _armed_delay() < 4.0
        assert len(conftest._deadline_frames) == depth
        assert _armed_delay() > 4.0
