"""Unit tests for timing helpers."""

import time

import pytest

from repro.util.timing import Stopwatch, TimeBreakdown, busy_spin


class TestBusySpin:
    def test_spins_at_least_duration(self):
        t0 = time.perf_counter()
        busy_spin(0.002)
        assert time.perf_counter() - t0 >= 0.002

    def test_zero_and_negative_are_noops(self):
        t0 = time.perf_counter()
        busy_spin(0.0)
        busy_spin(-1.0)
        assert time.perf_counter() - t0 < 0.05


class TestStopwatch:
    def test_accumulates(self):
        sw = Stopwatch()
        sw.start()
        lap = sw.stop()
        assert lap >= 0
        assert sw.elapsed == pytest.approx(sum(sw.laps))

    def test_double_start_rejected(self):
        sw = Stopwatch()
        sw.start()
        with pytest.raises(RuntimeError):
            sw.start()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_context_manager(self):
        sw = Stopwatch()
        with sw:
            pass
        assert len(sw.laps) == 1

    def test_reset(self):
        sw = Stopwatch()
        with sw:
            pass
        sw.reset()
        assert sw.elapsed == 0.0
        assert sw.laps == []


class TestTimeBreakdown:
    def test_add_and_total(self):
        tb = TimeBreakdown()
        tb.add("post", 1.0)
        tb.add("wait", 2.0)
        tb.add("post", 0.5)
        assert tb.get("post") == 1.5
        assert tb.total == 3.5

    def test_missing_phase_is_zero(self):
        assert TimeBreakdown().get("nope") == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            TimeBreakdown().add("x", -1.0)

    def test_merge_does_not_mutate(self):
        a = TimeBreakdown({"x": 1.0})
        b = TimeBreakdown({"x": 2.0, "y": 3.0})
        c = a.merge(b)
        assert c.get("x") == 3.0
        assert c.get("y") == 3.0
        assert a.get("x") == 1.0

    def test_scaled(self):
        tb = TimeBreakdown({"x": 2.0})
        assert tb.scaled(0.5).get("x") == 1.0
        with pytest.raises(ValueError):
            tb.scaled(-1)

    def test_as_row(self):
        tb = TimeBreakdown({"a": 1.0, "b": 2.0})
        assert tb.as_row(("b", "a", "c")) == [2.0, 1.0, 0.0]
