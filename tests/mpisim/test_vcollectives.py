"""Variable-count collectives (gatherv / scatterv / alltoallv)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import offloaded
from repro.mpisim import World
from repro.mpisim.exceptions import WorldError
from repro.util.rng import seeded_rng

from tests.conftest import run_world, run_world_mt


class TestGatherv:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_uneven_blocks(self, n):
        counts = [r + 1 for r in range(n)]

        def prog(comm):
            mine = np.full(comm.rank + 1, float(comm.rank))
            return comm.gatherv(mine, counts, root=0)

        res = run_world(n, prog)
        expected = np.concatenate(
            [np.full(r + 1, float(r)) for r in range(n)]
        )
        np.testing.assert_array_equal(res[0], expected)
        assert all(r is None for r in res[1:])

    def test_zero_count_ranks(self):
        counts = [2, 0, 1]

        def prog(comm):
            mine = np.full(counts[comm.rank], float(comm.rank))
            return comm.gatherv(mine, counts, root=0)

        res = run_world(3, prog)
        np.testing.assert_array_equal(res[0], [0.0, 0.0, 2.0])

    def test_count_mismatch_rejected(self):
        def prog(comm):
            comm.gatherv(np.zeros(5), [1, 1], root=0)

        with pytest.raises(WorldError):
            run_world(2, prog)

    def test_nonroot_gets_none(self):
        def prog(comm):
            return comm.gatherv(np.zeros(1), [1, 1], root=1)

        res = run_world(2, prog)
        assert res[0] is None and res[1] is not None


class TestScatterv:
    @pytest.mark.parametrize("n", [1, 2, 4])
    def test_roundtrip_with_gatherv(self, n):
        counts = [2 * r + 1 for r in range(n)]

        def prog(comm):
            mine = np.full(counts[comm.rank], float(comm.rank + 1))
            packed = comm.gatherv(mine, counts, root=0)
            out = np.empty(counts[comm.rank])
            comm.scatterv(packed, counts, out, root=0)
            return (out == comm.rank + 1).all()

        assert all(run_world(n, prog))

    def test_root_needs_sendbuf(self):
        def prog(comm):
            comm.scatterv(None, [1], np.empty(1), root=0)

        with pytest.raises(WorldError):
            run_world(1, prog)

    def test_recvbuf_size_mismatch(self):
        def prog(comm):
            comm.scatterv(np.zeros(2), [1, 1], np.empty(5), root=0)

        with pytest.raises(WorldError):
            run_world(2, prog)


class TestAlltoallv:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_triangular_exchange(self, n):
        """Rank p sends (q+1) copies of p to rank q."""

        def prog(comm):
            scounts = [q + 1 for q in range(n)]
            rcounts = [comm.rank + 1] * n
            sbuf = np.concatenate(
                [np.full(q + 1, float(comm.rank)) for q in range(n)]
            )
            rbuf = np.empty(sum(rcounts))
            comm.alltoallv(sbuf, scounts, rbuf, rcounts)
            expected = np.concatenate(
                [np.full(comm.rank + 1, float(p)) for p in range(n)]
            )
            return np.array_equal(rbuf, expected)

        assert all(run_world(n, prog))

    def test_sparse_pattern_with_zeros(self):
        """Only neighbors exchange; everything else is a zero count."""

        def prog(comm):
            n = comm.size
            right = (comm.rank + 1) % n
            scounts = [0] * n
            scounts[right] = 3
            rcounts = [0] * n
            rcounts[(comm.rank - 1) % n] = 3
            sbuf = np.full(3, float(comm.rank))
            rbuf = np.empty(3)
            comm.alltoallv(sbuf, scounts, rbuf, rcounts)
            return rbuf[0] == (comm.rank - 1) % n

        assert all(run_world(4, prog))

    def test_buffer_size_validation(self):
        def prog(comm):
            comm.alltoallv(np.zeros(3), [1, 1], np.empty(2), [1, 1])

        with pytest.raises(WorldError):
            run_world(2, prog)

    def test_through_offload(self):
        def prog(comm):
            n = comm.size
            with offloaded(comm) as oc:
                scounts = [q + 1 for q in range(n)]
                rcounts = [oc.rank + 1] * n
                sbuf = np.concatenate(
                    [np.full(q + 1, float(oc.rank)) for q in range(n)]
                )
                rbuf = np.empty(sum(rcounts))
                oc.alltoallv(sbuf, scounts, rbuf, rcounts)
                expected = np.concatenate(
                    [np.full(oc.rank + 1, float(p)) for p in range(n)]
                )
                ok = np.array_equal(rbuf, expected)
                g = oc.gatherv(
                    np.full(oc.rank + 1, 1.0),
                    [r + 1 for r in range(n)],
                    root=0,
                )
                if oc.rank == 0:
                    ok = ok and g.size == n * (n + 1) // 2
                out = np.empty(oc.rank + 1)
                oc.scatterv(
                    g if oc.rank == 0 else None,
                    [r + 1 for r in range(n)],
                    out,
                    root=0,
                )
                return ok and (out == 1.0).all()

        assert all(run_world_mt(3, prog))


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_alltoallv_matches_dense_alltoall_property(seed):
    """With uniform counts, alltoallv must equal plain alltoall."""
    n = 3
    rng = seeded_rng("a2av", seed)
    blocks = rng.standard_normal((n, n, 2))  # [src][dst][elem]

    def prog(comm):
        dense = comm.alltoall(np.ascontiguousarray(blocks[comm.rank]))
        flat = np.ascontiguousarray(blocks[comm.rank].reshape(-1))
        rbuf = np.empty(n * 2)
        comm.alltoallv(flat, [2] * n, rbuf, [2] * n)
        return np.allclose(dense.reshape(-1), rbuf)

    assert all(World(n).run(prog, timeout=30))
