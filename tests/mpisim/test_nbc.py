"""Nonblocking collectives: correctness and progress semantics."""

import numpy as np
import pytest

from repro.mpisim import SUM, MAX
from repro.mpisim.requests import waitall
from repro.util.rng import seeded_rng

from tests.conftest import run_world

RANK_COUNTS = (1, 2, 3, 4, 8)


class TestIBarrier:
    @pytest.mark.parametrize("n", RANK_COUNTS)
    def test_completes(self, n):
        def prog(comm):
            comm.ibarrier().wait(timeout=30)
            return True

        assert all(run_world(n, prog))


class TestIBcast:
    @pytest.mark.parametrize("n", RANK_COUNTS)
    @pytest.mark.parametrize("root", [0, "mid"])
    def test_matches_blocking(self, n, root):
        root = n // 2 if root == "mid" else 0
        data = seeded_rng("ibcast", n).standard_normal(6)

        def prog(comm):
            buf = data.copy() if comm.rank == root else np.zeros(6)
            comm.ibcast(buf, root=root).wait(timeout=30)
            return buf

        for out in run_world(n, prog):
            np.testing.assert_array_equal(out, data)


class TestIAllreduce:
    @pytest.mark.parametrize("n", RANK_COUNTS)
    def test_sum(self, n):
        data = [
            seeded_rng("iar", n, r).standard_normal(5) for r in range(n)
        ]

        def prog(comm):
            out = np.empty(5)
            comm.iallreduce(data[comm.rank], out).wait(timeout=30)
            return out

        expected = np.sum(np.stack(data), axis=0)
        for out in run_world(n, prog):
            np.testing.assert_allclose(out, expected, rtol=1e-10)

    @pytest.mark.parametrize("n", (3, 5, 6))
    def test_nonpow2_path(self, n):
        def prog(comm):
            out = np.empty(1)
            comm.iallreduce(
                np.array([float(comm.rank)]), out, op=MAX
            ).wait(timeout=30)
            return out[0]

        assert all(v == n - 1 for v in run_world(n, prog))

    def test_aliased_buffers_rejected(self):
        from repro.mpisim.exceptions import WorldError

        def prog(comm):
            buf = np.zeros(2)
            comm.iallreduce(buf, buf)

        with pytest.raises(WorldError):
            run_world(2, prog)


class TestIGather:
    @pytest.mark.parametrize("n", RANK_COUNTS)
    def test_gather(self, n):
        def prog(comm):
            send = np.array([comm.rank], dtype=np.int64)
            recv = (
                np.empty((n, 1), dtype=np.int64) if comm.rank == 0 else None
            )
            comm.igather(send, recv, root=0).wait(timeout=30)
            return recv

        res = run_world(n, prog)
        np.testing.assert_array_equal(res[0].ravel(), np.arange(n))

    def test_root_needs_recvbuf(self):
        from repro.mpisim.exceptions import WorldError

        def prog(comm):
            comm.igather(np.zeros(1), None, root=0)

        with pytest.raises(WorldError):
            run_world(1, prog)


class TestIAlltoall:
    @pytest.mark.parametrize("n", RANK_COUNTS)
    def test_alltoall(self, n):
        def prog(comm):
            send = np.array(
                [[comm.rank * n + d] for d in range(n)], dtype=np.int64
            )
            recv = np.empty_like(send)
            comm.ialltoall(send, recv).wait(timeout=30)
            expected = np.array(
                [[i * n + comm.rank] for i in range(n)], dtype=np.int64
            )
            return np.array_equal(recv, expected)

        assert all(run_world(n, prog))


class TestNBCProgressSemantics:
    def test_nbc_stalls_without_progress_then_completes_in_wait(self):
        """A posted iallreduce must not finish while only one rank
        pumps — then finish for everyone once all wait."""

        def prog(comm):
            out = np.empty(1)
            req = comm.iallreduce(np.array([1.0]), out)
            if comm.rank == 0:
                import time

                time.sleep(0.02)  # rank 1 hasn't waited yet, but it
                # posted; progress advances only when pumped
            req.wait(timeout=30)
            return out[0]

        assert run_world(2, prog) == [2.0, 2.0]

    def test_overlapping_nbc_operations(self):
        """Several in-flight NBCs on one comm must not cross-match."""

        def prog(comm):
            outs = [np.empty(1) for _ in range(4)]
            reqs = [
                comm.iallreduce(np.array([float(i + comm.rank)]), outs[i])
                for i in range(4)
            ]
            waitall(reqs, timeout=30)
            return [o[0] for o in outs]

        res = run_world(2, prog)
        # sum over ranks of (i + rank) = 2i + 1
        assert res[0] == [1.0, 3.0, 5.0, 7.0]

    def test_nbc_mixed_with_p2p(self):
        """NBC traffic must not match user point-to-point receives."""

        def prog(comm):
            out = np.empty(1)
            req = comm.iallreduce(np.array([1.0]), out)
            peer = 1 - comm.rank
            buf = np.empty(1)
            comm.sendrecv(np.array([9.0]), peer, buf, peer, sendtag=0)
            req.wait(timeout=30)
            return (out[0], buf[0])

        assert run_world(2, prog) == [(2.0, 9.0), (2.0, 9.0)]
