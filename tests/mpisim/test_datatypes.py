"""Unit tests for buffer normalization and object packing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpisim import datatypes
from repro.mpisim.exceptions import TruncationError


class TestSendBuffer:
    def test_ndarray_view_no_copy(self):
        a = np.arange(4, dtype=np.float64)
        v = datatypes.as_send_buffer(a)
        assert v.dtype == np.uint8
        assert v.nbytes == a.nbytes
        assert np.shares_memory(v, a)

    def test_bytes(self):
        v = datatypes.as_send_buffer(b"abc")
        assert bytes(v) == b"abc"

    def test_noncontiguous_copied(self):
        a = np.arange(16, dtype=np.int64).reshape(4, 4)
        v = datatypes.as_send_buffer(a[:, ::2])
        assert v.flags.c_contiguous

    def test_multidim(self):
        a = np.ones((2, 3), dtype=np.complex128)
        assert datatypes.as_send_buffer(a).nbytes == a.nbytes


class TestRecvBuffer:
    def test_writable_view(self):
        a = np.zeros(4)
        v = datatypes.as_recv_buffer(a)
        v[:8] = 255
        assert a[0] != 0

    def test_bytearray(self):
        buf = bytearray(4)
        v = datatypes.as_recv_buffer(buf)
        v[0] = 7
        assert buf[0] == 7

    def test_readonly_rejected(self):
        a = np.zeros(4)
        a.flags.writeable = False
        with pytest.raises(TypeError):
            datatypes.as_recv_buffer(a)
        with pytest.raises(TypeError):
            datatypes.as_recv_buffer(b"abc")

    def test_noncontiguous_rejected(self):
        a = np.zeros((4, 4))
        with pytest.raises(TypeError):
            datatypes.as_recv_buffer(a[:, ::2])


class TestCopyInto:
    def test_exact(self):
        src = np.arange(4, dtype=np.uint8)
        dst = np.zeros(4, dtype=np.uint8)
        assert datatypes.copy_into(dst, src) == 4
        assert (dst == src).all()

    def test_short_message_ok(self):
        dst = np.full(8, 9, dtype=np.uint8)
        n = datatypes.copy_into(dst, np.zeros(2, dtype=np.uint8))
        assert n == 2
        assert dst[2] == 9  # untouched tail

    def test_truncation(self):
        with pytest.raises(TruncationError):
            datatypes.copy_into(
                np.zeros(2, dtype=np.uint8), np.zeros(4, dtype=np.uint8)
            )

    def test_empty(self):
        assert datatypes.copy_into(np.zeros(0, np.uint8), np.zeros(0, np.uint8)) == 0


class TestObjectPacking:
    @pytest.mark.parametrize(
        "obj",
        [42, "hello", {"k": [1, 2, 3]}, (None, True), [1.5, 2 + 3j]],
    )
    def test_roundtrip(self, obj):
        assert datatypes.unpack_object(datatypes.pack_object(obj)) == obj

    def test_ndarray_roundtrip(self):
        a = np.arange(10.0)
        b = datatypes.unpack_object(datatypes.pack_object(a))
        assert (a == b).all()

    @settings(max_examples=50, deadline=None)
    @given(
        st.recursive(
            st.none() | st.integers() | st.floats(allow_nan=False) | st.text(),
            lambda inner: st.lists(inner, max_size=4)
            | st.dictionaries(st.text(max_size=4), inner, max_size=4),
            max_leaves=10,
        )
    )
    def test_roundtrip_property(self, obj):
        assert datatypes.unpack_object(datatypes.pack_object(obj)) == obj
