"""One-sided (RMA) tests: semantics, progress dependence, epochs,
errors, and the Casper connection (paper §7 future work)."""

import numpy as np
import pytest

from repro.core import CommSelfProgressThread, offloaded
from repro.mpisim import LOCK_EXCLUSIVE, LOCK_SHARED, RMAError, World
from repro.mpisim.exceptions import WorldError

from tests.conftest import run_world, run_world_mt


class TestPutGetAccumulate:
    @pytest.mark.parametrize("n", [1, 2, 4])
    def test_put_fence_visibility(self, n):
        def prog(comm):
            mem = np.zeros(max(n, 4), dtype=np.float64)
            win = comm.win_create(mem)
            win.put(
                np.array([float(comm.rank + 1)]), 0, target_offset=comm.rank
            )
            win.fence()
            result = mem[:n].copy() if comm.rank == 0 else None
            win.free()
            return result

        res = run_world(n, prog)
        np.testing.assert_array_equal(
            res[0], [float(i + 1) for i in range(n)]
        )

    def test_put_vector(self):
        def prog(comm):
            mem = np.zeros(8, dtype=np.int64)
            win = comm.win_create(mem)
            if comm.rank == 1:
                win.put(np.arange(8, dtype=np.int64), 0)
            win.fence()
            ok = comm.rank != 0 or (mem == np.arange(8)).all()
            win.free()
            return ok

        assert all(run_world(2, prog))

    def test_get_roundtrip(self):
        def prog(comm):
            mem = np.full(4, float(comm.rank * 10), dtype=np.float64)
            win = comm.win_create(mem)
            win.fence()
            out = np.empty(4, dtype=np.float64)
            peer = (comm.rank + 1) % comm.size
            win.get(out, peer).wait(timeout=30)
            win.fence()
            win.free()
            return out[0] == peer * 10

        assert all(run_world(3, prog))

    @pytest.mark.parametrize("n", [2, 4])
    def test_accumulate_sums_all_origins(self, n):
        def prog(comm):
            mem = np.zeros(2, dtype=np.float64)
            win = comm.win_create(mem)
            win.accumulate(np.array([1.0, float(comm.rank)]), 0)
            win.fence()
            result = mem.copy() if comm.rank == 0 else None
            win.free()
            return result

        res = run_world(n, prog)
        assert res[0][0] == n
        assert res[0][1] == n * (n - 1) / 2

    def test_accumulate_with_max(self):
        from repro.mpisim import MAX

        def prog(comm):
            mem = np.zeros(1, dtype=np.float64)
            win = comm.win_create(mem)
            win.accumulate(np.array([float(comm.rank)]), 0, op=MAX)
            win.fence()
            result = mem[0] if comm.rank == 0 else None
            win.free()
            return result

        assert run_world(4, prog)[0] == 3.0

    def test_self_rma(self):
        def prog(comm):
            mem = np.zeros(4, dtype=np.float64)
            win = comm.win_create(mem)
            win.put(np.array([7.0]), 0, target_offset=2)
            win.flush()
            assert mem[2] == 7.0
            win.free()
            return True

        assert all(run_world(1, prog))


class TestProgressDependence:
    def test_put_not_applied_until_target_progresses(self):
        """The Casper problem, for real: a put to a rank that never
        enters MPI sits unapplied."""

        def prog(comm):
            import time

            mem = np.zeros(1, dtype=np.float64)
            win = comm.win_create(mem)
            if comm.rank == 0:
                req = win.put(np.array([5.0]), 1)
                time.sleep(0.05)
                # target is quiet: no ack has come back
                stalled = not req.done
                win.fence()
                win.free()
                return stalled
            # rank 1 computes without touching MPI for a while
            time.sleep(0.1)
            win.fence()  # only now does the put land
            applied = bool(mem[0] == 5.0)
            win.free()
            return applied

        res = run_world(2, prog)
        assert res[0] is True  # origin saw the stall
        assert res[1] is True  # applied by fence time

    def test_commself_thread_applies_puts_during_compute(self):
        """With a comm-self progress thread at the target (Casper-style
        asynchronous agent), the put lands while the target computes."""

        def prog(comm):
            import time

            with CommSelfProgressThread(comm):
                mem = np.zeros(1, dtype=np.float64)
                win = comm.win_create(mem)
                if comm.rank == 0:
                    req = win.put(np.array([5.0]), 1)
                    req.wait(timeout=10)  # completes without target calls
                    ok = True
                else:
                    deadline = time.perf_counter() + 5
                    while mem[0] != 5.0:  # target only computes
                        assert time.perf_counter() < deadline
                        time.sleep(1e-3)
                    ok = True
                win.fence()
                win.free()
            return ok

        assert all(run_world_mt(2, prog))


class TestPassiveTarget:
    def test_exclusive_lock_serializes_epochs(self):
        def prog(comm):
            mem = np.zeros(2, dtype=np.float64)
            win = comm.win_create(mem)
            if comm.rank > 0:
                win.lock(0, LOCK_EXCLUSIVE, timeout=60)
                # read-modify-write on rank 0's counter
                cur = np.empty(1, dtype=np.float64)
                win.get(cur, 0).wait(timeout=30)
                win.put(cur + 1.0, 0)
                win.unlock(0, timeout=60)
            comm.barrier()
            result = mem[0] if comm.rank == 0 else None
            win.free()
            return result

        res = run_world(4, prog)
        assert res[0] == 3.0  # all increments serialized, none lost

    def test_shared_locks_coexist(self):
        def prog(comm):
            mem = np.zeros(4, dtype=np.float64)
            win = comm.win_create(mem)
            if comm.rank > 0:
                win.lock(0, LOCK_SHARED, timeout=60)
                win.put(np.array([1.0]), 0, target_offset=comm.rank)
                win.unlock(0, timeout=60)
            comm.barrier()
            result = mem.sum() if comm.rank == 0 else None
            win.free()
            return result

        assert run_world(3, prog)[0] == 2.0

    def test_unlock_without_lock(self):
        def prog(comm):
            mem = np.zeros(1)
            win = comm.win_create(mem)
            with pytest.raises(RMAError):
                win.unlock(0)
            win.free()
            return True

        assert all(run_world(1, prog))

    def test_double_lock_rejected(self):
        def prog(comm):
            win = comm.win_create(np.zeros(1))
            win.lock(0)
            with pytest.raises(RMAError):
                win.lock(0)
            win.unlock(0)
            win.free()
            return True

        assert all(run_world(1, prog))


class TestErrors:
    def test_out_of_range_put_fails_origin(self):
        def prog(comm):
            win = comm.win_create(np.zeros(2, dtype=np.float64))
            req = win.put(np.zeros(10), 0, target_offset=0)
            with pytest.raises(RMAError):
                req.wait(timeout=10)
            win._pending.clear()  # the failed op is not flushable
            win.free()
            return True

        assert all(run_world(1, prog))

    def test_dtype_mismatch_on_get(self):
        def prog(comm):
            win = comm.win_create(np.zeros(2, dtype=np.float64))
            with pytest.raises(RMAError):
                win.get(np.empty(2, dtype=np.int32), 0)
            win.free()
            return True

        assert all(run_world(1, prog))

    def test_noncontiguous_memory_rejected(self):
        def prog(comm):
            with pytest.raises(TypeError):
                comm.win_create(np.zeros((4, 4))[:, ::2])
            return True

        assert all(run_world(1, prog))


class TestOffloadedRMA:
    def test_put_get_accumulate_through_offload(self):
        def prog(comm):
            with offloaded(comm) as oc:
                mem = np.zeros(4, dtype=np.float64)
                win = oc.win_create(mem)
                win.put(
                    np.array([float(oc.rank + 1)]), 0, target_offset=oc.rank
                )
                win.fence()
                ok = True
                if oc.rank == 0:
                    ok = list(mem[: oc.size]) == [
                        float(i + 1) for i in range(oc.size)
                    ]
                win.accumulate(np.array([2.0]), 0, target_offset=3)
                win.fence()
                if oc.rank == 0:
                    ok = ok and mem[3] == 2.0 * oc.size
                out = np.empty(1, dtype=np.float64)
                win.get(out, 0, target_offset=0).wait(timeout=30)
                ok = ok and out[0] == 1.0
                win.lock(0, LOCK_EXCLUSIVE)
                win.unlock(0)
                win.free()
                return ok

        assert all(run_world_mt(2, prog))

    def test_offload_thread_provides_target_progress(self):
        """An offloaded target applies puts while its app thread
        computes — the offload thread is the RMA async-progress agent
        (what the paper's §7 extension is for)."""

        def prog(comm):
            import time

            with offloaded(comm) as oc:
                mem = np.zeros(1, dtype=np.float64)
                win = oc.win_create(mem)
                if comm.rank == 0:
                    req = win.put(np.array([9.0]), 1)
                    req.wait(timeout=10)
                    ok = True
                else:
                    deadline = time.perf_counter() + 5
                    while mem[0] != 9.0:  # app thread only computes
                        assert time.perf_counter() < deadline
                        time.sleep(1e-3)
                    ok = True
                win.fence()
                win.free()
                return ok

        assert all(run_world_mt(2, prog))
