"""World launcher edge cases and funnel-thread bookkeeping."""

import threading

import numpy as np
import pytest

from repro.mpisim import (
    THREAD_FUNNELED,
    THREAD_MULTIPLE,
    THREAD_SERIALIZED,
    THREAD_SINGLE,
    World,
)
from repro.mpisim.constants import ThreadLevel

from tests.conftest import run_world


class TestThreadLevels:
    def test_levels_ordered(self):
        assert (
            THREAD_SINGLE
            < THREAD_FUNNELED
            < THREAD_SERIALIZED
            < THREAD_MULTIPLE
        )

    def test_world_coerces_int_level(self):
        w = World(1, thread_level=3)
        assert w.thread_level is ThreadLevel.MULTIPLE


class TestRunSemantics:
    def test_kwargs_forwarded(self):
        def prog(comm, a, b=0):
            return a + b + comm.rank

        w = World(2)
        assert w.run(prog, 10, b=5, timeout=30) == [15, 16]

    def test_fresh_world_per_run(self):
        """Two sequential runs on one world reuse the engines but see
        independent traffic (no stale messages)."""
        w = World(2)

        def prog(comm):
            peer = 1 - comm.rank
            buf = np.empty(1)
            comm.sendrecv(np.array([float(comm.rank)]), peer, buf, peer)
            return buf[0]

        assert w.run(prog, timeout=30) == [1.0, 0.0]
        assert w.run(prog, timeout=30) == [1.0, 0.0]

    def test_results_preserve_none(self):
        res = run_world(2, lambda comm: None if comm.rank == 0 else 7)
        assert res == [None, 7]


class TestFunnelBookkeeping:
    def test_funnel_set_per_rank(self):
        def prog(comm):
            ident = threading.get_ident()
            return comm.world.funnel_thread(comm.engine.rank) == ident

        assert all(run_world(3, prog))

    def test_set_funnel_thread_redirects_enforcement(self):
        from repro.mpisim.exceptions import ThreadLevelError

        def prog(comm):
            world = comm.world
            rank = comm.engine.rank
            original = world.funnel_thread(rank)
            world.set_funnel_thread(rank, 12345)  # nobody real
            try:
                with pytest.raises(ThreadLevelError):
                    comm.iprobe()
            finally:
                world.set_funnel_thread(rank, original)
            comm.iprobe()  # fine again
            return True

        assert all(run_world(1, prog, thread_level=THREAD_FUNNELED))

    def test_funnel_none_disables_check(self):
        def prog(comm):
            world = comm.world
            rank = comm.engine.rank
            world.set_funnel_thread(rank, None)
            holder = []

            def other_thread():
                holder.append(comm.iprobe())

            t = threading.Thread(target=other_thread)
            t.start()
            t.join()
            return len(holder) == 1

        assert all(run_world(1, prog, thread_level=THREAD_FUNNELED))


class TestCidAllocation:
    def test_blocks_disjoint(self):
        w = World(1)
        a = w.allocate_cid()
        base = w.allocate_cid_block(5)
        b = w.allocate_cid()
        assert base > a
        assert b >= base + 5
