"""The zero-copy data plane (DESIGN.md §14).

Eager sends under ``zero_copy=True`` borrow the user buffer and pay
exactly one copy — directly into the receiver's posted buffer at match
time.  These tests pin the copy-count invariants (``payload_copies``,
``payload_zero_copy_hits``), the deferred-completion protocol that
makes borrowing sound, and the failure paths (truncation, dead ranks).
"""

import numpy as np
import pytest

from repro.mpisim import World
from repro.mpisim.constants import THREAD_MULTIPLE
from repro.mpisim.envelope import BufferRef
from repro.mpisim.exceptions import TruncationError
from repro.mpisim.progress import ProgressEngine

from tests.conftest import run_world_mt


def make_pair(eager_threshold=128 * 1024, zero_copy=True):
    """Two engines wired back-to-back without a World."""
    engines = []

    def deliver(dst, env):
        engines[dst].inject(env)

    engines.append(
        ProgressEngine(0, deliver, eager_threshold, zero_copy=zero_copy)
    )
    engines.append(
        ProgressEngine(1, deliver, eager_threshold, zero_copy=zero_copy)
    )
    return engines


class TestBufferRef:
    def test_borrow_shares_memory(self):
        a = np.arange(8, dtype=np.float64)
        ref = BufferRef.borrow(a)
        assert not ref.owned
        assert ref.nbytes == a.nbytes
        assert np.shares_memory(ref.view, a)

    def test_own_copies(self):
        a = np.arange(8, dtype=np.float64)
        ref = BufferRef.own(a)
        assert ref.owned
        assert not np.shares_memory(ref.view, a)

    def test_materialize_detaches_borrowed(self):
        a = np.arange(4, dtype=np.int32)
        ref = BufferRef.borrow(a)
        owned = ref.materialize()
        assert owned.owned and not np.shares_memory(owned.view, a)
        a[:] = -1
        np.testing.assert_array_equal(
            owned.as_array(), np.arange(4, dtype=np.int32)
        )

    def test_materialize_of_owned_is_identity(self):
        ref = BufferRef.own(np.arange(4, dtype=np.int32))
        assert ref.materialize() is ref

    def test_as_array_roundtrips_dtype_and_shape(self):
        a = (np.arange(6, dtype=np.complex128) + 1j).reshape(2, 3)
        ref = BufferRef.borrow(a)
        np.testing.assert_array_equal(ref.as_array(), a)


class TestPostedReceiveHappyPath:
    def test_single_copy_straight_into_posted_buffer(self):
        """THE acceptance invariant: a posted receive means zero
        intermediate copies — the data moves exactly once."""
        e0, e1 = make_pair()
        buf = np.zeros(64, dtype=np.uint8)
        rreq = e1.post_recv(buf, source=0, tag=3, context_id=0)
        sreq = e0.post_send(
            np.arange(64, dtype=np.uint8), dst=1, tag=3, context_id=0
        )
        e1.progress()
        assert rreq.done and sreq.done
        np.testing.assert_array_equal(buf, np.arange(64, dtype=np.uint8))
        assert e0.payload_copies == 0
        assert e1.payload_copies == 0
        assert e1.payload_zero_copy_hits == 1

    def test_unexpected_arrival_defers_the_single_copy(self):
        """No posted receive yet: the envelope parks in the UMQ still
        borrowing the sender's buffer; the one copy runs at match."""
        e0, e1 = make_pair()
        payload = np.arange(32, dtype=np.uint8)
        sreq = e0.post_send(payload, dst=1, tag=7, context_id=0)
        assert not sreq.done  # completion deferred to the match
        buf = np.zeros(32, dtype=np.uint8)
        rreq = e1.post_recv(buf, source=0, tag=7, context_id=0)
        assert rreq.done and sreq.done
        np.testing.assert_array_equal(buf, payload)
        assert e0.payload_copies + e1.payload_copies == 0
        assert e1.payload_zero_copy_hits == 1

    def test_sender_reuse_after_completion_is_safe(self):
        """The MPI contract the deferred completion protects: once the
        send request reports done, scribbling the buffer cannot be
        observed by the receiver (the eager-deferred-copy DST race)."""
        e0, e1 = make_pair()
        payload = np.arange(16, dtype=np.uint8)
        sreq = e0.post_send(payload, dst=1, tag=1, context_id=0)
        buf = np.zeros(16, dtype=np.uint8)
        e1.post_recv(buf, source=0, tag=1, context_id=0)
        assert sreq.done
        payload[:] = 0xEE
        np.testing.assert_array_equal(buf, np.arange(16, dtype=np.uint8))

    def test_unsafe_hook_reopens_the_race(self):
        e0, e1 = make_pair()
        e0._unsafe_complete_eager_at_post = True
        payload = np.arange(16, dtype=np.uint8)
        sreq = e0.post_send(payload, dst=1, tag=1, context_id=0)
        assert sreq.done  # the bug: complete while still borrowed
        payload[:] = 0xEE
        buf = np.zeros(16, dtype=np.uint8)
        e1.post_recv(buf, source=0, tag=1, context_id=0)
        assert (buf == 0xEE).all()  # receiver saw the scribble


class TestClassicPathUnchanged:
    def test_copy_at_post_still_counts_one_copy(self):
        e0, e1 = make_pair(zero_copy=False)
        payload = np.arange(16, dtype=np.uint8)
        sreq = e0.post_send(payload, dst=1, tag=3, context_id=0)
        assert sreq.done  # classic eager: buffered, completes at post
        payload[:] = 0xEE  # reuse is safe because of the eager copy
        buf = np.zeros(16, dtype=np.uint8)
        e1.post_recv(buf, source=0, tag=3, context_id=0)
        np.testing.assert_array_equal(buf, np.arange(16, dtype=np.uint8))
        assert e0.payload_copies == 1
        assert e1.payload_zero_copy_hits == 0

    def test_world_default_is_classic(self):
        w = World(2)
        assert not w.engines[0].zero_copy


class TestTruncation:
    def test_truncation_fails_recv_but_completes_send(self):
        """An undersized posted buffer is the receiver's error; the
        sender's buffer was still consumed (MPI_ERR_TRUNCATE lands on
        the receive side only)."""
        e0, e1 = make_pair()
        sreq = e0.post_send(
            np.arange(32, dtype=np.uint8), dst=1, tag=5, context_id=0
        )
        buf = np.zeros(8, dtype=np.uint8)
        rreq = e1.post_recv(buf, source=0, tag=5, context_id=0)
        with pytest.raises(TruncationError):
            rreq.wait(timeout=5)
        assert sreq.done and sreq.error is None


class TestCoalescedZeroCopy:
    def test_parts_borrow_and_complete_at_match(self):
        e0, e1 = make_pair()
        payloads = [
            np.full(8, k, dtype=np.uint8) for k in range(3)
        ]
        reqs = e0.post_send_coalesced(
            payloads, dst=1, tags=[1, 2, 3], context_id=0
        )
        assert not any(r.done for r in reqs)
        bufs = [np.zeros(8, dtype=np.uint8) for _ in range(3)]
        for k, buf in enumerate(bufs):
            e1.post_recv(buf, source=0, tag=k + 1, context_id=0)
        assert all(r.done for r in reqs)
        for k, buf in enumerate(bufs):
            np.testing.assert_array_equal(buf, np.full(8, k, np.uint8))
        assert e0.payload_copies + e1.payload_copies == 0
        assert e1.payload_zero_copy_hits == 3


class TestDeadRank:
    def test_pending_zero_copy_send_fails_when_receiver_dies(self):
        """A zero-copy eager send parked in a dead rank's UMQ must not
        hang the sender: death fails its live send request."""
        from repro.mpisim.exceptions import RankDeadError

        w = World(2, THREAD_MULTIPLE, zero_copy=True)
        e0, e1 = w.engines
        sreq = e0.post_send(
            np.arange(16, dtype=np.uint8), dst=1, tag=3, context_id=0
        )
        assert not sreq.done
        w.mark_rank_dead(1, RuntimeError("injected"))
        with pytest.raises(RankDeadError):
            sreq.wait(timeout=5)


class TestWorldEndToEnd:
    def test_ping_pong_zero_copies_with_posted_receives(self):
        def prog(comm):
            n = 4096
            if comm.rank == 0:
                data = np.arange(n, dtype=np.float64)
                comm.send(data, 1, tag=9)
                return 0.0
            buf = np.empty(n, dtype=np.float64)
            rreq = comm.irecv(buf, 0, tag=9)
            rreq.wait(timeout=30)
            return float(buf.sum())

        res = run_world_mt(2, prog, zero_copy=True)
        assert res[1] == float(np.arange(4096, dtype=np.float64).sum())

    def test_world_totals_count_hits_not_copies(self):
        w = World(2, THREAD_MULTIPLE, zero_copy=True)

        def prog(comm):
            if comm.rank == 0:
                comm.send(np.arange(128, dtype=np.uint8), 1)
            else:
                buf = np.empty(128, dtype=np.uint8)
                comm.recv(buf, 0)

        w.run(prog, timeout=30)
        assert w.total_payload_copies() == 0
        assert w.total_payload_zero_copy_hits() == 1


class TestRMAZeroCopy:
    def test_put_borrows_contiguous_origin(self):
        def prog(comm):
            mem = np.zeros(8, dtype=np.int64)
            win = comm.win_create(mem)
            if comm.rank == 1:
                win.put(np.arange(8, dtype=np.int64), 0)
            win.fence()
            ok = comm.rank != 0 or (mem == np.arange(8)).all()
            win.free()
            return ok

        w = World(2, THREAD_MULTIPLE, zero_copy=True)
        assert all(w.run(prog, timeout=30))
        assert w.total_payload_copies() == 0
        assert w.engines[0].payload_zero_copy_hits >= 1

    def test_put_of_strided_origin_packs_once(self):
        def prog(comm):
            mem = np.zeros(4, dtype=np.int64)
            win = comm.win_create(mem)
            if comm.rank == 1:
                wide = np.arange(8, dtype=np.int64)
                win.put(wide[::2], 0)  # non-contiguous origin
            win.fence()
            ok = comm.rank != 0 or (mem == [0, 2, 4, 6]).all()
            win.free()
            return ok

        w = World(2, THREAD_MULTIPLE, zero_copy=True)
        assert all(w.run(prog, timeout=30))
        assert w.total_payload_copies() == 1  # the pack, nothing else
